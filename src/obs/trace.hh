/**
 * @file
 * Flight recorder: a per-simulator buffer of typed binary events
 * covering the SDV chain lifecycle (TL promotion, chain spawn/extend,
 * validation issue/hit/miss, vreg alloc/release with fate, quiesce,
 * fault inject/detect, demote/re-enable) plus core events (squash,
 * I-cache refill, MSHR alloc/retry). Events are recorded as compact
 * PODs and serialized on demand to Chrome/Perfetto trace-event JSON.
 *
 * Each simulator owns at most one recorder and records from its own
 * thread, so recording needs no locks; sweep workers each attach a
 * private recorder and the driver serializes them in plan order.
 */

#ifndef SDV_OBS_TRACE_HH
#define SDV_OBS_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"

namespace sdv {
namespace obs {

/** Typed event identifiers; eventCategory() maps each to a category. */
enum class EventKind : std::uint8_t {
    TlPromote,      ///< Table-of-Loads entry crossed the spawn threshold
    ChainSpawn,     ///< new vector chain installed (load or arith)
    ChainExtend,    ///< successor speculation extended an existing chain
    ChainKill,      ///< chain torn down (replacement, misspeculation)
    ValIssue,       ///< load/arith decoded into a validation
    ValHit,         ///< validation committed against a ready element
    ValMiss,        ///< validation fell back or caught a misspeculation
    VregAlloc,      ///< physical vector register allocated
    VregRelease,    ///< vector register released (fate in args)
    Quiesce,        ///< speculative vector state flushed at a boundary
    FaultInject,    ///< fault campaign corrupted a VRMT install
    FaultDetect,    ///< injected fault caught by validation/VRMT check
    ChainDemote,    ///< faulting chain demoted to scalar issue
    ChainReenable,  ///< demoted chain re-enabled after writer commit
    Squash,         ///< full pipeline squash
    IcacheRefill,   ///< instruction fetch missed L1I
    MshrAlloc,      ///< fresh L1D MSHR allocated for a miss
    MshrRetry,      ///< access retried because the MSHR file was full
    NumKinds,
};

/** Category bits for --trace-filter. */
constexpr unsigned CatSdv = 1u;  ///< SDV engine / vector events
constexpr unsigned CatMem = 2u;  ///< memory hierarchy events
constexpr unsigned CatCore = 4u; ///< scalar core events
constexpr unsigned CatAll = CatSdv | CatMem | CatCore;

/** @return stable snake_case name used in serialized traces. */
const char *eventName(EventKind kind);

/** @return the category bit of @p kind (one of CatSdv/CatMem/CatCore). */
unsigned eventCategory(EventKind kind);

/** @return "sdv", "mem" or "core" for a single category bit. */
const char *categoryName(unsigned cat);

/**
 * Parse a comma-separated category list ("sdv,mem,core") into a mask.
 * @retval false on an unknown category name.
 */
bool parseCategoryMask(const std::string &spec, unsigned &mask);

/** One recorded event; meaning of pc/arg0/arg1 depends on the kind. */
struct TraceEvent
{
    Cycle cycle = 0;
    Addr pc = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    EventKind kind = EventKind::NumKinds;
};

/**
 * Append/ring buffer of TraceEvents with category filtering applied at
 * record time. A ring capacity of 0 means unbounded append mode;
 * otherwise the oldest events are evicted once the buffer is full
 * (--trace-last N).
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /**
     * @param category_mask OR of CatSdv/CatMem/CatCore
     * @param ring_capacity max retained events, 0 for unbounded
     */
    void configure(unsigned category_mask, std::size_t ring_capacity);

    /** Update the timestamp applied to subsequent record() calls. */
    void setCycle(Cycle now) { now_ = now; }

    /** @return the current record timestamp. */
    Cycle cycle() const { return now_; }

    /** Record one event at the current cycle (filtered by category). */
    void record(EventKind kind, Addr pc = 0, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0);

    /** @return number of events currently retained. */
    std::size_t size() const { return events_.size(); }

    /** @return events that passed the filter since configure(). */
    std::uint64_t recorded() const { return recorded_; }

    /** @return events evicted by the ring bound. */
    std::uint64_t dropped() const { return dropped_; }

    /** @return active category mask. */
    unsigned categoryMask() const { return mask_; }

    /** @return the ring capacity (0 when in append mode). */
    std::size_t ringCapacity() const { return ringCap_; }

    /**
     * Chain-lifetime histogram, sampled at every VregRelease with the
     * same 4x-log buckets as VecRegFateStats::lifetimeHist: the bucket
     * index b covers ages in [2^(2b+1), 2^(2b+3)) cycles, b=7 the rest.
     */
    const Histogram &chainLifetimeHist() const { return chainHist_; }

    /** Drop all retained events and counters (keeps configuration). */
    void clear();

    /** Visit retained events in chronological order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = events_.size();
        for (std::size_t i = 0; i < n; ++i)
            fn(events_[(head_ + i) % (n ? n : 1)]);
    }

    /**
     * Append this recorder's events as comma-separated Chrome
     * trace-event objects (no enclosing brackets). @p pid becomes the
     * trace "pid" so multiple runs can share one file.
     */
    void appendEventsJson(std::string &out, unsigned pid) const;

  private:
    std::vector<TraceEvent> events_;
    Histogram chainHist_{8};
    std::size_t ringCap_ = 0;
    std::size_t head_ = 0;
    unsigned mask_ = CatAll;
    Cycle now_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

/** A run's worth of events plus the label shown in the trace viewer. */
struct TraceSource
{
    const TraceRecorder *recorder = nullptr;
    std::string label;
};

/**
 * Serialize one or more recorders into a complete Chrome/Perfetto
 * trace-event JSON document. Source i is emitted as pid i with a
 * process_name metadata record, so the output is deterministic for a
 * fixed source order regardless of how the runs were scheduled.
 */
std::string traceFileJson(const std::vector<TraceSource> &sources);

/** Write traceFileJson() to @p path. @retval false on I/O error. */
bool writeTraceFile(const std::string &path,
                    const std::vector<TraceSource> &sources);

} // namespace obs
} // namespace sdv

#endif // SDV_OBS_TRACE_HH
