#include "obs/trace.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/log.hh"

namespace sdv {
namespace obs {

namespace {

struct KindInfo
{
    const char *name;
    unsigned cat;
};

const KindInfo kKinds[] = {
    {"tl_promote", CatSdv},      {"chain_spawn", CatSdv},
    {"chain_extend", CatSdv},    {"chain_kill", CatSdv},
    {"val_issue", CatSdv},       {"val_hit", CatSdv},
    {"val_miss", CatSdv},        {"vreg_alloc", CatSdv},
    {"vreg_release", CatSdv},    {"quiesce", CatSdv},
    {"fault_inject", CatSdv},    {"fault_detect", CatSdv},
    {"chain_demote", CatSdv},    {"chain_reenable", CatSdv},
    {"squash", CatCore},         {"icache_refill", CatMem},
    {"mshr_alloc", CatMem},      {"mshr_retry", CatMem},
};

static_assert(sizeof(kKinds) / sizeof(kKinds[0]) ==
                  std::size_t(EventKind::NumKinds),
              "kind table out of sync with EventKind");

const char *kCauseNames[] = {"cond1", "cond2", "killed", "bulk", "squash"};
const char *kMissNames[] = {"mismatch", "fallback", "addr_misspec",
                            "operand_misspec"};

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::size_t(n) < sizeof(buf) ? std::size_t(n)
                                                     : sizeof(buf) - 1);
}

/** Emit the per-kind args object for one event. */
void
appendArgs(std::string &out, const TraceEvent &ev)
{
    const auto pc = static_cast<unsigned long long>(ev.pc);
    const auto a0 = static_cast<unsigned long long>(ev.arg0);
    const auto a1 = static_cast<unsigned long long>(ev.arg1);
    switch (ev.kind) {
      case EventKind::TlPromote:
        appendf(out, "{\"pc\":\"0x%llx\",\"stride\":%lld}", pc,
                static_cast<long long>(ev.arg0));
        break;
      case EventKind::ChainSpawn:
      case EventKind::ChainExtend:
        appendf(out, "{\"pc\":\"0x%llx\",\"vreg\":%llu,\"%s\":%llu}", pc, a0,
                ev.kind == EventKind::ChainSpawn ? "arith" : "eager", a1);
        break;
      case EventKind::ChainKill:
      case EventKind::FaultInject:
      case EventKind::FaultDetect:
        appendf(out, "{\"pc\":\"0x%llx\",\"vreg\":%llu}", pc, a0);
        break;
      case EventKind::ValIssue:
      case EventKind::ValHit:
        appendf(out, "{\"pc\":\"0x%llx\",\"vreg\":%llu,\"elem\":%llu}", pc, a0,
                a1);
        break;
      case EventKind::ValMiss:
        appendf(out, "{\"pc\":\"0x%llx\",\"vreg\":%llu,\"reason\":\"%s\"}", pc,
                a0, ev.arg1 < 4 ? kMissNames[ev.arg1] : "unknown");
        break;
      case EventKind::VregAlloc:
        appendf(out, "{\"mrbb\":\"0x%llx\",\"reg\":%llu,\"gen\":%llu}", pc,
                a0 & 0xffffu, (a0 >> 16) & 0xffffu);
        break;
      case EventKind::VregRelease: {
        const unsigned cause = unsigned((ev.arg0 >> 32) & 0xffu);
        appendf(out,
                "{\"reg\":%llu,\"gen\":%llu,\"cause\":\"%s\",\"age\":%llu}",
                a0 & 0xffffu, (a0 >> 16) & 0xffffu,
                cause < 5 ? kCauseNames[cause] : "unknown", a1);
        break;
      }
      case EventKind::Quiesce:
        appendf(out, "{\"live_vregs\":%llu,\"transient_elems\":%llu}", a0, a1);
        break;
      case EventKind::ChainDemote:
      case EventKind::ChainReenable:
        appendf(out, "{\"pc\":\"0x%llx\"}", pc);
        break;
      case EventKind::Squash:
        appendf(out, "{\"squashed_insts\":%llu}", a0);
        break;
      case EventKind::IcacheRefill:
        appendf(out, "{\"pc\":\"0x%llx\",\"ready\":%llu}", pc, a0);
        break;
      case EventKind::MshrAlloc:
        appendf(out, "{\"line\":\"0x%llx\",\"complete\":%llu}", pc, a0);
        break;
      case EventKind::MshrRetry:
        appendf(out, "{\"line\":\"0x%llx\"}", pc);
        break;
      default:
        out += "{}";
        break;
    }
}

} // namespace

const char *
eventName(EventKind kind)
{
    sdv_assert(kind < EventKind::NumKinds, "bad event kind");
    return kKinds[unsigned(kind)].name;
}

unsigned
eventCategory(EventKind kind)
{
    sdv_assert(kind < EventKind::NumKinds, "bad event kind");
    return kKinds[unsigned(kind)].cat;
}

const char *
categoryName(unsigned cat)
{
    switch (cat) {
      case CatSdv: return "sdv";
      case CatMem: return "mem";
      case CatCore: return "core";
      default: return "?";
    }
}

bool
parseCategoryMask(const std::string &spec, unsigned &mask)
{
    mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        if (tok == "sdv")
            mask |= CatSdv;
        else if (tok == "mem")
            mask |= CatMem;
        else if (tok == "core")
            mask |= CatCore;
        else if (tok == "all")
            mask |= CatAll;
        else if (!tok.empty())
            return false;
        pos = comma + 1;
    }
    return mask != 0;
}

void
TraceRecorder::configure(unsigned category_mask, std::size_t ring_capacity)
{
    mask_ = category_mask;
    ringCap_ = ring_capacity;
    events_.clear();
    if (ringCap_)
        events_.reserve(ringCap_);
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    chainHist_.reset();
}

void
TraceRecorder::record(EventKind kind, Addr pc, std::uint64_t arg0,
                      std::uint64_t arg1)
{
    if (!(eventCategory(kind) & mask_))
        return;
    ++recorded_;
    if (kind == EventKind::VregRelease) {
        // Same 4x-log bucketing as VecRegFateStats::lifetimeHist.
        unsigned bucket = 0;
        for (Cycle bound = 8; bucket < 7 && arg1 >= bound; bound <<= 2)
            ++bucket;
        chainHist_.sample(bucket);
    }
    TraceEvent ev;
    ev.cycle = now_;
    ev.pc = pc;
    ev.arg0 = arg0;
    ev.arg1 = arg1;
    ev.kind = kind;
    if (ringCap_ && events_.size() == ringCap_) {
        events_[head_] = ev;
        head_ = (head_ + 1) % ringCap_;
        ++dropped_;
    } else {
        events_.push_back(ev);
    }
}

void
TraceRecorder::clear()
{
    events_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    chainHist_.reset();
}

void
TraceRecorder::appendEventsJson(std::string &out, unsigned pid) const
{
    bool first = true;
    forEach([&](const TraceEvent &ev) {
        if (!first)
            out += ",\n";
        first = false;
        const char *name = eventName(ev.kind);
        const char *cat = categoryName(eventCategory(ev.kind));
        const auto ts = static_cast<unsigned long long>(ev.cycle);
        if (ev.kind == EventKind::VregAlloc ||
            ev.kind == EventKind::VregRelease) {
            // Async begin/end pairs keyed on reg+gen render vector
            // register lifetimes as spans in the trace viewer.
            const auto id =
                static_cast<unsigned long long>(ev.arg0 & 0xffffffffu);
            appendf(out,
                    "{\"name\":\"vreg\",\"cat\":\"%s\",\"ph\":\"%s\","
                    "\"id\":%llu,\"ts\":%llu,\"pid\":%u,\"tid\":0,"
                    "\"args\":",
                    cat, ev.kind == EventKind::VregAlloc ? "b" : "e", id, ts,
                    pid);
        } else {
            appendf(out,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%llu,\"pid\":%u,\"tid\":0,"
                    "\"args\":",
                    name, cat, ts, pid);
        }
        appendArgs(out, ev);
        out += "}";
    });
}

std::string
traceFileJson(const std::vector<TraceSource> &sources)
{
    std::string out;
    out += "{\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        if (!first)
            out += ",\n";
        first = false;
        appendf(out,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                unsigned(i), sources[i].label.c_str());
        if (sources[i].recorder && sources[i].recorder->size()) {
            out += ",\n";
            sources[i].recorder->appendEventsJson(out, unsigned(i));
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"sdv\","
           "\"time_unit\":\"cycle\",\"sources\":[";
    for (std::size_t i = 0; i < sources.size(); ++i) {
        const TraceRecorder *rec = sources[i].recorder;
        if (i)
            out += ",";
        appendf(out, "\n{\"label\":\"%s\",\"recorded\":%llu,\"dropped\":%llu,"
                     "\"chain_lifetime_hist\":",
                sources[i].label.c_str(),
                static_cast<unsigned long long>(rec ? rec->recorded() : 0),
                static_cast<unsigned long long>(rec ? rec->dropped() : 0));
        out += rec ? rec->chainLifetimeHist().toJson()
                   : Histogram(8).toJson();
        out += "}";
    }
    out += "\n]}}\n";
    return out;
}

bool
writeTraceFile(const std::string &path, const std::vector<TraceSource> &sources)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open trace file ", path);
        return false;
    }
    const std::string doc = traceFileJson(sources);
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
}

} // namespace obs
} // namespace sdv
