/**
 * @file
 * Interval telemetry: periodic snapshots of CoreStats/EngineStats
 * deltas every N cycles, producing a per-interval time series (IPC,
 * fetch-stall breakdown, live-vreg occupancy, validation activity)
 * emitted as a "telemetry" array next to the end-of-run aggregates.
 *
 * Samples are taken on interval boundaries of the simulated clock; an
 * event-skip jump that crosses several boundaries yields one sample
 * spanning the jump. A final flush captures the partial last interval
 * so that the per-field sums equal the end-of-run aggregate counters
 * exactly.
 */

#ifndef SDV_OBS_TELEMETRY_HH
#define SDV_OBS_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sdv {

class Core;

namespace obs {

/** Stat deltas over one sampling interval. */
struct TelemetrySample
{
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t insts = 0;
    std::uint64_t fetchStallCycles = 0;
    std::uint64_t fetchStallValWaitCycles = 0;
    std::uint64_t validations = 0;     ///< committed validations
    std::uint64_t valFallbacks = 0;    ///< late validation fallbacks
    unsigned liveVregs = 0;            ///< occupancy at endCycle

    /** @return interval length in cycles. */
    std::uint64_t cycles() const { return endCycle - startCycle; }

    /** @return interval IPC (0 for an empty interval). */
    double
    ipc() const
    {
        return cycles() ? double(insts) / double(cycles()) : 0.0;
    }
};

/** Periodic sampler driven from the Simulator run loop. */
class IntervalTelemetry
{
  public:
    /** @param interval sampling period in cycles (must be > 0) */
    explicit IntervalTelemetry(Cycle interval);

    /** @return sampling period. */
    Cycle interval() const { return interval_; }

    /** Rebase on the core's current counters at run start. */
    void begin(Core &core);

    /** @return whether the core clock has crossed the next boundary. */
    bool due(Cycle now) const { return now >= next_; }

    /** Take one boundary sample and re-arm for the next boundary. */
    void sample(Core &core);

    /** Flush the partial final interval (no-op if nothing elapsed). */
    void finish(Core &core);

    /** @return all samples taken so far. */
    const std::vector<TelemetrySample> &samples() const { return samples_; }

    /** @return the samples as a JSON array (deterministic formatting). */
    std::string toJson() const;

  private:
    /** Record the delta since the previous snapshot ending at @p now. */
    void capture(Core &core, Cycle now);

    struct Snapshot
    {
        Cycle cycle = 0;
        std::uint64_t insts = 0;
        std::uint64_t fetchStallCycles = 0;
        std::uint64_t fetchStallValWaitCycles = 0;
        std::uint64_t validations = 0;
        std::uint64_t valFallbacks = 0;
    };

    Snapshot prev_;
    Cycle interval_;
    Cycle next_;
    std::vector<TelemetrySample> samples_;
};

} // namespace obs
} // namespace sdv

#endif // SDV_OBS_TELEMETRY_HH
