/**
 * @file
 * Compile-time gate for observability hooks. With SDV_OBS defined
 * (the default build) each hook is one null-pointer test; without it
 * the hooks compile to nothing, so the disabled build is provably
 * unchanged. Recording never mutates model state either way: the
 * simulated statistics are bit-identical with and without a recorder.
 */

#ifndef SDV_OBS_HOOKS_HH
#define SDV_OBS_HOOKS_HH

#ifdef SDV_OBS

#include "obs/trace.hh"

#define SDV_OBS_ENABLED 1

/** Record one event if a recorder is attached. */
#define SDV_OBS_EVENT(rec, ...)                                             \
    do {                                                                    \
        if (rec)                                                            \
            (rec)->record(__VA_ARGS__);                                     \
    } while (0)

/** Stamp the recorder clock (call once per simulated cycle). */
#define SDV_OBS_SET_CYCLE(rec, now)                                         \
    do {                                                                    \
        if (rec)                                                            \
            (rec)->setCycle(now);                                           \
    } while (0)

#else

#define SDV_OBS_ENABLED 0
#define SDV_OBS_EVENT(rec, ...) do { } while (0)
#define SDV_OBS_SET_CYCLE(rec, now) do { } while (0)

#endif // SDV_OBS

#endif // SDV_OBS_HOOKS_HH
