#include "obs/telemetry.hh"

#include <cstdio>

#include "common/log.hh"
#include "core/core.hh"

namespace sdv {
namespace obs {

IntervalTelemetry::IntervalTelemetry(Cycle interval)
    : interval_(interval), next_(interval)
{
    sdv_assert(interval > 0, "telemetry interval must be positive");
}

void
IntervalTelemetry::begin(Core &core)
{
    const CoreStats &cs = core.stats();
    prev_.cycle = core.cycle();
    prev_.insts = cs.committedInsts;
    prev_.fetchStallCycles = cs.fetchStallCycles;
    prev_.fetchStallValWaitCycles = cs.fetchStallValWaitCycles;
    prev_.validations = cs.committedValidations;
    prev_.valFallbacks = core.engine().stats().lateValidationFallbacks;
    next_ = (prev_.cycle / interval_ + 1) * interval_;
    samples_.clear();
}

void
IntervalTelemetry::capture(Core &core, Cycle now)
{
    const CoreStats &cs = core.stats();
    const VecRegFile &vrf = core.engine().vrf();
    TelemetrySample s;
    s.startCycle = prev_.cycle;
    s.endCycle = now;
    s.insts = cs.committedInsts - prev_.insts;
    s.fetchStallCycles = cs.fetchStallCycles - prev_.fetchStallCycles;
    s.fetchStallValWaitCycles =
        cs.fetchStallValWaitCycles - prev_.fetchStallValWaitCycles;
    s.validations = cs.committedValidations - prev_.validations;
    s.valFallbacks = core.engine().stats().lateValidationFallbacks -
                     prev_.valFallbacks;
    s.liveVregs = vrf.numRegs() - vrf.numFree();
    samples_.push_back(s);

    prev_.cycle = now;
    prev_.insts = cs.committedInsts;
    prev_.fetchStallCycles = cs.fetchStallCycles;
    prev_.fetchStallValWaitCycles = cs.fetchStallValWaitCycles;
    prev_.validations = cs.committedValidations;
    prev_.valFallbacks = core.engine().stats().lateValidationFallbacks;
}

void
IntervalTelemetry::sample(Core &core)
{
    const Cycle now = core.cycle();
    capture(core, now);
    // One sample spans an event-skip jump across several boundaries;
    // re-arm on the interval grid so later samples stay aligned.
    next_ = (now / interval_ + 1) * interval_;
}

void
IntervalTelemetry::finish(Core &core)
{
    if (core.cycle() > prev_.cycle)
        capture(core, core.cycle());
}

std::string
IntervalTelemetry::toJson() const
{
    std::string out = "[";
    char buf[384];
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const TelemetrySample &s = samples_[i];
        std::snprintf(
            buf, sizeof(buf),
            "%s\n{\"start_cycle\":%llu,\"end_cycle\":%llu,\"cycles\":%llu,"
            "\"insts\":%llu,\"ipc\":%.6f,\"fetch_stall_cycles\":%llu,"
            "\"fetch_stall_val_wait_cycles\":%llu,\"validations\":%llu,"
            "\"val_fallbacks\":%llu,\"live_vregs\":%u}",
            i ? "," : "", static_cast<unsigned long long>(s.startCycle),
            static_cast<unsigned long long>(s.endCycle),
            static_cast<unsigned long long>(s.cycles()),
            static_cast<unsigned long long>(s.insts), s.ipc(),
            static_cast<unsigned long long>(s.fetchStallCycles),
            static_cast<unsigned long long>(s.fetchStallValWaitCycles),
            static_cast<unsigned long long>(s.validations),
            static_cast<unsigned long long>(s.valFallbacks), s.liveVregs);
        out += buf;
    }
    out += "\n]";
    return out;
}

} // namespace obs
} // namespace sdv
