/**
 * @file
 * Registry of the synthetic SPEC95-like workloads.
 *
 * SPEC95 binaries and reference inputs are not redistributable, so each
 * benchmark of the paper's evaluation (the 8 SpecInt95 programs and the
 * 4 SpecFP95 programs used: swim, applu, turb3d, fpppp) is replaced by
 * a synthetic kernel engineered to the program's published behaviour:
 * its stride mix (Figure 1), its vectorizable fraction (Figure 3), its
 * branch-predictability class and its pointer/array balance. See
 * DESIGN.md ("Substitutions") for the full rationale.
 */

#ifndef SDV_WORKLOADS_WORKLOAD_HH
#define SDV_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sdv {

/** One registered workload. */
struct Workload
{
    std::string name;        ///< SPEC95 program it stands in for
    bool isFp = false;       ///< SpecFP95 member
    std::string description; ///< behaviour the kernel models
    std::function<Program(unsigned)> build; ///< scale >= 1
};

/** @return all 12 workloads (8 integer then 4 FP, paper order). */
const std::vector<Workload> &allWorkloads();

/** @return the workload named @p name, or nullptr. */
const Workload *findWorkload(const std::string &name);

/** Build a workload's program (fatal on unknown name). */
Program buildWorkload(const std::string &name, unsigned scale = 1);

/** @return the 8 SpecInt95-like workload names in paper order. */
std::vector<std::string> intWorkloadNames();

/** @return the 4 SpecFP95-like workload names in paper order. */
std::vector<std::string> fpWorkloadNames();

// Individual kernel builders (one translation unit each).
Program buildGo(unsigned scale);       ///< go: branchy board evaluation
Program buildM88ksim(unsigned scale);  ///< m88ksim: CPU simulator loop
Program buildGcc(unsigned scale);      ///< gcc: tree/list compiler passes
Program buildCompress(unsigned scale); ///< compress: LZW hashing
Program buildLi(unsigned scale);       ///< li: lisp cons-cell interpreter
Program buildIjpeg(unsigned scale);    ///< ijpeg: block image transforms
Program buildPerl(unsigned scale);     ///< perl: bytecode interpreter
Program buildVortex(unsigned scale);   ///< vortex: OO database store
Program buildSwim(unsigned scale);     ///< swim: shallow-water stencil
Program buildApplu(unsigned scale);    ///< applu: banded solver
Program buildTurb3d(unsigned scale);   ///< turb3d: strided FFT passes
Program buildFpppp(unsigned scale);    ///< fpppp: huge FP basic blocks

} // namespace sdv

#endif // SDV_WORKLOADS_WORKLOAD_HH
