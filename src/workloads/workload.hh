/**
 * @file
 * Registry of the synthetic SPEC95-like workloads.
 *
 * SPEC95 binaries and reference inputs are not redistributable, so each
 * benchmark of the paper's evaluation (the 8 SpecInt95 programs and the
 * 4 SpecFP95 programs used: swim, applu, turb3d, fpppp) is replaced by
 * a synthetic kernel engineered to the program's published behaviour:
 * its stride mix (Figure 1), its vectorizable fraction (Figure 3), its
 * branch-predictability class and its pointer/array balance. See
 * DESIGN.md ("Substitutions") for the full rationale.
 *
 * Every kernel is instantiated through a two-stage WorkloadSpec layer:
 * a *footprint model* maps (scale, footprint mode) to a FootprintPlan —
 * named array extents, pointer-heap sizes and iteration counts — and a
 * *builder* emits the program from the resolved plan. The base mode
 * reproduces the seed kernels exactly (byte-identical programs at any
 * scale); the l2 and mem modes grow the working set beyond the L1 and
 * L2 capacities while preserving each kernel's stride mix and
 * vectorizable fraction, the regime the paper's reference inputs ran
 * in. See docs/workloads.md.
 */

#ifndef SDV_WORKLOADS_WORKLOAD_HH
#define SDV_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/program.hh"

namespace sdv {

/** Working-set regime a kernel is instantiated for. */
enum class Footprint
{
    Base, ///< seed footprint: L1-resident arrays, byte-identical programs
    L2,   ///< working set beyond L1D but L2-resident (~2x L1D)
    Mem   ///< working set beyond L2 (~4x L2 or more)
};

/** @return "base" / "l2" / "mem". */
const char *footprintName(Footprint fp);

/** Parse a --footprint argument (fatal on anything unknown). */
Footprint parseFootprint(const std::string &name);

/**
 * The resolved sizing of one kernel instantiation: every array extent,
 * pointer-heap size and iteration count the builder emits, as computed
 * by the workload's footprint model for one (scale, footprint) pair.
 * Extents are in 64-bit words (the kernels' universal unit); trip
 * counts are dynamic iteration counts.
 */
struct FootprintPlan
{
    unsigned scale = 1;
    Footprint footprint = Footprint::Base;

    /** Speculation-fuzzing input perturbation (--fuzz-speculation):
     *  XORed into every builder-side data RNG and LCG seed, and folded
     *  into the FP builders' fill patterns, so one workload yields a
     *  family of input-distinct but structurally identical programs.
     *  0 (the default) reproduces the seed kernels byte-identically. */
    std::uint64_t fuzzSeed = 0;

    std::vector<std::pair<std::string, std::size_t>> extents; ///< words
    std::vector<std::pair<std::string, std::int64_t>> trips;

    /** Declare extent @p name of @p words words. */
    void
    extent(const std::string &name, std::size_t words)
    {
        extents.emplace_back(name, words);
    }

    /** Declare iteration count @p name. */
    void
    trip(const std::string &name, std::int64_t count)
    {
        trips.emplace_back(name, count);
    }

    /** @return extent @p name in words (fatal when undeclared). */
    std::size_t words(const std::string &name) const;

    /** @return extent @p name in words as a loop trip count. */
    std::int32_t wordTrip(const std::string &name) const;

    /** @return trip count @p name (fatal when undeclared). */
    std::int32_t count(const std::string &name) const;

    /** @return words(name) - 1, asserting the extent is a power of
     *  two — the index masks the kernels' random probes use. */
    std::int32_t indexMask(const std::string &name) const;

    /** @return words(name) * 8 - 1 (power-of-two byte mask). */
    std::int32_t byteMask(const std::string &name) const;

    /** @return total initialized data footprint in bytes. */
    std::size_t totalBytes() const;
};

/** One registered workload: identity plus its two-stage instantiation
 *  (footprint model -> plan -> program builder). */
struct WorkloadSpec
{
    std::string name;        ///< SPEC95 program it stands in for
    bool isFp = false;       ///< SpecFP95 member
    std::string description; ///< behaviour the kernel models

    /** Footprint model: extents and trip counts for (scale, mode). */
    FootprintPlan (*plan)(unsigned scale, Footprint fp);

    /** Emit the program from a resolved plan. */
    Program (*build)(const FootprintPlan &plan);

    /**
     * Resolve the model and build the program.
     * @param scale dynamic-length scale factor (>= 1; fatal on 0)
     * @param fp working-set regime
     * @param fuzz_seed input perturbation (0 = exact seed kernel)
     */
    Program instantiate(unsigned scale, Footprint fp = Footprint::Base,
                        std::uint64_t fuzz_seed = 0) const;
};

/** Legacy name: most call sites predate the footprint layer. */
using Workload = WorkloadSpec;

/** @return all 12 workloads (8 integer then 4 FP, paper order). */
const std::vector<WorkloadSpec> &allWorkloads();

/** @return the adversarial timing-channel pair (tc_victim, tc_attack;
 *  PR 6). Deliberately NOT part of allWorkloads(): the 12-workload
 *  suite is the fixed surface of every figure baseline. The pair is
 *  reachable by name (findWorkload) and through the "attack" plan. */
const std::vector<WorkloadSpec> &attackWorkloads();

/** @return the workload named @p name (the 12-workload suite or the
 *  timing-channel pair), or nullptr. */
const WorkloadSpec *findWorkload(const std::string &name);

/** Build a workload's program. Fatal on an unknown name or an invalid
 *  (zero) scale — the requested values are reported, never clamped. */
Program buildWorkload(const std::string &name, unsigned scale = 1,
                      Footprint fp = Footprint::Base,
                      std::uint64_t fuzz_seed = 0);

/**
 * @return a one-line footprint summary for @p w at (@p scale, @p fp):
 * total initialized bytes plus the dominant extents, e.g.
 * "160.0 KiB (htab 128.0 KiB, input 16.0 KiB, ...)". Used by the
 * sweep driver's --list and the Table 1 bench.
 */
std::string describeFootprint(const WorkloadSpec &w, unsigned scale,
                              Footprint fp);

/** @return the 8 SpecInt95-like workload names in paper order. */
std::vector<std::string> intWorkloadNames();

/** @return the 4 SpecFP95-like workload names in paper order. */
std::vector<std::string> fpWorkloadNames();

// Individual kernel models and builders (one translation unit each).
FootprintPlan planGo(unsigned scale, Footprint fp);
Program buildGo(const FootprintPlan &plan); ///< go: branchy board evaluation
FootprintPlan planM88ksim(unsigned scale, Footprint fp);
Program buildM88ksim(const FootprintPlan &plan); ///< m88ksim: CPU simulator loop
FootprintPlan planGcc(unsigned scale, Footprint fp);
Program buildGcc(const FootprintPlan &plan); ///< gcc: tree/list compiler passes
FootprintPlan planCompress(unsigned scale, Footprint fp);
Program buildCompress(const FootprintPlan &plan); ///< compress: LZW hashing
FootprintPlan planLi(unsigned scale, Footprint fp);
Program buildLi(const FootprintPlan &plan); ///< li: lisp cons-cell interpreter
FootprintPlan planIjpeg(unsigned scale, Footprint fp);
Program buildIjpeg(const FootprintPlan &plan); ///< ijpeg: block image transforms
FootprintPlan planPerl(unsigned scale, Footprint fp);
Program buildPerl(const FootprintPlan &plan); ///< perl: bytecode interpreter
FootprintPlan planVortex(unsigned scale, Footprint fp);
Program buildVortex(const FootprintPlan &plan); ///< vortex: OO database store
FootprintPlan planSwim(unsigned scale, Footprint fp);
Program buildSwim(const FootprintPlan &plan); ///< swim: shallow-water stencil
FootprintPlan planApplu(unsigned scale, Footprint fp);
Program buildApplu(const FootprintPlan &plan); ///< applu: banded solver
FootprintPlan planTurb3d(unsigned scale, Footprint fp);
Program buildTurb3d(const FootprintPlan &plan); ///< turb3d: strided FFT passes
FootprintPlan planFpppp(unsigned scale, Footprint fp);
Program buildFpppp(const FootprintPlan &plan); ///< fpppp: huge FP basic blocks
FootprintPlan planTcVictim(unsigned scale, Footprint fp);
Program buildTcVictim(const FootprintPlan &plan); ///< secret-length chains
FootprintPlan planTcAttack(unsigned scale, Footprint fp);
Program buildTcAttack(const FootprintPlan &plan); ///< victim + probe phases

} // namespace sdv

#endif // SDV_WORKLOADS_WORKLOAD_HH
