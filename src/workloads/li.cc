/**
 * @file
 * `li` stand-in: a lisp-interpreter heap walk. Cons cells come from a
 * sequential allocation pool, so the cdr chain is pointer chasing with
 * a *constant* stride — exactly the irregular-looking-but-strided
 * pattern the paper's mechanism vectorizes where a compiler cannot.
 * Adds an eval stack (stride 0/1 traffic) and an environment probe.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planLi(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Footprint: the sequential cons-cell pool (32KB / 128KB / 1MB)
    // plus the hashed environment. In the base mode the evaluator
    // restarts at the head every iteration (the seed behaviour); in
    // the grown modes the circular walk continues instead, so the
    // constant-stride cdr chase actually streams the whole pool.
    p.extent("cells", 2 * byFootprint<std::size_t>(fp, 2048, 8192, 65536));
    p.extent("env", byFootprint<std::size_t>(fp, 256, 1024, 4096));
    p.extent("stack", 64);
    p.extent("frame", 32);
    p.trip("iters", std::int64_t(scale) * 520);
    return p;
}

Program
buildLi(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x115b ^ p.fuzzSeed);

    const std::size_t envLen = p.words("env");
    // Sequential pool: cdr (word 0) strides by the 2-word cell size.
    const Addr head = buildList(b, "cells", p.words("cells") / 2, 2,
                                /*shuffled=*/false, rng);
    const Addr env = b.allocWords("env", envLen);
    const Addr stack = b.allocWords("stack", 64);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, env, envLen, rng, 400);

    emitLcgInit(b, 0x11511 ^ p.fuzzSeed);
    b.loadAddr(ptr2, env);
    b.loadAddr(ptr3, stack);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);
    b.ldi(acc1, 0);

    const bool walkContinues = p.footprint != Footprint::Base;
    if (walkContinues)
        b.loadAddr(ptr0, head);
    countedLoop(b, counter0, p.count("iters"), [&] {
        // Interpreter-state reloads (env pointer, depth: stride 0).
        emitSpillReloads(b, 6, acc1);
        // Evaluate a list of 5 cells: car is the value, cdr the next
        // cell (constant-stride pointer loads). The grown footprints
        // keep walking the circular pool instead of restarting.
        if (!walkContinues)
            b.loadAddr(ptr0, head);
        countedLoop(b, counter1, 5, [&] {
            b.ldq(scratch0, ptr0, 8); // car
            b.ldq(ptr0, ptr0, 0);     // cdr: strided pointer chase
            // Tag checks and fixnum arithmetic on the car (all
            // dependent on the vectorized load).
            b.andi(scratch1, scratch0, 7);
            b.srli(scratch2, scratch0, 3);
            b.slli(scratch3, scratch2, 1);
            b.add(scratch3, scratch3, scratch1);
            b.add(acc0, acc0, scratch3);
        });

        // Push the partial result onto a rotating stack slot (store
        // traffic without re-loading the just-written word).
        b.andi(scratch0, counter0, 31);
        b.slli(scratch0, scratch0, 3);
        b.add(scratch1, ptr3, scratch0);
        b.stq(acc0, scratch1, 0);

        // Environment lookup at a hashed index with a biased branch.
        emitLcgNext(b, scratch1, std::uint32_t(p.indexMask("env")));
        b.slli(scratch1, scratch1, 3);
        b.add(ptr1, ptr2, scratch1);
        b.ldq(scratch2, ptr1, 0);
        auto unbound = b.newLabel();
        b.cmplti(scratch3, scratch2, 320);
        b.beqz(scratch3, unbound);
        b.add(acc0, acc0, scratch2);
        b.bind(unbound);
    });

    b.stq(acc0, ptr3, 8);
    b.stq(acc1, ptr3, 16);
    b.halt();
    return b.finish();
}

} // namespace sdv
