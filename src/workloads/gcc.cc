/**
 * @file
 * `gcc` stand-in: compiler-style passes mixing irregular pointer
 * chasing over a shuffled node pool (RTL walking), a stride-1 token
 * scan, and hashed symbol-table probes. Mid-pack SpecInt95
 * vectorizability (~40% in Figure 3) with moderately predictable
 * branches.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planGcc(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Footprint: the shuffled RTL node pool (irregular pointer chase)
    // plus the hashed symbol table. 45KB / 176KB / 1.3MB total.
    p.extent("nodes", 4 * byFootprint<std::size_t>(fp, 1024, 4096, 32768));
    p.extent("tokens", byFootprint<std::size_t>(fp, 512, 2048, 8192));
    p.extent("symtab", byFootprint<std::size_t>(fp, 1024, 4096, 16384));
    p.extent("out", 16);
    p.extent("frame", 32);
    p.trip("iters", std::int64_t(scale) * 550);
    return p;
}

Program
buildGcc(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x6cc ^ p.fuzzSeed);

    const std::size_t tokenLen = p.words("tokens");
    const std::size_t symtabLen = p.words("symtab");
    const Addr head = buildList(b, "nodes", p.words("nodes") / 4, 4,
                                /*shuffled=*/true, rng);
    const Addr tokens = b.allocWords("tokens", tokenLen);
    const Addr symtab = b.allocWords("symtab", symtabLen);
    const Addr out = b.allocWords("out", 16);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, tokens, tokenLen, rng, 200);
    fillRandomWords(b, symtab, symtabLen, rng, 5000);

    emitLcgInit(b, 0xc0ffee ^ p.fuzzSeed);
    b.loadAddr(ptr0, head);
    b.loadAddr(ptr2, symtab);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);
    b.ldi(acc1, 0);

    countedLoop(b, counter0, p.count("iters"), [&] {
        // Pass-state reloads (current function, flags: stride 0).
        emitSpillReloads(b, 5, acc1);
        // Walk one RTL node (shuffled pool: irregular strides).
        countedLoop(b, counter1, 1, [&] {
            b.ldq(scratch0, ptr0, 8);  // payload
            b.ldq(scratch1, ptr0, 16); // payload
            b.ldq(ptr0, ptr0, 0);      // next (irregular)
            b.add(acc0, acc0, scratch0);
            auto skip = b.newLabel();
            // ~75% of payloads are below 750.
            b.cmplti(scratch2, scratch1, 750);
            b.beqz(scratch2, skip);
            b.add(acc1, acc1, scratch1);
            b.bind(skip);
        });

        // Token scan (stride 1, vectorizable with its arithmetic).
        b.loadAddr(ptr1, tokens);
        b.andi(scratch0, counter0, subIndexMask(tokenLen, 2));
        b.slli(scratch0, scratch0, 3);
        b.add(ptr1, ptr1, scratch0);
        countedLoop(b, counter1, 6, [&] {
            b.ldq(scratch1, ptr1, 0);
            b.addi(ptr1, ptr1, 8);
            b.slli(scratch2, scratch1, 1);
            b.xori(scratch2, scratch2, 0x55);
            b.add(acc0, acc0, scratch2);
        });

        // Symbol-table probe at a hashed (pseudo-random) index.
        emitLcgNext(b, scratch0, std::uint32_t(p.indexMask("symtab")));
        b.slli(scratch0, scratch0, 3);
        b.add(ptr3, ptr2, scratch0);
        b.ldq(scratch1, ptr3, 0);
        auto miss = b.newLabel();
        b.cmplti(scratch2, scratch1, 2500);
        b.beqz(scratch2, miss);
        b.addi(scratch1, scratch1, 1);
        b.stq(scratch1, ptr3, 0);
        b.bind(miss);
    });

    b.loadAddr(ptr3, out);
    b.stq(acc0, ptr3, 0);
    b.stq(acc1, ptr3, 8);
    b.halt();
    return b.finish();
}

} // namespace sdv
