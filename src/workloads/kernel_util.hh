/**
 * @file
 * Shared emission helpers for the synthetic workload kernels.
 */

#ifndef SDV_WORKLOADS_KERNEL_UTIL_HH
#define SDV_WORKLOADS_KERNEL_UTIL_HH

#include <functional>

#include "common/random.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace workloads {

// --- footprint-model helpers (shared by every kernel's plan fn) -----

/** @return the variant of a sizing constant for @p fp. */
template <typename T>
inline T
byFootprint(Footprint fp, T base, T l2, T mem)
{
    switch (fp) {
      case Footprint::L2:
        return l2;
      case Footprint::Mem:
        return mem;
      case Footprint::Base:
      default:
        return base;
    }
}

/** Start an empty plan bound to (@p scale, @p fp). */
inline FootprintPlan
makePlan(unsigned scale, Footprint fp)
{
    FootprintPlan p;
    p.scale = scale;
    p.footprint = fp;
    return p;
}

/**
 * Outer pass count for a kernel whose per-pass work grows with its
 * footprint: base_passes * scale passes at the seed footprint, divided
 * by the same factor the per-pass trip count grew by (never below one
 * full pass), so the dynamic instruction count stays proportional to
 * the scale in every mode.
 */
std::int32_t scaledPasses(unsigned scale, unsigned base_passes,
                          unsigned growth);

/**
 * AND-mask covering 1/@p divisor of a power-of-two extent:
 * words / divisor - 1. The validated way to derive the sub-extent
 * window masks some kernels use (scan/copy/start windows) — asserts
 * the power-of-two shape just like FootprintPlan::indexMask, so a
 * future non-pow2 retune fails loudly instead of silently skewing the
 * emitted index distribution.
 */
std::int32_t subIndexMask(std::size_t words, std::size_t divisor);

/** Registers conventionally used by the kernels. */
constexpr RegId scratch0 = 1, scratch1 = 2, scratch2 = 3, scratch3 = 4;
constexpr RegId spillTmp = 5;
constexpr RegId ptr0 = 10, ptr1 = 11, ptr2 = 12, ptr3 = 13;
constexpr RegId counter0 = 14, counter1 = 15;
constexpr RegId acc0 = 20, acc1 = 21, acc2 = 22;
constexpr RegId framePtr = 26, lcgState = 27, lcgMult = 28;

/** Fill @p count words starting at @p base with f(i). */
void fillWords(ProgramBuilder &b, Addr base, size_t count,
               const std::function<std::uint64_t(size_t)> &f);

/** Fill with uniform values in [0, bound). */
void fillRandomWords(ProgramBuilder &b, Addr base, size_t count,
                     Random &rng, std::uint64_t bound);

/** Fill with doubles f(i). */
void fillDoubles(ProgramBuilder &b, Addr base, size_t count,
                 const std::function<double(size_t)> &f);

/** Input perturbation of the FP builders under --fuzz-speculation: a
 *  small deterministic offset derived from the plan's fuzz seed,
 *  exactly 0.0 at seed 0 so the seed kernels stay byte-identical. */
inline double
fuzzOffset(std::uint64_t fuzz_seed)
{
    return double(fuzz_seed % 9973) * 1e-7;
}

/**
 * Build a singly linked list of @p nodes nodes of @p node_words words
 * (word 0 is the next pointer; the rest is payload filled from @p rng).
 * @param shuffled true: random node order (irregular strides);
 *        false: sequential order (constant-stride pointer chasing)
 * @return the address of the head node
 */
Addr buildList(ProgramBuilder &b, const std::string &name, size_t nodes,
               size_t node_words, bool shuffled, Random &rng);

/**
 * Emit `ldi ctr, iters; L: body(); addi ctr, ctr, -1; bnez ctr, L`.
 * The body runs @p iters times; @p ctr must not be clobbered.
 */
void countedLoop(ProgramBuilder &b, RegId ctr, std::int32_t iters,
                 const std::function<void()> &body);

/**
 * Seed the in-register linear congruential generator (state in
 * lcgState, multiplier in lcgMult).
 */
void emitLcgInit(ProgramBuilder &b, std::uint64_t seed);

/**
 * Advance the LCG and leave a pseudo-random index in @p dst:
 * dst = (state >> 24) & mask (mask must be 2^k - 1).
 */
void emitLcgNext(ProgramBuilder &b, RegId dst, std::uint32_t mask);

/**
 * Emit @p slots "spill reloads": unoptimized compiled code reloads
 * locals and globals from fixed stack/global slots on every loop
 * iteration, which is where the paper's dominant stride-0 traffic
 * comes from (Section 2). Each slot is a distinct static load off
 * framePtr plus a short dependent (vectorizable) chain folded into
 * @p acc.
 */
void emitSpillReloads(ProgramBuilder &b, unsigned slots, RegId acc);

} // namespace workloads
} // namespace sdv

#endif // SDV_WORKLOADS_KERNEL_UTIL_HH
