#include "workloads/workload.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace sdv {

// --- Footprint ------------------------------------------------------

const char *
footprintName(Footprint fp)
{
    switch (fp) {
      case Footprint::Base:
        return "base";
      case Footprint::L2:
        return "l2";
      case Footprint::Mem:
        return "mem";
    }
    return "?";
}

Footprint
parseFootprint(const std::string &name)
{
    if (name == "base")
        return Footprint::Base;
    if (name == "l2")
        return Footprint::L2;
    if (name == "mem")
        return Footprint::Mem;
    fatal("unknown footprint mode '", name, "' (base, l2 or mem)");
}

// --- FootprintPlan --------------------------------------------------

std::size_t
FootprintPlan::words(const std::string &name) const
{
    for (const auto &e : extents)
        if (e.first == name)
            return e.second;
    fatal("footprint plan declares no extent '", name, "'");
}

std::int32_t
FootprintPlan::wordTrip(const std::string &name) const
{
    const std::size_t w = words(name);
    sdv_assert(w <= 0x7fffffffu, "extent too large for a trip count");
    return std::int32_t(w);
}

std::int32_t
FootprintPlan::count(const std::string &name) const
{
    for (const auto &t : trips)
        if (t.first == name) {
            sdv_assert(t.second >= 1 && t.second <= 0x7fffffff,
                       "trip count out of range");
            return std::int32_t(t.second);
        }
    fatal("footprint plan declares no trip count '", name, "'");
}

std::int32_t
FootprintPlan::indexMask(const std::string &name) const
{
    const std::size_t w = words(name);
    sdv_assert(w >= 2 && (w & (w - 1)) == 0,
               "extent '", name, "' must be a power of two for masking");
    sdv_assert(w - 1 <= 0x7fffffffu, "mask exceeds immediate range");
    return std::int32_t(w - 1);
}

std::int32_t
FootprintPlan::byteMask(const std::string &name) const
{
    const std::int32_t m = indexMask(name);
    sdv_assert(m <= 0x0fffffff, "byte mask exceeds immediate range");
    return m * 8 + 7;
}

std::size_t
FootprintPlan::totalBytes() const
{
    std::size_t words = 0;
    for (const auto &e : extents)
        words += e.second;
    return words * 8;
}

// --- registry -------------------------------------------------------

Program
WorkloadSpec::instantiate(unsigned scale, Footprint fp,
                          std::uint64_t fuzz_seed) const
{
    if (scale == 0)
        fatal("workload '", name, "': invalid scale 0 (the scale is a "
              "dynamic-length multiplier and must be >= 1)");
    FootprintPlan p = plan(scale, fp);
    p.fuzzSeed = fuzz_seed;
    return build(p);
}

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        {"go", false, "branchy board evaluation, irregular probes",
         planGo, buildGo},
        {"m88ksim", false, "ISA-simulator main loop over a trace",
         planM88ksim, buildM88ksim},
        {"gcc", false, "compiler passes: pointer chasing + token scan",
         planGcc, buildGcc},
        {"compress", false, "LZW hashing with random table probes",
         planCompress, buildCompress},
        {"li", false, "lisp interpreter: strided cons-cell chasing",
         planLi, buildLi},
        {"ijpeg", false, "block image transforms, dense stride-1",
         planIjpeg, buildIjpeg},
        {"perl", false, "bytecode interpreter with dispatch cascade",
         planPerl, buildPerl},
        {"vortex", false, "OO database: record scans and bulk copies",
         planVortex, buildVortex},
        {"swim", true, "shallow-water stencils, stride-1 doubles",
         planSwim, buildSwim},
        {"applu", true, "banded solver, unrolled-by-2 (stride 2)",
         planApplu, buildApplu},
        {"turb3d", true, "FFT-like passes at strides 1/2/4/8",
         planTurb3d, buildTurb3d},
        {"fpppp", true, "huge FP basic blocks over a small workspace",
         planFpppp, buildFpppp},
    };
    return workloads;
}

const std::vector<WorkloadSpec> &
attackWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        {"tc_victim", false,
         "timing-channel victim: secret-length speculative chains",
         planTcVictim, buildTcVictim},
        {"tc_attack", false,
         "timing-channel attacker: victim phases + cache probes",
         planTcAttack, buildTcAttack},
    };
    return workloads;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &w : allWorkloads())
        if (w.name == name)
            return &w;
    for (const WorkloadSpec &w : attackWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

Program
buildWorkload(const std::string &name, unsigned scale, Footprint fp,
              std::uint64_t fuzz_seed)
{
    const WorkloadSpec *w = findWorkload(name);
    if (!w)
        fatal("unknown workload '", name, "'");
    return w->instantiate(scale, fp, fuzz_seed);
}

namespace {

std::string
formatBytes(double bytes)
{
    char buf[32];
    if (bytes >= 1024.0 * 1024.0)
        std::snprintf(buf, sizeof(buf), "%.1f MiB",
                      bytes / (1024.0 * 1024.0));
    else if (bytes >= 1024.0)
        std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024.0);
    else
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    return buf;
}

} // namespace

std::string
describeFootprint(const WorkloadSpec &w, unsigned scale, Footprint fp)
{
    if (scale == 0)
        fatal("workload '", w.name, "': invalid scale 0");
    const FootprintPlan plan = w.plan(scale, fp);

    // Largest extents first; the long tail is folded into "...".
    std::vector<std::pair<std::string, std::size_t>> sorted =
        plan.extents;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });

    std::string out = formatBytes(double(plan.totalBytes())) + " (";
    const std::size_t shown = std::min<std::size_t>(sorted.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
        if (i)
            out += ", ";
        out += sorted[i].first + " " +
               formatBytes(double(sorted[i].second) * 8.0);
    }
    if (sorted.size() > shown)
        out += ", ...";
    out += ")";
    return out;
}

std::vector<std::string>
intWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadSpec &w : allWorkloads())
        if (!w.isFp)
            names.push_back(w.name);
    return names;
}

std::vector<std::string>
fpWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadSpec &w : allWorkloads())
        if (w.isFp)
            names.push_back(w.name);
    return names;
}

} // namespace sdv
