#include "workloads/workload.hh"

#include "common/log.hh"

namespace sdv {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        {"go", false, "branchy board evaluation, irregular probes",
         buildGo},
        {"m88ksim", false, "ISA-simulator main loop over a trace",
         buildM88ksim},
        {"gcc", false, "compiler passes: pointer chasing + token scan",
         buildGcc},
        {"compress", false, "LZW hashing with random table probes",
         buildCompress},
        {"li", false, "lisp interpreter: strided cons-cell chasing",
         buildLi},
        {"ijpeg", false, "block image transforms, dense stride-1",
         buildIjpeg},
        {"perl", false, "bytecode interpreter with dispatch cascade",
         buildPerl},
        {"vortex", false, "OO database: record scans and bulk copies",
         buildVortex},
        {"swim", true, "shallow-water stencils, stride-1 doubles",
         buildSwim},
        {"applu", true, "banded solver, unrolled-by-2 (stride 2)",
         buildApplu},
        {"turb3d", true, "FFT-like passes at strides 1/2/4/8",
         buildTurb3d},
        {"fpppp", true, "huge FP basic blocks over a small workspace",
         buildFpppp},
    };
    return workloads;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

Program
buildWorkload(const std::string &name, unsigned scale)
{
    const Workload *w = findWorkload(name);
    if (!w)
        fatal("unknown workload '", name, "'");
    return w->build(scale == 0 ? 1 : scale);
}

std::vector<std::string>
intWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (!w.isFp)
            names.push_back(w.name);
    return names;
}

std::vector<std::string>
fpWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.isFp)
            names.push_back(w.name);
    return names;
}

} // namespace sdv
