/**
 * @file
 * `perl` stand-in: a bytecode interpreter — stride-1 opcode fetch, a
 * dispatch cascade with mixed-predictability branches, stride-1 string
 * scanning, random hash probes and value-stack traffic.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planPerl(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Footprint: streamed bytecode, scanned string arena and the
    // randomly probed hash. 17KB / 160KB / 900KB total.
    p.extent("bytecode", byFootprint<std::size_t>(fp, 1024, 8192, 32768));
    p.extent("strings", byFootprint<std::size_t>(fp, 512, 4096, 16384));
    p.extent("hash", byFootprint<std::size_t>(fp, 512, 8192, 65536));
    p.extent("vstack", 64);
    p.extent("frame", 32);
    p.trip("passes", scaledPasses(scale, 2, byFootprint(fp, 1u, 8u, 32u)));
    return p;
}

Program
buildPerl(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x9e71 ^ p.fuzzSeed);

    const std::size_t codeLen = p.words("bytecode");
    const std::size_t stringsLen = p.words("strings");
    const std::size_t hashLen = p.words("hash");
    const Addr bytecode = b.allocWords("bytecode", codeLen);
    const Addr strings = b.allocWords("strings", stringsLen);
    const Addr hash = b.allocWords("hash", hashLen);
    const Addr vstack = b.allocWords("vstack", 64);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, bytecode, codeLen, rng, 4);
    fillRandomWords(b, strings, stringsLen, rng, 128);
    fillRandomWords(b, hash, hashLen, rng, 600);

    emitLcgInit(b, 0x9e119e11 ^ p.fuzzSeed);
    b.loadAddr(ptr1, strings);
    b.loadAddr(ptr2, hash);
    b.loadAddr(ptr3, vstack);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);
    b.ldi(acc1, 0);

    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, bytecode);
        countedLoop(b, counter1, p.wordTrip("bytecode"), [&] {
            // Interpreter-state reloads (sp, pad pointer: stride 0).
            emitSpillReloads(b, 2, acc1);
            // Opcode fetch (stride 1, vectorizable) and operand-field
            // decode (dependent chain).
            b.ldq(scratch0, ptr0, 0);
            b.addi(ptr0, ptr0, 8);
            b.srli(scratch3, scratch0, 1);
            b.xori(scratch3, scratch3, 0x2a);

            auto op_concat = b.newLabel();
            auto op_hash = b.newLabel();
            auto op_push = b.newLabel();
            auto next = b.newLabel();

            b.bnez(scratch0, op_concat);
            // op 0: arithmetic on the accumulator (vector dataflow).
            b.slli(scratch1, scratch0, 2);
            b.add(acc0, acc0, scratch1);
            b.addi(acc0, acc0, 13);
            b.br(next);

            b.bind(op_concat);
            b.cmpeqi(scratch1, scratch0, 1);
            b.beqz(scratch1, op_hash);
            // op 1: scan four string cells (stride 1).
            b.andi(scratch2, counter1, subIndexMask(stringsLen, 4));
            b.slli(scratch2, scratch2, 3);
            b.add(scratch2, scratch2, ptr1);
            countedLoop(b, acc2, 4, [&] {
                b.ldq(scratch3, scratch2, 0);
                b.addi(scratch2, scratch2, 8);
                b.add(acc1, acc1, scratch3);
            });
            b.br(next);

            b.bind(op_hash);
            b.cmpeqi(scratch1, scratch0, 2);
            b.beqz(scratch1, op_push);
            // op 2: hash probe (random index) + biased branch.
            emitLcgNext(b, scratch2, std::uint32_t(p.indexMask("hash")));
            b.slli(scratch2, scratch2, 3);
            b.add(scratch2, scratch2, ptr2);
            b.ldq(scratch3, scratch2, 0);
            {
                auto skip = b.newLabel();
                b.cmplti(scratch1, scratch3, 480);
                b.beqz(scratch1, skip);
                b.add(acc0, acc0, scratch3);
                b.bind(skip);
            }
            b.br(next);

            b.bind(op_push);
            // op 3: push/pop the value stack (stride-0 reload).
            b.stq(acc0, ptr3, 0);
            b.ldq(scratch3, ptr3, 0);
            b.add(acc1, acc1, scratch3);
            b.bind(next);
        });
    });

    b.stq(acc0, ptr3, 8);
    b.stq(acc1, ptr3, 16);
    b.halt();
    return b.finish();
}

} // namespace sdv
