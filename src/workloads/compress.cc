/**
 * @file
 * `compress` stand-in: LZW-style compression loop — a stride-1 input
 * stream feeds a multiplicative hash whose table probes are effectively
 * random, with a poorly-biased hit/miss branch and a stride-1 output
 * writer. Figure 13 shows compress wasting the most speculative wide
 * accesses; the hash probes reproduce that behaviour.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planCompress(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // The randomly probed hash table dominates the footprint:
    // 32KB / 128KB / 1MB, flanked by the streamed input and output.
    p.extent("input", byFootprint<std::size_t>(fp, 2048, 4096, 16384));
    p.extent("htab", byFootprint<std::size_t>(fp, 4096, 16384, 131072));
    p.extent("output", byFootprint<std::size_t>(fp, 2048, 4096, 16384));
    p.extent("frame", 32);
    p.trip("passes", scaledPasses(scale, 1, byFootprint(fp, 1u, 2u, 8u)));
    return p;
}

Program
buildCompress(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0xc0457 ^ p.fuzzSeed);

    const std::size_t inputLen = p.words("input");
    const std::size_t htabLen = p.words("htab");
    const Addr input = b.allocWords("input", inputLen);
    const Addr htab = b.allocWords("htab", htabLen);
    const Addr output = b.allocWords("output", inputLen);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, input, inputLen, rng, 256);
    fillRandomWords(b, htab, htabLen, rng, 2);

    b.loadAddr(ptr1, htab);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);   // running code
    b.ldi(acc1, 0);   // output count

    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, input);
        b.loadAddr(ptr2, output);
        countedLoop(b, counter1, p.wordTrip("input"), [&] {
            // Compressor-state reloads (bit budget, free code: stride 0).
            emitSpillReloads(b, 2, acc1);
            // Next input symbol (stride 1, vectorizable).
            b.ldq(scratch0, ptr0, 0);
            b.addi(ptr0, ptr0, 8);

            // Symbol preprocessing (vectorizable chain off the load).
            b.slli(scratch3, scratch0, 3);
            b.xori(scratch3, scratch3, 0xa5);
            b.sub(scratch3, scratch3, scratch0);
            b.andi(scratch3, scratch3, 0xfff);

            // code = code << 4 ^ symbol (reduction; re-vectorizes).
            b.slli(scratch1, acc0, 4);
            b.xor_(acc0, scratch1, scratch3);

            // Multiplicative hash -> random table probe.
            b.loadImm64(scratch2, 2654435761ULL);
            b.mul(scratch1, acc0, scratch2);
            b.srli(scratch1, scratch1, 20);
            b.andi(scratch1, scratch1, p.indexMask("htab"));
            b.slli(scratch1, scratch1, 3);
            b.add(ptr3, ptr1, scratch1);
            b.ldq(scratch2, ptr3, 0);

            // Hit/miss branch: close to 50/50, hard to predict.
            auto hit = b.newLabel();
            auto cont = b.newLabel();
            b.bnez(scratch2, hit);
            // miss: install entry, emit a literal (stride-1 store)
            b.stq(scratch0, ptr3, 0);
            b.stq(scratch0, ptr2, 0);
            b.addi(ptr2, ptr2, 8);
            b.addi(acc1, acc1, 1);
            b.br(cont);
            b.bind(hit);
            // hit: extend the phrase
            b.add(acc0, acc0, scratch2);
            b.bind(cont);
        });
    });

    b.loadAddr(ptr3, output);
    b.stq(acc0, ptr3, std::int32_t(8 * (inputLen - 2)));
    b.stq(acc1, ptr3, std::int32_t(8 * (inputLen - 1)));
    b.halt();
    return b.finish();
}

} // namespace sdv
