/**
 * @file
 * Adversarial timing-channel pair (PR 6): a victim whose speculative
 * vector-register lifetimes depend on secret data, and an attacker that
 * interleaves probe phases with the victim pattern to observe them.
 *
 * The channel under study is the *speculative vector state* the SDV
 * engine keeps alive across scheduling boundaries: a chain spawned on a
 * secret-dependent access pattern holds its elements live for a
 * secret-dependent number of cycles, and any state still transient
 * (computed but never validated) when a --quiesce-interval boundary
 * drops it is exactly what a co-resident attacker could have probed.
 * Architectural results are oracle-driven and never depend on the
 * speculation, so the channel is visible only in the transient-exposure
 * statistics: CoreStats quiesceLiveVregs/quiesceTransientElems at each
 * boundary and the VecRegFateStats lifetime histogram, reported
 * per-config in the sweep JSON ("attack" plan).
 *
 * Neither kernel is part of allWorkloads(): the 12-workload suite is
 * the fixed baseline surface of every figure. They register through
 * attackWorkloads() / findWorkload() and run via the "attack" plan
 * (excluded from --plan all) or --workload tc_victim / tc_attack.
 */

#include "workloads/workload.hh"

#include <algorithm>

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planTcVictim(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // The secret array drives the chain lengths; the streamed buffer
    // is what the secret-dependent chains load from.
    p.extent("secret", byFootprint<std::size_t>(fp, 512, 1024, 4096));
    p.extent("buffer", byFootprint<std::size_t>(fp, 2048, 16384, 131072));
    p.extent("frame", 16);
    p.trip("segs", byFootprint(fp, 256, 512, 1024));
    p.trip("passes", scaledPasses(scale, 4, byFootprint(fp, 1u, 2u, 4u)));
    return p;
}

/**
 * Emit one victim segment: read a secret word, then stream stride-1
 * loads from a secret-selected offset for a secret-selected length
 * (16..79 words). The stream vectorizes; how long each chain lives —
 * and how many elements are still transient when it dies — depends on
 * the secret bits.
 *
 * In: ptr0 = &secret[seg] (advanced by 8 here). Clobbers scratch0-3,
 * ptr2; accumulates into acc0.
 */
static void
emitVictimSegment(ProgramBuilder &b, Addr buffer, std::int32_t off_mask)
{
    b.ldq(scratch0, ptr0, 0); // the secret word
    b.addi(ptr0, ptr0, 8);

    // Secret-dependent stream start: buffer + (secret & mask) words.
    b.andi(scratch1, scratch0, off_mask);
    b.slli(scratch1, scratch1, 3);
    b.loadAddr(ptr2, buffer);
    b.add(ptr2, ptr2, scratch1);

    // Secret-dependent stream length: 16 + (secret >> 8) % 64.
    b.srli(scratch2, scratch0, 8);
    b.andi(scratch2, scratch2, 63);
    b.addi(scratch2, scratch2, 16);

    const auto loop = b.here();
    b.ldq(scratch3, ptr2, 0); // stride-1: spawns a vector chain
    b.addi(ptr2, ptr2, 8);
    b.add(acc0, acc0, scratch3);
    b.addi(scratch2, scratch2, -1);
    b.bnez(scratch2, loop);
}

Program
buildTcVictim(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x7c7111 ^ p.fuzzSeed);

    const std::size_t secretLen = p.words("secret");
    const std::size_t bufferLen = p.words("buffer");
    const Addr secret = b.allocWords("secret", secretLen);
    const Addr buffer = b.allocWords("buffer", bufferLen);
    const Addr frame = b.allocWords("frame", 16);
    fillRandomWords(b, secret, secretLen, rng, 1ull << 32);
    fillRandomWords(b, buffer, bufferLen, rng, 4096);

    // The stream must fit: start offset <= buffer - 80 words.
    const std::int32_t off_mask =
        subIndexMask(bufferLen, 2); // start in the lower half

    b.ldi(acc0, 0);
    const std::int32_t seg_mask = p.indexMask("secret");
    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, secret);
        const std::int32_t segs =
            std::min(p.count("segs"), seg_mask + 1);
        countedLoop(b, counter1, segs, [&] {
            emitVictimSegment(b, buffer, off_mask);
        });
    });

    b.loadAddr(ptr3, frame);
    b.stq(acc0, ptr3, 0);
    b.halt();
    return b.finish();
}

FootprintPlan
planTcAttack(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    p.extent("secret", byFootprint<std::size_t>(fp, 512, 1024, 4096));
    p.extent("buffer", byFootprint<std::size_t>(fp, 2048, 16384, 131072));
    // The attacker's probe array: randomly probed, evicting/observing
    // the lines the victim's speculative element loads touch.
    p.extent("probe", byFootprint<std::size_t>(fp, 2048, 16384, 131072));
    p.extent("frame", 16);
    p.trip("segs", byFootprint(fp, 128, 256, 512));
    p.trip("probes", 64);
    p.trip("passes", scaledPasses(scale, 4, byFootprint(fp, 1u, 2u, 4u)));
    return p;
}

Program
buildTcAttack(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x477ac ^ p.fuzzSeed);

    const std::size_t secretLen = p.words("secret");
    const std::size_t bufferLen = p.words("buffer");
    const std::size_t probeLen = p.words("probe");
    const Addr secret = b.allocWords("secret", secretLen);
    const Addr buffer = b.allocWords("buffer", bufferLen);
    const Addr probe = b.allocWords("probe", probeLen);
    const Addr frame = b.allocWords("frame", 16);
    fillRandomWords(b, secret, secretLen, rng, 1ull << 32);
    fillRandomWords(b, buffer, bufferLen, rng, 4096);
    fillRandomWords(b, probe, probeLen, rng, 4096);

    const std::int32_t off_mask = subIndexMask(bufferLen, 2);
    const std::int32_t probe_mask = p.indexMask("probe");

    b.ldi(acc0, 0); // victim accumulator
    b.ldi(acc1, 0); // attacker "measurement" accumulator
    emitLcgInit(b, 0xa77acc ^ p.fuzzSeed);
    b.loadAddr(ptr1, probe);

    const std::int32_t seg_mask = p.indexMask("secret");
    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, secret);
        const std::int32_t segs =
            std::min(p.count("segs"), seg_mask + 1);
        countedLoop(b, counter1, segs, [&] {
            // Victim phase: a secret-dependent speculative chain. With
            // --quiesce-interval active, some of these segments land a
            // boundary mid-chain, dropping (and exposing) transient
            // elements at a secret-dependent rate.
            emitVictimSegment(b, buffer, off_mask);

            // Attacker phase: probe pseudo-random lines of the probe
            // array. The values are secret-independent; the *latency*
            // each probe sees depends on what the victim's speculative
            // element loads displaced — the cache-side channel. A
            // stride-1 tail re-primes the vector engine so attacker
            // chains are alive at the next boundary too.
            countedLoop(b, spillTmp, p.count("probes"), [&] {
                emitLcgNext(b, scratch1, probe_mask);
                b.slli(scratch1, scratch1, 3);
                b.add(ptr3, ptr1, scratch1);
                b.ldq(scratch2, ptr3, 0);
                b.add(acc1, acc1, scratch2);
            });
            b.loadAddr(ptr3, probe);
            countedLoop(b, spillTmp, 32, [&] {
                b.ldq(scratch2, ptr3, 0);
                b.addi(ptr3, ptr3, 8);
                b.add(acc1, acc1, scratch2);
            });
        });
    });

    b.loadAddr(ptr3, frame);
    b.stq(acc0, ptr3, 0);
    b.stq(acc1, ptr3, 8);
    b.halt();
    return b.finish();
}

} // namespace sdv
