/**
 * @file
 * `vortex` stand-in: an object-oriented database — record traversals
 * over an array of two-word objects (constant stride 2), stride-1 bulk
 * copies between stores, index-directed random probes and well
 * predicted validation branches.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planVortex(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Footprint: the two-word record store plus its mirror,
    // 26KB / 200KB / 1.6MB. The grown modes also widen the scan and
    // bulk-copy windows (the seed masks cover a hot subset only) so
    // the streamed traffic spreads over the grown store.
    const std::size_t nrec = byFootprint<std::size_t>(fp, 1024, 8192, 65536);
    p.extent("records", nrec * 2);
    p.extent("mirror", nrec);
    p.extent("index", byFootprint<std::size_t>(fp, 256, 1024, 4096));
    p.extent("frame", 32);
    p.trip("nrec", std::int64_t(nrec));
    p.trip("iters", std::int64_t(scale) * 190);
    p.trip("scanmask", subIndexMask(nrec, fp == Footprint::Base ? 32 : 8));
    p.trip("copymask", subIndexMask(nrec, fp == Footprint::Base ? 16 : 4));
    return p;
}

Program
buildVortex(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x04237e ^ p.fuzzSeed);

    const std::size_t nrec = std::size_t(p.count("nrec"));
    const std::size_t indexLen = p.words("index");
    const Addr records = b.allocWords("records", nrec * 2); // key,value
    const Addr mirror = b.allocWords("mirror", nrec);
    const Addr index = b.allocWords("index", indexLen);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, records, nrec * 2, rng, 10000);
    fillWords(b, index, indexLen,
              [&](size_t) { return rng.below(nrec); });

    emitLcgInit(b, 0x4237e ^ p.fuzzSeed);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);
    b.ldi(acc1, 0);

    countedLoop(b, counter0, p.count("iters"), [&] {
        // Transaction-state reloads (db handle, cursor: stride 0).
        emitSpillReloads(b, 6, acc1);
        // Key scan over 10 records (stride 2: the struct size).
        b.loadAddr(ptr0, records);
        b.andi(scratch0, counter0, p.count("scanmask"));
        b.slli(scratch0, scratch0, 4);
        b.add(ptr0, ptr0, scratch0);
        countedLoop(b, counter1, 10, [&] {
            b.ldq(scratch1, ptr0, 0); // key (stride 2)
            b.addi(ptr0, ptr0, 16);
            // Key decoding (vectorizable chain).
            b.srli(scratch3, scratch1, 2);
            b.xori(scratch3, scratch3, 0x111);
            b.andi(scratch3, scratch3, 0x3fff);
            auto skip = b.newLabel();
            b.cmplti(scratch2, scratch1, 9000);
            b.beqz(scratch2, skip); // ~90% taken: validation passes
            b.add(acc0, acc0, scratch3);
            b.bind(skip);
        });

        // Bulk copy of 16 values into the mirror store (stride 1 load
        // and store).
        b.loadAddr(ptr1, records);
        b.loadAddr(ptr2, mirror);
        b.andi(scratch0, counter0, p.count("copymask"));
        b.slli(scratch1, scratch0, 3);
        b.add(ptr2, ptr2, scratch1);
        b.slli(scratch1, scratch0, 4);
        b.add(ptr1, ptr1, scratch1);
        countedLoop(b, counter1, 8, [&] {
            b.ldq(scratch2, ptr1, 8);
            b.addi(ptr1, ptr1, 8);
            b.addi(scratch2, scratch2, 1);
            b.stq(scratch2, ptr2, 0);
            b.addi(ptr2, ptr2, 8);
        });

        // Index-directed probe (random record).
        emitLcgNext(b, scratch0, std::uint32_t(p.indexMask("index")));
        b.slli(scratch0, scratch0, 3);
        b.loadAddr(ptr3, index);
        b.add(ptr3, ptr3, scratch0);
        b.ldq(scratch1, ptr3, 0);
        b.slli(scratch1, scratch1, 4);
        b.loadAddr(ptr3, records);
        b.add(ptr3, ptr3, scratch1);
        b.ldq(scratch2, ptr3, 8);
        b.add(acc1, acc1, scratch2);
    });

    b.loadAddr(ptr3, mirror);
    b.stq(acc0, ptr3, 8 * 1000);
    b.stq(acc1, ptr3, 8 * 1001);
    b.halt();
    return b.finish();
}

} // namespace sdv
