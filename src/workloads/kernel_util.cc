#include "workloads/kernel_util.hh"

#include <numeric>
#include <vector>

#include "common/log.hh"

namespace sdv {
namespace workloads {

std::int32_t
scaledPasses(unsigned scale, unsigned base_passes, unsigned growth)
{
    sdv_assert(base_passes >= 1 && growth >= 1,
               "pass scaling needs positive factors");
    const std::uint64_t total =
        std::uint64_t(base_passes) * scale / growth;
    return std::int32_t(total < 1 ? 1 : total);
}

std::int32_t
subIndexMask(std::size_t words, std::size_t divisor)
{
    sdv_assert(divisor >= 1 && words % divisor == 0,
               "window divisor must divide the extent");
    const std::size_t w = words / divisor;
    sdv_assert(w >= 2 && (w & (w - 1)) == 0,
               "window size must be a power of two for masking");
    sdv_assert(w - 1 <= 0x7fffffffu, "mask exceeds immediate range");
    return std::int32_t(w - 1);
}

void
fillWords(ProgramBuilder &b, Addr base, size_t count,
          const std::function<std::uint64_t(size_t)> &f)
{
    for (size_t i = 0; i < count; ++i)
        b.pokeWord(base + Addr(i) * 8, f(i));
}

void
fillRandomWords(ProgramBuilder &b, Addr base, size_t count, Random &rng,
                std::uint64_t bound)
{
    for (size_t i = 0; i < count; ++i)
        b.pokeWord(base + Addr(i) * 8, rng.below(bound));
}

void
fillDoubles(ProgramBuilder &b, Addr base, size_t count,
            const std::function<double(size_t)> &f)
{
    for (size_t i = 0; i < count; ++i)
        b.pokeDouble(base + Addr(i) * 8, f(i));
}

Addr
buildList(ProgramBuilder &b, const std::string &name, size_t nodes,
          size_t node_words, bool shuffled, Random &rng)
{
    sdv_assert(node_words >= 1, "node needs at least the next pointer");
    const Addr pool = b.allocWords(name, nodes * node_words);

    // Link order: node order[i] -> node order[i+1].
    std::vector<size_t> order(nodes);
    std::iota(order.begin(), order.end(), 0);
    if (shuffled) {
        for (size_t i = nodes - 1; i > 0; --i) {
            const size_t j = size_t(rng.below(i + 1));
            std::swap(order[i], order[j]);
        }
    }

    auto node_addr = [&](size_t idx) {
        return pool + Addr(idx) * node_words * 8;
    };
    for (size_t i = 0; i < nodes; ++i) {
        const size_t cur = order[i];
        const size_t nxt = order[(i + 1) % nodes];
        b.pokeWord(node_addr(cur), node_addr(nxt));
        for (size_t w = 1; w < node_words; ++w)
            b.pokeWord(node_addr(cur) + Addr(w) * 8, rng.below(1000));
    }
    return node_addr(order[0]);
}

void
countedLoop(ProgramBuilder &b, RegId ctr, std::int32_t iters,
            const std::function<void()> &body)
{
    sdv_assert(iters >= 1, "loop needs at least one iteration");
    b.ldi(ctr, iters);
    const auto loop = b.here();
    body();
    b.addi(ctr, ctr, -1);
    b.bnez(ctr, loop);
}

void
emitLcgInit(ProgramBuilder &b, std::uint64_t seed)
{
    b.loadImm64(lcgState, seed);
    b.loadImm64(lcgMult, 6364136223846793005ULL);
}

void
emitLcgNext(ProgramBuilder &b, RegId dst, std::uint32_t mask)
{
    b.mul(lcgState, lcgState, lcgMult);
    b.addi(lcgState, lcgState, 12345);
    b.srli(dst, lcgState, 24);
    b.andi(dst, dst, std::int32_t(mask));
}

void
emitSpillReloads(ProgramBuilder &b, unsigned slots, RegId acc)
{
    for (unsigned k = 0; k < slots; ++k) {
        b.ldq(spillTmp, framePtr, std::int32_t(8 * k));
        b.xori(spillTmp, spillTmp, std::int32_t(k + 1));
        b.slli(spillTmp, spillTmp, 1);
        b.andi(spillTmp, spillTmp, 0x7fff);
        if (k % 2 == 0) {
            // Spill back to a slot that is never reloaded: store
            // traffic without a coherence conflict.
            b.stq(spillTmp, framePtr, std::int32_t(8 * (k + 16)));
        } else {
            b.add(acc, acc, spillTmp);
        }
    }
}

} // namespace workloads
} // namespace sdv
