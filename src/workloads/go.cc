/**
 * @file
 * `go` stand-in: branchy board-evaluation code with data-dependent
 * control, random board probes (irregular strides), short regular row
 * scans, a frequently reloaded global evaluation score (stride 0) and
 * a helper routine. SPEC's go is the least predictable SpecInt95
 * member with the lowest vectorizable fraction (~30% in Figure 3).
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planGo(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // The probed board is the footprint: 8KB at the seed size, 128KB
    // (L2-resident) and 1MB (memory-resident) beyond; the random
    // probes spread over the whole board in every mode.
    p.extent("board", byFootprint<std::size_t>(fp, 1024, 16384, 131072));
    p.extent("weights", 64);
    p.extent("globals", 8);
    p.extent("frame", 32);
    p.trip("iters", std::int64_t(scale) * 1400);
    return p;
}

Program
buildGo(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x60601 ^ p.fuzzSeed);

    const std::size_t boardWords = p.words("board");
    const Addr board = b.allocWords("board", boardWords);
    const Addr weights = b.allocWords("weights", 64);
    const Addr globals = b.allocWords("globals", 8);
    const Addr frame = b.allocWords("frame", 32);
    // ~70% of board positions are "interesting" (positive): the
    // evaluation branch is biased but data dependent.
    fillWords(b, board, boardWords, [&](size_t) {
        return rng.chancePercent(70) ? rng.below(50) + 1
                                     : std::uint64_t(-std::int64_t(
                                           rng.below(50) + 1));
    });
    fillRandomWords(b, weights, 64, rng, 97);
    fillWords(b, globals, 8, [](size_t) { return 1; });

    // Helper: score = weights[idx & 63] * 3 + score (called via jal).
    auto helper = b.newLabel();
    auto start = b.newLabel();
    b.br(start);
    b.bind(helper);
    b.andi(scratch2, scratch0, 63);
    b.slli(scratch2, scratch2, 3);
    b.loadAddr(ptr3, weights);
    b.add(ptr3, ptr3, scratch2);
    b.ldq(scratch2, ptr3, 0);
    b.slli(scratch3, scratch2, 1);
    b.add(scratch2, scratch2, scratch3);
    b.add(acc1, acc1, scratch2);
    b.jr(31);

    b.bind(start);
    emitLcgInit(b, 0xdecafbad ^ p.fuzzSeed);
    b.loadAddr(ptr0, board);
    b.loadAddr(ptr2, globals);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);
    b.ldi(acc1, 0);

    countedLoop(b, counter0, p.count("iters"), [&] {
        // Unoptimized-code locals reloads (stride 0).
        emitSpillReloads(b, 5, acc2);
        // Board probe: mostly sequential with occasional random jumps
        // (move generators sweep neighbourhoods). r23 is the cursor.
        {
            const RegId cursor = 23;
            auto jump = b.newLabel();
            auto probed = b.newLabel();
            b.andi(scratch0, counter0, 3);
            b.beqz(scratch0, jump);
            b.addi(cursor, cursor, 8); // advance the sweep cursor
            b.br(probed);
            b.bind(jump);
            emitLcgNext(b, scratch0, std::uint32_t(p.indexMask("board")));
            b.slli(cursor, scratch0, 3);
            b.bind(probed);
            b.andi(scratch1, cursor, p.byteMask("board"));
        }
        b.add(ptr1, ptr0, scratch1);
        b.ldq(scratch1, ptr1, 0);

        // Data-dependent evaluation branch (~70% taken).
        auto negative = b.newLabel();
        auto joined = b.newLabel();
        b.bltz(scratch1, negative);
        // Positive position: reload the global score (stride 0),
        // account, and scan a short row (stride-1 loads).
        b.ldq(scratch2, ptr2, 0);
        b.add(acc0, acc0, scratch2);
        b.mov(ptr3, ptr1);
        countedLoop(b, counter1, 3, [&] {
            b.ldq(scratch3, ptr3, 0);
            b.slli(scratch2, scratch3, 2);
            b.sub(scratch2, scratch2, scratch3);
            b.add(acc0, acc0, scratch2);
            b.addi(ptr3, ptr3, 8);
        });
        b.br(joined);
        b.bind(negative);
        // Defensive path: call the helper and update the global
        // (occasional store near the stride-0 load's range).
        b.jal(helper);
        b.andi(scratch3, counter0, 63);
        auto no_store = b.newLabel();
        b.bnez(scratch3, no_store);
        b.stq(acc1, ptr2, 0);
        b.bind(no_store);
        b.bind(joined);
        b.sub(acc2, acc0, acc1);
    });

    // Publish results so verification has visible state.
    b.stq(acc0, ptr2, 8);
    b.stq(acc1, ptr2, 16);
    b.stq(acc2, ptr2, 24);
    b.halt();
    return b.finish();
}

} // namespace sdv
