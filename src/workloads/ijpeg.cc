/**
 * @file
 * `ijpeg` stand-in: block-based image transforms. Dense stride-1 pixel
 * loops with multiply-accumulate dataflow and highly predictable
 * control — the most vectorizable SpecInt95 member (~70% in Figure 3).
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planIjpeg(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // dim x dim image plus the same-size output plane: 64KB at the
    // seed 64x64, 144KB at 96x96 (L2), 1MB at 256x256 (mem). The seed
    // filter touches 12 rows per pass; the grown modes filter the
    // whole plane so the streamed footprint matches the allocation.
    const std::size_t dim = byFootprint<std::size_t>(fp, 64, 96, 256);
    p.extent("image", dim * dim);
    p.extent("out", dim * dim);
    p.extent("coeff", 8);
    p.extent("frame", 32);
    p.trip("dim", std::int64_t(dim));
    p.trip("rows", byFootprint<std::int64_t>(fp, 12, std::int64_t(dim),
                                             std::int64_t(dim)));
    // Per-pass pixels: 768 seed, 9216 L2 (12x), 65536 mem (85x).
    p.trip("passes", scaledPasses(scale, 24, byFootprint(fp, 1u, 12u, 85u)));
    return p;
}

Program
buildIjpeg(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x17e6 ^ p.fuzzSeed);

    const std::int32_t dim = p.count("dim");
    const std::size_t planeWords = p.words("image");
    const Addr image = b.allocWords("image", planeWords);
    const Addr coeff = b.allocWords("coeff", 8);
    const Addr out = b.allocWords("out", planeWords);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, image, planeWords, rng, 256);
    fillWords(b, coeff, 8, [](size_t i) { return 2 * i + 1; });

    b.loadAddr(ptr2, coeff);
    b.loadAddr(framePtr, frame);

    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, image);
        b.loadAddr(ptr1, out);
        // One filtering pass over the planned number of image rows.
        countedLoop(b, counter1, p.count("rows"), [&] {
            b.ldq(scratch3, ptr2, 0); // coefficient reload (stride 0)
            // Row body: dim pixels, stride 1 load, a deep vectorizable
            // MAC chain, stride 1 store.
            b.ldi(acc2, dim);
            const auto row = b.here();
            b.ldq(scratch0, ptr0, 0);
            b.addi(ptr0, ptr0, 8);
            b.mul(scratch1, scratch0, scratch3);
            b.srai(scratch1, scratch1, 2);
            b.add(scratch1, scratch1, scratch0);
            b.xori(scratch2, scratch1, 0x3c);
            b.slli(scratch2, scratch2, 1);
            b.add(scratch1, scratch1, scratch2);
            b.andi(scratch1, scratch1, 0xffff);
            b.stq(scratch1, ptr1, 0);
            b.addi(ptr1, ptr1, 8);
            b.addi(acc2, acc2, -1);
            b.bnez(acc2, row);
        });
    });

    // Checksum pass (stride 1) and publish.
    b.loadAddr(ptr1, out);
    b.ldi(acc0, 0);
    countedLoop(b, counter0, dim * 4, [&] {
        b.ldq(scratch0, ptr1, 0);
        b.addi(ptr1, ptr1, 8);
        b.add(acc0, acc0, scratch0);
    });
    b.loadAddr(ptr3, image);
    b.stq(acc0, ptr3, 0);
    b.halt();
    return b.finish();
}

} // namespace sdv
