/**
 * @file
 * `ijpeg` stand-in: block-based image transforms. Dense stride-1 pixel
 * loops with multiply-accumulate dataflow and highly predictable
 * control — the most vectorizable SpecInt95 member (~70% in Figure 3).
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

Program
buildIjpeg(unsigned scale)
{
    ProgramBuilder b;
    Random rng(0x17e6);

    const unsigned dim = 64; // 64x64 image
    const Addr image = b.allocWords("image", dim * dim);
    const Addr coeff = b.allocWords("coeff", 8);
    const Addr out = b.allocWords("out", dim * dim);
    const Addr frame = b.allocWords("frame", 32);
    fillRandomWords(b, image, dim * dim, rng, 256);
    fillWords(b, coeff, 8, [](size_t i) { return 2 * i + 1; });

    b.loadAddr(ptr2, coeff);
    b.loadAddr(framePtr, frame);

    countedLoop(b, counter0, std::int32_t(scale * 24), [&] {
        b.loadAddr(ptr0, image);
        b.loadAddr(ptr1, out);
        // One filtering pass over 12 rows of the image.
        countedLoop(b, counter1, 12, [&] {
            b.ldq(scratch3, ptr2, 0); // coefficient reload (stride 0)
            // Row body: 64 pixels, stride 1 load, a deep vectorizable
            // MAC chain, stride 1 store.
            b.ldi(acc2, dim);
            const auto row = b.here();
            b.ldq(scratch0, ptr0, 0);
            b.addi(ptr0, ptr0, 8);
            b.mul(scratch1, scratch0, scratch3);
            b.srai(scratch1, scratch1, 2);
            b.add(scratch1, scratch1, scratch0);
            b.xori(scratch2, scratch1, 0x3c);
            b.slli(scratch2, scratch2, 1);
            b.add(scratch1, scratch1, scratch2);
            b.andi(scratch1, scratch1, 0xffff);
            b.stq(scratch1, ptr1, 0);
            b.addi(ptr1, ptr1, 8);
            b.addi(acc2, acc2, -1);
            b.bnez(acc2, row);
        });
    });

    // Checksum pass (stride 1) and publish.
    b.loadAddr(ptr1, out);
    b.ldi(acc0, 0);
    countedLoop(b, counter0, std::int32_t(dim * 4), [&] {
        b.ldq(scratch0, ptr1, 0);
        b.addi(ptr1, ptr1, 8);
        b.add(acc0, acc0, scratch0);
    });
    b.loadAddr(ptr3, image);
    b.stq(acc0, ptr3, 0);
    b.halt();
    return b.finish();
}

} // namespace sdv
