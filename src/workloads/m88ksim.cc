/**
 * @file
 * `m88ksim` stand-in: an instruction-set-simulator main loop. Fetches
 * encoded "instructions" from a trace with stride 1, decodes them with
 * shifts/masks (vectorizable dataflow off the trace load), dispatches
 * through a compare cascade and touches a simulated register file and
 * statistics counters at data-dependent indices. One of the more
 * vectorizable SpecInt95 members (~55% in Figure 3).
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planM88ksim(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // The streamed trace is the footprint: 16KB / 128KB / 1MB. Each
    // pass re-reads it from the start, so every L2/mem pass misses L1.
    p.extent("trace", byFootprint<std::size_t>(fp, 2048, 16384, 131072));
    p.extent("regfile", 32);
    p.extent("stats", 8);
    p.extent("frame", 32);
    p.trip("passes", scaledPasses(scale, 2, byFootprint(fp, 1u, 8u, 64u)));
    return p;
}

Program
buildM88ksim(const FootprintPlan &p)
{
    ProgramBuilder b;
    Random rng(0x88000 ^ p.fuzzSeed);

    const std::size_t traceLen = p.words("trace");
    const Addr trace = b.allocWords("trace", traceLen);
    const Addr regfile = b.allocWords("regfile", 32);
    const Addr stats = b.allocWords("stats", 8);
    const Addr frame = b.allocWords("frame", 32);
    // Encoded instruction: op in bits 0..1 (4 cases), rs 2..6, rt 7..11.
    fillWords(b, trace, traceLen,
              [&](size_t) { return rng.below(1u << 12); });
    fillRandomWords(b, regfile, 32, rng, 1000);

    b.loadAddr(ptr0, trace);
    b.loadAddr(ptr1, regfile);
    b.loadAddr(ptr2, stats);
    b.loadAddr(framePtr, frame);
    b.ldi(acc0, 0);

    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, trace);
        countedLoop(b, counter1, p.wordTrip("trace"), [&] {
            // Simulator-state reloads (PC, cycle count: stride 0).
            emitSpillReloads(b, 2, acc0);
            // Fetch (stride 1) and decode: the field extractions are
            // dependent on the vectorized trace load.
            b.ldq(scratch0, ptr0, 0);
            b.addi(ptr0, ptr0, 8);
            b.andi(scratch1, scratch0, 3);        // op
            b.srli(scratch2, scratch0, 2);
            b.andi(scratch2, scratch2, 31);       // rs
            b.srli(scratch3, scratch0, 7);
            b.andi(scratch3, scratch3, 31);       // rt

            // Dispatch cascade (data dependent, moderately biased).
            auto case1 = b.newLabel();
            auto case2 = b.newLabel();
            auto done = b.newLabel();
            b.bnez(scratch1, case1);
            // case 0: ALU - rf[rt] = rf[rs] + op
            b.slli(scratch2, scratch2, 3);
            b.add(ptr3, ptr1, scratch2);
            b.ldq(scratch2, ptr3, 0);
            b.add(scratch2, scratch2, scratch1);
            b.slli(scratch3, scratch3, 3);
            b.add(ptr3, ptr1, scratch3);
            b.stq(scratch2, ptr3, 0);
            b.br(done);
            b.bind(case1);
            b.cmpeqi(scratch2, scratch1, 1);
            b.beqz(scratch2, case2);
            // case 1: accumulate decoded fields (pure vector dataflow)
            b.add(acc0, acc0, scratch3);
            b.add(acc0, acc0, scratch1);
            b.br(done);
            b.bind(case2);
            // cases 2/3: statistics bump at a data-dependent index
            b.andi(scratch2, scratch0, 7);
            b.slli(scratch2, scratch2, 3);
            b.add(ptr3, ptr2, scratch2);
            b.ldq(scratch3, ptr3, 0);
            b.addi(scratch3, scratch3, 1);
            b.stq(scratch3, ptr3, 0);
            b.bind(done);
        });
    });

    b.stq(acc0, ptr2, 56);
    b.halt();
    return b.finish();
}

} // namespace sdv
