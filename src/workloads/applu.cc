/**
 * @file
 * `applu` stand-in: a banded SSOR-style solver sweep. The inner loop
 * is unrolled by two (the compiler effect Section 2 describes), so the
 * static loads stride by 2 elements; an occasional divide adds long
 * latency chains.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planApplu(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Three banded arrays of n doubles: 37KB / 148KB / 1.2MB.
    const std::size_t n = byFootprint<std::size_t>(fp, 1536, 6144, 49152);
    p.extent("a", n + 16);
    p.extent("rhs", n + 16);
    p.extent("x", n + 16);
    p.extent("pivots", 4);
    p.trip("n", std::int64_t(n));
    p.trip("passes", scaledPasses(scale, 12, byFootprint(fp, 1u, 4u, 32u)));
    return p;
}

Program
buildApplu(const FootprintPlan &p)
{
    ProgramBuilder b;

    const std::size_t n = std::size_t(p.count("n"));
    const Addr a = b.allocWords("a", n + 16);
    const Addr rhs = b.allocWords("rhs", n + 16);
    const Addr x = b.allocWords("x", n + 16);
    const Addr pivots = b.allocWords("pivots", 4);
    const double fz = fuzzOffset(p.fuzzSeed);
    fillDoubles(b, a, n + 16,
                [=](size_t i) { return 1.0 + fz + 0.01 * (i % 97); });
    fillDoubles(b, rhs, n + 16,
                [=](size_t i) { return 2.0 + fz - 0.002 * (i % 53); });
    fillDoubles(b, pivots, 4,
                [=](size_t i) { return 0.9 + fz + 0.02 * i; });

    const RegId fa0 = 33, fa1 = 34, fr0 = 35, fr1 = 36, fx0 = 37,
                fx1 = 38, facc = 39, fden = 40, fpiv = 41;

    b.loadAddr(ptr3, pivots);
    b.ldi(scratch0, 0);
    b.cvtif(facc, scratch0);

    countedLoop(b, counter0, p.count("passes"), [&] {
        b.loadAddr(ptr0, a);
        b.loadAddr(ptr1, rhs);
        b.loadAddr(ptr2, x);
        // Unrolled-by-2 band sweep: every static access strides by 2
        // elements.
        b.ldi(acc2, 0); // element index
        countedLoop(b, counter1, std::int32_t(n / 2), [&] {
            // Explicit banded-index arithmetic (scalar overhead).
            b.slli(scratch0, acc2, 4);
            b.add(scratch2, ptr0, scratch0); // &a[2j]
            b.add(scratch3, ptr1, scratch0); // &rhs[2j]
            // Spilled pivot reloads (stride 0).
            b.fld(fpiv, ptr3, 0);
            b.fld(fa0, scratch2, 0);
            b.fld(fa1, scratch2, 8);
            b.fld(fr0, scratch3, 0);
            b.fld(fr1, scratch3, 8);
            b.fmul(fx0, fa0, fr0);
            b.fmul(fx1, fa1, fr1);
            b.fadd(fx0, fx0, fx1);
            b.fmul(fx0, fx0, fpiv);
            b.fst(fx0, ptr2, 0);
            b.fadd(facc, facc, fx0);
            b.addi(acc2, acc2, 1);
            b.addi(ptr2, ptr2, 16);
            // A divide every 32nd pair: long-latency FP chain.
            b.andi(scratch1, counter1, 31);
            auto no_div = b.newLabel();
            b.bnez(scratch1, no_div);
            b.fadd(fden, fa0, fa1);
            b.fdiv(facc, facc, fden);
            b.bind(no_div);
        });
    });

    b.loadAddr(ptr2, x);
    b.fst(facc, ptr2, std::int32_t(8 * (n + 8)));
    b.halt();
    return b.finish();
}

} // namespace sdv
