/**
 * @file
 * `swim` stand-in: shallow-water-equation stencils — dense stride-1
 * double loads from three grids, multiply-add chains, stride-1 stores
 * and spill-style stride-0 coefficient reloads. The most vectorizable
 * FP member (~70% in Figure 3) with near-perfect branch prediction.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planSwim(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Three streamed double grids of n elements: 50KB / 192KB / 1.5MB.
    const std::size_t n = byFootprint<std::size_t>(fp, 2048, 8192, 65536);
    p.extent("u", n + 8);
    p.extent("v", n + 72);
    p.extent("p", n + 8);
    p.extent("consts", 4);
    p.trip("n", std::int64_t(n));
    p.trip("passes", scaledPasses(scale, 5, byFootprint(fp, 1u, 4u, 32u)));
    return p;
}

Program
buildSwim(const FootprintPlan &plan)
{
    ProgramBuilder b;

    const std::size_t n = std::size_t(plan.count("n"));
    const Addr u = b.allocWords("u", n + 8);
    const Addr v = b.allocWords("v", n + 72);
    const Addr p = b.allocWords("p", n + 8);
    const Addr consts = b.allocWords("consts", 4);
    const double fz = fuzzOffset(plan.fuzzSeed);
    fillDoubles(b, u, n + 8,
                [=](size_t i) { return 0.25 + fz + 0.001 * i; });
    fillDoubles(b, v, n + 72,
                [=](size_t i) { return 1.5 + fz - 0.0005 * i; });
    fillDoubles(b, consts, 4,
                [=](size_t i) { return 0.5 + fz + 0.125 * i; });

    const RegId fu0 = 33, fu1 = 34, fv0 = 35, fc = 36, facc = 37,
                ftmp = 38;

    b.loadAddr(ptr3, consts);
    b.ldi(scratch0, 0);
    b.cvtif(facc, scratch0);

    const RegId idx = 16;
    countedLoop(b, counter0, plan.count("passes"), [&] {
        b.loadAddr(ptr0, u);
        b.loadAddr(ptr1, v);
        b.loadAddr(ptr2, p);
        b.ldi(idx, 0);
        countedLoop(b, counter1, plan.count("n"), [&] {
            // Explicit index arithmetic, as compiled array code does
            // (scalar overhead that never vectorizes).
            b.slli(scratch0, idx, 3);
            b.add(scratch1, ptr0, scratch0); // &u[i]
            b.add(scratch2, ptr1, scratch0); // &v[i]
            b.add(scratch3, ptr2, scratch0); // &p[i]
            // Spill-style coefficient reloads: stride 0.
            b.fld(fc, ptr3, 0);
            b.fld(ftmp, ptr3, 8);
            b.fadd(fc, fc, ftmp);
            // Stencil reads: u[i], u[i+1], v[i+64]; all stride 1.
            b.fld(fu0, scratch1, 0);
            b.fld(fu1, scratch1, 8);
            b.fld(fv0, scratch2, 8 * 64);
            // p[i] = c*(u[i] + u[i+1]) - v[i+64]
            b.fadd(ftmp, fu0, fu1);
            b.fmul(ftmp, ftmp, fc);
            b.fsub(ftmp, ftmp, fv0);
            b.fst(ftmp, scratch3, 0);
            b.fadd(facc, facc, ftmp);
            b.addi(idx, idx, 1);
        });
    });

    b.loadAddr(ptr2, p);
    b.fst(facc, ptr2, std::int32_t(8 * (n + 4)));
    b.halt();
    return b.finish();
}

} // namespace sdv
