/**
 * @file
 * `turb3d` stand-in: FFT-like butterfly passes over a signal at
 * strides 1, 2, 4 and 8 (the large strides give SpecFP its Figure 1
 * tail beyond 4 elements), with stride-0 twiddle-factor reloads.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planTurb3d(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // Ping-pong signal buffers of n doubles (33KB / 192KB / 2MB). The
    // seed butterfly counts touch a few KB per pass; the grown modes
    // sweep the whole buffer at every stride (span pairs*stride ~ n).
    const std::size_t n = byFootprint<std::size_t>(fp, 2048, 12288, 131072);
    p.extent("sig", n + 64);
    p.extent("outbuf", n + 64);
    p.extent("twiddle", 4);
    const std::int64_t sweep = std::int64_t(n) - 1024; // grown spans
    p.trip("pairs1", byFootprint<std::int64_t>(fp, 224, sweep, sweep));
    p.trip("pairs2", byFootprint<std::int64_t>(fp, 224, sweep / 2, sweep / 2));
    p.trip("pairs4", byFootprint<std::int64_t>(fp, 96, sweep / 4, sweep / 4));
    p.trip("pairs8", byFootprint<std::int64_t>(fp, 96, sweep / 8, sweep / 8));
    // Total pairs per outer pass: 864 seed, ~37x at L2, ~432x at mem.
    p.trip("passes", scaledPasses(scale, 5, byFootprint(fp, 1u, 37u, 432u)));
    return p;
}

Program
buildTurb3d(const FootprintPlan &p)
{
    ProgramBuilder b;

    const std::size_t n = p.words("sig") - 64;
    const Addr sig = b.allocWords("sig", n + 64);
    const Addr out = b.allocWords("outbuf", n + 64);
    const Addr twiddle = b.allocWords("twiddle", 4);
    const double fz = fuzzOffset(p.fuzzSeed);
    fillDoubles(b, sig, n + 64, [=](size_t i) {
        return 0.001 * double(i % 611) - 0.3 + fz;
    });
    fillDoubles(b, twiddle, 4,
                [=](size_t i) { return 0.7 + fz + 0.05 * i; });

    const RegId fx = 33, fy = 34, fw = 35, ft = 36, facc = 37;

    b.loadAddr(ptr3, twiddle);
    b.ldi(scratch0, 0);
    b.cvtif(facc, scratch0);

    const std::int32_t pairsFor[9] = {0,
                                      p.count("pairs1"),
                                      p.count("pairs2"),
                                      0,
                                      p.count("pairs4"),
                                      0,
                                      0,
                                      0,
                                      p.count("pairs8")};
    countedLoop(b, counter0, p.count("passes"), [&] {
        // One butterfly pass per stride in {1, 2, 4, 8}; short strides
        // dominate as in a real decimation (81% of strided accesses
        // stay below 4 elements for SpecFP in the paper).
        for (unsigned stride : {1u, 1u, 2u, 4u, 8u}) {
            const std::int32_t pairs = pairsFor[stride];
            // Out-of-place butterflies (ping-pong buffers): the output
            // buffer is distinct from the streamed input, as in an FFT
            // that alternates between two work arrays.
            b.loadAddr(ptr0, sig);
            b.loadAddr(ptr1, out);
            b.ldi(acc2, 0); // butterfly index
            countedLoop(b, counter1, pairs, [&] {
                // Bit-reversal-style index bookkeeping (scalar).
                b.slli(scratch0, acc2, 3);
                b.mul(scratch1, acc2, counter1);
                b.xor_(acc1, acc1, scratch1);
                b.add(scratch2, ptr0, scratch0);
                b.fld(fw, ptr3, 0); // twiddle reload (stride 0)
                b.fld(fx, ptr0, 0);
                b.fld(fy, ptr0, std::int32_t(8 * stride));
                b.fmul(ft, fy, fw);
                b.fadd(fy, fx, ft);
                b.fsub(fx, fx, ft);
                b.fst(fy, ptr1, 0);
                b.fst(fx, ptr1, std::int32_t(8 * stride));
                b.fadd(facc, facc, fy);
                b.addi(acc2, acc2, 1);
                b.addi(ptr0, ptr0, std::int32_t(8 * stride));
                b.addi(ptr1, ptr1, std::int32_t(8 * stride));
            });
        }
    });

    b.loadAddr(ptr0, sig);
    b.fst(facc, ptr0, std::int32_t(8 * (n + 32)));
    b.halt();
    return b.finish();
}

} // namespace sdv
