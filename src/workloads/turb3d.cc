/**
 * @file
 * `turb3d` stand-in: FFT-like butterfly passes over a signal at
 * strides 1, 2, 4 and 8 (the large strides give SpecFP its Figure 1
 * tail beyond 4 elements), with stride-0 twiddle-factor reloads.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

Program
buildTurb3d(unsigned scale)
{
    ProgramBuilder b;

    const unsigned n = 2048;
    const Addr sig = b.allocWords("sig", n + 64);
    const Addr out = b.allocWords("outbuf", n + 64);
    const Addr twiddle = b.allocWords("twiddle", 4);
    fillDoubles(b, sig, n + 64,
                [](size_t i) { return 0.001 * double(i % 611) - 0.3; });
    fillDoubles(b, twiddle, 4, [](size_t i) { return 0.7 + 0.05 * i; });

    const RegId fx = 33, fy = 34, fw = 35, ft = 36, facc = 37;

    b.loadAddr(ptr3, twiddle);
    b.ldi(scratch0, 0);
    b.cvtif(facc, scratch0);

    countedLoop(b, counter0, std::int32_t(scale * 5), [&] {
        // One butterfly pass per stride in {1, 2, 4, 8}; short strides
        // dominate as in a real decimation (81% of strided accesses
        // stay below 4 elements for SpecFP in the paper).
        for (unsigned stride : {1u, 1u, 2u, 4u, 8u}) {
            const unsigned pairs = stride <= 2 ? 224 : 96;
            // Out-of-place butterflies (ping-pong buffers): the output
            // buffer is distinct from the streamed input, as in an FFT
            // that alternates between two work arrays.
            b.loadAddr(ptr0, sig);
            b.loadAddr(ptr1, out);
            b.ldi(acc2, 0); // butterfly index
            countedLoop(b, counter1, std::int32_t(pairs), [&] {
                // Bit-reversal-style index bookkeeping (scalar).
                b.slli(scratch0, acc2, 3);
                b.mul(scratch1, acc2, counter1);
                b.xor_(acc1, acc1, scratch1);
                b.add(scratch2, ptr0, scratch0);
                b.fld(fw, ptr3, 0); // twiddle reload (stride 0)
                b.fld(fx, ptr0, 0);
                b.fld(fy, ptr0, std::int32_t(8 * stride));
                b.fmul(ft, fy, fw);
                b.fadd(fy, fx, ft);
                b.fsub(fx, fx, ft);
                b.fst(fy, ptr1, 0);
                b.fst(fx, ptr1, std::int32_t(8 * stride));
                b.fadd(facc, facc, fy);
                b.addi(acc2, acc2, 1);
                b.addi(ptr0, ptr0, std::int32_t(8 * stride));
                b.addi(ptr1, ptr1, std::int32_t(8 * stride));
            });
        }
    });

    b.loadAddr(ptr0, sig);
    b.fst(facc, ptr0, 8 * (n + 32));
    b.halt();
    return b.finish();
}

} // namespace sdv
