/**
 * @file
 * `fpppp` stand-in: electron-integral style code — enormous straight-
 * line basic blocks of dependent FP arithmetic over a small workspace
 * that is reloaded (stride 0) and partially rewritten every iteration.
 * The rewrites invalidate the stride-0 vectors (Section 3.6), which is
 * why fpppp shows the lowest FP vectorizable fraction in Figure 3.
 */

#include "workloads/workload.hh"

#include "workloads/kernel_util.hh"

namespace sdv {

using namespace workloads;

FootprintPlan
planFpppp(unsigned scale, Footprint fp)
{
    FootprintPlan p = makePlan(scale, fp);
    // The seed workspace is deliberately tiny (256B: fpppp's character
    // is straight-line FP code over few cells). The grown modes tile a
    // 128KB / 1MB workspace into 256-byte blocks and move to the next
    // block every 8 iterations: stride-0 reloads still form vectors
    // within a block's window, while the walk streams the footprint.
    p.extent("work", byFootprint<std::size_t>(fp, 32, 16384, 131072));
    p.extent("result", 8);
    p.trip("iters", std::int64_t(scale) * 2200);
    return p;
}

Program
buildFpppp(const FootprintPlan &p)
{
    ProgramBuilder b;

    const std::size_t workWords = p.words("work");
    const Addr work = b.allocWords("work", workWords);
    const Addr result = b.allocWords("result", 8);
    const double fz = fuzzOffset(p.fuzzSeed);
    fillDoubles(b, work, workWords,
                [=](size_t i) { return 1.0 + fz + 0.03 * i; });

    const RegId f0 = 33, f1 = 34, f2 = 35, f3 = 36, f4 = 37, f5 = 38,
                f6 = 39, facc = 40;

    b.loadAddr(ptr0, work);
    b.ldi(scratch0, 0);
    b.cvtif(facc, scratch0);

    // Grown footprints: 256B blocks, advanced every 8th iteration.
    const bool walkBlocks = p.footprint != Footprint::Base;
    const std::int32_t blockMask =
        walkBlocks ? subIndexMask(workWords, 32) : 0;

    countedLoop(b, counter0, p.count("iters"), [&] {
        if (walkBlocks) {
            auto sameBlock = b.newLabel();
            b.andi(scratch0, counter0, 7);
            b.bnez(scratch0, sameBlock);
            // block = (counter0 >> 3) & (nblocks - 1); ptr0 = work +
            // block * 256 — a fresh 4-line window in the workspace.
            b.srli(scratch0, counter0, 3);
            b.andi(scratch0, scratch0, blockMask);
            b.slli(scratch0, scratch0, 8);
            b.loadAddr(ptr0, work);
            b.add(ptr0, ptr0, scratch0);
            b.bind(sameBlock);
        }
        // Integral-table bookkeeping: shell indices, symmetry flags
        // (scalar integer work that never vectorizes).
        b.slli(scratch1, counter0, 2);
        b.xori(scratch2, scratch1, 0x1b);
        b.add(acc0, acc0, scratch2);
        b.srli(scratch3, acc0, 5);
        b.and_(scratch3, scratch3, counter0);
        b.add(acc1, acc1, scratch3);

        // Block 1: read-only workspace cells (stride 0 across
        // iterations -> vectorizable).
        b.fld(f0, ptr0, 0);
        b.fld(f1, ptr0, 8);
        b.fld(f2, ptr0, 16);
        b.fld(f3, ptr0, 24);
        b.fmul(f4, f0, f1);
        b.fadd(f5, f2, f3);
        b.fmul(f6, f4, f5);
        b.fadd(facc, facc, f6);
        // Accumulator-coupled products: these re-vectorize every
        // iteration (the captured accumulator value changes).
        b.fmul(f4, facc, f2);
        b.fadd(f5, f4, f1);
        b.fmul(f6, f5, f0);
        b.fadd(facc, facc, f6);

        // Block 2: cells that are periodically rewritten; the stores
        // land inside the stride-0 vector ranges and fire the Section
        // 3.6 coherence check, which is why fpppp vectorizes poorly.
        b.fld(f0, ptr0, 128);
        b.fld(f1, ptr0, 136);
        b.fmul(f2, f0, f1);
        b.fadd(f3, f2, f4);
        b.fmul(f4, f3, f1);
        b.fsub(f5, f4, f0);
        b.fadd(facc, facc, f5);
        {
            auto skip = b.newLabel();
            b.andi(scratch1, counter0, 7);
            b.bnez(scratch1, skip); // rewrite every 8th iteration
            b.fst(f3, ptr0, 128);
            b.fst(f5, ptr0, 136);
            b.bind(skip);
        }
        // Unconditional result spill to cells that are never reloaded.
        b.fst(f5, ptr0, 192);

        // Long dependent tail off the running accumulator: these never
        // validate (the accumulator changes every iteration), keeping
        // fpppp's vectorizable fraction low as in Figure 3.
        b.fmul(f6, facc, f3);
        b.fadd(f6, f6, f2);
        b.fmul(f6, f6, f1);
        b.fadd(f6, f6, f5);
        b.fmul(f6, f6, f0);
        b.fadd(facc, facc, f6);
    });

    b.loadAddr(ptr1, result);
    b.fst(facc, ptr1, 0);
    b.halt();
    return b.finish();
}

} // namespace sdv
