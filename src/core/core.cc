#include "core/core.hh"

#include <algorithm>

#include "common/log.hh"
#include "isa/trace.hh"
#include "obs/hooks.hh"

namespace sdv {

Core::Core(const CoreConfig &cfg, const Program &prog)
    : cfg_(cfg), prog_(prog),
      trace_(cfg.traceExec ? &prog.trace() : nullptr),
      oracle_(prog, cfg.traceExec), mem_(cfg.mem),
      ports_(cfg.dcachePorts, cfg.widePorts, cfg.mem.l1dLineBytes),
      gshare_(cfg.gshareEntries, cfg.gshareHistoryBits),
      btb_(cfg.btbSets, cfg.btbWays), ras_(cfg.rasDepth),
      lsq_(cfg.lsqEntries), fuPool_(cfg.fu), engine_(cfg.engine),
      fetchPc_(prog.entry()), rob_(cfg.robEntries)
{
    valWaiters_.resize(std::size_t(cfg.engine.numVregs) *
                       cfg.engine.vlen);
    // Speculative vector-element loads read their values from the
    // oracle memory image (sequentially correct state); conflicts with
    // later stores are caught by the Section 3.6 range check.
    engine_.datapath().setContext(this);
    engine_.vrf().setElemLedger(&ports_);
}

std::uint64_t
Core::readCommittedMemory(Addr addr, unsigned size) const
{
    return pendingStores_.overlay(oracle_.memory().read(addr, size),
                                  addr, size);
}

std::uint64_t
Core::specLoadValue(Addr addr, unsigned size) const
{
    const std::uint64_t raw = readCommittedMemory(addr, size);
    if (size == 4)
        return std::uint64_t(std::int64_t(std::int32_t(raw)));
    return raw;
}

void
Core::setRecorder(obs::TraceRecorder *rec)
{
#if SDV_OBS_ENABLED
    recorder_ = rec;
    engine_.setRecorder(rec);
    engine_.vrf().setRecorder(rec);
    mem_.mshrs().setRecorder(rec);
    if (rec)
        rec->setCycle(cycle_);
#else
    (void)rec;
#endif
}

DynInst *
Core::robFind(InstSeqNum seq) const
{
    if (rob_.empty() || seq < rob_.front().seq)
        return nullptr;
    const std::uint64_t idx = seq - rob_.front().seq;
    if (idx >= rob_.size())
        return nullptr;
    return const_cast<DynInst *>(&rob_[size_t(idx)]);
}

void
Core::tick()
{
    // Attempt a jump only after a tick that made no forward progress:
    // a busy pipeline never skips, so gating on last tick's activity
    // avoids paying the quiescence scan on every cycle. Suppressing an
    // attempt is always sound — it just means ticking normally — and
    // costs at most one idle tick at the head of each idle window.
    if (cfg_.eventSkip && quietLastTick_ && trySkipIdle())
        return; // jump hit the cycle budget: nothing left to simulate
    quietLastTick_ = true; // stages clear it when they do work

    SDV_OBS_SET_CYCLE(recorder_, cycle_);

    ports_.beginCycle();
    fuPool_.beginCycle();
    cycleAccessDone_.clear();

    commitStage();
    completionStage();
    issueStage();
    engine_.tick(cycle_, ports_, mem_);
    decodeStage();
    fetchStage();

    ++cycle_;
    stats_.cycles = cycle_;
}

// --- event-skipping clock --------------------------------------------------

bool
Core::trySkipIdle()
{
    // A quiescent cycle is one where every stage provably does nothing
    // but bump per-cycle statistics. Each check below mirrors one
    // stage; any possible progress this cycle vetoes the jump.

    // Commit: the ROB head would retire.
    if (!rob_.empty() && rob_.front().completed)
        return false;

    // Decode: with instructions waiting, decode makes progress unless
    // it is blocked by a structural hazard that only a completion
    // event can clear — a full ROB/LSQ, or a Figure-7 block on an
    // in-flight captured-scalar producer. Those blocked cycles charge
    // one stall count each, which the jump reproduces below; the
    // producer's completion is a scheduled event already covered by
    // the horizon scan.
    bool rob_full_stall = false;
    bool lsq_full_stall = false;
    bool decode_block_stall = false;
    Addr decode_block_pc = 0;
    if (!fetchQueue_.empty()) {
        const FetchedInst &front = fetchQueue_.front();
        if (rob_.full())
            rob_full_stall = true;
        else if (front.rec.inst.isMem() && lsq_.full())
            lsq_full_stall = true;
        else if (engine_.decodeWouldBlock(front.rec, rt_, *this)) {
            decode_block_stall = true;
            decode_block_pc = front.rec.pc;
        } else
            return false;
    }

    // Fetch: idle only when stalled on an unresolved branch, out of
    // instructions (or past the warm-up fetch limit), waiting on an
    // I-cache miss, or backed up into a full fetch queue.
    Cycle horizon = neverCycle;
    const bool fetch_idle =
        fetchStalled_ || fetchExhausted() ||
        fetchQueue_.size() >= cfg_.fetchQueueEntries;
    if (!fetch_idle) {
        if (cycle_ < icacheReadyAt_)
            horizon = std::min(horizon, icacheReadyAt_);
        else
            return false; // fetch would run this cycle
    }

    // Completion: pending wake events mean a woken validation acts
    // this cycle; otherwise every parked validation is strictly
    // waiting (its element's computation is a scheduled event already
    // covered by the engine horizon below), and the earliest scalar
    // completion is simply the heap top.
    if (!valWakeNow_.empty() || engine_.vrf().hasWakeEvents())
        return false;
    if (!completionHeap_.empty())
        horizon = std::min(horizon, completionHeap_.front()->readyCycle);

    // Issue: an instruction with completed producers may issue (or
    // charge an LSQ-conflict stall) this cycle. When the last issue
    // walk proved every entry dep-blocked (and nothing has completed
    // or entered the queue since), the scan is skipped: it would find
    // exactly what the walk found.
    if (!iqAllDepBlocked_)
        for (const DynInst *d : iq_)
            if (producerCompleted(d->dep1) && producerCompleted(d->dep2))
                return false;

    // Vector engine: in-flight instances arbitrate every cycle; only
    // scheduled element completions (and nothing else) may remain.
    const Cycle engine_event = engine_.nextEventCycle(cycle_);
    if (engine_event <= cycle_)
        return false;
    horizon = std::min(horizon, engine_event);

    // The per-cycle resources never schedule future events; their
    // horizons are infinite by construction.
    horizon = std::min(horizon, fuPool_.nextEventCycle());
    horizon = std::min(horizon, ports_.nextEventCycle());

    if (horizon == neverCycle)
        return false; // no scheduled event: tick normally (budget run)
    if (horizon <= cycle_)
        return false; // an event lands this very cycle: tick normally

    // Jump to the event (bounded by the cycle budget), charging the
    // skipped cycles exactly as the skipped ticks would have.
    const bool clipped = horizon >= cycleLimit_;
    const Cycle target = clipped ? cycleLimit_ : horizon;
    const Cycle skipped = target - cycle_;
    if (skipped == 0)
        return false;

    ports_.noteIdleCycles(skipped);
    ++stats_.eventSkipJumps;
    stats_.eventSkippedCycles += skipped;
    if (fetchStalled_) {
        stats_.fetchStallCycles += skipped;
        // The classification is constant across the skip window: the
        // jump lands on the first cycle anything completes.
        if (fetchStallOnValidation())
            stats_.fetchStallValWaitCycles += skipped;
    }
    if (rob_full_stall)
        stats_.robFullStalls += skipped;
    if (lsq_full_stall)
        stats_.lsqFullStalls += skipped;
    if (decode_block_stall) {
        stats_.decodeBlockCycles += skipped;
        engine_.chargeBlockedCycles(decode_block_pc, skipped);
    }

    cycle_ = target;
    stats_.cycles = cycle_;
    SDV_OBS_SET_CYCLE(recorder_, cycle_);

    // When the event lies at or beyond the budget, every remaining
    // cycle was idle: the jump itself finishes the run and the cycle
    // at the limit must not execute.
    return clipped;
}

// --- checkpoint / measurement boundary -------------------------------------

bool
Core::quiescent() const
{
    return rob_.empty() && iq_.empty() && completionHeap_.empty() &&
           parkedValidations_ == 0 && valWakeNow_.empty() &&
           !engine_.vrf().hasWakeEvents() &&
           fetchQueue_.empty() && replayQueue_.empty() &&
           lsq_.size() == 0 && pendingStores_.empty() &&
           !fetchStalled_ && engine_.idle() &&
           mem_.mshrs().busyCount(cycle_) == 0;
}

void
Core::beginMeasurement()
{
    // Context-switch the transient vector state; the warm TL, caches
    // and predictors survive. Releasing the registers resolves every
    // outstanding element-load ledger entry, so the Figure-13 slot
    // pool must be fully folded afterwards.
    quiesceVectorState();

    // With every fill landed, expired MSHR entries behave identically
    // to free ones; clear them so the clock can rebase to zero.
    mem_.mshrs().clearEntries();

    cycle_ = 0;
    icacheReadyAt_ = 0;
    quietLastTick_ = false;
    iqAllDepBlocked_ = false;
    fig10Remaining_ = 0;
    stallBranchSeq_ = 0;

    // The measured region starts now: every statistic resets. The
    // commit hash and committedTotal_ deliberately keep accumulating —
    // end-of-run verification covers the whole program.
    stats_ = CoreStats{};
    ports_.resetStats();
    lsq_.resetStats();
    mem_.resetStats();
    btb_.resetStats();
    engine_.resetStats();
}

void
Core::quiesceVectorState()
{
    sdv_assert(quiescent(), "vector quiesce on a busy pipeline");
    // Transient-exposure probe (timing-channel experiments): what
    // speculative state is alive at the instant the boundary drops it.
    // beginMeasurement() zeroes these right after its own quiesce, so
    // only mid-run (--quiesce-interval) boundaries accumulate.
    ++stats_.quiesceEvents;
    const VecRegFile &vrf = engine_.vrf();
    std::uint64_t live_vregs = 0;
    std::uint64_t transient_elems = 0;
    vrf.forEachLive([&](VecRegRef ref) {
        ++live_vregs;
        const unsigned n = vrf.elemCount(ref);
        for (unsigned e = 0; e < n; ++e)
            if (vrf.isReady(ref, e) && !vrf.isValid(ref, e))
                ++transient_elems;
    });
    stats_.quiesceLiveVregs += live_vregs;
    stats_.quiesceTransientElems += transient_elems;
    SDV_OBS_EVENT(recorder_, obs::EventKind::Quiesce, fetchPc_,
                  live_vregs, transient_elems);
    engine_.quiesce();
    rt_.reset();
    sdv_assert(ports_.ledgerLiveRecords() == 0,
               "unresolved port ledger records at the quiesce point");
    quietLastTick_ = false;
}

void
Core::saveWarmState(Serializer &ser) const
{
    sdv_assert(quiescent() && cycle_ == 0,
               "checkpoint capture outside a measurement boundary");
    ser.u64(fetchPc_);
    ser.u64(nextSeq_);
    ser.u64(commitHash_);
    ser.u64(committedTotal_);
    ser.b(haltCommitted_);
    oracle_.saveState(ser);
    mem_.saveState(ser);
    gshare_.saveState(ser);
    btb_.saveState(ser);
    ras_.saveState(ser);
    engine_.saveState(ser);
}

bool
Core::loadWarmState(Deserializer &des)
{
    sdv_assert(quiescent() && cycle_ == 0,
               "checkpoint restore into a used core");
    fetchPc_ = des.u64();
    nextSeq_ = des.u64();
    commitHash_ = des.u64();
    committedTotal_ = des.u64();
    haltCommitted_ = des.b();
    oracle_.loadState(des);
    return mem_.loadState(des) && gshare_.loadState(des) &&
           btb_.loadState(des) && ras_.loadState(des) &&
           engine_.loadState(des) && des.ok();
}

// --- commit ---------------------------------------------------------------

void
Core::commitCommon(DynInst &d)
{
    d.commitCycle = cycle_;

    // Figure 10: count instructions inside an open post-mispredict
    // window before possibly opening a new one below.
    if (fig10Remaining_ > 0) {
        ++stats_.postMispredictWindowInsts;
        if (d.isValidation())
            ++stats_.postMispredictReused;
        --fig10Remaining_;
    }

    ++stats_.committedInsts;
    ++committedTotal_;
    if (d.isLoad())
        ++stats_.committedLoads;
    if (d.isStore())
        ++stats_.committedStores;
    if (d.isControl()) {
        ++stats_.committedBranches;
        if (d.mispredicted) {
            ++stats_.branchMispredicts;
            fig10Remaining_ = cfg_.fig10WindowInsts;
        }
        engine_.onControlCommit(d);
    }
    if (d.isValidation()) {
        ++stats_.committedValidations;
        if (d.isLoad())
            ++stats_.committedLoadValidations;
        const ValCommitResult vres = engine_.onValidationCommit(d);
        if (vres.faultDetected)
            ++stats_.specFaultsDetected;
        if (vres.chainDemoted)
            ++stats_.specChainDemotions;
    } else {
        if (engine_.onScalarWriterCommit(d))
            ++stats_.specChainReenables;
        // Decode-time VRMT-corruption detections ride the instruction
        // to commit so squashed wrong-path detections don't count.
        if (d.fiDetected)
            ++stats_.specFaultsDetected;
        if (d.fiDemoted)
            ++stats_.specChainDemotions;
    }
    if (d.inst().writesReg() || d.isValidation())
        rt_.onWriterCommit(d.inst().rd, d.seq);
    if (d.inst().isMem())
        lsq_.erase(d.seq);

    commitHash_ = (commitHash_ ^ d.pc()) * 1099511628211ULL;
    if (d.rec.halted)
        haltCommitted_ = true;
}

void
Core::commitStage()
{
    unsigned committed = 0;
    unsigned stores = 0;
    while (committed < cfg_.commitWidth && !rob_.empty()) {
        DynInst *d = &rob_.front();
        if (!d->completed)
            break;

        if (d->isStore()) {
            if (stores >= cfg_.maxStoresPerCycle)
                break;
            const auto grant = ports_.requestStoreWord(d->rec.addr);
            if (!grant.ok)
                break; // no port for the cache write this cycle
            mem_.storeAccess(d->rec.addr, cycle_);
            // This store's value is now architecturally committed.
            sdv_assert(!pendingStores_.empty() &&
                           pendingStores_.front().addr == d->rec.addr,
                       "pending-store FIFO out of sync");
            pendingStores_.popFront();
            ++stores;
            const bool conflict = engine_.onStoreCommit(*d);
            commitCommon(*d);
            rob_.popFront();
            ++committed;
            if (conflict) {
                ++stats_.storeConflictSquashes;
                squashAllInFlight();
                break;
            }
            continue;
        }

        commitCommon(*d);
        rob_.popFront();
        ++committed;
    }
    if (committed)
        quietLastTick_ = false;
}

void
Core::squashAllInFlight()
{
    SDV_OBS_EVENT(recorder_, obs::EventKind::Squash, fetchPc_,
                  rob_.size(), fetchQueue_.size());

    // Undo decode effects youngest-first, unparking any waiting
    // validations (their register-file interest bits may fire stale
    // wake events later; empty waiter slots ignore them).
    for (size_t i = rob_.size(); i-- > 0;) {
        DynInst &d = rob_[i];
        if (d.isValidation() && !d.completed) {
            ValWaiter &w = valWaiters_[waiterSlot(d)];
            if (w.d == &d) {
                w = ValWaiter{};
                --parkedValidations_;
            }
        }
        engine_.undoDecode(d, rt_);
        ++stats_.squashedInsts;
    }

    // Collect the oracle records (oldest first) for replay through
    // fetch, including not-yet-decoded entries in the fetch queue.
    std::vector<ExecRecord> recs;
    recs.reserve(rob_.size() + fetchQueue_.size());
    for (size_t i = 0; i < rob_.size(); ++i)
        recs.push_back(rob_[i].rec);
    for (const auto &f : fetchQueue_)
        recs.push_back(f.rec);
    for (auto it = recs.rbegin(); it != recs.rend(); ++it)
        replayQueue_.push_front(*it);

    rob_.clear();
    iq_.clear();
    completionHeap_.clear();
    valWakeNow_.clear();
    fetchQueue_.clear();
    lsq_.squashAfter(0);

    fetchStalled_ = false;
    stallBranchSeq_ = 0;
    icacheReadyAt_ = 0;
    quietLastTick_ = false;
    iqAllDepBlocked_ = false;
    if (!replayQueue_.empty())
        fetchPc_ = replayQueue_.front().pc;
}

// --- completion monitoring -----------------------------------------------

namespace {

/** Min-heap on readyCycle (std::*_heap build max-heaps, so invert). */
struct CompletionLater
{
    bool
    operator()(const DynInst *a, const DynInst *b) const
    {
        return a->readyCycle > b->readyCycle;
    }
};

} // namespace

void
Core::scheduleCompletion(DynInst *d)
{
    completionHeap_.push_back(d);
    std::push_heap(completionHeap_.begin(), completionHeap_.end(),
                   CompletionLater{});
}

void
Core::parkValidation(DynInst &d)
{
    ValWaiter &w = valWaiters_[waiterSlot(d)];
    sdv_assert(w.d == nullptr, "validation waiter slot occupied");
    w.d = &d;
    w.seq = d.seq;
    ++parkedValidations_;
    if (engine_.validationStatus(d) == ValStatus::Waiting) {
        // Strictly waiting: the register file will push a wake event
        // when the element computes or the incarnation dies.
        engine_.vrf().noteWaiter(d.valVreg, d.valElem);
    } else {
        // Already resolved (or dead) at decode: the next completion
        // stage acts on it, exactly when the old poll would have.
        valWakeNow_.push_back(&d);
    }
}

void
Core::processValidation(DynInst *d, bool &progress)
{
    ValWaiter &w = valWaiters_[waiterSlot(*d)];
    if (w.d != d || w.seq != d->seq)
        return; // stale wake (squashed or already processed)

    switch (engine_.validationStatus(*d)) {
      case ValStatus::Ready:
        d->completed = true;
        d->readyCycle = cycle_;
        maybeUnstall(d);
        w = ValWaiter{};
        --parkedValidations_;
        progress = true;
        break;
      case ValStatus::Dead: {
        // The element will never be computed: re-execute this
        // instance in scalar mode.
        engine_.fallbackValidation(*d);
        auto pos = std::lower_bound(
            iq_.begin(), iq_.end(), d->seq,
            [](const DynInst *a, InstSeqNum s) { return a->seq < s; });
        iq_.insert(pos, d);
        d->inIq = true;
        w = ValWaiter{};
        --parkedValidations_;
        progress = true;
        break;
      }
      case ValStatus::Waiting:
        // Spurious wake: stay parked and re-arm the element event.
        engine_.vrf().noteWaiter(d->valVreg, d->valElem);
        break;
    }
}

void
Core::completionStage()
{
    bool progress = false;

    // Scalar completions that matured: pop the heap instead of
    // rescanning every in-flight instruction.
    while (!completionHeap_.empty() &&
           completionHeap_.front()->readyCycle <= cycle_) {
        std::pop_heap(completionHeap_.begin(), completionHeap_.end(),
                      CompletionLater{});
        DynInst *d = completionHeap_.back();
        completionHeap_.pop_back();
        d->completed = true;
        maybeUnstall(d);
        progress = true;
    }

    // Validation wake-ups: element-ready / incarnation-death events
    // pushed by the register file since the last stage, plus the
    // decode-time-resolved arrivals. Processing order within a cycle
    // is immaterial — each wake completes, falls back, or re-parks its
    // own instruction — and the woken set is exactly the set the old
    // per-cycle poll would have found non-Waiting.
    engine_.vrf().drainWakeEvents([&](const VecWakeEvent &e) {
        const unsigned vlen = cfg_.engine.vlen;
        const unsigned first =
            e.elem == VecWakeEvent::allElems ? 0 : e.elem;
        const unsigned last =
            e.elem == VecWakeEvent::allElems ? vlen - 1 : e.elem;
        for (unsigned el = first; el <= last; ++el) {
            const std::size_t slot =
                std::size_t(e.ref.reg) * vlen + el;
            DynInst *d = valWaiters_[slot].d;
            if (d && d->valVreg == e.ref)
                processValidation(d, progress);
        }
    });
    if (!valWakeNow_.empty()) {
        for (DynInst *d : valWakeNow_)
            processValidation(d, progress);
        valWakeNow_.clear();
    }

    if (progress) {
        quietLastTick_ = false;
        // A completion may have unblocked a queued consumer (and a
        // dead validation re-enters the queue): re-walk it.
        iqAllDepBlocked_ = false;
    }
}

// --- issue ------------------------------------------------------------------

void
Core::issueStage()
{
    // Every queued instruction was dep-blocked by the last walk and no
    // producer has completed (nor the queue changed) since: skipping
    // the walk is invisible — a fully-blocked walk touches nothing,
    // charges nothing, and issues nothing.
    if (iqAllDepBlocked_)
        return;

    unsigned issued = 0;
    bool any_ready = false;
    auto it = iq_.begin();
    while (it != iq_.end() && issued < cfg_.issueWidth) {
        DynInst *d = *it;
        bool remove = false;

        const bool deps_ready =
            producerCompleted(d->dep1) && producerCompleted(d->dep2);
        if (deps_ready) {
            any_ready = true;
            if (d->isLoad()) {
                const LoadCheck chk = lsq_.checkLoad(d);
                if (chk == LoadCheck::Forward) {
                    d->issued = true;
                    d->readyCycle = cycle_ + 1;
                    lsq_.noteForward();
                    ++stats_.loadForwards;
                    remove = true;
                } else if (chk == LoadCheck::Ready) {
                    const auto grant =
                        ports_.requestLoadWord(d->rec.addr);
                    if (grant.ok) {
                        Cycle done = 0;
                        bool ok = true;
                        if (grant.newAccess) {
                            ok = mem_.loadAccess(d->rec.addr, cycle_,
                                                 done);
                            if (ok) {
                                cycleAccessDone_.emplace_back(
                                    grant.accessId, done);
                                ++stats_.scalarLoadAccesses;
                            }
                        } else {
                            // Riding along a wide access made earlier
                            // this cycle.
                            done = neverCycle;
                            for (const auto &[id, c] : cycleAccessDone_)
                                if (id == grant.accessId)
                                    done = c;
                            if (done == neverCycle)
                                ok = mem_.loadAccess(d->rec.addr, cycle_,
                                                     done);
                        }
                        if (ok) {
                            d->issued = true;
                            d->readyCycle = done;
                            remove = true;
                        }
                    }
                } else {
                    lsq_.noteConflictStall();
                }
            } else if (d->isStore()) {
                // Address generation; the memory write happens at
                // commit through a port.
                d->issued = true;
                d->readyCycle = cycle_ + 1;
                remove = true;
            } else {
                const OpClass cls = d->inst().info().opClass;
                if (fuPool_.tryIssue(cls)) {
                    d->issued = true;
                    d->readyCycle = cycle_ + opClassLatency(cls);
                    remove = true;
                }
            }
        }

        if (remove) {
            d->inIq = false;
            scheduleCompletion(d);
            it = iq_.erase(it);
            ++issued;
        } else {
            ++it;
        }
    }
    // any_ready false implies the walk visited every entry (the width
    // cap only stops a walk that issued something).
    iqAllDepBlocked_ = !any_ready;
    if (issued)
        quietLastTick_ = false;
}

// --- decode / rename / dispatch --------------------------------------------

void
Core::decodeStage()
{
    unsigned decoded = 0;
    while (decoded < cfg_.decodeWidth && !fetchQueue_.empty()) {
        FetchedInst &f = fetchQueue_.front();
        if (rob_.full()) {
            ++stats_.robFullStalls;
            break;
        }
        if (f.rec.inst.isMem() && lsq_.full()) {
            ++stats_.lsqFullStalls;
            break;
        }

        // Claim the next ROB slot in place; a blocked decode returns
        // the slot below without the entry ever becoming visible.
        DynInst &d = rob_.emplaceBack();
        d.seq = nextSeq_;
        d.rec = f.rec;
        d.predTaken = f.predTaken;
        d.predTarget = f.predTarget;
        d.mispredicted = f.mispredicted;
        d.fetchCycle = f.fetchCycle;

        // Capture scalar dependences before the engine rewrites the
        // rename entries. The entry itself is excluded from
        // producerCompleted by seq: it is the ROB tail, so idx ==
        // size-1 and completed == false, never consulted for deps.
        const OpInfo &info = f.rec.inst.info();
        if (info.readsRs1 && f.rec.inst.rs1 != zeroReg) {
            const InstSeqNum w = rt_.entry(f.rec.inst.rs1).lastWriter;
            if (w != 0 && !producerCompleted(w))
                d.dep1 = w;
        }
        if (info.readsRs2 && f.rec.inst.rs2 != zeroReg) {
            const InstSeqNum w = rt_.entry(f.rec.inst.rs2).lastWriter;
            if (w != 0 && !producerCompleted(w))
                d.dep2 = w;
        }

        const DecodeAction action = engine_.decode(d, rt_, *this);
        if (action == DecodeAction::Blocked) {
            rob_.popBack(); // retry next cycle; d was left unmodified
            ++stats_.decodeBlockCycles;
            break;
        }

        ++nextSeq_;
        if (f.mispredicted)
            stallBranchSeq_ = d.seq;

        if (f.rec.inst.isMem())
            lsq_.insert(&d);

        if (d.isValidation()) {
            // Parked on its target element; woken by the register
            // file's event queue. No FU, no issue slot.
            parkValidation(d);
        } else if (info.opClass == OpClass::None) {
            d.completed = true;
            d.readyCycle = cycle_;
        } else {
            d.inIq = true;
            iq_.push_back(&d);
            iqAllDepBlocked_ = false; // fresh entry: re-walk the queue
        }

        fetchQueue_.pop_front();
        ++decoded;
    }
    if (decoded)
        quietLastTick_ = false;
}

// --- fetch ---------------------------------------------------------------------

bool
Core::fetchStallOnValidation() const
{
    if (stallBranchSeq_ == 0)
        return false; // branch not renamed yet (still in fetch queue)
    const DynInst *b = robFind(stallBranchSeq_);
    if (!b || b->completed || b->issued)
        return false; // resolving on an FU, not dep-blocked
    for (InstSeqNum dep : {b->dep1, b->dep2}) {
        if (dep == 0 || producerCompleted(dep))
            continue;
        const DynInst *p = robFind(dep);
        if (p && p->isValidation())
            return true;
    }
    return false;
}

void
Core::predictControl(FetchedInst &f)
{
    const Instruction &in = f.rec.inst;
    const Addr pc = f.rec.pc;
    const Addr fallthrough = pc + instBytes;

    if (in.isCondBranch()) {
        f.predTaken = gshare_.predictAndUpdate(pc, f.rec.taken);
        f.predTarget =
            trace_ ? trace_->slotAt(pc).target
                   : pc + Addr(std::int64_t(in.imm) *
                               std::int64_t(instBytes));
        f.mispredicted = f.predTaken != f.rec.taken;
        return;
    }

    switch (in.op) {
      case Opcode::BR:
        f.predTaken = true;
        f.predTarget = f.rec.nextPc;
        break;
      case Opcode::JAL:
        f.predTaken = true;
        f.predTarget = f.rec.nextPc;
        ras_.push(fallthrough);
        break;
      case Opcode::JALR: {
        f.predTaken = true;
        ras_.push(fallthrough);
        Addr t = fallthrough;
        if (!btb_.lookup(pc, t))
            t = fallthrough;
        f.predTarget = t;
        f.mispredicted = t != f.rec.nextPc;
        btb_.update(pc, f.rec.nextPc);
        break;
      }
      case Opcode::JR: {
        f.predTaken = true;
        Addr t = 0;
        if (!ras_.pop(t) && !btb_.lookup(pc, t))
            t = fallthrough;
        f.predTarget = t;
        f.mispredicted = t != f.rec.nextPc;
        btb_.update(pc, f.rec.nextPc);
        break;
      }
      default:
        panic("unhandled control op in predictControl");
    }
}

void
Core::fetchStage()
{
    if (fetchStalled_) {
        ++stats_.fetchStallCycles;
        if (fetchStallOnValidation())
            ++stats_.fetchStallValWaitCycles;
        return;
    }
    if (fetchExhausted())
        return; // nothing left to fetch (program or fetch limit)
    if (cycle_ < icacheReadyAt_)
        return; // I-cache miss in progress
    if (fetchQueue_.size() >= cfg_.fetchQueueEntries)
        return;

    const Cycle ready = mem_.fetchAccess(fetchPc_, cycle_);
    if (ready > cycle_ + cfg_.mem.l1iHitCycles) {
        icacheReadyAt_ = ready;
        SDV_OBS_EVENT(recorder_, obs::EventKind::IcacheRefill, fetchPc_,
                      ready);
        return;
    }

    unsigned fetched = 0;
    while (fetched < cfg_.fetchWidth &&
           fetchQueue_.size() < cfg_.fetchQueueEntries) {
        const bool replay = !replayQueue_.empty();
        if (!replay &&
            (oracle_.halted() ||
             (fetchLimit_ != 0 && oracle_.instCount() >= fetchLimit_)))
            break;

        // The oracle executes straight into the queue slot: no
        // intermediate ExecRecord copies on the fetch hot path.
        fetchQueue_.emplace_back();
        FetchedInst &f = fetchQueue_.back();
        f.fetchCycle = cycle_;
        if (replay) {
            f.rec = replayQueue_.front();
            sdv_assert(f.rec.pc == fetchPc_, "replay pc mismatch");
            replayQueue_.pop_front();
        } else {
            sdv_assert(oracle_.state().pc == fetchPc_,
                       "oracle pc diverged from fetch pc");
            oracle_.stepInto(f.rec);
            if (f.rec.isStore)
                pendingStores_.push(f.rec.addr, f.rec.size,
                                    f.rec.prevMemValue);
        }
        if (f.rec.inst.isControl())
            predictControl(f);
        ++fetched;

        if (f.rec.halted)
            break;
        if (f.mispredicted) {
            // No wrong-path fetch: stall until the branch resolves.
            fetchStalled_ = true;
            stallBranchSeq_ = 0; // assigned at decode
            break;
        }
        fetchPc_ = f.rec.nextPc;
        if (f.rec.inst.isControl() && f.rec.taken)
            break; // at most one taken branch per fetch group
    }
    if (fetched)
        quietLastTick_ = false;
}

} // namespace sdv
