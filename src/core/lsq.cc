#include "core/lsq.hh"

#include <algorithm>

#include "common/log.hh"

namespace sdv {

LoadStoreQueue::LoadStoreQueue(unsigned capacity) : capacity_(capacity)
{
    sdv_assert(capacity >= 2, "LSQ too small");
}

void
LoadStoreQueue::insert(DynInst *inst)
{
    sdv_assert(!full(), "LSQ overflow");
    sdv_assert(entries_.empty() || entries_.back()->seq < inst->seq,
               "LSQ inserts must be in program order");
    entries_.push_back(inst);
    if (inst->isStore())
        stores_.push_back(inst);
}

void
LoadStoreQueue::erase(InstSeqNum seq)
{
    // Memory instructions commit in program order, so the erased entry
    // is the oldest one in the common case.
    const DynInst *victim = nullptr;
    if (!entries_.empty() && entries_.front()->seq == seq) {
        victim = entries_.front();
        entries_.pop_front();
    } else {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if ((*it)->seq == seq) {
                victim = *it;
                entries_.erase(it);
                break;
            }
        }
    }
    if (!victim || !victim->isStore())
        return;
    if (!stores_.empty() && stores_.front()->seq == seq) {
        stores_.pop_front();
        return;
    }
    for (auto it = stores_.begin(); it != stores_.end(); ++it) {
        if ((*it)->seq == seq) {
            stores_.erase(it);
            return;
        }
    }
}

void
LoadStoreQueue::squashAfter(InstSeqNum seq)
{
    while (!entries_.empty() && entries_.back()->seq > seq)
        entries_.pop_back();
    while (!stores_.empty() && stores_.back()->seq > seq)
        stores_.pop_back();
}

LoadCheck
LoadStoreQueue::checkLoad(const DynInst *ld) const
{
    if (stores_.empty())
        return LoadCheck::Ready; // no store in flight at all

    const Addr lo = ld->rec.addr;
    const Addr hi = lo + ld->rec.size - 1;

    // Scan older stores youngest-first, tracking which load bytes are
    // still unclaimed: for each byte the nearest older store that
    // writes it decides. Byte i of the load is bit i of the mask
    // (loads are at most 8 bytes).
    sdv_assert(ld->rec.size >= 1 && ld->rec.size <= 8,
               "load size out of range");
    const std::uint16_t full =
        std::uint16_t((1u << ld->rec.size) - 1u);
    std::uint16_t unclaimed = full;  ///< bytes no store has supplied yet
    std::uint16_t forwarded = 0;     ///< bytes a completed store supplies

    for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
        const DynInst *e = *it;
        if (e->seq >= ld->seq)
            continue; // younger than the load

        const Addr slo = e->rec.addr;
        const Addr shi = slo + e->rec.size - 1;
        if (hi < slo || lo > shi)
            continue; // disjoint
        const Addr olo = slo > lo ? slo : lo;
        const Addr ohi = shi < hi ? shi : hi;
        const std::uint16_t overlap = std::uint16_t(
            ((1u << (ohi - lo + 1)) - 1u) & ~((1u << (olo - lo)) - 1u));
        const std::uint16_t fresh = std::uint16_t(overlap & unclaimed);
        if (fresh == 0)
            continue; // every overlapped byte comes from a younger store
        if (!e->completed)
            return LoadCheck::Stall; // needs bytes of an unresolved store
        unclaimed = std::uint16_t(unclaimed & ~fresh);
        forwarded = std::uint16_t(forwarded | fresh);
        if (unclaimed == 0)
            return LoadCheck::Forward; // in-flight stores cover the load
    }

    // Some bytes are only in memory. A load partly fed by pending
    // stores and partly by the cache cannot forward; it waits for the
    // stores to drain at commit.
    return forwarded == 0 ? LoadCheck::Ready : LoadCheck::Stall;
}

} // namespace sdv
