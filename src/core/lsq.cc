#include "core/lsq.hh"

#include <algorithm>

#include "common/log.hh"

namespace sdv {

LoadStoreQueue::LoadStoreQueue(unsigned capacity) : capacity_(capacity)
{
    sdv_assert(capacity >= 2, "LSQ too small");
}

void
LoadStoreQueue::insert(DynInst *inst)
{
    sdv_assert(!full(), "LSQ overflow");
    sdv_assert(entries_.empty() || entries_.back()->seq < inst->seq,
               "LSQ inserts must be in program order");
    entries_.push_back(inst);
}

void
LoadStoreQueue::erase(InstSeqNum seq)
{
    // Memory instructions commit in program order, so the erased entry
    // is the oldest one in the common case.
    if (!entries_.empty() && entries_.front()->seq == seq) {
        entries_.pop_front();
        return;
    }
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if ((*it)->seq == seq) {
            entries_.erase(it);
            return;
        }
    }
}

void
LoadStoreQueue::squashAfter(InstSeqNum seq)
{
    while (!entries_.empty() && entries_.back()->seq > seq)
        entries_.pop_back();
}

LoadCheck
LoadStoreQueue::checkLoad(const DynInst *ld) const
{
    const Addr lo = ld->rec.addr;
    const Addr hi = lo + ld->rec.size - 1;

    // Scan older entries youngest-first; the nearest older store that
    // overlaps decides.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const DynInst *e = *it;
        if (e->seq >= ld->seq || !e->isStore())
            continue;
        const Addr slo = e->rec.addr;
        const Addr shi = slo + e->rec.size - 1;
        if (hi < slo || lo > shi)
            continue; // disjoint
        const bool covers = slo <= lo && shi >= hi;
        if (covers && e->completed)
            return LoadCheck::Forward;
        return LoadCheck::Stall;
    }
    return LoadCheck::Ready;
}

} // namespace sdv
