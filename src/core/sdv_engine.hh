/**
 * @file
 * The speculative dynamic vectorization engine (Section 3): owns the
 * Table of Loads, the VRMT, the vector register file and the vector
 * datapath, and implements the decode-time vectorization / validation
 * conversion, the commit-time flag updates (V/F, GMRBB), the store
 * coherence check, and squash undo.
 */

#ifndef SDV_CORE_SDV_ENGINE_HH
#define SDV_CORE_SDV_ENGINE_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "core/dyn_inst.hh"
#include "core/rename.hh"
#include "sim/fault_injection.hh"
#include "vector/datapath.hh"
#include "vector/table_of_loads.hh"
#include "vector/vreg_file.hh"
#include "vector/vrmt.hh"

namespace sdv {

/** Configuration of the vectorization engine (Table 1 defaults). */
struct EngineConfig
{
    bool enabled = true;          ///< xpV vs xpIM/xpnoIM configurations
    unsigned vlen = 4;            ///< elements per vector register
    unsigned numVregs = 128;      ///< vector registers
    unsigned tlSets = 512;        ///< Table of Loads sets
    unsigned tlWays = 4;          ///< Table of Loads ways
    std::uint8_t tlConfidence = 2; ///< spawn threshold
    unsigned vrmtSets = 64;       ///< VRMT sets
    unsigned vrmtWays = 4;        ///< VRMT ways
    /** Figure 7: block decode while a captured-scalar operand's
     *  producer has not completed (real) or not (ideal). */
    bool blockOnScalarOperand = true;
    /**
     * Eager load chaining: spawn a load entry's successor incarnation
     * when its *first* element validates instead of its last, keeping
     * the speculative element loads a full incarnation ahead of the
     * validations that consume them. Breaks the cache-line phase lock
     * documented in docs/performance.md ("Steady-state behavior"):
     * with vlen x stride smaller than an L1 line, an unluckily aligned
     * chain otherwise issues each new line's first element only one
     * loop iteration before its consumer, exposing the miss latency on
     * every dependent branch. Off by default (the paper chains at the
     * last validation, Section 3.2).
     */
    bool eagerChainLoads = false;
    VectorFuConfig fu;            ///< vector FU bandwidth
    /** Adversarial fault-injection plan (sim/fault_injection.hh);
     *  disabled by default, so baseline runs draw nothing. */
    FaultPlan fault;
};

/** Decode outcome reported to the pipeline. */
enum class DecodeAction : std::uint8_t
{
    Normal,  ///< proceed (mode recorded in the DynInst)
    Blocked, ///< stall decode this cycle and retry (Figure 7)
};

/** Completion state of a validation's target element. */
enum class ValStatus : std::uint8_t
{
    Ready,   ///< element computed; validation may complete
    Waiting, ///< element still in flight
    Dead,    ///< register killed/freed; fall back to scalar execution
};

/** Engine statistics (feed Figures 9, 13, 14, 15 and prose claims). */
struct EngineStats
{
    std::uint64_t loadSpawns = 0;
    std::uint64_t loadChainSpawns = 0;
    std::uint64_t arithSpawns = 0;
    std::uint64_t arithChainSpawns = 0;
    std::uint64_t mixedScalarSpawns = 0;  ///< one scalar + one vector op
    std::uint64_t loadValidations = 0;    ///< decode conversions
    std::uint64_t arithValidations = 0;
    std::uint64_t loadAddrMisspecs = 0;
    std::uint64_t arithOperandMisspecs = 0;
    std::uint64_t storesChecked = 0;
    std::uint64_t storeRangeConflicts = 0; ///< Section 3.6 squashes
    std::uint64_t decodeBlockEvents = 0;   ///< Figure 7 stall cycles
    std::uint64_t lateValidationFallbacks = 0;
    std::uint64_t validationValueMismatches = 0; ///< self-check (== 0)

    // --- fault injection (PR 6). The detect/benign counters examine
    // only *marked* elements, so validationValueMismatches above stays
    // a genuine-bug detector (and stays zero) even under injection. --
    std::uint64_t faultElemFlips = 0;     ///< element bit flips applied
    std::uint64_t faultVrmtFlips = 0;     ///< VRMT corruptions applied
    std::uint64_t faultValidationDetects = 0; ///< injected-mark mismatch
    std::uint64_t faultTaintDetects = 0;      ///< taint-mark mismatch
    std::uint64_t faultValidationBenign = 0;  ///< marked but matched
    std::uint64_t faultVrmtDetects = 0;   ///< address check caught entry
    std::uint64_t faultChainDemotions = 0; ///< chains demoted to scalar
    std::uint64_t faultChainReenables = 0; ///< chains re-enabled
    std::uint64_t faultTlFlips = 0;    ///< TL entry corruptions applied
    std::uint64_t faultGmrbbFlips = 0; ///< shadow-GMRBB tag corruptions
};

/** What a validation commit reported back to the core (fault ledger). */
struct ValCommitResult
{
    bool faultDetected = false; ///< a marked element mismatched
    bool chainDemoted = false;  ///< the detection tripped the K-threshold
};

/** The engine. */
class SdvEngine
{
  public:
    explicit SdvEngine(const EngineConfig &cfg);

    /** @return true when dynamic vectorization is enabled. */
    bool enabled() const { return cfg_.enabled; }

    /**
     * Decode-time hook, called for every instruction in program order
     * after oracle execution. Decides scalar / validation / spawn,
     * updates TL, VRMT, vector registers and the rename table, and
     * records undo state in the DynInst.
     *
     * @param d the decoding instruction
     * @param rt the rename table
     * @param ctx producer-completion queries (Figure 7 blocking)
     */
    DecodeAction decode(DynInst &d, RenameTable &rt,
                        const VecExecContext &ctx);

    /**
     * Side-effect-free probe: would decode(@p rec) return Blocked
     * right now (Figure 7: mixed-operand validation whose captured
     * scalar's producer is in flight)? Used by the event-skipping
     * clock to treat a blocked decode as an idle stage whose wake-up
     * is the producer's scheduled completion, instead of vetoing the
     * jump. Mirrors the decodeArith() Blocked path exactly; no LRU,
     * TL or statistics updates.
     */
    bool decodeWouldBlock(const ExecRecord &rec, const RenameTable &rt,
                          const VecExecContext &ctx) const;

    /**
     * Account @p n skipped cycles of a decode blocked at @p pc: the
     * Figure-7 stall counter and the VRMT LRU touch each blocked
     * cycle's decode() call would have made.
     */
    void
    chargeBlockedCycles(Addr pc, std::uint64_t n)
    {
        stats_.decodeBlockEvents += n;
        vrmt_.touch(pc, n);
    }

    /** @return the target element's status for an in-flight validation. */
    ValStatus validationStatus(const DynInst &d) const;

    /** Give up on a validation whose register died: clears U and lets
     *  the pipeline re-execute the instance in scalar mode. */
    void fallbackValidation(DynInst &d);

    /** Commit of a validation: V flag, value self-check (split into
     *  the genuine self-check and the injected-fault ledger), F shadow.
     *  @return what the fault ledger saw, for CoreStats mirroring. */
    ValCommitResult onValidationCommit(const DynInst &d);

    /** Commit of a register-writing scalar instruction: F shadow, and
     *  the clean-commit countdown of a demoted chain.
     *  @retval true when this commit re-enabled a demoted chain */
    bool onScalarWriterCommit(const DynInst &d);

    /**
     * Commit of a store: Section 3.6 range check.
     * @retval true when a vector register was invalidated and every
     * younger instruction must be squashed
     */
    bool onStoreCommit(const DynInst &d);

    /** Commit of a control instruction: GMRBB update. */
    void onControlCommit(const DynInst &d);

    /** Undo one instruction's decode effects (walk youngest-first). */
    void undoDecode(DynInst &d, RenameTable &rt);

    /** Advance the vector datapath and the register reclamation. */
    void tick(Cycle now, DCachePorts &ports, MemHierarchy &mem);

    /**
     * Event-horizon query for the event-skipping clock: the earliest
     * cycle at which tick() could change engine state. A pending
     * register-release sweep means "this very cycle"; otherwise the
     * horizon is the datapath's.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (vrf_.sweepPending())
            return now;
        return datapath_.nextEventCycle(now);
    }

    /** @return true when no transient vector state is in flight: no
     *  datapath instances or scheduled completions and no pending
     *  release sweep. This is the engine half of Core::quiescent();
     *  deliberately not derived from nextEventCycle(), whose exact
     *  horizon can be finite (or never) while instances are parked. */
    bool
    idle() const
    {
        return datapath_.idle() && !vrf_.sweepPending();
    }

    /** End of simulation: release registers so ledgers resolve. */
    void finalize();

    /**
     * Context-switch quiesce at a checkpoint boundary: drop all
     * transient vector state (datapath instances, vector registers,
     * VRMT, F-flag shadows) while keeping the warm Table of Loads and
     * the GMRBB. The datapath must already be idle.
     */
    void quiesce();

    /** Zero every engine-side statistic (measurement rebase). */
    void
    resetStats()
    {
        stats_ = EngineStats{};
        tl_.resetStats();
        vrf_.resetStats();
        datapath_.resetStats();
        finj_.resetCounters();
    }

    /** Serialize the checkpointable warm state (TL + GMRBB). Only
     *  valid after quiesce(): everything else is transient. */
    void
    saveState(Serializer &ser) const
    {
        ser.u64(gmrbb_);
        tl_.saveState(ser);
    }

    /** Restore warm state; @retval false on geometry mismatch. */
    bool
    loadState(Deserializer &des)
    {
        gmrbb_ = des.u64();
        return tl_.loadState(des);
    }

    /** @return current GMRBB (PC of last committed backward branch). */
    Addr gmrbb() const { return gmrbb_; }

    /** @return the vector register file. */
    VecRegFile &vrf() { return vrf_; }

    /** @return the vector register file (const). */
    const VecRegFile &vrf() const { return vrf_; }

    /** @return the VRMT. */
    Vrmt &vrmt() { return vrmt_; }

    /** @return the Table of Loads. */
    TableOfLoads &tl() { return tl_; }

    /** @return the vector datapath. */
    VectorDatapath &datapath() { return datapath_; }

    /** @return the fault injector (applied-fault counters). */
    const FaultInjector &faultInjector() const { return finj_; }

    /** @return true when chain @p pc is currently demoted to scalar
     *  execution (graceful degradation after repeated faults). */
    bool
    chainDemoted(Addr pc) const
    {
        if (demotions_.empty())
            return false; // hot-path guard: empty unless faults fired
        auto it = demotions_.find(pc);
        return it != demotions_.end() && it->second.demoted;
    }

    /** @return engine statistics. */
    const EngineStats &stats() const { return stats_; }

    /** @return the configuration. */
    const EngineConfig &config() const { return cfg_; }

    /** Attach a flight recorder for chain-lifecycle events (null
     *  detaches; forwarded to the register file by Core::setRecorder). */
    void setRecorder(obs::TraceRecorder *rec) { recorder_ = rec; }

  private:
    /** Shadow of the last committed vector-element writer per logical
     *  register, used to set F flags (Section 3.3). */
    struct Shadow
    {
        bool valid = false;
        VecRegRef vreg;
        std::uint8_t elem = 0;
    };

    DecodeAction decodeLoad(DynInst &d, RenameTable &rt);
    DecodeAction decodeArith(DynInst &d, RenameTable &rt,
                             const VecExecContext &ctx);

    /** Plain scalar rename-table write for d's destination. */
    void plainRenameWrite(DynInst &d, RenameTable &rt);

    /** Record the previous rename entry of d's destination. */
    void saveRenamePrev(DynInst &d, const RenameTable &rt);

    /** Record the previous VRMT entry for d's PC. */
    void saveVrmtPrev(DynInst &d);

    /** Turn d into a validation of the entry's next element. */
    void makeValidation(DynInst &d, RenameTable &rt, VrmtEntry &ve);

    /** Spawn a fresh vectorized load covering the next vlen elements. */
    bool trySpawnLoad(DynInst &d, RenameTable &rt, std::int64_t stride);

    /** Shared successor construction for both chain flavours. */
    VecRegRef spawnSuccessorLoad(DynInst &d, Addr base,
                                 std::int64_t stride, VecRegRef pred);

    /** Chain-spawn the successor load incarnation (Section 3.2). */
    void tryChainLoad(DynInst &d, RenameTable &rt);

    /** Eager load chaining: spawn @p ve's successor incarnation ahead
     *  of exhaustion (recorded in the entry's hasNext/nextVreg fields
     *  and swapped in by decodeLoad when the offset runs out). */
    void eagerSpawnNext(DynInst &d, VrmtEntry &ve);

    /** Build the current SrcSpec of source slot 1 or 2. */
    SrcSpec currentSpec(const DynInst &d, unsigned slot,
                        const RenameTable &rt) const;

    /** @return true when the stored operands still match (Section 3.2).
     *  Takes the bare ExecRecord so the side-effect-free
     *  decodeWouldBlock() probe can run it pre-dispatch. */
    bool operandsMatch(const VrmtEntry &ve, const ExecRecord &rec,
                       const RenameTable &rt) const;

    /** @return true when @p spec is a captured scalar whose producer
     *  is still in flight (the Figure 7 blocking condition). */
    bool scalarOperandBlocked(const SrcSpec &spec, unsigned slot,
                              const ExecRecord &rec,
                              const RenameTable &rt,
                              const VecExecContext &ctx) const;

    /** Elements a new instance with these sources can compute. */
    unsigned computableElems(const SrcSpec &s1, const SrcSpec &s2) const;

    /** @return true when every vector source is a uniform register. */
    bool specsUniform(const SrcSpec &s1, const SrcSpec &s2) const;

    /** Spawn a fresh vectorized arithmetic instance. */
    bool trySpawnArith(DynInst &d, RenameTable &rt, const SrcSpec &s1,
                       const SrcSpec &s2);

    /** Chain-spawn the successor arithmetic incarnation using specs
     *  captured before the triggering validation's rename write. */
    void tryChainArith(DynInst &d, RenameTable &rt, const SrcSpec &s1,
                       const SrcSpec &s2);

    /** Kill the entry's register and abort its datapath instance. */
    void killEntry(VrmtEntry &ve);

    /** Update the F-flag shadow for a committed writer of @p rd. */
    void applyShadowWrite(RegId rd, const Shadow &next);

    /** VRMT fault site: maybe flip one bit of a just-installed load
     *  entry's stride or base address (draws once per install event,
     *  keeping the stream position schedule-independent). */
    void corruptInstall(VrmtEntry &ie);

    /** One detected fault on chain @p pc: bump the consecutive count
     *  and demote the chain to scalar once it reaches the plan's
     *  threshold. @retval true when this fault demoted the chain */
    bool noteChainFault(Addr pc);

    /** A clean validation commit of chain @p pc: reset its consecutive
     *  fault count (the demotion trigger wants *consecutive* faults). */
    void noteChainClean(Addr pc);

    EngineConfig cfg_;
    TableOfLoads tl_;
    Vrmt vrmt_;
    VecRegFile vrf_;
    VectorDatapath datapath_;
    Addr gmrbb_ = 0;
    std::array<Shadow, numLogicalRegs> shadow_{};
    /** Scratch for onStoreCommit (kept allocated across stores). */
    std::vector<Addr> storeCheckPcs_;
    std::vector<VecRegRef> storeCheckSuccessors_;

    /** Graceful degradation under fault injection: per-chain fault
     *  tracking. A chain (static PC) accumulating demoteThreshold
     *  consecutive detected faults is demoted to scalar execution —
     *  decode treats it as ineligible — and re-enabled after
     *  reenableWindow clean scalar commits. Empty unless faults fire,
     *  so baseline runs pay one empty() branch per relevant commit. */
    struct Demotion
    {
        std::uint32_t consecutiveFaults = 0;
        bool demoted = false;
        std::uint64_t cleanRemaining = 0;
    };
    std::unordered_map<Addr, Demotion> demotions_;

    FaultInjector finj_;
    EngineStats stats_;
    obs::TraceRecorder *recorder_ = nullptr;
};

} // namespace sdv

#endif // SDV_CORE_SDV_ENGINE_HH
