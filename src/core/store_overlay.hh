/**
 * @file
 * FIFO of the pre-images of oracle-executed stores that have not yet
 * committed, plus the interval-based overlay that rewinds them out of a
 * loaded value. Speculative vector-element loads must observe the
 * committed memory state, not the oracle-at-fetch image which already
 * contains future stores; the overlay reconstructs that view.
 *
 * The hot query, overlay(), runs on every speculative vector-element
 * load, so it is built around two early exits (empty FIFO, and a
 * running [lo, hi) hull of every pending store so disjoint loads skip
 * the scan entirely) and word-at-a-time masking instead of a per-byte
 * loop for the stores that do overlap.
 */

#ifndef SDV_CORE_STORE_OVERLAY_HH
#define SDV_CORE_STORE_OVERLAY_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace sdv {

/** One in-flight store's pre-image, [addr, addr + size). */
struct PendingStore
{
    Addr addr = 0;
    unsigned size = 0;
    std::uint64_t preValue = 0;
};

/** Program-ordered pending-store FIFO with the committed-view overlay. */
class PendingStoreOverlay
{
  public:
    /** @return true when no store is in flight. */
    bool empty() const { return fifo_.empty(); }

    /** @return number of in-flight stores. */
    std::size_t size() const { return fifo_.size(); }

    /** @return the oldest in-flight store. */
    const PendingStore &front() const { return fifo_.front(); }

    /** Record an oracle-executed store's pre-image (program order). */
    void
    push(Addr addr, unsigned size, std::uint64_t pre_value)
    {
        fifo_.push_back({addr, size, pre_value});
        const Addr hi = addr + size;
        if (fifo_.size() == 1) {
            hullLo_ = addr;
            hullHi_ = hi;
        } else {
            if (addr < hullLo_)
                hullLo_ = addr;
            if (hi > hullHi_)
                hullHi_ = hi;
        }
    }

    /** Retire the oldest store (it committed to memory). */
    void
    popFront()
    {
        fifo_.pop_front();
        // The hull only shrinks back once the FIFO drains; stores
        // commit continuously so this resets often.
        if (fifo_.empty()) {
            hullLo_ = ~Addr(0);
            hullHi_ = 0;
        }
    }

    /**
     * Rewind the pending stores out of @p val, the value read from the
     * oracle image at [@p addr, @p addr + @p size). Applying pre-images
     * youngest-first leaves the oldest in-flight store's pre-image (the
     * committed state) authoritative per byte.
     */
    std::uint64_t
    overlay(std::uint64_t val, Addr addr, unsigned size) const
    {
        if (fifo_.empty())
            return val;
        const Addr l_lo = addr;
        const Addr l_hi = addr + size;
        if (l_hi <= hullLo_ || l_lo >= hullHi_)
            return val; // disjoint from every in-flight store
        for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it) {
            const Addr lo = it->addr > l_lo ? it->addr : l_lo;
            const Addr s_hi = it->addr + it->size;
            const Addr hi = s_hi < l_hi ? s_hi : l_hi;
            if (lo >= hi)
                continue;
            const unsigned n = unsigned(hi - lo);
            const unsigned src_shift = 8 * unsigned(lo - it->addr);
            const unsigned dst_shift = 8 * unsigned(lo - l_lo);
            const std::uint64_t mask =
                n >= 8 ? ~std::uint64_t(0)
                       : (std::uint64_t(1) << (8 * n)) - 1;
            val &= ~(mask << dst_shift);
            val |= ((it->preValue >> src_shift) & mask) << dst_shift;
        }
        return val;
    }

  private:
    std::deque<PendingStore> fifo_;
    /** Hull of every pending store's byte range (empty: lo > hi). */
    Addr hullLo_ = ~Addr(0);
    Addr hullHi_ = 0;
};

} // namespace sdv

#endif // SDV_CORE_STORE_OVERLAY_HH
