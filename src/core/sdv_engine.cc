#include "core/sdv_engine.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/hooks.hh"

namespace sdv {

namespace {

/** Pack a register incarnation into one trace-event argument. */
std::uint64_t
packRef(VecRegRef ref)
{
    return std::uint64_t(ref.reg) |
           (std::uint64_t(ref.gen & 0xffffu) << 16);
}

} // namespace

SdvEngine::SdvEngine(const EngineConfig &cfg)
    : cfg_(cfg), tl_(cfg.tlSets, cfg.tlWays, cfg.tlConfidence),
      vrmt_(cfg.vrmtSets, cfg.vrmtWays), vrf_(cfg.numVregs, cfg.vlen),
      datapath_(cfg.fu, vrf_)
{
    finj_.configure(cfg.fault);
    datapath_.setFaultInjector(&finj_);
}

void
SdvEngine::saveRenamePrev(DynInst &d, const RenameTable &rt)
{
    if (!d.wroteRename) {
        d.wroteRename = true;
        d.prevRename = rt.entry(d.inst().rd);
    }
}

void
SdvEngine::saveVrmtPrev(DynInst &d)
{
    if (!d.replacedVrmt) {
        d.replacedVrmt = true;
        const VrmtEntry *prev = vrmt_.lookup(d.pc());
        d.prevVrmtExisted = prev != nullptr;
        if (prev)
            d.prevVrmt = *prev;
    }
}

void
SdvEngine::plainRenameWrite(DynInst &d, RenameTable &rt)
{
    if (!d.inst().writesReg())
        return;
    saveRenamePrev(d, rt);
    RenameEntry e;
    e.lastWriter = d.seq;
    rt.set(d.inst().rd, e);
}

DecodeAction
SdvEngine::decode(DynInst &d, RenameTable &rt,
                  const VecExecContext &ctx)
{
    if (!cfg_.enabled) {
        plainRenameWrite(d, rt);
        return DecodeAction::Normal;
    }
    // Graceful degradation: a chain demoted after repeated injected
    // faults executes purely scalar — no TL observation, no VRMT, no
    // validations — until its clean-commit window re-enables it.
    if (chainDemoted(d.pc())) {
        plainRenameWrite(d, rt);
        return DecodeAction::Normal;
    }
    const OpInfo &info = d.inst().info();
    if (d.isLoad() && info.vectorizable && d.inst().rd != zeroReg)
        return decodeLoad(d, rt);
    if (info.vectorizable && info.writesRd && d.inst().rd != zeroReg &&
        !d.isLoad())
        return decodeArith(d, rt, ctx);
    plainRenameWrite(d, rt);
    return DecodeAction::Normal;
}

// --- loads --------------------------------------------------------------

DecodeAction
SdvEngine::decodeLoad(DynInst &d, RenameTable &rt)
{
    const Addr pc = d.pc();
    if (!d.touchedTl) {
        d.touchedTl = true;
        d.tlSnap = tl_.snapshot(pc);
    }
    const TlObservation obs = tl_.observe(pc, d.rec.addr);
    if (finj_.armed()) {
        // TL fault site: corrupt the just-trained entry's stride or
        // last address. d.tlSnap predates the flip, so squash undo
        // reverses it along with the training — faults stay committed-
        // path deterministic. The corruption mistrains future spawns
        // only; wrong spawns die on the expected-address check.
        const TlFault f = finj_.drawTlFault();
        if (f.fire)
            tl_.applyFault(pc, f.strideField, f.mask);
    }

    VrmtEntry *ve = vrmt_.lookup(pc);

    // Eager chaining: once the current incarnation is exhausted — or
    // already *released* (a fully validated, fully superseded register
    // frees before this pc decodes again; the entry then reads dead
    // even though its pending successor carries the chain) — swap the
    // successor in and validate its first element.
    if (cfg_.eagerChainLoads && ve && ve->isLoad && ve->hasNext) {
        const bool cur_live = vrf_.isLive(ve->vreg) &&
                              !vrf_.isKilled(ve->vreg);
        const bool exhausted =
            !cur_live || ve->offset >= vrf_.elemCount(ve->vreg);
        if (exhausted) {
            const bool next_ok = vrf_.isLive(ve->nextVreg) &&
                                 !vrf_.isKilled(ve->nextVreg);
            if (next_ok &&
                d.rec.addr == ve->nextBase + Addr(ve->stride)) {
                saveVrmtPrev(d); // pre-swap entry for squash undo
                vrmt_.rebindVreg(*ve, ve->nextVreg);
                ve->baseAddr = ve->nextBase;
                ve->offset = 0;
                ve->hasNext = false;
                makeValidation(d, rt, *ve);
                ++stats_.loadValidations;
                eagerSpawnNext(d, *ve); // keep one incarnation ahead
                return DecodeAction::Normal;
            }
            // The pattern broke right at the successor boundary (or
            // the successor died): the eager loads were wasted.
            killEntry(*ve);
            plainRenameWrite(d, rt);
            return DecodeAction::Normal;
        }
    }

    const bool ve_live = ve && vrf_.isLive(ve->vreg) &&
                         !vrf_.isKilled(ve->vreg) && ve->isLoad;

    if (ve_live) {
        const unsigned count = vrf_.elemCount(ve->vreg);
        if (ve->offset < count) {
            const Addr expected =
                ve->baseAddr +
                Addr(ve->stride * std::int64_t(ve->offset + 1));
            if (d.rec.addr == expected) {
                makeValidation(d, rt, *ve);
                ++stats_.loadValidations;
                if (cfg_.eagerChainLoads) {
                    // Spawn the successor a whole incarnation early —
                    // at the first validation — so its element loads
                    // lead their consumers by ~vlen loop iterations
                    // regardless of the chain's line alignment.
                    if (d.valElem == 0 && !ve->hasNext)
                        eagerSpawnNext(d, *ve);
                    // Allocation failed at element 0: fall back to the
                    // paper's last-element chain.
                    if (unsigned(d.valElem) + 1 == count &&
                        !ve->hasNext)
                        tryChainLoad(d, rt);
                } else if (unsigned(d.valElem) + 1 == count) {
                    tryChainLoad(d, rt);
                }
                return DecodeAction::Normal;
            }
            // Address misspeculation: scalar until the TL re-detects.
            if (ve->faultInjected) {
                // The expected-address check caught an entry whose
                // stride/base was corrupted at install: that is the
                // VRMT fault site *detecting*, so it feeds the
                // injection ledger, not the genuine misspec stat.
                ++stats_.faultVrmtDetects;
                SDV_OBS_EVENT(recorder_,
                              ::sdv::obs::EventKind::FaultDetect, pc,
                              packRef(ve->vreg));
                d.fiDetected = true;
                if (noteChainFault(pc))
                    d.fiDemoted = true;
            } else {
                ++stats_.loadAddrMisspecs;
                SDV_OBS_EVENT(recorder_, ::sdv::obs::EventKind::ValMiss,
                              pc, packRef(ve->vreg), /*addr_misspec=*/2);
            }
            killEntry(*ve);
            tl_.resetConfidence(pc);
            plainRenameWrite(d, rt);
            return DecodeAction::Normal;
        }
        // The chain spawn could not get a register (or the successor
        // died to a store conflict); continue the pattern with a fresh
        // spawn if the address still follows it.
        const Addr expected =
            ve->baseAddr + Addr(ve->stride * std::int64_t(count + 1));
        if (d.rec.addr == expected &&
            trySpawnLoad(d, rt, ve->stride)) {
            return DecodeAction::Normal;
        }
        killEntry(*ve);
        plainRenameWrite(d, rt);
        return DecodeAction::Normal;
    }


    if (obs.spawn) {
        SDV_OBS_EVENT(recorder_, ::sdv::obs::EventKind::TlPromote, pc,
                      std::uint64_t(obs.stride));
        if (trySpawnLoad(d, rt, obs.stride))
            return DecodeAction::Normal;
    }

    plainRenameWrite(d, rt);
    return DecodeAction::Normal;
}

bool
SdvEngine::trySpawnLoad(DynInst &d, RenameTable &rt, std::int64_t stride)
{
    const VecRegRef v = vrf_.allocate(gmrbb_);
    if (!v.valid())
        return false;
    const unsigned vl = cfg_.vlen;
    vrf_.setElemCount(v, vl);
    vrf_.setUniform(v, stride == 0);
    const Addr first = d.rec.addr + Addr(stride);
    const Addr last = d.rec.addr + Addr(stride * std::int64_t(vl));
    vrf_.setAddrRange(v, first, last, d.rec.size);

    saveVrmtPrev(d);
    VrmtEntry e;
    e.valid = true;
    e.pc = d.pc();
    e.vreg = v;
    e.offset = 0;
    e.isLoad = true;
    e.stride = stride;
    e.baseAddr = d.rec.addr;
    corruptInstall(vrmt_.install(e));

    datapath_.spawnLoad(d.pc(), v, d.rec.addr, stride, d.rec.size, vl);

    d.spawnedVector = true;
    d.spawnedDest = v;

    saveRenamePrev(d, rt);
    RenameEntry re;
    re.lastWriter = d.seq;
    re.isVector = true;
    re.vreg = v;
    re.offset = 0;
    rt.set(d.inst().rd, re);

    ++stats_.loadSpawns;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainSpawn, d.pc(),
                  packRef(v), /*arith=*/0);
    return true;
}

/**
 * Allocate and launch a load-chain successor incarnation starting at
 * @p base: the shared construction sequence of the last-element chain
 * (tryChainLoad) and the eager chain (eagerSpawnNext), so successor
 * invariants live in exactly one place.
 *
 * The successor of a stride-0 chain is uniform by construction —
 * every element loads the same address. (Bugfix in PR 5: the seed
 * only marked fresh spawns, so chained incarnations lost the flag and
 * their consumers fell back to lockstep element matching.)
 *
 * @return the new incarnation, or an invalid ref when no register was
 * free (the caller's retry paths handle it)
 */
VecRegRef
SdvEngine::spawnSuccessorLoad(DynInst &d, Addr base,
                              std::int64_t stride, VecRegRef pred)
{
    const VecRegRef v2 = vrf_.allocate(gmrbb_);
    if (!v2.valid())
        return v2;
    const unsigned vl = cfg_.vlen;
    vrf_.setElemCount(v2, vl);
    vrf_.setUniform(v2, stride == 0);
    vrf_.setPredecessor(v2, pred);
    vrf_.setAddrRange(v2, base + Addr(stride),
                      base + Addr(stride * std::int64_t(vl)),
                      d.rec.size);

    datapath_.spawnLoad(d.pc(), v2, base, stride, d.rec.size, vl);

    d.spawnedVector = true;
    d.spawnedDest = v2;
    ++stats_.loadChainSpawns;
    return v2;
}

void
SdvEngine::tryChainLoad(DynInst &d, RenameTable &rt)
{
    // d just validated the last element at address d.rec.addr; the
    // successor incarnation continues from there.
    VrmtEntry *ve = vrmt_.lookup(d.pc());
    sdv_assert(ve, "chain with no entry");
    const Addr base = d.rec.addr;
    const VecRegRef v2 = spawnSuccessorLoad(d, base, ve->stride,
                                            ve->vreg);
    if (!v2.valid())
        return; // the offset==count decode path retries later
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainExtend, d.pc(),
                  packRef(v2), /*eager=*/0);

    saveVrmtPrev(d);
    VrmtEntry e = *ve;
    e.vreg = v2;
    e.offset = 0;
    e.baseAddr = base;
    corruptInstall(vrmt_.install(e));

    // Keep lastWriter/curElem from the validation; repoint the vector
    // mapping at the new incarnation.
    RenameEntry re = rt.entry(d.inst().rd);
    re.vreg = v2;
    re.offset = 0;
    rt.set(d.inst().rd, re);
}

void
SdvEngine::eagerSpawnNext(DynInst &d, VrmtEntry &ve)
{
    // The successor continues from the current incarnation's last
    // element, whose address is fully determined by the stored stride.
    const Addr base =
        ve.baseAddr +
        Addr(ve.stride * std::int64_t(vrf_.elemCount(ve.vreg)));
    const VecRegRef v2 = spawnSuccessorLoad(d, base, ve.stride,
                                            ve.vreg);
    if (!v2.valid())
        return; // last-element validation falls back to tryChainLoad
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainExtend, d.pc(),
                  packRef(v2), /*eager=*/1);

    saveVrmtPrev(d);
    ve.hasNext = true;
    ve.nextVreg = v2;
    ve.nextBase = base;
}

// --- arithmetic ------------------------------------------------------------

SrcSpec
SdvEngine::currentSpec(const DynInst &d, unsigned slot,
                       const RenameTable &rt) const
{
    const OpInfo &info = d.inst().info();
    const bool reads = slot == 1 ? info.readsRs1 : info.readsRs2;
    if (!reads)
        return SrcSpec::none();
    const RegId r = slot == 1 ? d.inst().rs1 : d.inst().rs2;
    const std::uint64_t value =
        slot == 1 ? d.rec.srcValue1 : d.rec.srcValue2;
    const RenameEntry &e = rt.entry(r);
    if (e.isVector && vrf_.isLive(e.vreg) && !vrf_.isKilled(e.vreg))
        return SrcSpec::vector(e.vreg, e.offset);
    SrcSpec spec = SrcSpec::scalar(value);
    spec.depSeq = e.lastWriter; // instance waits for it in the queue
    return spec;
}

bool
SdvEngine::operandsMatch(const VrmtEntry &ve, const ExecRecord &rec,
                         const RenameTable &rt) const
{
    const OpInfo &info = rec.inst.info();
    for (unsigned slot = 1; slot <= 2; ++slot) {
        const bool reads = slot == 1 ? info.readsRs1 : info.readsRs2;
        const SrcSpec &stored = slot == 1 ? ve.src1 : ve.src2;
        if (!reads) {
            if (stored.kind != SrcSpec::Kind::None)
                return false;
            continue;
        }
        const RegId r = slot == 1 ? rec.inst.rs1 : rec.inst.rs2;
        const std::uint64_t cur_value =
            slot == 1 ? rec.srcValue1 : rec.srcValue2;
        switch (stored.kind) {
          case SrcSpec::Kind::None:
            return false;
          case SrcSpec::Kind::Scalar:
            // Paper: compare the captured value with the register's
            // current value.
            if (cur_value != stored.value)
                return false;
            break;
          case SrcSpec::Kind::Vector: {
            // The value this scalar instance would consume must be
            // element (srcOffset + k) of the stored register, where k
            // is the element about to be validated. A uniform source
            // (all elements identical, e.g. a stride-0 load) matches
            // regardless of the element offset.
            if (!vrf_.isLive(stored.vreg) || vrf_.isKilled(stored.vreg))
                return false;
            const RenameEntry &e = rt.entry(r);
            if (!e.hasCurElem || !(e.curElemVreg == stored.vreg))
                return false;
            const unsigned want = stored.srcOffset + ve.offset;
            if (e.curElem != want && !vrf_.isUniform(stored.vreg))
                return false;
            break;
          }
        }
    }
    return true;
}

bool
SdvEngine::scalarOperandBlocked(const SrcSpec &spec, unsigned slot,
                                const ExecRecord &rec,
                                const RenameTable &rt,
                                const VecExecContext &ctx) const
{
    if (!spec.isScalar())
        return false;
    const OpInfo &info = rec.inst.info();
    const bool reads = slot == 1 ? info.readsRs1 : info.readsRs2;
    if (!reads)
        return false;
    const RegId r = slot == 1 ? rec.inst.rs1 : rec.inst.rs2;
    const InstSeqNum w = rt.entry(r).lastWriter;
    return w != 0 && !ctx.seqCompleted(w);
}

bool
SdvEngine::decodeWouldBlock(const ExecRecord &rec, const RenameTable &rt,
                            const VecExecContext &ctx) const
{
    // Mirror of the decodeArith() Blocked path over a peeked (LRU- and
    // stats-neutral) VRMT entry. Loads never block; neither does a
    // disabled engine or the Figure-7 "ideal" configuration.
    if (!cfg_.enabled || !cfg_.blockOnScalarOperand)
        return false;
    if (chainDemoted(rec.pc))
        return false; // demoted chains decode as plain scalar
    const OpInfo &info = rec.inst.info();
    if (!info.vectorizable || !info.writesRd ||
        rec.inst.rd == zeroReg || rec.inst.isLoad())
        return false;

    const VrmtEntry *ve = vrmt_.peek(rec.pc);
    if (!ve || !vrf_.isLive(ve->vreg) || vrf_.isKilled(ve->vreg) ||
        ve->isLoad)
        return false;
    if (ve->offset >= vrf_.elemCount(ve->vreg))
        return false;
    if (!operandsMatch(*ve, rec, rt))
        return false;
    const bool mixed = (ve->src1.isScalar() || ve->src2.isScalar()) &&
                       (ve->src1.isVector() || ve->src2.isVector());
    if (!mixed)
        return false;
    return scalarOperandBlocked(ve->src1, 1, rec, rt, ctx) ||
           scalarOperandBlocked(ve->src2, 2, rec, rt, ctx);
}

DecodeAction
SdvEngine::decodeArith(DynInst &d, RenameTable &rt,
                       const VecExecContext &ctx)
{
    const Addr pc = d.pc();
    VrmtEntry *ve = vrmt_.lookup(pc);
    const bool ve_live = ve && vrf_.isLive(ve->vreg) &&
                         !vrf_.isKilled(ve->vreg) && !ve->isLoad;

    if (ve_live && ve->offset < vrf_.elemCount(ve->vreg) &&
        operandsMatch(*ve, d.rec, rt)) {
        // Section 3.2: validating a mixed (vector + captured-scalar)
        // entry compares the scalar *value*, so decode must hold the
        // instruction until the value is available (Figure 7).
        const bool mixed = (ve->src1.isScalar() || ve->src2.isScalar()) &&
                           (ve->src1.isVector() || ve->src2.isVector());
        if (mixed && cfg_.blockOnScalarOperand &&
            (scalarOperandBlocked(ve->src1, 1, d.rec, rt, ctx) ||
             scalarOperandBlocked(ve->src2, 2, d.rec, rt, ctx))) {
            ++stats_.decodeBlockEvents;
            return DecodeAction::Blocked;
        }
        // Capture the successor's source specs *before* the validation
        // rewrites the rename entry: when rd == rs the write would
        // otherwise hide the source's current mapping.
        const bool last =
            unsigned(ve->offset) + 1 == vrf_.elemCount(ve->vreg);
        SrcSpec cs1, cs2;
        if (last) {
            cs1 = currentSpec(d, 1, rt);
            cs2 = currentSpec(d, 2, rt);
        }
        makeValidation(d, rt, *ve);
        ++stats_.arithValidations;
        if (last)
            tryChainArith(d, rt, cs1, cs2);
        return DecodeAction::Normal;
    }

    // Source specs for the spawn path, captured before any killEntry
    // below: a stale entry being killed may BE a source's current
    // rename mapping (rd == rs), and the original capture saw it live.
    const SrcSpec s1 = currentSpec(d, 1, rt);
    const SrcSpec s2 = currentSpec(d, 2, rt);
    const bool any_vec = s1.isVector() || s2.isVector();

    if (ve_live) {
        // Entry exists but cannot validate this instance: operand
        // mismatch (misspeculation) or exhausted incarnation.
        if (ve->offset < vrf_.elemCount(ve->vreg)) {
            ++stats_.arithOperandMisspecs;
            SDV_OBS_EVENT(recorder_, obs::EventKind::ValMiss, pc,
                          packRef(ve->vreg), /*operand_misspec=*/3);
        }
        killEntry(*ve);
    } else if (ve && ve->isLoad && vrf_.isLive(ve->vreg)) {
        // A load entry aliased onto this PC (should not happen: PCs are
        // unique per instruction) - treat as stale.
        killEntry(*ve);
    }

    if (any_vec) {
        // Spawns never block decode: the new vector instance waits in
        // the vector instruction queue until its captured-scalar
        // operand's producer completes (Section 3.4).
        if (trySpawnArith(d, rt, s1, s2))
            return DecodeAction::Normal;
    }

    plainRenameWrite(d, rt);
    return DecodeAction::Normal;
}

bool
SdvEngine::specsUniform(const SrcSpec &s1, const SrcSpec &s2) const
{
    bool any_vector = false;
    for (const SrcSpec *s : {&s1, &s2}) {
        if (!s->isVector())
            continue;
        any_vector = true;
        // A source reclaimed meanwhile (lazy condition-2 steal) is
        // treated as non-uniform; the instance will abort anyway.
        if (!vrf_.isLive(s->vreg) || !vrf_.isUniform(s->vreg))
            return false;
    }
    return any_vector; // all vector sources uniform
}

unsigned
SdvEngine::computableElems(const SrcSpec &s1, const SrcSpec &s2) const
{
    // Section 3.4: the largest source offset bounds the element count;
    // additionally a source incarnation that itself computes fewer than
    // vlen elements bounds its consumers (otherwise a consumer would
    // wait forever on an element its producer will never make).
    // Uniform sources impose no bound: any computed element serves.
    unsigned count = cfg_.vlen;
    for (const SrcSpec *s : {&s1, &s2}) {
        if (!s->isVector())
            continue;
        if (!vrf_.isLive(s->vreg))
            return 0; // reclaimed meanwhile: nothing to compute
        if (vrf_.isUniform(s->vreg))
            continue;
        const unsigned avail = vrf_.elemCount(s->vreg);
        if (s->srcOffset >= avail)
            return 0;
        count = std::min(count, avail - s->srcOffset);
    }
    return count;
}

bool
SdvEngine::trySpawnArith(DynInst &d, RenameTable &rt, const SrcSpec &s1,
                         const SrcSpec &s2)
{
    // Evaluate source-derived properties before allocate(): its lazy
    // condition-2 reclamation may steal one of the source registers.
    const unsigned count = computableElems(s1, s2);
    const bool uniform = specsUniform(s1, s2);
    if (count == 0)
        return false;

    const VecRegRef v = vrf_.allocate(gmrbb_);
    if (!v.valid())
        return false;
    vrf_.setElemCount(v, count);
    vrf_.setUniform(v, uniform);

    saveVrmtPrev(d);
    VrmtEntry e;
    e.valid = true;
    e.pc = d.pc();
    e.vreg = v;
    e.offset = 0;
    e.src1 = s1;
    e.src2 = s2;
    e.isLoad = false;
    vrmt_.install(e);

    datapath_.spawnArith(d.pc(), d.inst().op, d.inst().imm, v, s1, s2,
                         count);

    d.spawnedVector = true;
    d.spawnedDest = v;

    saveRenamePrev(d, rt);
    RenameEntry re;
    re.lastWriter = d.seq;
    re.isVector = true;
    re.vreg = v;
    re.offset = 0;
    rt.set(d.inst().rd, re);

    ++stats_.arithSpawns;
    if ((s1.isScalar() && s2.isVector()) ||
        (s1.isVector() && s2.isScalar()))
        ++stats_.mixedScalarSpawns;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainSpawn, d.pc(),
                  packRef(v), /*arith=*/1);
    return true;
}

void
SdvEngine::tryChainArith(DynInst &d, RenameTable &rt, const SrcSpec &s1,
                         const SrcSpec &s2)
{
    // Sources for the successor incarnation are the rename mappings as
    // captured just before this validation's own rename write (they
    // already point at the sources' successor incarnations mid-loop).
    if (!s1.isVector() && !s2.isVector())
        return; // no vector source any more: stop the chain

    const unsigned count = computableElems(s1, s2);
    const bool uniform = specsUniform(s1, s2);
    if (count == 0)
        return;

    const VecRegRef v2 = vrf_.allocate(gmrbb_);
    if (!v2.valid())
        return;
    vrf_.setElemCount(v2, count);
    vrf_.setUniform(v2, uniform);
    vrf_.setPredecessor(v2, d.valVreg);

    saveVrmtPrev(d);
    VrmtEntry e;
    e.valid = true;
    e.pc = d.pc();
    e.vreg = v2;
    e.offset = 0;
    e.src1 = s1;
    e.src2 = s2;
    e.isLoad = false;
    vrmt_.install(e);

    datapath_.spawnArith(d.pc(), d.inst().op, d.inst().imm, v2, s1, s2,
                         count);

    d.spawnedVector = true;
    d.spawnedDest = v2;

    RenameEntry re = rt.entry(d.inst().rd);
    re.vreg = v2;
    re.offset = 0;
    rt.set(d.inst().rd, re);

    ++stats_.arithChainSpawns;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainExtend, d.pc(),
                  packRef(v2), /*eager=*/0);
}

// --- shared decode helpers ------------------------------------------------

void
SdvEngine::makeValidation(DynInst &d, RenameTable &rt, VrmtEntry &ve)
{
    d.mode = InstMode::Validation;
    d.valVreg = ve.vreg;
    d.valElem = ve.offset;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ValIssue, d.pc(),
                  packRef(ve.vreg), ve.offset);
    vrf_.setUsed(ve.vreg, ve.offset, true);
    ++ve.offset;
    d.bumpedVrmtOffset = true;

    saveRenamePrev(d, rt);
    RenameEntry re;
    re.lastWriter = d.seq;
    re.isVector = true;
    re.vreg = ve.vreg;
    re.offset = ve.offset;
    re.curElemVreg = ve.vreg;
    re.curElem = d.valElem;
    re.hasCurElem = true;
    rt.set(d.inst().rd, re);
}

void
SdvEngine::corruptInstall(VrmtEntry &ie)
{
    if (!finj_.armed())
        return;
    const VrmtFault f = finj_.drawVrmtFault();
    if (!f.fire)
        return;
    if (f.strideField)
        ie.stride ^= std::int64_t(f.mask);
    else
        ie.baseAddr ^= f.mask;
    ie.faultInjected = true;
    SDV_OBS_EVENT(recorder_, obs::EventKind::FaultInject, ie.pc,
                  packRef(ie.vreg));
}

bool
SdvEngine::noteChainFault(Addr pc)
{
    if (!finj_.armed())
        return false;
    Demotion &dm = demotions_[pc];
    if (dm.demoted)
        return false; // draining validations of an already-demoted chain
    if (++dm.consecutiveFaults < cfg_.fault.demoteThreshold)
        return false;
    dm.demoted = true;
    dm.consecutiveFaults = 0;
    dm.cleanRemaining =
        cfg_.fault.reenableWindow ? cfg_.fault.reenableWindow : 1;
    ++stats_.faultChainDemotions;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainDemote, pc);
    // Cut the chain immediately: kill its entry (and datapath
    // instance) so no further validation consumes the faulted stream;
    // in-flight validations of the killed register fall back to scalar
    // instead of wedging the register file.
    if (VrmtEntry *ve = vrmt_.lookup(pc))
        killEntry(*ve);
    return true;
}

void
SdvEngine::noteChainClean(Addr pc)
{
    if (demotions_.empty())
        return;
    auto it = demotions_.find(pc);
    if (it != demotions_.end() && !it->second.demoted)
        it->second.consecutiveFaults = 0;
}

void
SdvEngine::killEntry(VrmtEntry &ve)
{
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainKill, ve.pc,
                  packRef(ve.vreg));
    if (vrf_.isLive(ve.vreg)) {
        vrf_.kill(ve.vreg);
        datapath_.abortByDest(ve.vreg);
    }
    if (ve.hasNext && vrf_.isLive(ve.nextVreg)) {
        vrf_.kill(ve.nextVreg);
        datapath_.abortByDest(ve.nextVreg);
    }
    ve.valid = false;
}

// --- completion / commit side -------------------------------------------

ValStatus
SdvEngine::validationStatus(const DynInst &d) const
{
    if (!vrf_.isLive(d.valVreg))
        return ValStatus::Dead;
    if (vrf_.isReady(d.valVreg, d.valElem))
        return ValStatus::Ready;
    if (vrf_.isKilled(d.valVreg))
        return ValStatus::Dead; // will never be computed
    return ValStatus::Waiting;
}

void
SdvEngine::fallbackValidation(DynInst &d)
{
    if (vrf_.isLive(d.valVreg))
        vrf_.setUsed(d.valVreg, d.valElem, false);
    d.mode = InstMode::Scalar;
    d.valElemFellBack = true;
    ++stats_.lateValidationFallbacks;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ValMiss, d.pc(),
                  packRef(d.valVreg), /*fallback=*/1);
}

ValCommitResult
SdvEngine::onValidationCommit(const DynInst &d)
{
    ValCommitResult res;
    if (vrf_.isLive(d.valVreg)) {
        if (vrf_.isReady(d.valVreg, d.valElem)) {
            const bool mismatch =
                vrf_.data(d.valVreg, d.valElem) != d.rec.value;
            if (vrf_.elemFaultMarked(d.valVreg, d.valElem)) {
                // Injection ledger: a marked element never passes
                // silently — it is detected here (mismatch), examined
                // and found benign (the flip reverted a value that was
                // already misspeculated by exactly that bit, or a
                // tainted recomputation landed on the right value), or
                // its register releases unconsumed (the vanished
                // fates). Either way the mark is consumed now, so the
                // genuine self-check below stays a genuine self-check.
                const bool injected =
                    vrf_.elemFaultInjected(d.valVreg, d.valElem);
                if (mismatch) {
                    if (injected)
                        ++stats_.faultValidationDetects;
                    else
                        ++stats_.faultTaintDetects;
                    SDV_OBS_EVENT(recorder_, obs::EventKind::FaultDetect,
                                  d.pc(), packRef(d.valVreg));
                    res.faultDetected = true;
                    res.chainDemoted = noteChainFault(d.pc());
                    // Repair the payload with the architectural value
                    // the oracle just committed: later consumers of
                    // this element read clean data, so one flip is
                    // accounted exactly once.
                    vrf_.repairData(d.valVreg, d.valElem, d.rec.value);
                } else {
                    if (injected)
                        ++stats_.faultValidationBenign;
                    vrf_.clearFaultMarks(d.valVreg, d.valElem);
                    noteChainClean(d.pc());
                    SDV_OBS_EVENT(recorder_, obs::EventKind::ValHit,
                                  d.pc(), packRef(d.valVreg), d.valElem);
                }
            } else if (mismatch) {
                ++stats_.validationValueMismatches;
                SDV_OBS_EVENT(recorder_, obs::EventKind::ValMiss, d.pc(),
                              packRef(d.valVreg), /*mismatch=*/0);
            } else {
                noteChainClean(d.pc());
                SDV_OBS_EVENT(recorder_, obs::EventKind::ValHit, d.pc(),
                              packRef(d.valVreg), d.valElem);
            }
        }
        vrf_.setValid(d.valVreg, d.valElem);
    }
    Shadow next;
    next.valid = true;
    next.vreg = d.valVreg;
    next.elem = d.valElem;
    applyShadowWrite(d.inst().rd, next);
    return res;
}

bool
SdvEngine::onScalarWriterCommit(const DynInst &d)
{
    if (d.inst().writesReg())
        applyShadowWrite(d.inst().rd, Shadow{});
    // Clean-commit countdown of a demoted chain: after reenableWindow
    // scalar commits of the demoted PC without further incident, give
    // speculation another chance.
    if (demotions_.empty())
        return false;
    auto it = demotions_.find(d.pc());
    if (it == demotions_.end() || !it->second.demoted)
        return false;
    if (it->second.cleanRemaining > 1) {
        --it->second.cleanRemaining;
        return false;
    }
    demotions_.erase(it);
    ++stats_.faultChainReenables;
    SDV_OBS_EVENT(recorder_, obs::EventKind::ChainReenable, d.pc());
    return true;
}

void
SdvEngine::applyShadowWrite(RegId rd, const Shadow &next)
{
    if (rd == zeroReg)
        return;
    Shadow &sh = shadow_[rd];
    if (sh.valid && vrf_.isLive(sh.vreg))
        vrf_.setFree(sh.vreg, sh.elem);
    sh = next;
}

bool
SdvEngine::onStoreCommit(const DynInst &d)
{
    if (!cfg_.enabled)
        return false;
    ++stats_.storesChecked;
    const Addr lo = d.rec.addr;
    const Addr hi = lo + d.rec.size - 1;
    bool conflict = false;
    std::vector<Addr> &load_pcs = storeCheckPcs_;
    load_pcs.clear();
    std::vector<VecRegRef> &successors = storeCheckSuccessors_;
    successors.clear();
    vrf_.forEachLive([&](VecRegRef ref) {
        if (vrf_.rangeOverlaps(ref, lo, hi) && !vrf_.isKilled(ref)) {
            conflict = true;
            vrmt_.invalidateByVreg(ref, &load_pcs, &successors);
            vrf_.kill(ref);
            datapath_.abortByDest(ref);
        }
    });
    // An invalidated entry's eagerly-spawned successor is reachable
    // only through that entry: kill it with the entry (as killEntry
    // does), or it leaks as an unreachable live register with element
    // loads still in flight.
    for (const VecRegRef succ : successors) {
        if (vrf_.isLive(succ) && !vrf_.isKilled(succ)) {
            vrf_.kill(succ);
            datapath_.abortByDest(succ);
        }
    }
    if (conflict) {
        ++stats_.storeRangeConflicts;
        // Scalar mode until the TL regains confidence (Section 3.1).
        for (Addr pc : load_pcs)
            tl_.resetConfidence(pc);
    }
    return conflict;
}

void
SdvEngine::onControlCommit(const DynInst &d)
{
    if (d.rec.taken && d.rec.nextPc < d.pc()) {
        gmrbb_ = d.pc();
        if (finj_.armed()) {
            // GMRBB fault site: flip a low bit of the recorded region
            // tag. Control commits are never squashed, so the draw is
            // deterministic; the tag only labels release regions, so a
            // wrong tag delays sweeps but cannot corrupt values.
            gmrbb_ ^= finj_.drawGmrbbFlip();
        }
    }
}

// --- squash undo ----------------------------------------------------------------

void
SdvEngine::undoDecode(DynInst &d, RenameTable &rt)
{
    if (d.spawnedVector) {
        datapath_.abortByDest(d.spawnedDest);
        vrf_.releaseSquashed(d.spawnedDest);
        d.spawnedVector = false;
    }
    if (d.replacedVrmt) {
        if (d.prevVrmtExisted)
            vrmt_.install(d.prevVrmt);
        else
            vrmt_.invalidate(d.pc());
        d.replacedVrmt = false;
    }
    if (d.bumpedVrmtOffset) {
        VrmtEntry *ve = vrmt_.lookup(d.pc());
        if (ve && ve->vreg == d.valVreg && ve->offset > 0)
            --ve->offset;
        d.bumpedVrmtOffset = false;
    }
    if (d.isValidation() && vrf_.isLive(d.valVreg))
        vrf_.setUsed(d.valVreg, d.valElem, false);
    if (d.wroteRename) {
        rt.set(d.inst().rd, d.prevRename);
        d.wroteRename = false;
    }
    if (d.touchedTl) {
        tl_.restore(d.pc(), d.tlSnap);
        d.touchedTl = false;
    }
}

void
SdvEngine::tick(Cycle now, DCachePorts &ports, MemHierarchy &mem)
{
    vrf_.setClock(now);
    datapath_.tick(now, ports, mem);
    if (vrf_.sweepPending())
        vrf_.sweepReleases(gmrbb_);
    if (finj_.armed()) {
        // Mirror the injector's applied-fault counters into the stats
        // block every tick so interval samples see current values.
        stats_.faultElemFlips = finj_.elemFlips();
        stats_.faultVrmtFlips = finj_.vrmtFlips();
        stats_.faultTlFlips = finj_.tlFlips();
        stats_.faultGmrbbFlips = finj_.gmrbbFlips();
    }
}

void
SdvEngine::finalize()
{
    datapath_.clear();
    vrf_.releaseAll();
    stats_.faultElemFlips = finj_.elemFlips();
    stats_.faultVrmtFlips = finj_.vrmtFlips();
    stats_.faultTlFlips = finj_.tlFlips();
    stats_.faultGmrbbFlips = finj_.gmrbbFlips();
}

void
SdvEngine::quiesce()
{
    sdv_assert(datapath_.numActive() == 0,
               "quiescing with vector instances in flight");
    datapath_.clear();
    vrf_.releaseAll();
    vrmt_.invalidateAll();
    shadow_ = {};
}

} // namespace sdv
