/**
 * @file
 * The modified register rename table of Section 3.2 / Figure 6. Every
 * logical register carries, besides the usual in-flight producer
 * tracking, a V/S flag (vector or scalar mapping), the vector register
 * it maps to and the offset of the latest element for which a
 * validation has entered the pipeline.
 */

#ifndef SDV_CORE_RENAME_HH
#define SDV_CORE_RENAME_HH

#include <array>

#include "common/types.hh"
#include "vector/vreg_file.hh"

namespace sdv {

/** Rename state of one logical register. */
struct RenameEntry
{
    /** Sequence number of the youngest in-flight writer (0 when the
     *  architectural value is current). */
    InstSeqNum lastWriter = 0;

    /** V/S flag: true when the register maps to a vector register. */
    bool isVector = false;

    /** Vector register incarnation (valid when isVector). */
    VecRegRef vreg;

    /** Latest element for which a validation entered the pipeline
     *  (equals the number of validations issued on this incarnation). */
    std::uint8_t offset = 0;

    /**
     * Identity of the element holding the register's *current* value:
     * the validation target of the most recent validation writer. Used
     * to match VRMT source operands across chained incarnations.
     */
    VecRegRef curElemVreg;
    std::uint8_t curElem = 0;
    bool hasCurElem = false;
};

/** The rename table over the 64 logical registers. */
class RenameTable
{
  public:
    /** @return the entry for @p reg. */
    const RenameEntry &
    entry(RegId reg) const
    {
        return entries_[reg];
    }

    /** Overwrite the entry for @p reg (decode) — r0 stays pinned. */
    void
    set(RegId reg, const RenameEntry &e)
    {
        if (reg != zeroReg)
            entries_[reg] = e;
    }

    /** Clear a writer when the producing instruction commits (the
     *  architectural value is now current). */
    void
    onWriterCommit(RegId reg, InstSeqNum seq)
    {
        if (reg != zeroReg && entries_[reg].lastWriter == seq)
            entries_[reg].lastWriter = 0;
    }

    /** Reset every entry (context-switch semantics). */
    void
    reset()
    {
        for (auto &e : entries_)
            e = RenameEntry{};
    }

  private:
    std::array<RenameEntry, numLogicalRegs> entries_{};
};

} // namespace sdv

#endif // SDV_CORE_RENAME_HH
