/**
 * @file
 * Scalar functional unit pool (Table 1): per-class unit counts with
 * fully pipelined units (a unit accepts one operation per cycle).
 */

#ifndef SDV_CORE_FU_POOL_HH
#define SDV_CORE_FU_POOL_HH

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace sdv {

/** Scalar FU counts. */
struct ScalarFuConfig
{
    unsigned intAlu = 3;   ///< simple integer (latency 1)
    unsigned intMulDiv = 2; ///< integer mul (2) / div (12)
    unsigned fpAdd = 2;    ///< simple FP (2)
    unsigned fpMulDiv = 1; ///< FP mul (4) / div (14)
};

/** Per-cycle issue bandwidth tracker over the scalar FU classes. */
class FuPool
{
  public:
    explicit FuPool(const ScalarFuConfig &cfg) : cfg_(cfg) { beginCycle(); }

    /** Refresh per-cycle capacity. */
    void
    beginCycle()
    {
        intAlu_ = cfg_.intAlu;
        intMulDiv_ = cfg_.intMulDiv;
        fpAdd_ = cfg_.fpAdd;
        fpMulDiv_ = cfg_.fpMulDiv;
    }

    /**
     * Event-horizon query for the event-skipping clock. The pool is
     * purely per-cycle issue bandwidth (beginCycle restores every
     * slot; completions are scheduled on the instructions themselves),
     * so the pool never initiates a future state change on its own.
     */
    Cycle nextEventCycle() const { return neverCycle; }

    /**
     * Try to claim a unit for @p cls this cycle. Control operations and
     * memory address generation use simple-integer slots; memory-port
     * arbitration is handled separately by DCachePorts.
     */
    bool
    tryIssue(OpClass cls)
    {
        switch (cls) {
          case OpClass::IntAlu:
          case OpClass::Control:
          case OpClass::MemRead:
          case OpClass::MemWrite:
          case OpClass::None:
            return claim(intAlu_);
          case OpClass::IntMult:
          case OpClass::IntDiv:
            return claim(intMulDiv_);
          case OpClass::FpAdd:
            return claim(fpAdd_);
          case OpClass::FpMult:
          case OpClass::FpDiv:
            return claim(fpMulDiv_);
        }
        return false;
    }

  private:
    static bool
    claim(unsigned &slots)
    {
        if (slots == 0)
            return false;
        --slots;
        return true;
    }

    ScalarFuConfig cfg_;
    unsigned intAlu_ = 0;
    unsigned intMulDiv_ = 0;
    unsigned fpAdd_ = 0;
    unsigned fpMulDiv_ = 0;
};

} // namespace sdv

#endif // SDV_CORE_FU_POOL_HH
