/**
 * @file
 * Load/store queue with store-to-load forwarding. Addresses are known
 * at dispatch (oracle-at-decode convention), so loads may issue as soon
 * as no older overlapping store blocks them — the paper's "loads may
 * execute when prior store addresses are known" policy.
 */

#ifndef SDV_CORE_LSQ_HH
#define SDV_CORE_LSQ_HH

#include <cstdint>
#include <deque>

#include "core/dyn_inst.hh"

namespace sdv {

/** Disambiguation verdict for a ready-to-issue load. */
enum class LoadCheck : std::uint8_t
{
    Ready,   ///< no conflict; access the cache
    Forward, ///< a completed older store fully covers it; forward
    Stall,   ///< an older overlapping store is unresolved; wait
};

/** The unified load/store queue. */
class LoadStoreQueue
{
  public:
    /** @param capacity total entries (32 / 64 in Table 1) */
    explicit LoadStoreQueue(unsigned capacity);

    /** @return true when no entry is free. */
    bool full() const { return entries_.size() >= capacity_; }

    /** @return current occupancy. */
    size_t size() const { return entries_.size(); }

    /** Insert a memory instruction at dispatch (program order). */
    void insert(DynInst *inst);

    /** Remove the entry for @p seq (at commit). */
    void erase(InstSeqNum seq);

    /** Remove every entry younger than @p seq (squash). */
    void squashAfter(InstSeqNum seq);

    /**
     * Check whether the load @p ld may issue.
     * Byte-range semantics: every load byte written by an older
     * in-flight store must come from the *nearest* such store. The
     * load forwards when all its bytes are supplied by completed older
     * stores (one store or the combined coverage of several); it
     * stalls when any needed byte belongs to a store that has not
     * completed, or when pending stores supply only part of the load
     * (a cache/forward mix is not modelled); otherwise it is Ready.
     */
    LoadCheck checkLoad(const DynInst *ld) const;

    /** @return forwarding events observed. */
    std::uint64_t forwards() const { return forwards_; }

    /** Count one forwarding event (issue logic). */
    void noteForward() { ++forwards_; }

    /** @return stalls due to unresolved older stores. */
    std::uint64_t conflictStalls() const { return conflictStalls_; }

    /** Count one conflict stall observation. */
    void noteConflictStall() { ++conflictStalls_; }

    /** Zero the forwarding/stall counters. */
    void
    resetStats()
    {
        forwards_ = 0;
        conflictStalls_ = 0;
    }

  private:
    unsigned capacity_;
    std::deque<DynInst *> entries_; ///< program order (by seq)
    /** The store entries only, same program order: checkLoad scans
     *  stores exclusively, and a load-heavy window (the common case)
     *  answers Ready without touching the main queue at all. */
    std::deque<DynInst *> stores_;
    std::uint64_t forwards_ = 0;
    std::uint64_t conflictStalls_ = 0;
};

} // namespace sdv

#endif // SDV_CORE_LSQ_HH
