/**
 * @file
 * One dynamic (in-flight) instruction of the timing model, carrying the
 * oracle execution record, dependence information, vectorization state
 * and everything needed to undo its decode on a squash.
 */

#ifndef SDV_CORE_DYN_INST_HH
#define SDV_CORE_DYN_INST_HH

#include "arch/executor.hh"
#include "core/rename.hh"
#include "vector/table_of_loads.hh"
#include "vector/vrmt.hh"

namespace sdv {

/** How the scalar pipeline treats this dynamic instance. */
enum class InstMode : std::uint8_t
{
    Scalar,     ///< normal execution on a scalar FU / memory port
    Validation, ///< validates one vector element; no execution
};

/** A dynamic instruction. */
struct DynInst
{
    InstSeqNum seq = 0; ///< unique, monotonically increasing
    ExecRecord rec;     ///< oracle outcome (pc, inst, values, addr)

    // --- decode-time vectorization state --------------------------------
    InstMode mode = InstMode::Scalar;
    bool spawnedVector = false; ///< this decode created a vector instance
    VecRegRef spawnedDest;      ///< register allocated by the spawn
    VecRegRef valVreg;          ///< validation target register
    std::uint8_t valElem = 0;   ///< validation target element
    bool valElemFellBack = false; ///< validation reverted to scalar
    /** Fault injection: decode attributed a misspeculation on this
     *  instruction's chain to a corrupted VRMT entry (counted into
     *  CoreStats at commit so squashed detections don't inflate it). */
    bool fiDetected = false;
    bool fiDemoted = false;     ///< ... and the detection demoted the chain

    // --- dependences ----------------------------------------------------------
    InstSeqNum dep1 = 0; ///< producer of rs1 still in flight (0 = ready)
    InstSeqNum dep2 = 0; ///< producer of rs2 still in flight (0 = ready)

    // --- squash undo ----------------------------------------------------------
    bool wroteRename = false;   ///< decode overwrote rename[dest]
    RenameEntry prevRename;     ///< previous rename entry of dest
    bool touchedTl = false;     ///< decode updated the Table of Loads
    TlSnapshot tlSnap;          ///< TL entry before the update
    bool replacedVrmt = false;  ///< decode installed/replaced a VRMT entry
    bool prevVrmtExisted = false; ///< an entry existed before
    VrmtEntry prevVrmt;         ///< ... and this was it
    bool bumpedVrmtOffset = false; ///< validation advanced entry offset

    // --- pipeline status ---------------------------------------------------------
    bool inIq = false;       ///< waiting in an issue queue
    bool issued = false;     ///< sent to an FU / port
    bool completed = false;  ///< result available to consumers
    Cycle readyCycle = neverCycle; ///< scheduled completion cycle

    // --- control flow -----------------------------------------------------------
    bool predTaken = false;   ///< front-end direction prediction
    Addr predTarget = 0;      ///< front-end target prediction
    bool mispredicted = false; ///< prediction disagreed with the oracle

    // --- bookkeeping -----------------------------------------------------------------
    Cycle fetchCycle = 0;
    Cycle commitCycle = 0;
    bool counted100 = false;  ///< inside a Figure 10 window

    /**
     * Return the entry to its decode-ready state when its ROB slot is
     * recycled. `rec` and the undo snapshots (prevRename, tlSnap,
     * prevVrmt) are deliberately left stale: rec is overwritten by the
     * very next statement of the decode stage, and the snapshots are
     * only ever read under their wroteRename / touchedTl /
     * replacedVrmt guards, which are cleared here. Skipping them
     * avoids rewriting ~200 bytes per fetched instruction.
     */
    void
    reset()
    {
        seq = 0;
        mode = InstMode::Scalar;
        spawnedVector = false;
        spawnedDest = VecRegRef{};
        valVreg = VecRegRef{};
        valElem = 0;
        valElemFellBack = false;
        fiDetected = false;
        fiDemoted = false;
        dep1 = 0;
        dep2 = 0;
        wroteRename = false;
        touchedTl = false;
        replacedVrmt = false;
        prevVrmtExisted = false;
        bumpedVrmtOffset = false;
        inIq = false;
        issued = false;
        completed = false;
        readyCycle = neverCycle;
        predTaken = false;
        predTarget = 0;
        mispredicted = false;
        fetchCycle = 0;
        commitCycle = 0;
        counted100 = false;
    }

    /** @return the static instruction. */
    const Instruction &inst() const { return rec.inst; }

    /** @return the program counter. */
    Addr pc() const { return rec.pc; }

    /** @return true for loads (any mode). */
    bool isLoad() const { return rec.inst.isLoad(); }

    /** @return true for stores. */
    bool isStore() const { return rec.inst.isStore(); }

    /** @return true for control instructions. */
    bool isControl() const { return rec.inst.isControl(); }

    /** @return true when this instance validates a vector element. */
    bool isValidation() const { return mode == InstMode::Validation; }
};

} // namespace sdv

#endif // SDV_CORE_DYN_INST_HH
