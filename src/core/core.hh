/**
 * @file
 * The out-of-order superscalar core (the SimpleScalar-like substrate of
 * Section 4.1) extended with the speculative dynamic vectorization
 * engine. Execution values come from an in-order oracle at fetch (the
 * sim-outorder convention); the cycle model charges fetch, decode,
 * queue, FU, cache-port and commit resources.
 *
 * Branch mispredictions stall fetch until the branch resolves (no
 * wrong-path fetch); vector state deliberately survives them
 * (control-flow independence, Section 3.5). Store-set conflicts with
 * vector registers (Section 3.6) squash all younger instructions; the
 * squashed oracle records replay through fetch.
 */

#ifndef SDV_CORE_CORE_HH
#define SDV_CORE_CORE_HH

#include <deque>
#include <vector>

#include "arch/executor.hh"
#include "branch/btb.hh"
#include "common/serialize.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "common/ring_pool.hh"
#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/lsq.hh"
#include "core/rename.hh"
#include "core/sdv_engine.hh"
#include "core/store_overlay.hh"
#include "mem/hierarchy.hh"
#include "mem/port.hh"

namespace sdv {

namespace obs {
class TraceRecorder;
} // namespace obs

/** Full machine configuration (Table 1 shapes live in sim/config). */
struct CoreConfig
{
    unsigned fetchWidth = 4;   ///< instructions per cycle, <=1 taken branch
    unsigned decodeWidth = 4;  ///< rename/dispatch bandwidth
    unsigned issueWidth = 4;   ///< out-of-order issue bandwidth
    unsigned commitWidth = 4;  ///< in-order commit bandwidth
    unsigned maxStoresPerCycle = 2; ///< Section 3.6 commit constraint
    unsigned robEntries = 128; ///< instruction window
    unsigned lsqEntries = 32;  ///< load/store queue
    unsigned fetchQueueEntries = 8; ///< fetch/decode decoupling queue

    ScalarFuConfig fu;         ///< scalar FU counts

    unsigned dcachePorts = 1;  ///< L1D ports (1/2/4)
    bool widePorts = false;    ///< scalar buses vs wide (line) buses

    unsigned gshareEntries = 64 * 1024;
    unsigned gshareHistoryBits = 16;
    unsigned btbSets = 512;
    unsigned btbWays = 4;
    unsigned rasDepth = 16;

    /** Figure 10 window: committed instructions counted after each
     *  mispredicted branch (the paper measures the next 100). */
    unsigned fig10WindowInsts = 100;

    /** Event-skipping clock: when the pipeline is quiescent and only
     *  scheduled completions remain, jump the cycle counter to the
     *  next event instead of ticking idle cycles. Cycle-for-cycle
     *  equivalent to ticking (see tests/test_event_skip.cc); disable
     *  to cross-check. */
    bool eventSkip = true;

    /** Trace-compiled dispatch: fetch and the oracle consume the
     *  program's compiled trace (pre-resolved handlers, pre-folded
     *  immediates, pre-computed branch targets) instead of re-decoding
     *  through instAt(). Bit-identical to the interpreter path (see
     *  tests/test_trace_compile.cc); disable (--no-trace) to
     *  cross-check. */
    bool traceExec = true;

    MemHierarchyConfig mem;    ///< cache geometry and latencies
    EngineConfig engine;       ///< dynamic vectorization engine
};

/** Statistics exported by the core. */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t committedValidations = 0;       ///< Figure 14
    std::uint64_t committedLoadValidations = 0;
    std::uint64_t scalarLoadAccesses = 0; ///< demand loads through ports
    std::uint64_t loadForwards = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t fetchStallCycles = 0;  ///< cycles fetch sat stalled
    /** Of the fetch-stall cycles, those where the stalling branch was
     *  dep-blocked on an in-flight *validation* — fetch serialized
     *  behind vector element computation (see docs/performance.md,
     *  "Steady-state behavior"). */
    std::uint64_t fetchStallValWaitCycles = 0;
    std::uint64_t decodeBlockCycles = 0; ///< Figure 7 stalls
    std::uint64_t robFullStalls = 0;
    std::uint64_t lsqFullStalls = 0;
    std::uint64_t storeConflictSquashes = 0;
    std::uint64_t squashedInsts = 0;

    // Figure 10: reuse among the instructions after a mispredict
    // (CoreConfig::fig10WindowInsts of them, 100 in the paper).
    std::uint64_t postMispredictWindowInsts = 0;
    std::uint64_t postMispredictReused = 0;

    // Adversarial robustness (PR 6): the committed-path view of the
    // fault-injection ledger (EngineStats has the decode/validation
    // view including squashed work) and the transient-exposure probe
    // of the quiesce boundary (timing-channel experiments). All stay
    // zero in default runs.
    std::uint64_t specFaultsDetected = 0; ///< injected faults flagged
    std::uint64_t specChainDemotions = 0; ///< chains demoted to scalar
    std::uint64_t specChainReenables = 0; ///< demoted chains re-enabled
    std::uint64_t quiesceEvents = 0;       ///< mid-run vector quiesces
    std::uint64_t quiesceLiveVregs = 0;    ///< live vregs at those events
    /** Speculative (computed but not yet validated) elements alive
     *  across a quiesce boundary: the state a timing-channel attacker
     *  probes, dropped by the boundary. */
    std::uint64_t quiesceTransientElems = 0;

    // Event-skipping clock meta-statistics: how the cycles were
    // simulated, never what they contained. These are the only
    // CoreStats fields allowed to differ between an event-skipping run
    // and a ticking one.
    std::uint64_t eventSkipJumps = 0;   ///< quiescent jumps taken
    std::uint64_t eventSkippedCycles = 0; ///< cycles jumped over

    /** @return instructions per cycle. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0 : double(committedInsts) / double(cycles);
    }
};

/** The core. Implements VecExecContext so the vector machinery reaches
 *  speculative load values and completion state through one direct
 *  virtual call instead of std::function indirections. */
class Core : private VecExecContext
{
  public:
    /**
     * @param cfg machine configuration
     * @param prog the program to run (must outlive the core)
     */
    Core(const CoreConfig &cfg, const Program &prog);

    /** Advance one cycle (or, with event skipping, jump a quiescent
     *  pipeline forward to the next scheduled event first). */
    void tick();

    /**
     * Bound the cycle counter for event skipping: the clock never
     * jumps past @p max_cycles, so a budget-limited run observes the
     * exact same final cycle and statistics as a ticking one.
     * Simulator::run sets this from its own budget.
     */
    void setCycleLimit(Cycle max_cycles) { cycleLimit_ = max_cycles; }

    /** @return true once HALT has committed. */
    bool done() const { return haltCommitted_; }

    /**
     * Cap oracle fetch at @p insts dynamic instructions (0 removes the
     * cap). Fetch treats a reached cap like program exhaustion, so the
     * pipeline drains naturally; used by Simulator::warmup to stop at
     * a checkpointable instruction boundary.
     */
    void setFetchLimit(std::uint64_t insts) { fetchLimit_ = insts; }

    /** @return true when fetch has nothing left to supply: no replay
     *  entries and the oracle is halted or at the fetch limit. */
    bool
    fetchExhausted() const
    {
        return replayQueue_.empty() &&
               (oracle_.halted() ||
                (fetchLimit_ != 0 &&
                 oracle_.instCount() >= fetchLimit_));
    }

    /**
     * @return true when no in-flight state remains anywhere: ROB,
     * queues, LSQ and pending stores empty, fetch unstalled, the
     * vector engine fully idle and every MSHR fill landed. The
     * checkpoint layer captures only at such a boundary.
     */
    bool quiescent() const;

    /**
     * Begin the measured region: quiesce transient vector state
     * (context-switch semantics — the TL, caches and predictors stay
     * warm), drop expired MSHR entries, rebase the clock to zero and
     * zero every statistic. The committed-stream hash and total commit
     * count keep accumulating so end-of-run verification still covers
     * the whole program. Requires quiescent().
     */
    void beginMeasurement();

    /**
     * Context-switch the transient vector state only (engine quiesce +
     * rename reset) *without* rebasing the clock or statistics: the
     * steady-state reproduction hook behind --quiesce-interval. The
     * run continues measuring; only the speculative vector state is
     * dropped, exactly as at a measurement boundary. Requires
     * quiescent() (callers drain via a fetch limit first).
     */
    void quiesceVectorState();

    /** @return commits since construction (warm-up included), the
     *  count end-of-run verification checks against the functional
     *  reference; stats().committedInsts covers the measured region
     *  only. */
    std::uint64_t committedTotal() const { return committedTotal_; }

    /**
     * Serialize the warm state a checkpoint carries: fetch PC, commit
     * hash/total, oracle (architectural state + memory), cache tags,
     * predictors and the engine's Table of Loads. Only valid at a
     * measurement boundary (quiescent, cycle 0).
     */
    void saveWarmState(Serializer &ser) const;

    /**
     * Restore warm state into a freshly-constructed core.
     * @retval false when a component's geometry does not match
     */
    bool loadWarmState(Deserializer &des);

    /** @return the configuration this core was built with. */
    const CoreConfig &config() const { return cfg_; }

    /** @return current cycle. */
    Cycle cycle() const { return cycle_; }

    /** @return a stable pointer to the cycle counter (log-context
     *  tagging: warnings print the cycle they fired at). */
    const Cycle *cyclePtr() const { return &cycle_; }

    /** @return core statistics. */
    const CoreStats &stats() const { return stats_; }

    /** @return the vectorization engine. */
    SdvEngine &engine() { return engine_; }

    /** @return the D-cache port network. */
    DCachePorts &ports() { return ports_; }

    /** @return the memory hierarchy. */
    MemHierarchy &memHierarchy() { return mem_; }

    /** @return the in-order oracle (architectural state source). */
    const FunctionalCore &oracle() const { return oracle_; }

    /** @return rolling hash over committed PCs (equivalence checks). */
    std::uint64_t commitPcHash() const { return commitHash_; }

    /** @return number of in-flight instructions. */
    size_t robOccupancy() const { return rob_.size(); }

    /** Release remaining vector state and resolve ledgers. */
    void finalize() { engine_.finalize(); }

    /** Attach a flight recorder to the core and every instrumented
     *  component (engine, vector register file, MSHRs). Null detaches.
     *  Pure observation: recording never changes simulated state. */
    void setRecorder(obs::TraceRecorder *rec);

  private:
    /** An instruction fetched but not yet renamed. */
    struct FetchedInst
    {
        ExecRecord rec;
        bool predTaken = false;
        Addr predTarget = 0;
        bool mispredicted = false;
        Cycle fetchCycle = 0;
    };

    void commitStage();
    void completionStage();
    void issueStage();
    void decodeStage();
    void fetchStage();

    /**
     * Event-skipping clock (see CoreConfig::eventSkip): when no stage
     * can change state this cycle, jump cycle_ to the earliest
     * scheduled event, charging the skipped cycles to the same
     * per-cycle statistics ticking would have charged.
     * @retval true when the jump consumed the whole cycle budget set
     * by setCycleLimit() — the caller must skip the stage work, since
     * a ticking run would never have executed a cycle at the limit
     */
    bool trySkipIdle();

    /** Commit bookkeeping shared by all instruction kinds. */
    void commitCommon(DynInst &d);

    /** Schedule an issued instruction's completion (min-heap keyed by
     *  readyCycle; the completion stage pops entries as they mature,
     *  and the event-skipping clock reads the top as its horizon). */
    void scheduleCompletion(DynInst *d);

    /** Park a just-decoded validation on its target element: the
     *  register file pushes a wake event when the element computes or
     *  the incarnation dies; already-resolved targets queue for the
     *  next completion stage directly. */
    void parkValidation(DynInst &d);

    /** Re-examine a woken validation (the old per-cycle poll body):
     *  complete it, fall it back to scalar re-execution, or re-park. */
    void processValidation(DynInst *d, bool &progress);

    /** Shared unstall hook: a completing instruction that is the
     *  stalled-on branch resumes fetch at its resolved target. */
    void
    maybeUnstall(const DynInst *d)
    {
        if (d->seq == stallBranchSeq_) {
            fetchStalled_ = false;
            stallBranchSeq_ = 0;
            fetchPc_ = d->rec.nextPc;
        }
    }

    /** @return true when the stalled-on branch is dep-blocked on an
     *  in-flight validation (fetch-stall attribution; constant across
     *  an event-skip window, so the jump charges it per skipped
     *  cycle exactly as ticking would). */
    bool fetchStallOnValidation() const;

    /** @return the validation-waiter slot of @p d (one per (vector
     *  register, element) pair; at most one validation is in flight
     *  per element). */
    std::size_t
    waiterSlot(const DynInst &d) const
    {
        return std::size_t(d.valVreg.reg) * cfg_.engine.vlen + d.valElem;
    }

    /** Squash every in-flight instruction (store conflict path). */
    void squashAllInFlight();

    /**
     * Read memory as the caches see it: the oracle image with the
     * pre-images of not-yet-committed stores rewound. Speculative
     * vector-element loads must read this committed view, not the
     * oracle-at-fetch state which may already contain future stores.
     */
    std::uint64_t readCommittedMemory(Addr addr, unsigned size) const;

    /** @return true when producer @p seq has completed (or retired).
     *  Inline: the issue stage queries this twice per queued
     *  instruction per cycle. */
    bool
    producerCompleted(InstSeqNum seq) const
    {
        if (seq == 0)
            return true;
        if (rob_.empty() || seq < rob_.front().seq)
            return true; // already retired
        const std::uint64_t idx = seq - rob_.front().seq;
        if (idx >= rob_.size())
            return true; // unknown (post-squash reference): treat as done
        return rob_[size_t(idx)].completed;
    }

    // VecExecContext (the vector datapath + engine call back in here).
    std::uint64_t specLoadValue(Addr addr, unsigned size) const override;
    bool
    seqCompleted(InstSeqNum seq) const override
    {
        return producerCompleted(seq);
    }

    /** @return the ROB entry for @p seq, or nullptr. */
    DynInst *robFind(InstSeqNum seq) const;

    /** Predict + classify one fetched control instruction. */
    void predictControl(FetchedInst &f);

    CoreConfig cfg_;
    const Program &prog_;

    // Substrate components.
    /** The program's compiled trace (null under --no-trace): fetch
     *  reads pre-computed branch targets from it. */
    const CompiledTrace *trace_ = nullptr;
    FunctionalCore oracle_;
    MemHierarchy mem_;
    DCachePorts ports_;
    Gshare gshare_;
    Btb btb_;
    ReturnAddressStack ras_;
    LoadStoreQueue lsq_;
    FuPool fuPool_;
    RenameTable rt_;
    SdvEngine engine_;

    // Fetch state.
    Addr fetchPc_;
    bool fetchStalled_ = false;
    InstSeqNum stallBranchSeq_ = 0; ///< 0: branch still in fetch queue
    Cycle icacheReadyAt_ = 0;
    std::deque<FetchedInst> fetchQueue_;
    std::deque<ExecRecord> replayQueue_;

    // Backend state. The ROB is a fixed-capacity pool of DynInst slots
    // sized by robEntries: no per-instruction heap allocation on the
    // fetch->commit path, and entry addresses stay stable for the IQ
    // and LSQ until the instruction retires.
    RingPool<DynInst> rob_;
    std::vector<DynInst *> iq_; ///< seq-ordered issue queue

    /** Issued-but-incomplete instructions as a min-heap on readyCycle:
     *  the completion stage pops matured entries instead of rescanning
     *  every in-flight instruction each cycle, and the event-skipping
     *  clock reads the top as an exact horizon. */
    std::vector<DynInst *> completionHeap_;

    /** One waiter slot per (vector register, element): the in-flight
     *  validation parked on that element, woken by the register file's
     *  event queue instead of polled every cycle. */
    struct ValWaiter
    {
        DynInst *d = nullptr;
        InstSeqNum seq = 0;
    };
    std::vector<ValWaiter> valWaiters_;
    unsigned parkedValidations_ = 0;
    /** Validations whose target was already resolved (or dead) at
     *  decode: examined by the next completion stage, exactly when the
     *  old per-cycle poll would have seen them. */
    std::vector<DynInst *> valWakeNow_;

    InstSeqNum nextSeq_ = 1;

    // Per-cycle issue-stage access completion map (wide-bus riders).
    std::vector<std::pair<std::int32_t, Cycle>> cycleAccessDone_;

    /** Pre-images of oracle-executed stores that have not committed
     *  yet, in program order (stores commit in order -> FIFO). */
    PendingStoreOverlay pendingStores_;

    Cycle cycle_ = 0;
    Cycle cycleLimit_ = neverCycle; ///< event-skip jump bound
    std::uint64_t fetchLimit_ = 0;  ///< oracle fetch cap (0 = none)
    std::uint64_t committedTotal_ = 0; ///< commits incl. warm-up
    /** True when the previous tick made no forward progress (nothing
     *  committed, completed, issued, decoded or fetched): the only
     *  state in which attempting an event-skip jump can pay off. */
    bool quietLastTick_ = false;
    /** True when the last issueStage walk found every queued
     *  instruction dep-blocked. A blocked walk has no side effects
     *  (the LSQ/port/FU probes are only reached once producers have
     *  completed), so until a producer completes or the queue changes
     *  — completion stage, validation resolution, decode dispatch and
     *  squash all clear this — the walk can be skipped outright. */
    bool iqAllDepBlocked_ = false;
    bool haltCommitted_ = false;
    std::uint64_t commitHash_ = 1469598103934665603ULL;

    // Figure 10 window.
    unsigned fig10Remaining_ = 0;

    /** Flight recorder (null when detached / observability is off). */
    obs::TraceRecorder *recorder_ = nullptr;

    CoreStats stats_;
};

} // namespace sdv

#endif // SDV_CORE_CORE_HH
