#include "mem/port.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace sdv {

DCachePorts::DCachePorts(unsigned num_ports, bool wide, unsigned line_bytes,
                         unsigned word_bytes)
    : numPorts_(num_ports), wide_(wide), lineBytes_(line_bytes),
      maxServedPerAccess_(wide ? 4 : 1)
{
    sdv_assert(num_ports >= 1, "need at least one port");
    sdv_assert(isPowerOf2(line_bytes), "line size must be 2^n");
    sdv_assert(word_bytes <= line_bytes, "word larger than line");
}

void
DCachePorts::beginCycle()
{
    usedThisCycle_ = 0;
    cycleReads_.clear();
    ++stats_.cycles;
}

unsigned
DCachePorts::freePorts() const
{
    return numPorts_ - usedThisCycle_;
}

DCachePorts::Grant
DCachePorts::requestLoadWord(Addr addr, ElemLoadId elem_load_id)
{
    Grant g;
    const Addr line = lineOf(addr);

    auto account = [&](std::int32_t id) {
        AccessRecord &rec = ledger_[size_t(id)];
        ++rec.servedLoads;
        ++stats_.wordsServed;
        if (elem_load_id != 0) {
            ++rec.specWords;
            elemAccess_.emplace(elem_load_id, id);
        } else {
            ++rec.demandWords;
        }
    };

    if (wide_) {
        auto it = cycleReads_.find(line);
        if (it != cycleReads_.end()) {
            AccessRecord &rec = ledger_[size_t(it->second)];
            if (rec.servedLoads < maxServedPerAccess_) {
                g.ok = true;
                g.newAccess = false;
                g.accessId = it->second;
                account(it->second);
                return g;
            }
            // The access already served its limit; fall through to try
            // a fresh port for this word.
        }
    }

    if (usedThisCycle_ >= numPorts_)
        return g; // all ports busy this cycle

    ++usedThisCycle_;
    ++stats_.busyPortCycles;
    ++stats_.readAccesses;

    AccessRecord rec;
    rec.lineAddr = line;
    rec.isRead = true;
    ledger_.push_back(rec);
    const auto id = std::int32_t(ledger_.size() - 1);
    if (wide_)
        cycleReads_[line] = id;

    g.ok = true;
    g.newAccess = true;
    g.accessId = id;
    account(id);
    return g;
}

DCachePorts::Grant
DCachePorts::requestStoreWord(Addr addr)
{
    Grant g;
    if (usedThisCycle_ >= numPorts_)
        return g;
    ++usedThisCycle_;
    ++stats_.busyPortCycles;
    ++stats_.writeAccesses;

    AccessRecord rec;
    rec.lineAddr = lineOf(addr);
    rec.isRead = false;
    ledger_.push_back(rec);
    g.ok = true;
    g.newAccess = true;
    g.accessId = std::int32_t(ledger_.size() - 1);
    return g;
}

void
DCachePorts::resolveElem(ElemLoadId id, bool used)
{
    auto it = elemAccess_.find(id);
    if (it == elemAccess_.end())
        return;
    if (used)
        ++ledger_[size_t(it->second)].specUsed;
    elemAccess_.erase(it);
}

WideBusBreakdown
DCachePorts::wideBusBreakdown() const
{
    WideBusBreakdown out;
    for (const AccessRecord &rec : ledger_) {
        if (!rec.isRead)
            continue;
        ++out.totalReads;
        std::uint32_t useful = rec.demandWords + rec.specUsed;
        if (useful > 4)
            useful = 4;
        ++out.usefulWords[useful];
    }
    return out;
}

} // namespace sdv
