#include "mem/port.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace sdv {

DCachePorts::DCachePorts(unsigned num_ports, bool wide, unsigned line_bytes,
                         unsigned word_bytes)
    : numPorts_(num_ports), wide_(wide), lineBytes_(line_bytes),
      maxServedPerAccess_(wide ? 4 : 1)
{
    sdv_assert(num_ports >= 1, "need at least one port");
    sdv_assert(isPowerOf2(line_bytes), "line size must be 2^n");
    sdv_assert(word_bytes <= line_bytes, "word larger than line");
}

void
DCachePorts::beginCycle()
{
    usedThisCycle_ = 0;
    cycleReads_.clear();
    ++stats_.cycles;

    // Close the previous cycle's accesses: no further words can join
    // them, so any record with no speculative resolution outstanding
    // folds into the Figure 13 histogram now, bounding ledger memory
    // by in-flight (unresolved) accesses.
    for (const std::int32_t id : openRecords_) {
        AccessRecord &rec = ledger_[size_t(id)];
        rec.open = false;
        if (rec.specPending == 0)
            foldRecord(id);
    }
    openRecords_.clear();
}

unsigned
DCachePorts::freePorts() const
{
    return numPorts_ - usedThisCycle_;
}

std::int32_t
DCachePorts::allocRecord(Addr line)
{
    std::int32_t id;
    if (!freeSlots_.empty()) {
        id = freeSlots_.back();
        freeSlots_.pop_back();
        ledger_[size_t(id)] = AccessRecord{};
    } else {
        ledger_.emplace_back();
        id = std::int32_t(ledger_.size() - 1);
    }
    AccessRecord &rec = ledger_[size_t(id)];
    rec.lineAddr = line;
    rec.inUse = true;
    rec.open = true;
    openRecords_.push_back(id);
    return id;
}

void
DCachePorts::foldRecord(std::int32_t id)
{
    AccessRecord &rec = ledger_[size_t(id)];
    ++folded_.totalReads;
    std::uint32_t useful = rec.demandWords + rec.specUsed;
    if (useful > 4)
        useful = 4;
    ++folded_.usefulWords[useful];
    rec.inUse = false;
    freeSlots_.push_back(id);
}

DCachePorts::Grant
DCachePorts::requestLoadWord(Addr addr, ElemLoadId elem_load_id)
{
    Grant g;
    const Addr line = lineOf(addr);

    auto account = [&](std::int32_t id) {
        AccessRecord &rec = ledger_[size_t(id)];
        ++rec.servedLoads;
        ++stats_.wordsServed;
        if (elem_load_id != 0) {
            ++rec.specWords;
            ++rec.specPending;
            elemAccess_.emplace(elem_load_id, id);
        } else {
            ++rec.demandWords;
        }
    };

    if (wide_) {
        auto it = cycleReads_.find(line);
        if (it != cycleReads_.end()) {
            AccessRecord &rec = ledger_[size_t(it->second)];
            if (rec.servedLoads < maxServedPerAccess_) {
                g.ok = true;
                g.newAccess = false;
                g.accessId = it->second;
                account(it->second);
                return g;
            }
            // The access already served its limit; fall through to try
            // a fresh port for this word.
        }
    }

    if (usedThisCycle_ >= numPorts_)
        return g; // all ports busy this cycle

    ++usedThisCycle_;
    ++stats_.busyPortCycles;
    ++stats_.readAccesses;

    const std::int32_t id = allocRecord(line);
    if (wide_)
        cycleReads_[line] = id;

    g.ok = true;
    g.newAccess = true;
    g.accessId = id;
    account(id);
    return g;
}

DCachePorts::Grant
DCachePorts::requestStoreWord(Addr addr)
{
    Grant g;
    if (usedThisCycle_ >= numPorts_)
        return g;
    ++usedThisCycle_;
    ++stats_.busyPortCycles;
    ++stats_.writeAccesses;

    // Stores keep no ledger record: Figure 13 buckets read accesses
    // only, and nothing downstream consumes a store's access id.
    (void)addr;
    g.ok = true;
    g.newAccess = true;
    return g;
}

void
DCachePorts::resolveElem(ElemLoadId id, bool used)
{
    auto it = elemAccess_.find(id);
    if (it == elemAccess_.end())
        return;
    AccessRecord &rec = ledger_[size_t(it->second)];
    sdv_assert(rec.inUse && rec.specPending > 0,
               "element resolution against a folded record");
    if (used)
        ++rec.specUsed;
    --rec.specPending;
    const std::int32_t slot = it->second;
    elemAccess_.erase(it);
    if (!rec.open && rec.specPending == 0)
        foldRecord(slot);
}

WideBusBreakdown
DCachePorts::wideBusBreakdown() const
{
    WideBusBreakdown out = folded_;
    // Records still in flight (this cycle's accesses and accesses with
    // unresolved speculative elements): unresolved elements count as
    // unused, exactly as if they were folded now.
    for (const AccessRecord &rec : ledger_) {
        if (!rec.inUse)
            continue;
        ++out.totalReads;
        std::uint32_t useful = rec.demandWords + rec.specUsed;
        if (useful > 4)
            useful = 4;
        ++out.usefulWords[useful];
    }
    return out;
}

std::size_t
DCachePorts::ledgerLiveRecords() const
{
    size_t n = 0;
    for (const AccessRecord &rec : ledger_)
        if (rec.inUse)
            ++n;
    return n;
}

} // namespace sdv
