/**
 * @file
 * L1 data cache port arbitration, including the paper's wide bus
 * (Section 3.7): a wide port transfers a whole cache line per access
 * and serves up to four pending loads whose addresses fall in that
 * line with the single access. The module also keeps the per-access
 * useful-word ledger that regenerates Figure 13.
 */

#ifndef SDV_MEM_PORT_HH
#define SDV_MEM_PORT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace sdv {

/** Identifier of one speculative vector-element load, for deferred
 *  useful-word accounting. 0 means "none". */
using ElemLoadId = std::uint64_t;

/** Aggregate port / wide-bus statistics. */
struct PortStats
{
    std::uint64_t busyPortCycles = 0;  ///< one per claimed port per cycle
    std::uint64_t cycles = 0;          ///< cycles observed
    std::uint64_t readAccesses = 0;    ///< load line/word accesses
    std::uint64_t writeAccesses = 0;   ///< store accesses
    std::uint64_t wordsServed = 0;     ///< total load words served

    /** @return port occupancy in [0,1] given @p num_ports. */
    double
    occupancy(unsigned num_ports) const
    {
        const double cap = double(cycles) * num_ports;
        return cap == 0.0 ? 0.0 : double(busyPortCycles) / cap;
    }
};

/** Figure 13 output: read accesses bucketed by useful word count. */
struct WideBusBreakdown
{
    std::uint64_t usefulWords[5] = {0, 0, 0, 0, 0}; ///< index = words 0..4
    std::uint64_t totalReads = 0;

    /** @return fraction of read accesses with @p n useful words. */
    double
    fraction(unsigned n) const
    {
        return totalReads == 0
                   ? 0.0
                   : double(usefulWords[n]) / double(totalReads);
    }

    /** @return fraction of reads that served no architecturally used
     *  word at all (the paper's "Unused" series). */
    double unusedFraction() const { return fraction(0); }
};

/**
 * Per-cycle arbitration over the configured number of L1D ports, scalar
 * or wide.
 */
class DCachePorts
{
  public:
    /**
     * @param num_ports number of L1D ports (1, 2 or 4 in the paper)
     * @param wide true: each port moves a full line per access
     * @param line_bytes L1D line size
     * @param word_bytes element size used for ride-along slots (8)
     */
    DCachePorts(unsigned num_ports, bool wide, unsigned line_bytes,
                unsigned word_bytes = 8);

    /** Start a new cycle; forget per-cycle access state. */
    void beginCycle();

    /** Result of requesting a word through the port network. */
    struct Grant
    {
        bool ok = false;       ///< the word is served this cycle
        bool newAccess = false; ///< a fresh port/access was claimed
        /** Ledger slot id (valid when ok for loads; stores make no
         *  ledger record — Figure 13 only buckets reads). Only
         *  meaningful within the granting cycle. */
        std::int32_t accessId = -1;
    };

    /**
     * Request a load of the word at @p addr.
     *
     * Wide ports first try to ride along on an access already made to
     * the same line this cycle (up to four served loads per access per
     * the paper); otherwise a free port is claimed.
     *
     * @param addr word address
     * @param elem_load_id non-zero for speculative vector-element loads;
     *        their usefulness is resolved later via resolveElem()
     */
    Grant requestLoadWord(Addr addr, ElemLoadId elem_load_id = 0);

    /** Request a store access (one port, no ride-along). */
    Grant requestStoreWord(Addr addr);

    /** @return number of ports still free this cycle. */
    unsigned freePorts() const;

    /** @return true when configured with wide ports. */
    bool wide() const { return wide_; }

    /** @return configured port count. */
    unsigned numPorts() const { return numPorts_; }

    /**
     * Mark the element load @p id as architecturally useful (validated)
     * or not; called by the vector register file when element fates are
     * known.
     */
    void resolveElem(ElemLoadId id, bool used);

    /** Account @p n cycles during which no port activity was possible
     *  (the event-skipping clock jumped over them). Equivalent to @p n
     *  beginCycle() calls with no requests. */
    void noteIdleCycles(std::uint64_t n) { stats_.cycles += n; }

    /**
     * @return the cycle at which port state next changes on its own:
     * arbitration is purely per-cycle (beginCycle resets everything),
     * so the network never schedules future work — always neverCycle.
     * Part of the event-horizon API used by the event-skipping clock.
     */
    Cycle nextEventCycle() const { return neverCycle; }

    /** @return accumulated port statistics. */
    const PortStats &stats() const { return stats_; }

    /** Zero the statistics and the folded Figure-13 histogram. Must
     *  only run with no live ledger records (quiesced pipeline). */
    void
    resetStats()
    {
        stats_ = PortStats{};
        folded_ = WideBusBreakdown{};
    }

    /** @return the Figure 13 breakdown: folded records plus every
     *  still-unresolved in-flight record (whose unresolved speculative
     *  elements count as unused). */
    WideBusBreakdown wideBusBreakdown() const;

    /** @return ledger slots currently holding an unresolved record
     *  (bounded by in-flight speculative accesses, not total traffic). */
    std::size_t ledgerLiveRecords() const;

    /** @return ledger slot pool high-water mark. */
    std::size_t ledgerSlotHighWater() const { return ledger_.size(); }

  private:
    /**
     * Per-access useful-word record. Records live in a recycled slot
     * pool: a record stays only while its access can still gain words
     * (the access's cycle) or has speculative element loads awaiting
     * resolution; after that it folds into the running Figure 13
     * histogram and the slot is reused, so ledger memory is bounded by
     * in-flight accesses rather than total accesses.
     */
    struct AccessRecord
    {
        Addr lineAddr = 0;
        bool inUse = false;             ///< slot holds a live record
        bool open = false;              ///< access's cycle still running
        std::uint32_t demandWords = 0;  ///< words for committed-path loads
        std::uint32_t specWords = 0;    ///< speculative element words
        std::uint32_t specUsed = 0;     ///< ... of which later validated
        std::uint32_t specPending = 0;  ///< ... not yet resolved
        std::uint32_t servedLoads = 0;  ///< loads served by this access
    };

    Addr lineOf(Addr addr) const { return addr & ~Addr(lineBytes_ - 1); }

    /** Claim a pooled ledger slot for a fresh read access. */
    std::int32_t allocRecord(Addr line);

    /** Fold a fully-resolved record into the histogram, free its slot. */
    void foldRecord(std::int32_t id);

    unsigned numPorts_;
    bool wide_;
    unsigned lineBytes_;
    unsigned maxServedPerAccess_;

    unsigned usedThisCycle_ = 0;
    /** Read accesses made this cycle, by line address (wide merge). */
    std::unordered_map<Addr, std::int32_t> cycleReads_;
    /** Ledger slots of the accesses made this cycle (closed at the
     *  next beginCycle). */
    std::vector<std::int32_t> openRecords_;

    std::vector<AccessRecord> ledger_; ///< slot pool (recycled)
    std::vector<std::int32_t> freeSlots_;
    std::unordered_map<ElemLoadId, std::int32_t> elemAccess_;
    WideBusBreakdown folded_; ///< resolved accesses, already bucketed
    PortStats stats_;
};

} // namespace sdv

#endif // SDV_MEM_PORT_HH
