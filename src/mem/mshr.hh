/**
 * @file
 * Miss status holding registers: bound the number of outstanding cache
 * misses (16 in the paper's configuration) and merge requests to the
 * same line into one outstanding fill.
 */

#ifndef SDV_MEM_MSHR_HH
#define SDV_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sdv {

namespace obs {
class TraceRecorder;
} // namespace obs

/** The MSHR file of one cache. */
class MshrFile
{
  public:
    /** @param entries maximum outstanding misses */
    explicit MshrFile(unsigned entries = 16);

    /**
     * Try to track a miss for @p line_addr completing at @p ready.
     *
     * A request to a line that already has an outstanding fill merges
     * with it and succeeds without consuming a new entry; the merged
     * request completes at the *earlier* of the two ready times (the
     * fill was already in flight).
     *
     * @param line_addr line-aligned miss address
     * @param ready cycle at which the new fill would complete
     * @param now current cycle (used to retire finished entries)
     * @param[out] completion actual completion cycle for this request
     * @retval false when the file is full (the access must retry)
     */
    bool allocate(Addr line_addr, Cycle ready, Cycle now, Cycle &completion);

    /**
     * @return true when a fill for @p line_addr is still outstanding at
     * @p now.
     */
    bool outstanding(Addr line_addr, Cycle now) const;

    /** @return number of entries busy at cycle @p now. */
    unsigned busyCount(Cycle now) const;

    /** @return capacity. */
    unsigned capacity() const { return unsigned(entries_.size()); }

    /** @return total allocations (excluding merges). */
    std::uint64_t allocations() const { return allocations_; }

    /** @return requests merged into an existing entry. */
    std::uint64_t merges() const { return merges_; }

    /** @return requests rejected because the file was full. */
    std::uint64_t fullStalls() const { return fullStalls_; }

    /** Clear all entries and statistics. */
    void reset();

    /** Attach a flight recorder for alloc/retry events (null
     *  detaches; pure observation). */
    void setRecorder(obs::TraceRecorder *rec) { recorder_ = rec; }

    /** Zero the statistics, keeping any tracked fills. */
    void
    resetStats()
    {
        allocations_ = 0;
        merges_ = 0;
        fullStalls_ = 0;
    }

    /** Drop all tracked fills, keeping the statistics. Used at the
     *  checkpoint measurement boundary, where every fill has already
     *  landed: an expired entry and a free one behave identically, so
     *  clearing makes the state canonical before the clock rebases. */
    void
    clearEntries()
    {
        for (auto &e : entries_)
            e = Entry{};
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr lineAddr = 0;
        Cycle ready = 0;
    };

    std::vector<Entry> entries_;
    std::uint64_t allocations_ = 0;
    std::uint64_t merges_ = 0;
    std::uint64_t fullStalls_ = 0;
    obs::TraceRecorder *recorder_ = nullptr;
};

} // namespace sdv

#endif // SDV_MEM_MSHR_HH
