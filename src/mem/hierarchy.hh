/**
 * @file
 * Two-level memory hierarchy with the latencies of Table 1: L1I
 * (64KB/2-way/64B, 1-cycle hit), L1D (64KB/2-way/32B, 1-cycle hit,
 * write-back, 16 outstanding misses) and a unified L2
 * (256KB/4-way/32B, 6-cycle hit, 18-cycle miss penalty to memory).
 */

#ifndef SDV_MEM_HIERARCHY_HH
#define SDV_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/mshr.hh"

namespace sdv {

/** Geometry and latency knobs for the hierarchy. */
struct MemHierarchyConfig
{
    std::uint64_t l1iSize = 64 * 1024;
    unsigned l1iAssoc = 2;
    unsigned l1iLineBytes = 64;
    Cycle l1iHitCycles = 1;

    std::uint64_t l1dSize = 64 * 1024;
    unsigned l1dAssoc = 2;
    unsigned l1dLineBytes = 32;
    Cycle l1dHitCycles = 1;
    Cycle l1dMissCycles = 6; ///< L1 miss, L2 hit: total latency

    std::uint64_t l2Size = 256 * 1024;
    unsigned l2Assoc = 4;
    unsigned l2LineBytes = 32;
    Cycle l2MissCycles = 18; ///< additional latency beyond an L2 miss

    unsigned mshrEntries = 16;
};

/** The timing-side memory hierarchy (tags and latencies only). */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyConfig &cfg);

    /**
     * Instruction fetch of the line containing @p pc.
     * @return cycle at which the fetch group is available.
     */
    Cycle fetchAccess(Addr pc, Cycle now);

    /**
     * Data load access (one L1D line).
     * @param addr any address inside the requested line
     * @param now current cycle
     * @param[out] complete cycle at which the data is available
     * @retval false when the access must retry (MSHR file full)
     */
    bool loadAccess(Addr addr, Cycle now, Cycle &complete);

    /**
     * Store performed at commit (write-allocate, write-back). Stores
     * drain through a write buffer and never stall commit in this
     * model; the access still updates tags, MSHRs and statistics.
     */
    void storeAccess(Addr addr, Cycle now);

    /** @return the L1 instruction cache. */
    Cache &l1i() { return l1i_; }

    /** @return the L1 data cache. */
    Cache &l1d() { return l1d_; }

    /** @return the unified L2. */
    Cache &l2() { return l2_; }

    /** @return the L1D MSHR file. */
    MshrFile &mshrs() { return mshrs_; }

    /** @return the L1D MSHR file (const). */
    const MshrFile &mshrs() const { return mshrs_; }

    /** @return configuration in use. */
    const MemHierarchyConfig &config() const { return cfg_; }

    /** Zero every cache's and the MSHR file's statistics. */
    void
    resetStats()
    {
        l1i_.resetStats();
        l1d_.resetStats();
        l2_.resetStats();
        mshrs_.resetStats();
    }

    /** Serialize the warm tag state of all three caches. */
    void
    saveState(Serializer &ser) const
    {
        l1i_.saveState(ser);
        l1d_.saveState(ser);
        l2_.saveState(ser);
    }

    /** Restore cache tag state; @retval false on geometry mismatch. */
    bool
    loadState(Deserializer &des)
    {
        return l1i_.loadState(des) && l1d_.loadState(des) &&
               l2_.loadState(des);
    }

  private:
    /** Charge an L2 lookup for @p line_addr; @return total latency from
     *  the L1 miss (6 on L2 hit, 6+18 on L2 miss). */
    Cycle l2Latency(Addr line_addr, bool is_write);

    MemHierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    MshrFile mshrs_;
};

} // namespace sdv

#endif // SDV_MEM_HIERARCHY_HH
