#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace sdv {

Cache::Cache(std::string name, std::uint64_t size_bytes, unsigned assoc,
             unsigned line_bytes)
    : name_(std::move(name)),
      sets_(unsigned(size_bytes / (std::uint64_t(assoc) * line_bytes))),
      assoc_(assoc), lineBytes_(line_bytes)
{
    sdv_assert(isPowerOf2(line_bytes), "line size must be a power of two");
    sdv_assert(sets_ >= 1 && isPowerOf2(sets_),
               "cache geometry must yield a power-of-two set count");
    lines_.resize(size_t(sets_) * assoc_);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return unsigned((addr / lineBytes_) & (sets_ - 1));
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult res;
    const Addr tag = lineAddr(addr);
    Line *set = &lines_[size_t(setIndex(addr)) * assoc_];

    if (is_write)
        ++stats_.writeAccesses;
    else
        ++stats_.readAccesses;

    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            set[w].dirty = set[w].dirty || is_write;
            res.hit = true;
            return res;
        }
    }

    // Miss: pick the first invalid way, else the LRU way (one pass).
    Line *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.writebackAddr = victim->tag;
        ++stats_.writebacks;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    return res;
}

bool
Cache::probe(Addr addr) const
{
    const Addr tag = lineAddr(addr);
    const Line *set = &lines_[size_t(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr tag = lineAddr(addr);
    Line *set = &lines_[size_t(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            set[w] = Line{};
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    useClock_ = 0;
    stats_ = CacheStats{};
}

void
Cache::saveState(Serializer &ser) const
{
    ser.u32(sets_);
    ser.u32(assoc_);
    ser.u32(lineBytes_);
    ser.u64(useClock_);
    for (const Line &l : lines_) {
        ser.b(l.valid);
        ser.b(l.dirty);
        ser.u64(l.tag);
        ser.u64(l.lastUse);
    }
}

bool
Cache::loadState(Deserializer &des)
{
    if (des.u32() != sets_ || des.u32() != assoc_ ||
        des.u32() != lineBytes_) {
        des.fail();
        return false;
    }
    useClock_ = des.u64();
    for (Line &l : lines_) {
        l.valid = des.b();
        l.dirty = des.b();
        l.tag = des.u64();
        l.lastUse = des.u64();
    }
    return des.ok();
}

} // namespace sdv
