#include "mem/hierarchy.hh"

#include "common/log.hh"

namespace sdv {

MemHierarchy::MemHierarchy(const MemHierarchyConfig &cfg)
    : cfg_(cfg),
      l1i_("l1i", cfg.l1iSize, cfg.l1iAssoc, cfg.l1iLineBytes),
      l1d_("l1d", cfg.l1dSize, cfg.l1dAssoc, cfg.l1dLineBytes),
      l2_("l2", cfg.l2Size, cfg.l2Assoc, cfg.l2LineBytes),
      mshrs_(cfg.mshrEntries)
{
}

Cycle
MemHierarchy::l2Latency(Addr line_addr, bool is_write)
{
    const CacheAccessResult res = l2_.access(line_addr, is_write);
    Cycle lat = cfg_.l1dMissCycles;
    if (!res.hit)
        lat += cfg_.l2MissCycles;
    return lat;
}

Cycle
MemHierarchy::fetchAccess(Addr pc, Cycle now)
{
    const CacheAccessResult res = l1i_.access(pc, false);
    if (res.hit)
        return now + cfg_.l1iHitCycles;
    // I-cache misses refill through the L2 with the same miss timing as
    // data (Table 1 gives a 6-cycle I-cache miss time).
    const CacheAccessResult l2res = l2_.access(l1i_.lineAddr(pc), false);
    Cycle lat = cfg_.l1dMissCycles;
    if (!l2res.hit)
        lat += cfg_.l2MissCycles;
    return now + lat;
}

bool
MemHierarchy::loadAccess(Addr addr, Cycle now, Cycle &complete)
{
    const Addr line = l1d_.lineAddr(addr);

    // A fill already in flight for this line serves the access when it
    // lands, regardless of the (already updated) tag array.
    if (mshrs_.outstanding(line, now)) {
        const bool ok = mshrs_.allocate(line, neverCycle, now, complete);
        sdv_assert(ok, "merge into outstanding fill cannot fail");
        return true;
    }

    const CacheAccessResult res = l1d_.access(addr, false);
    if (res.hit) {
        complete = now + cfg_.l1dHitCycles;
        return true;
    }

    const Cycle lat = l2Latency(line, false);
    if (!mshrs_.allocate(line, now + lat, now, complete)) {
        // MSHR file full: undo nothing (the line was filled into the
        // tags, matching a blocked-retry next cycle hitting the MSHR
        // merge path), report retry.
        return false;
    }
    return true;
}

void
MemHierarchy::storeAccess(Addr addr, Cycle now)
{
    const Addr line = l1d_.lineAddr(addr);
    if (mshrs_.outstanding(line, now)) {
        // Fill in flight; the store merges into it.
        Cycle ignored;
        mshrs_.allocate(line, neverCycle, now, ignored);
        l1d_.access(addr, true); // mark dirty
        return;
    }
    const CacheAccessResult res = l1d_.access(addr, true);
    if (!res.hit) {
        const Cycle lat = l2Latency(line, true);
        Cycle ignored;
        // Write misses allocate an MSHR when one is free; when the file
        // is full the write buffer absorbs the store instead (modelled
        // as not tracking the fill).
        mshrs_.allocate(line, now + lat, now, ignored);
    }
}

} // namespace sdv
