/**
 * @file
 * Set-associative cache tag array with LRU replacement and write-back /
 * write-allocate policy. The model tracks tags and dirty bits only;
 * data values live in the functional memory image (the timing model
 * never needs the bytes themselves).
 */

#ifndef SDV_MEM_CACHE_HH
#define SDV_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** Statistics kept by each cache instance. */
struct CacheStats
{
    std::uint64_t readAccesses = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeAccesses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t writebacks = 0;

    /** @return total accesses. */
    std::uint64_t
    accesses() const
    {
        return readAccesses + writeAccesses;
    }

    /** @return total misses. */
    std::uint64_t misses() const { return readMisses + writeMisses; }

    /** @return overall miss ratio (0 when no accesses). */
    double
    missRatio() const
    {
        return accesses() == 0 ? 0.0
                               : double(misses()) / double(accesses());
    }
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;           ///< tag matched
    bool writeback = false;     ///< a dirty victim was evicted
    Addr writebackAddr = 0;     ///< line address of the victim
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    /**
     * @param name for diagnostics
     * @param size_bytes total capacity
     * @param assoc associativity
     * @param line_bytes line size
     */
    Cache(std::string name, std::uint64_t size_bytes, unsigned assoc,
          unsigned line_bytes);

    /**
     * Access the line containing @p addr; on a miss the line is filled
     * (allocate-on-miss for both reads and writes) and the LRU victim
     * evicted.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** @return true when the line containing @p addr is present. */
    bool probe(Addr addr) const;

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** @return line size in bytes. */
    unsigned lineBytes() const { return lineBytes_; }

    /** @return line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~Addr(lineBytes_ - 1); }

    /** @return number of sets. */
    unsigned numSets() const { return sets_; }

    /** @return associativity. */
    unsigned assoc() const { return assoc_; }

    /** @return accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Clear contents and statistics. */
    void reset();

    /** Zero the statistics, keeping the tag contents (checkpoint
     *  measurement rebase). */
    void resetStats() { stats_ = CacheStats{}; }

    /** Serialize tags / dirty bits / LRU state (not statistics). */
    void saveState(Serializer &ser) const;

    /**
     * Restore tag state from a checkpoint image.
     * @retval false when the image was made by a cache of different
     * geometry (sets / associativity / line size)
     */
    bool loadState(Deserializer &des);

    /** @return the cache's diagnostic name. */
    const std::string &name() const { return name_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;

    std::string name_;
    std::vector<Line> lines_; ///< sets * assoc, way-major within set
    unsigned sets_;
    unsigned assoc_;
    unsigned lineBytes_;
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace sdv

#endif // SDV_MEM_CACHE_HH
