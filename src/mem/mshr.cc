#include "mem/mshr.hh"

#include "common/log.hh"
#include "obs/hooks.hh"

namespace sdv {

MshrFile::MshrFile(unsigned entries) : entries_(entries)
{
    sdv_assert(entries >= 1, "MSHR file needs at least one entry");
}

bool
MshrFile::allocate(Addr line_addr, Cycle ready, Cycle now,
                   Cycle &completion)
{
    Entry *free_entry = nullptr;
    for (auto &e : entries_) {
        if (!e.valid)
            continue;
        if (e.ready <= now) {
            // Fill finished; retire lazily.
            e.valid = false;
            if (!free_entry)
                free_entry = &e;
            continue;
        }
        if (e.lineAddr == line_addr) {
            // Merge with the in-flight fill.
            ++merges_;
            completion = e.ready < ready ? e.ready : ready;
            e.ready = completion;
            return true;
        }
    }
    if (!free_entry) {
        for (auto &e : entries_) {
            if (!e.valid) {
                free_entry = &e;
                break;
            }
        }
    }
    if (!free_entry) {
        ++fullStalls_;
        SDV_OBS_EVENT(recorder_, obs::EventKind::MshrRetry, line_addr);
        return false;
    }
    free_entry->valid = true;
    free_entry->lineAddr = line_addr;
    free_entry->ready = ready;
    ++allocations_;
    completion = ready;
    SDV_OBS_EVENT(recorder_, obs::EventKind::MshrAlloc, line_addr, ready);
    return true;
}

bool
MshrFile::outstanding(Addr line_addr, Cycle now) const
{
    for (const auto &e : entries_)
        if (e.valid && e.ready > now && e.lineAddr == line_addr)
            return true;
    return false;
}

unsigned
MshrFile::busyCount(Cycle now) const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        if (e.valid && e.ready > now)
            ++n;
    return n;
}

void
MshrFile::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    allocations_ = merges_ = fullStalls_ = 0;
}

} // namespace sdv
