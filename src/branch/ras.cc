#include "branch/ras.hh"

#include "common/log.hh"

namespace sdv {

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack_(depth, 0)
{
    sdv_assert(depth >= 1, "RAS needs at least one entry");
}

void
ReturnAddressStack::push(Addr return_pc)
{
    stack_[top_] = return_pc;
    top_ = (top_ + 1) % depth();
    if (size_ < depth())
        ++size_;
}

bool
ReturnAddressStack::pop(Addr &out)
{
    if (size_ == 0)
        return false;
    top_ = (top_ + depth() - 1) % depth();
    out = stack_[top_];
    --size_;
    return true;
}

void
ReturnAddressStack::reset()
{
    top_ = 0;
    size_ = 0;
}

} // namespace sdv
