/**
 * @file
 * Branch target buffer: caches the most recent target of control
 * instructions so the front end can redirect on a predicted-taken
 * branch without waiting for decode.
 */

#ifndef SDV_BRANCH_BTB_HH
#define SDV_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** Set-associative branch target buffer with per-set LRU. */
class Btb
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     */
    explicit Btb(unsigned sets = 512, unsigned ways = 4);

    /**
     * Look up the target of the control instruction at @p pc.
     * @retval true and sets @p target on a hit.
     */
    bool lookup(Addr pc, Addr &target);

    /** Install/refresh the target for @p pc. */
    void update(Addr pc, Addr target);

    /** Drop all entries. */
    void reset();

    /** @return hit count since construction/reset. */
    std::uint64_t hits() const { return hits_; }

    /** @return lookup count since construction/reset. */
    std::uint64_t lookups() const { return lookups_; }

    /** Zero the hit/lookup counters, keeping the entries. */
    void
    resetStats()
    {
        hits_ = 0;
        lookups_ = 0;
    }

    /** Serialize entries + LRU clock (not statistics). */
    void
    saveState(Serializer &ser) const
    {
        ser.u32(sets_);
        ser.u32(ways_);
        ser.u64(useClock_);
        for (const Entry &e : entries_) {
            ser.b(e.valid);
            ser.u64(e.tag);
            ser.u64(e.target);
            ser.u64(e.lastUse);
        }
    }

    /** Restore BTB state; @retval false on geometry mismatch. */
    bool
    loadState(Deserializer &des)
    {
        if (des.u32() != sets_ || des.u32() != ways_) {
            des.fail();
            return false;
        }
        useClock_ = des.u64();
        for (Entry &e : entries_) {
            e.valid = des.b();
            e.tag = des.u64();
            e.target = des.u64();
            e.lastUse = des.u64();
        }
        return des.ok();
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr pc) const;

    std::vector<Entry> entries_; ///< sets * ways, way-major within set
    unsigned sets_;
    unsigned ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t lookups_ = 0;
};

} // namespace sdv

#endif // SDV_BRANCH_BTB_HH
