/**
 * @file
 * Gshare conditional branch direction predictor (64K-entry, 2-bit
 * counters per Table 1 of the paper).
 */

#ifndef SDV_BRANCH_GSHARE_HH
#define SDV_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** Global-history XOR-indexed pattern history table. */
class Gshare
{
  public:
    /**
     * @param table_entries number of 2-bit counters (power of two)
     * @param history_bits length of the global history register
     */
    explicit Gshare(unsigned table_entries = 64 * 1024,
                    unsigned history_bits = 16);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Train with the resolved outcome and shift the global history.
     * The sdv front end trains at fetch with the oracle outcome, which
     * models the common "fix up history on misprediction" hardware.
     */
    void update(Addr pc, bool taken);

    /** predict() + update() fused: one table index computation instead
     *  of two (the fetch hot path predicts and trains back to back).
     *  @return the prediction made before training. */
    bool predictAndUpdate(Addr pc, bool taken);

    /** @return the current global history register value. */
    std::uint64_t history() const { return history_; }

    /** @return table size in entries. */
    unsigned numEntries() const { return unsigned(table_.size()); }

    /** Reset all counters and history. */
    void reset();

    /** Serialize every counter plus the global history register. */
    void
    saveState(Serializer &ser) const
    {
        ser.u32(unsigned(table_.size()));
        ser.u64(history_);
        for (const SatCounter &c : table_)
            ser.u8(c.count());
    }

    /** Restore predictor state; @retval false on geometry mismatch. */
    bool
    loadState(Deserializer &des)
    {
        if (des.u32() != table_.size()) {
            des.fail();
            return false;
        }
        history_ = des.u64() & historyMask_;
        for (SatCounter &c : table_)
            c.set(des.u8());
        return des.ok();
    }

  private:
    unsigned index(Addr pc) const;

    std::vector<SatCounter> table_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
    unsigned indexMask_;
};

} // namespace sdv

#endif // SDV_BRANCH_GSHARE_HH
