#include "branch/gshare.hh"

#include "common/bitutils.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace sdv {

Gshare::Gshare(unsigned table_entries, unsigned history_bits)
    : table_(table_entries, SatCounter(2, 1)), // weakly not-taken
      historyMask_((history_bits >= 64) ? ~0ULL
                                        : ((1ULL << history_bits) - 1)),
      indexMask_(table_entries - 1)
{
    sdv_assert(isPowerOf2(table_entries), "gshare table must be 2^n");
    sdv_assert(history_bits >= 1 && history_bits <= 64,
               "bad history length");
}

unsigned
Gshare::index(Addr pc) const
{
    // Drop instruction alignment bits before hashing.
    const Addr word_pc = pc / instBytes;
    return unsigned((word_pc ^ history_) & indexMask_);
}

bool
Gshare::predict(Addr pc) const
{
    return table_[index(pc)].taken();
}

void
Gshare::update(Addr pc, bool taken)
{
    SatCounter &ctr = table_[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

bool
Gshare::predictAndUpdate(Addr pc, bool taken)
{
    SatCounter &ctr = table_[index(pc)];
    const bool pred = ctr.taken();
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return pred;
}

void
Gshare::reset()
{
    for (auto &c : table_)
        c = SatCounter(2, 1);
    history_ = 0;
}

} // namespace sdv
