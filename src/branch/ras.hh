/**
 * @file
 * Return address stack used to predict JR targets for call returns.
 */

#ifndef SDV_BRANCH_RAS_HH
#define SDV_BRANCH_RAS_HH

#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** Fixed-depth circular return-address stack. */
class ReturnAddressStack
{
  public:
    /** @param depth number of entries */
    explicit ReturnAddressStack(unsigned depth = 16);

    /** Push a return address (on a call). */
    void push(Addr return_pc);

    /**
     * Pop the predicted return address (on a return).
     * @retval true and sets @p out when the stack is non-empty.
     */
    bool pop(Addr &out);

    /** @return current number of valid entries. */
    unsigned size() const { return size_; }

    /** @return stack capacity. */
    unsigned depth() const { return unsigned(stack_.size()); }

    /** Empty the stack. */
    void reset();

    /** Serialize the stack contents and pointers. */
    void
    saveState(Serializer &ser) const
    {
        ser.u32(unsigned(stack_.size()));
        ser.u32(top_);
        ser.u32(size_);
        for (Addr a : stack_)
            ser.u64(a);
    }

    /** Restore RAS state; @retval false on geometry mismatch. */
    bool
    loadState(Deserializer &des)
    {
        if (des.u32() != stack_.size()) {
            des.fail();
            return false;
        }
        top_ = des.u32();
        size_ = des.u32();
        for (Addr &a : stack_)
            a = des.u64();
        return des.ok();
    }

  private:
    std::vector<Addr> stack_;
    unsigned top_ = 0;  ///< index of the next free slot
    unsigned size_ = 0; ///< valid entries (<= depth)
};

} // namespace sdv

#endif // SDV_BRANCH_RAS_HH
