#include "branch/btb.hh"

#include "common/bitutils.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace sdv {

Btb::Btb(unsigned sets, unsigned ways)
    : entries_(size_t(sets) * ways), sets_(sets), ways_(ways)
{
    sdv_assert(isPowerOf2(sets), "BTB sets must be a power of two");
    sdv_assert(ways >= 1, "BTB needs at least one way");
}

unsigned
Btb::setIndex(Addr pc) const
{
    return unsigned((pc / instBytes) & (sets_ - 1));
}

bool
Btb::lookup(Addr pc, Addr &target)
{
    ++lookups_;
    Entry *set = &entries_[size_t(setIndex(pc)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            set[w].lastUse = ++useClock_;
            target = set[w].target;
            ++hits_;
            return true;
        }
    }
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry *set = &entries_[size_t(setIndex(pc)) * ways_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            set[w].target = target;
            set[w].lastUse = ++useClock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

void
Btb::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    useClock_ = hits_ = lookups_ = 0;
}

} // namespace sdv
