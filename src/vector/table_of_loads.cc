#include "vector/table_of_loads.hh"

#include "common/bitutils.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace sdv {

TableOfLoads::TableOfLoads(unsigned sets, unsigned ways,
                           std::uint8_t spawn_confidence)
    : sets_(sets), ways_(ways), spawnConfidence_(spawn_confidence),
      entries_(size_t(sets) * ways)
{
    sdv_assert(isPowerOf2(sets), "TL sets must be a power of two");
    sdv_assert(ways >= 1, "TL needs at least one way");
}

unsigned
TableOfLoads::setIndex(Addr pc) const
{
    return unsigned((pc / instBytes) & (sets_ - 1));
}

TableOfLoads::Entry *
TableOfLoads::find(Addr pc)
{
    Entry *set = &entries_[size_t(setIndex(pc)) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (set[w].valid && set[w].pc == pc)
            return &set[w];
    return nullptr;
}

const TableOfLoads::Entry *
TableOfLoads::find(Addr pc) const
{
    return const_cast<TableOfLoads *>(this)->find(pc);
}

TableOfLoads::Entry &
TableOfLoads::victimIn(Addr pc)
{
    Entry *set = &entries_[size_t(setIndex(pc)) * ways_];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_ && !victim; ++w)
        if (!set[w].valid)
            victim = &set[w];
    if (!victim) {
        victim = &set[0];
        for (unsigned w = 1; w < ways_; ++w)
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
    }
    return *victim;
}

TlObservation
TableOfLoads::observe(Addr pc, Addr addr)
{
    ++observations_;
    TlObservation obs;
    Entry *e = find(pc);
    if (!e) {
        Entry &v = victimIn(pc);
        v.valid = true;
        v.pc = pc;
        v.lastAddr = addr;
        v.stride = 0;
        v.confidence = 0;
        v.lastUse = ++useClock_;
        return obs;
    }

    obs.hit = true;
    const auto stride = std::int64_t(addr) - std::int64_t(e->lastAddr);
    if (stride == e->stride) {
        if (e->confidence < maxConfidence_)
            ++e->confidence;
    } else {
        e->stride = stride;
        e->confidence = 0;
    }
    e->lastAddr = addr;
    e->lastUse = ++useClock_;

    obs.stride = e->stride;
    if (e->confidence >= spawnConfidence_) {
        obs.spawn = true;
        ++spawns_;
    }
    return obs;
}

bool
TableOfLoads::applyFault(Addr pc, bool stride_field, std::uint64_t mask)
{
    Entry *e = find(pc);
    if (!e)
        return false;
    if (stride_field)
        e->stride ^= std::int64_t(mask);
    else
        e->lastAddr ^= mask;
    return true;
}

void
TableOfLoads::resetConfidence(Addr pc)
{
    if (Entry *e = find(pc))
        e->confidence = 0;
}

TlSnapshot
TableOfLoads::snapshot(Addr pc) const
{
    TlSnapshot snap;
    if (const Entry *e = find(pc)) {
        snap.existed = true;
        snap.lastAddr = e->lastAddr;
        snap.stride = e->stride;
        snap.confidence = e->confidence;
    }
    return snap;
}

void
TableOfLoads::restore(Addr pc, const TlSnapshot &snap)
{
    Entry *e = find(pc);
    if (!snap.existed) {
        // The squashed decode installed the entry; drop it.
        if (e)
            e->valid = false;
        return;
    }
    if (!e) {
        Entry &v = victimIn(pc);
        v.valid = true;
        v.pc = pc;
        v.lastUse = ++useClock_;
        e = &v;
    }
    e->lastAddr = snap.lastAddr;
    e->stride = snap.stride;
    e->confidence = snap.confidence;
}

} // namespace sdv
