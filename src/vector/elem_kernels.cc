#include "vector/elem_kernels.hh"

#include "isa/alu.hh"

namespace sdv {

namespace {

/**
 * The batched loop body is trivially countable and carries no
 * cross-iteration dependence, so -O2/-O3 auto-vectorizes the integer
 * kernels and unrolls the FP ones; the per-opcode instantiation means
 * the operation is a compile-time constant inside the loop.
 */
template <Opcode O>
void
kernelImpl(std::uint64_t *dst, const std::uint64_t *a,
           const std::uint64_t *b, std::int32_t imm, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        dst[i] = evalScalarOpFor<O>(a[i], b[i], imm);
}

constexpr ElemKernelFn kernelTable[numOpcodes] = {
#define SDV_KERNEL(name, ...)                                                \
    isScalarEvalOp(Opcode::name) ? &kernelImpl<Opcode::name> : nullptr,
    SDV_FOR_EACH_OPCODE(SDV_KERNEL)
#undef SDV_KERNEL
};

} // namespace

ElemKernelFn
elemKernel(Opcode op)
{
    return kernelTable[unsigned(op)];
}

} // namespace sdv
