#include "vector/datapath.hh"

#include <algorithm>

#include "common/log.hh"
#include "isa/alu.hh"
#include "sim/fault_injection.hh"

namespace sdv {

VectorDatapath::VectorDatapath(const VectorFuConfig &cfg, VecRegFile &vrf)
    : cfg_(cfg), vrf_(vrf)
{
    for (unsigned c = 0; c <= unsigned(OpClass::None); ++c)
        fuSlots_[c] = fuBandwidth(OpClass(c));
}

void
VectorDatapath::spawnLoad(Addr pc, VecRegRef dest, Addr base,
                          std::int64_t stride, unsigned elem_bytes,
                          unsigned elem_count)
{
    VecInstance inst;
    inst.id = nextInstanceId_++;
    inst.pc = pc;
    inst.op = Opcode::LDQ; // element semantics: raw word load
    inst.dest = dest;
    inst.elemCount = elem_count;
    inst.isLoad = true;
    inst.baseAddr = base;
    inst.stride = stride;
    inst.elemBytes = elem_bytes;
    active_.push_back(inst);
    stallValid_ = false;
    ++stats_.instancesSpawned;
    ++stats_.loadInstances;
}

void
VectorDatapath::spawnArith(Addr pc, Opcode op, std::int32_t imm,
                           VecRegRef dest, const SrcSpec &src1,
                           const SrcSpec &src2, unsigned elem_count)
{
    VecInstance inst;
    inst.id = nextInstanceId_++;
    inst.pc = pc;
    inst.op = op;
    inst.kern = elemKernel(op);
    inst.cls = opInfo(op).opClass;
    sdv_assert(inst.kern, "vectorized op without element semantics: ",
               mnemonic(op));
    inst.imm = imm;
    inst.dest = dest;
    inst.src1 = src1;
    inst.src2 = src2;
    inst.elemCount = elem_count;
    // A captured-scalar operand still in flight parks the instance in
    // the vector instruction queue (Section 3.4).
    for (const SrcSpec *s : {&src1, &src2})
        if (s->isScalar() && s->depSeq > inst.scalarDep)
            inst.scalarDep = s->depSeq;
    active_.push_back(inst);
    stallValid_ = false;
    ++stats_.instancesSpawned;
    ++stats_.arithInstances;
    if ((src1.isVector() && src1.srcOffset != 0) ||
        (src2.isVector() && src2.srcOffset != 0))
        ++stats_.instancesWithNonzeroSrcOffset;
}

void
VectorDatapath::abortByDest(VecRegRef dest)
{
    for (auto &inst : active_) {
        if (inst.dest == dest && !inst.aborted) {
            inst.aborted = true;
            stallValid_ = false;
            ++stats_.instancesAborted;
        }
    }
}

bool
VectorDatapath::srcsReady(const VecInstance &inst, unsigned k) const
{
    // Uniform sources: all elements identical, element 0 (computed
    // first) serves every consumer element; elemReady folds that in.
    for (const SrcSpec *src : {&inst.src1, &inst.src2}) {
        if (src->isVector() &&
            !vrf_.elemReady(src->vreg, src->srcOffset + k))
            return false;
    }
    return true;
}

std::uint64_t
VectorDatapath::srcValue(const SrcSpec &src, unsigned k) const
{
    switch (src.kind) {
      case SrcSpec::Kind::None:
        return 0;
      case SrcSpec::Kind::Scalar:
        return src.value;
      case SrcSpec::Kind::Vector:
        return vrf_.elemValue(src.vreg, src.srcOffset + k);
    }
    panic("unreachable src kind");
}

unsigned
VectorDatapath::fuBandwidth(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:
        return cfg_.intAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return cfg_.intMulDiv;
      case OpClass::FpAdd:
        return cfg_.fpAdd;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return cfg_.fpMulDiv;
      default:
        return 0;
    }
}

Cycle
VectorDatapath::nextEventCycle(Cycle now) const
{
    // Cached stall: the last tick proved every instance blocked on
    // source elements whose completions are all scheduled, and the
    // register file has not changed since — exactly the state in
    // which the walk below returns completionsMin_.
    if (stallValid_ && vrf_.version() == stallVrfVersion_)
        return completionsMin_;
    Cycle e = completionsMin_;
    for (const VecInstance &inst : active_) {
        // tick() erases finished/dead instances and cascade-aborts
        // consumers of dead sources; those bookkeeping transitions
        // must happen at their exact cycle, so they pin the horizon.
        if (inst.done() || !vrf_.isLive(inst.dest))
            return now;
        if (inst.isLoad)
            return now; // loads initiate/retry ports every cycle
        bool blocked = false;
        for (const SrcSpec *src : {&inst.src1, &inst.src2}) {
            if (src->isVector() &&
                vrf_.elemUncomputable(src->vreg,
                                      src->srcOffset + inst.nextElem))
                return now; // cascade abort fires this cycle
        }
        if (inst.scalarDep != 0 &&
            (!ctx_ || !ctx_->seqCompleted(inst.scalarDep)))
            blocked = true; // parked; wakes on the producer's event
        else if (!srcsReady(inst, inst.nextElem))
            blocked = true; // wakes on a source element completion
        if (!blocked)
            return now; // an element can be initiated this cycle
    }
    return e;
}

void
VectorDatapath::tick(Cycle now, DCachePorts &ports, MemHierarchy &mem)
{
    if (active_.empty() && completions_.empty())
        return; // nothing in flight this cycle

    // Cached stall window: every instance is provably blocked until a
    // scheduled completion lands, and the register file is untouched
    // since the cache was armed. A tick here would walk the phases
    // below and mutate nothing (a fully-blocked tick charges no stat
    // either), so skip it.
    if (stallValid_) {
        if (now < completionsMin_ && vrf_.version() == stallVrfVersion_)
            return;
        stallValid_ = false;
    }

    // 1. Land completions due this cycle (skipped entirely until the
    //    earliest scheduled one matures).
    if (completionsMin_ <= now) {
    Cycle new_min = neverCycle;
    for (auto it = completions_.begin(); it != completions_.end();) {
        if (it->ready <= now) {
            if (vrf_.isLive(it->dest)) {
                std::uint64_t value = it->value;
                std::uint64_t flip = 0;
                // Fault site: the value lands in the register file
                // possibly with one bit flipped. The draw happens at
                // this discrete event, so the stream position is
                // identical under ticking and event-skipping clocks.
                if (finj_ && finj_->armed())
                    flip = finj_->drawElemFlip();
                vrf_.setData(it->dest, it->elem, value ^ flip);
                if (flip != 0)
                    vrf_.markFaultInjected(it->dest, it->elem);
                if (it->tainted)
                    vrf_.markFaultTaint(it->dest, it->elem);
                if (it->loadId != 0)
                    vrf_.setElemLoadId(it->dest, it->elem, it->loadId);
                ++stats_.elemsComputed;
            } else if (it->loadId != 0) {
                // Register vanished before the fill landed: the ledger
                // should not keep waiting for a resolution.
                ports.resolveElem(it->loadId, false);
            }
            *it = completions_.back();
            completions_.pop_back();
        } else {
            new_min = it->ready < new_min ? it->ready : new_min;
            ++it;
        }
    }
    completionsMin_ = new_min;
    }

    // 2. Cascade-abort instances whose sources died (killed, freed or
    //    stolen registers): their remaining elements can never be
    //    computed, so kill the destination too, letting in-flight
    //    validations fall back to scalar execution instead of waiting
    //    forever.
    for (auto &inst : active_) {
        if (inst.aborted || inst.isLoad || inst.done() ||
            !vrf_.isLive(inst.dest))
            continue;
        for (const SrcSpec *src : {&inst.src1, &inst.src2}) {
            if (src->isVector() &&
                vrf_.elemUncomputable(src->vreg,
                                      src->srcOffset + inst.nextElem)) {
                inst.aborted = true;
                vrf_.kill(inst.dest);
                ++stats_.instancesAborted;
                break;
            }
        }
    }

    // Drop finished/aborted instances whose dest is gone.
    std::erase_if(active_, [&](const VecInstance &inst) {
        return inst.done() || !vrf_.isLive(inst.dest);
    });

    // 3. Initiate element loads (after scalar demand issue; the port
    //    object tracks per-cycle capacity).
    accessDone_.clear();
    unsigned load_slots = cfg_.loadPorts;
    for (auto &inst : active_) {
        if (!inst.isLoad || inst.done())
            continue;
        while (!inst.done() && load_slots > 0) {
            const Addr addr = inst.elemAddr(inst.nextElem);
            const ElemLoadId lid = nextElemLoadId_++;
            const auto grant = ports.requestLoadWord(addr, lid);
            if (!grant.ok) {
                ++stats_.elemLoadPortStalls;
                load_slots = 0;
                break;
            }
            Cycle done_at = 0;
            if (grant.newAccess) {
                if (!mem.loadAccess(addr, now, done_at)) {
                    // MSHR full: the claimed port slot is wasted this
                    // cycle and the element retries next cycle. The
                    // retry draws a fresh load id, so this one must
                    // resolve (unused) or its ledger record leaks.
                    ports.resolveElem(lid, false);
                    ++stats_.elemLoadMshrStalls;
                    load_slots = 0;
                    break;
                }
                accessDone_.emplace_back(grant.accessId, done_at);
                ++stats_.elemLoadAccessesIssued;
            } else {
                done_at = neverCycle;
                for (const auto &[id, c] : accessDone_)
                    if (id == grant.accessId)
                        done_at = c;
                // Riding on an access made by the scalar pipeline this
                // cycle: its completion is not tracked here; charge a
                // fresh (hit-latency) lookup for the element instead.
                if (done_at == neverCycle &&
                    !mem.loadAccess(addr, now, done_at)) {
                    ports.resolveElem(lid, false);
                    ++stats_.elemLoadMshrStalls;
                    load_slots = 0;
                    break;
                }
                ++stats_.elemLoadsRideAlong;
            }

            Completion c;
            c.ready = done_at;
            c.dest = inst.dest;
            c.elem = inst.nextElem;
            c.value = ctx_ ? ctx_->specLoadValue(addr, inst.elemBytes) : 0;
            c.loadId = lid;
            completions_.push_back(c);
            completionsMin_ = std::min(completionsMin_, done_at);
            ++inst.nextElem;
            --load_slots;
        }
        if (load_slots == 0)
            break;
    }

    // 4. Initiate arithmetic elements, one per instance per cycle,
    //    bounded by the per-class FU bandwidth (table precomputed at
    //    construction; bandwidth replenishes fully every cycle).
    unsigned slots[unsigned(OpClass::None) + 1];
    std::copy(std::begin(fuSlots_), std::end(fuSlots_),
              std::begin(slots));

    for (auto &inst : active_) {
        if (inst.isLoad || inst.done())
            continue;
        if (inst.scalarDep != 0) {
            if (!ctx_ || !ctx_->seqCompleted(inst.scalarDep))
                continue; // waiting on the scalar operand's producer
            inst.scalarDep = 0;
        }
        unsigned &slot = slots[unsigned(inst.cls)];
        if (slot == 0)
            continue;
        const unsigned k = inst.nextElem;
        if (!srcsReady(inst, k))
            continue;

        Completion c;
        c.ready = now + opClassLatency(inst.cls);
        c.dest = inst.dest;
        c.elem = k;
        // The timing model initiates one element per instance per
        // cycle, so the batched kernel runs with n = 1 here — still a
        // straight call through the spawn-resolved pointer, no opcode
        // switch. BM_SimdElementBatch exercises the n > 1 form.
        const std::uint64_t a = srcValue(inst.src1, k);
        const std::uint64_t b = srcValue(inst.src2, k);
        std::uint64_t value;
        inst.kern(&value, &a, &b, inst.imm, 1);
        c.value = value;
        // Taint propagation: a value computed from a fault-marked
        // source carries the mark forward, so its own validation is
        // attributed to the injection instead of the genuine
        // value-mismatch self-check.
        for (const SrcSpec *src : {&inst.src1, &inst.src2})
            if (src->isVector() &&
                vrf_.srcFaultMarked(src->vreg, src->srcOffset + k))
                c.tainted = true;
        completions_.push_back(c);
        completionsMin_ = std::min(completionsMin_, c.ready);
        ++inst.nextElem;
        --slot;
    }

    refreshStallCache();
}

void
VectorDatapath::refreshStallCache()
{
    // Arm the stall cache when this tick left every active instance in
    // a state only a scheduled completion or a register-file mutation
    // can change: non-load (loads re-arbitrate ports every cycle),
    // live and unfinished (else next tick erases it), no captured-
    // scalar dependence (its wake-up is a core-side completion the
    // cache cannot see), no dead source (else next tick cascade-
    // aborts), and sources not ready (else next tick initiates — FU
    // slots replenish every cycle, so readiness alone is progress).
    // Every one of these predicates reads only instance fields frozen
    // between ticks and register-file state guarded by version().
    stallValid_ = false;
    for (const VecInstance &inst : active_) {
        if (inst.isLoad || inst.done() || inst.scalarDep != 0 ||
            !vrf_.isLive(inst.dest))
            return;
        for (const SrcSpec *src : {&inst.src1, &inst.src2})
            if (src->isVector() &&
                vrf_.elemUncomputable(src->vreg,
                                      src->srcOffset + inst.nextElem))
                return;
        if (srcsReady(inst, inst.nextElem))
            return;
    }
    stallValid_ = true;
    stallVrfVersion_ = vrf_.version();
}

void
VectorDatapath::clear()
{
    active_.clear();
    completions_.clear();
    completionsMin_ = neverCycle;
    stallValid_ = false;
}

} // namespace sdv
