/**
 * @file
 * The vector datapath (Section 3.4): vector instruction instances wait
 * for their operand elements and stream through pipelined vector
 * functional units at one element per cycle; vector load instances
 * fetch their elements through the shared L1D ports (riding along wide
 * accesses when the stride permits).
 */

#ifndef SDV_VECTOR_DATAPATH_HH
#define SDV_VECTOR_DATAPATH_HH

#include <cstdint>
#include <vector>

#include "isa/opcodes.hh"
#include "mem/hierarchy.hh"
#include "mem/port.hh"
#include "vector/elem_kernels.hh"
#include "vector/src_spec.hh"
#include "vector/vreg_file.hh"

namespace sdv {

class FaultInjector;

/**
 * What the vector machinery needs from the surrounding core, as a
 * plain interface: speculative load element values (the committed
 * memory view) and producer-completion queries. The core implements it
 * directly; a single virtual call replaces the std::function
 * indirections these used to be, keeping the per-element hot path free
 * of type-erasure overhead.
 */
class VecExecContext
{
  public:
    /** @return the committed-view value at [@p addr, @p addr+@p size). */
    virtual std::uint64_t specLoadValue(Addr addr, unsigned size) const = 0;

    /** @return true when producer @p seq has completed (or retired). */
    virtual bool seqCompleted(InstSeqNum seq) const = 0;

  protected:
    ~VecExecContext() = default;
};

/** Vector functional unit counts (Table 1). */
struct VectorFuConfig
{
    unsigned intAlu = 3;
    unsigned intMulDiv = 2;
    unsigned fpAdd = 2;
    unsigned fpMulDiv = 1;
    unsigned loadPorts = 4; ///< max element loads initiated per cycle
};

/** One in-flight vectorized instruction instance. */
struct VecInstance
{
    std::uint64_t id = 0;    ///< unique instance id
    Addr pc = 0;             ///< spawning static instruction
    Opcode op = Opcode::NOP; ///< operation (element-wise)
    /** Arith: batched element kernel and FU class, resolved once at
     *  spawn (no per-element opcode switch or OpInfo lookup). */
    ElemKernelFn kern = nullptr;
    OpClass cls = OpClass::None;
    std::int32_t imm = 0;    ///< immediate for reg-imm forms
    VecRegRef dest;          ///< destination register incarnation
    SrcSpec src1;            ///< first operand
    SrcSpec src2;            ///< second operand
    unsigned elemCount = 0;  ///< elements to produce
    unsigned nextElem = 0;   ///< next element to initiate
    bool isLoad = false;     ///< load instance
    Addr baseAddr = 0;       ///< load: spawning instance's address
    std::int64_t stride = 0; ///< load: stride
    unsigned elemBytes = 8;  ///< load: access size
    bool aborted = false;    ///< stop initiating further elements
    /** Producer of a captured-scalar operand; the instance waits in
     *  the queue until it completes (Section 3.4). */
    InstSeqNum scalarDep = 0;

    /** @return true when all elements have been initiated. */
    bool done() const { return aborted || nextElem >= elemCount; }

    /** @return address of load element @p k (spawn address + (k+1)
     *  strides, Section 3.2). */
    Addr
    elemAddr(unsigned k) const
    {
        return baseAddr + Addr(stride * std::int64_t(k + 1));
    }
};

/** Statistics of the vector datapath. */
struct DatapathStats
{
    std::uint64_t instancesSpawned = 0;
    std::uint64_t loadInstances = 0;
    std::uint64_t arithInstances = 0;
    std::uint64_t instancesWithNonzeroSrcOffset = 0; ///< Figure 9
    std::uint64_t elemsComputed = 0;
    std::uint64_t elemLoadAccessesIssued = 0; ///< new port accesses
    std::uint64_t elemLoadsRideAlong = 0;     ///< served by merge
    std::uint64_t elemLoadPortStalls = 0;
    std::uint64_t elemLoadMshrStalls = 0;
    std::uint64_t instancesAborted = 0;
};

/**
 * Owns and advances all vector instances. The core calls tick() once
 * per cycle after the scalar issue stage (demand loads get port
 * priority; element loads then use leftover slots and ride-alongs).
 */
class VectorDatapath
{
  public:
    /**
     * @param cfg vector FU counts
     * @param vrf the vector register file (elements written here)
     */
    VectorDatapath(const VectorFuConfig &cfg, VecRegFile &vrf);

    /** Wire the core-side context (load values + completion queries).
     *  Without one, load elements read zero and captured-scalar
     *  instances stay parked. */
    void setContext(const VecExecContext *ctx) { ctx_ = ctx; }

    /** Wire the fault injector (owned by the SDV engine). When armed,
     *  every element value landing in the register file may take a bit
     *  flip, and elements computed from marked sources are
     *  taint-marked so the validation-side accounting stays exact. */
    void setFaultInjector(FaultInjector *finj) { finj_ = finj; }

    /** Spawn a vectorized load instance. */
    void spawnLoad(Addr pc, VecRegRef dest, Addr base, std::int64_t stride,
                   unsigned elem_bytes, unsigned elem_count);

    /** Spawn a vectorized arithmetic instance. */
    void spawnArith(Addr pc, Opcode op, std::int32_t imm, VecRegRef dest,
                    const SrcSpec &src1, const SrcSpec &src2,
                    unsigned elem_count);

    /** Abort the instance producing @p dest (VRMT invalidation). */
    void abortByDest(VecRegRef dest);

    /** Advance one cycle: land completions, initiate new elements. */
    void tick(Cycle now, DCachePorts &ports, MemHierarchy &mem);

    /**
     * Event-horizon query for the event-skipping clock: the earliest
     * cycle at which tick() could change any state.
     *
     * PR 5 made the horizon exact for parked instances: an arithmetic
     * instance waiting on a captured-scalar producer or on source
     * elements that are not yet computed cannot make progress until a
     * scheduled completion lands (its own sources' completions are in
     * completions_; a scalar producer's completion is the core's
     * scheduled event), so such instances no longer pin the horizon to
     * "now". Instances that could initiate an element, retry port/FU
     * arbitration (loads), cascade-abort, or be erased this cycle
     * still do. In steady-state stall windows — every instance stuck
     * behind an L2 miss — the clock now jumps straight to the miss
     * completion instead of ticking through the wait.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** @return true when no instance is in flight and no element
     *  completion is scheduled (the quiescence condition; independent
     *  of the horizon above, which may be finite-but-idle). */
    bool
    idle() const
    {
        return active_.empty() && completions_.empty();
    }

    /** @return live (not fully initiated) instance count. */
    size_t numActive() const { return active_.size(); }

    /** @return datapath statistics. */
    const DatapathStats &stats() const { return stats_; }

    /** Drop all in-flight state (used by tests between scenarios). */
    void clear();

    /** Zero the statistics (checkpoint measurement rebase). */
    void resetStats() { stats_ = DatapathStats{}; }

  private:
    /** Pending element completion. */
    struct Completion
    {
        Cycle ready = 0;
        VecRegRef dest;
        unsigned elem = 0;
        std::uint64_t value = 0;
        ElemLoadId loadId = 0;
        bool tainted = false; ///< computed from a fault-marked source
    };

    /** @return true when element @p k's sources are ready. */
    bool srcsReady(const VecInstance &inst, unsigned k) const;

    /** Re-arm the stall cache after a full tick (see stallValid_). */
    void refreshStallCache();

    /** @return source operand value for element @p k. */
    std::uint64_t srcValue(const SrcSpec &src, unsigned k) const;

    unsigned fuBandwidth(OpClass cls) const;

    VectorFuConfig cfg_;
    VecRegFile &vrf_;
    /** Per-cycle FU issue slots by op class (constant; copied into a
     *  local each tick instead of re-deriving from the config). */
    unsigned fuSlots_[unsigned(OpClass::None) + 1] = {};
    std::vector<VecInstance> active_;
    std::vector<Completion> completions_;
    /** Earliest ready cycle across completions_ (neverCycle when
     *  empty): tick() skips the landing scan until it matures, and
     *  nextEventCycle() reads it instead of rescanning the list. */
    Cycle completionsMin_ = neverCycle;
    /**
     * Stall cache: true when the last tick proved every active
     * instance is a non-load, alive, un-parked (no captured-scalar
     * dependence) arithmetic instance whose next element's sources are
     * not yet computed. In that state a tick can change nothing until
     * a scheduled completion matures (completionsMin_) or the register
     * file mutates (version mismatch), so tick() returns immediately
     * and nextEventCycle() skips the instance walk. Instances parked
     * on a scalar producer are deliberately excluded — their wake-up
     * (the producer completing) is core-side state this cache cannot
     * observe.
     */
    bool stallValid_ = false;
    std::uint64_t stallVrfVersion_ = 0; ///< VecRegFile::version() at cache
    const VecExecContext *ctx_ = nullptr;
    FaultInjector *finj_ = nullptr;
    /** Per-tick scratch: completion cycle of each new access this
     *  cycle, by access id (kept allocated across ticks). */
    std::vector<std::pair<std::int32_t, Cycle>> accessDone_;
    std::uint64_t nextInstanceId_ = 1;
    ElemLoadId nextElemLoadId_ = 1;
    DatapathStats stats_;
};

} // namespace sdv

#endif // SDV_VECTOR_DATAPATH_HH
