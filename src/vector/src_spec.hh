/**
 * @file
 * Description of one source operand of a vectorized instruction, as
 * recorded in the VRMT and carried by vector datapath instances.
 */

#ifndef SDV_VECTOR_SRC_SPEC_HH
#define SDV_VECTOR_SRC_SPEC_HH

#include <cstdint>

#include "common/types.hh"
#include "vector/vreg_file.hh"

namespace sdv {

/**
 * A vectorized instruction's source is either absent, a vector register
 * (with the element offset the instance starts consuming at, Section
 * 3.4), or a scalar register whose *value* was captured at vectorization
 * time (Section 3.2 / Figure 5).
 */
struct SrcSpec
{
    enum class Kind : std::uint8_t
    {
        None,   ///< operand not read by this opcode
        Vector, ///< reads successive elements of a vector register
        Scalar, ///< broadcast scalar value captured at spawn
    };

    Kind kind = Kind::None;
    VecRegRef vreg;               ///< Vector: source register incarnation
    std::uint8_t srcOffset = 0;   ///< Vector: element offset at spawn
    std::uint64_t value = 0;      ///< Scalar: captured value
    /** Scalar: in-flight producer the vector instance must wait for in
     *  the vector instruction queue (0 = value already available). Not
     *  part of operand matching. */
    InstSeqNum depSeq = 0;

    /** Build an absent operand. */
    static SrcSpec none() { return SrcSpec{}; }

    /** Build a vector operand. */
    static SrcSpec
    vector(VecRegRef ref, std::uint8_t src_offset)
    {
        SrcSpec s;
        s.kind = Kind::Vector;
        s.vreg = ref;
        s.srcOffset = src_offset;
        return s;
    }

    /** Build a captured-scalar operand. */
    static SrcSpec
    scalar(std::uint64_t value)
    {
        SrcSpec s;
        s.kind = Kind::Scalar;
        s.value = value;
        return s;
    }

    /** @return true for a vector operand. */
    bool isVector() const { return kind == Kind::Vector; }

    /** @return true for a captured-scalar operand. */
    bool isScalar() const { return kind == Kind::Scalar; }
};

} // namespace sdv

#endif // SDV_VECTOR_SRC_SPEC_HH
