/**
 * @file
 * The Vector Register Map Table (VRMT) of Section 3.2 / Figure 5: a
 * 4-way, 64-set table mapping the PC of a vectorized instruction to its
 * vector register, the next element offset to validate, and the source
 * operands captured when the vector instance was created.
 */

#ifndef SDV_VECTOR_VRMT_HH
#define SDV_VECTOR_VRMT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "vector/src_spec.hh"

namespace sdv {

/** One VRMT entry (Figure 5, plus load-chaining metadata). */
struct VrmtEntry
{
    bool valid = false;
    Addr pc = 0;
    VecRegRef vreg;           ///< destination register incarnation
    std::uint8_t offset = 0;  ///< next element a scalar instance validates
    SrcSpec src1;             ///< first source captured at spawn
    SrcSpec src2;             ///< second source captured at spawn
    bool isLoad = false;      ///< load-produced entry
    std::int64_t stride = 0;  ///< load: predicted stride
    Addr baseAddr = 0;        ///< load: address of the spawning instance
    std::uint64_t lastUse = 0;
    std::uint64_t epoch = 0;  ///< validity epoch (see Vrmt::invalidateAll)

    // Eager load chaining (EngineConfig::eagerChainLoads): the
    // successor incarnation spawned ahead of the current one's
    // exhaustion, swapped in when the current offset runs out.
    bool hasNext = false;
    VecRegRef nextVreg;
    Addr nextBase = 0;        ///< address of the current incarnation's
                              ///< last element (successor spawn base)

    /** Fault injection (PR 6): the stride/base fields of this entry
     *  were corrupted at install, so the address-misspeculation it
     *  provokes is attributed to the injection, not to a genuine
     *  stride misprediction. Inherited by chained successors spawned
     *  from the corrupted fields. */
    bool faultInjected = false;
};

/** The VRMT. */
class Vrmt
{
  public:
    /**
     * @param sets number of sets (64 in the paper)
     * @param ways associativity (4 in the paper)
     */
    explicit Vrmt(unsigned sets = 64, unsigned ways = 4);

    /** @return the entry for @p pc, or nullptr. */
    VrmtEntry *lookup(Addr pc);

    /** @return the entry for @p pc, or nullptr (const). */
    const VrmtEntry *lookup(Addr pc) const;

    /**
     * @return the entry for @p pc without touching LRU state. The
     * event-skipping clock probes "would decode block?" ahead of any
     * real decode, so the probe must be side-effect free.
     */
    const VrmtEntry *peek(Addr pc) const;

    /**
     * Replay @p n lookup() LRU touches of @p pc in one step: exactly
     * what n consecutive blocked-decode cycles would have done to the
     * use clock (nothing else touches the VRMT while decode is
     * blocked and the pipeline is otherwise quiescent).
     */
    void touch(Addr pc, std::uint64_t n);

    /**
     * Install (or replace) the entry for @p pc; the LRU entry of the
     * set is evicted when full.
     * @return reference to the installed entry
     */
    VrmtEntry &install(const VrmtEntry &entry);

    /** Invalidate the entry for @p pc if present. */
    void invalidate(Addr pc);

    /**
     * Invalidate every entry whose destination register is @p ref
     * (store conflict path, Section 3.6).
     *
     * @param[out] load_pcs when non-null, receives the PCs of the
     *             invalidated *load* entries so the caller can reset
     *             their Table of Loads confidence ("executed in scalar
     *             mode until the engine detects again", Section 3.1)
     * @param[out] successors when non-null, receives the pending
     *             eagerly-spawned successors (hasNext/nextVreg) of the
     *             invalidated entries — the caller must kill them too,
     *             or they leak as unreachable live registers
     * @return number invalidated
     */
    unsigned invalidateByVreg(VecRegRef ref,
                              std::vector<Addr> *load_pcs = nullptr,
                              std::vector<VecRegRef> *successors =
                                  nullptr);

    /**
     * Swap entry @p e's destination to @p v (the eager-chain successor
     * takeover), keeping the vreg reverse index in sync. @p e must be
     * an entry of this table.
     */
    void
    rebindVreg(VrmtEntry &e, VecRegRef v)
    {
        e.vreg = v;
        bindVreg(std::size_t(&e - entries_.data()), v);
    }

    /** Invalidate everything (context switch semantics, Section 3.2).
     *  O(1): bumps the validity epoch instead of sweeping the table —
     *  entries from older epochs read as invalid and are recycled as
     *  free ways by install(). */
    void invalidateAll();

    /** Run @p fn over each valid entry. */
    void forEach(const std::function<void(VrmtEntry &)> &fn);

    /** @return entry capacity. */
    unsigned capacity() const { return sets_ * ways_; }

    /** @return number of valid entries. */
    unsigned occupancy() const;

    /** Storage cost in bytes (18 bytes per entry per the paper). */
    std::uint64_t
    storageBytes() const
    {
        return std::uint64_t(capacity()) * 18;
    }

  private:
    unsigned setIndex(Addr pc) const;

    /** @return true when @p e is valid in the current epoch. */
    bool
    live(const VrmtEntry &e) const
    {
        return e.valid && e.epoch == epoch_;
    }

    /** Record entry @p idx as the latest holder of @p v's register in
     *  the reverse index (see byReg_). */
    void
    bindVreg(std::size_t idx, VecRegRef v)
    {
        if (!v.valid())
            return;
        if (byReg_.size() <= std::size_t(v.reg))
            byReg_.resize(std::size_t(v.reg) + 1, -1);
        byReg_[v.reg] = std::int32_t(idx);
    }

    unsigned sets_;
    unsigned ways_;
    std::vector<VrmtEntry> entries_;
    /**
     * Reverse index for the store-conflict path: register id -> index
     * of the entry that most recently bound an incarnation of it (-1:
     * never bound). Mappings are never eagerly unbound; a consumer
     * validates with live(e) && e.vreg == ref, which rejects stale
     * bindings (replaced entries, dead incarnations, old epochs). A
     * live entry holding a live incarnation is always the latest
     * binding of its register id — re-allocating the id requires the
     * previous incarnation dead first — so the index can never miss
     * one, and invalidateByVreg stays O(1) instead of scanning all
     * sets x ways entries per committed store overlapping a vector
     * register's address range.
     */
    std::vector<std::int32_t> byReg_;
    std::uint64_t useClock_ = 0;
    std::uint64_t epoch_ = 0;
};

} // namespace sdv

#endif // SDV_VECTOR_VRMT_HH
