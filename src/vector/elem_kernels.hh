/**
 * @file
 * Batched element kernels: the element-wise ALU/FP semantics of a
 * vectorized instance as dense-array loops the host compiler can
 * auto-vectorize (SIMD or word-at-a-time), in the VL-agnostic style of
 * an SVE loop — the batch length is a runtime parameter, so the same
 * kernel serves any vector length (the planned figVL axis).
 *
 * Each kernel is one per-opcode instantiation over evalScalarOpFor<O>:
 * the same single definition of the semantics the interpreter and the
 * trace handlers compile from, so batching cannot diverge. The
 * datapath resolves the kernel pointer once at spawn and calls it per
 * initiated element (n = 1 under the paper's one-element-per-instance-
 * per-cycle timing); BM_SimdElementBatch drives the batched form.
 */

#ifndef SDV_VECTOR_ELEM_KERNELS_HH
#define SDV_VECTOR_ELEM_KERNELS_HH

#include <cstdint>

#include "isa/opcodes.hh"

namespace sdv {

/**
 * Apply one operation element-wise over a batch.
 *
 * @param dst   n result values
 * @param a     n first-operand values
 * @param b     n second-operand values (ignored by reg-imm forms)
 * @param imm   immediate field
 * @param n     batch length (any value >= 1)
 */
using ElemKernelFn = void (*)(std::uint64_t *dst, const std::uint64_t *a,
                              const std::uint64_t *b, std::int32_t imm,
                              unsigned n);

/** @return the batched kernel for @p op, or nullptr when @p op has no
 *  scalar-eval semantics (memory/control/NOP/HALT). */
ElemKernelFn elemKernel(Opcode op);

} // namespace sdv

#endif // SDV_VECTOR_ELEM_KERNELS_HH
