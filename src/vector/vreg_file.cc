#include "vector/vreg_file.hh"

#include "common/log.hh"

namespace sdv {

VecRegFile::VecRegFile(unsigned num_regs, unsigned vlen)
    : numRegs_(num_regs), vlen_(vlen), freeCount_(num_regs),
      regs_(num_regs)
{
    sdv_assert(num_regs >= 1, "need at least one vector register");
    sdv_assert(vlen >= 2, "vector length must be at least 2");
    for (auto &r : regs_)
        r.elems.resize(vlen);
    const std::size_t words = (num_regs + 63) / 64;
    freeMask_.assign(words, 0);
    liveMask_.assign(words, 0);
    for (unsigned i = 0; i < num_regs; ++i)
        setMaskBit(freeMask_, i, true);
    sweepMarked_.assign(num_regs, false);
    sweepCandidates_.reserve(num_regs);
}

const VecRegFile::Reg &
VecRegFile::regFor(VecRegRef ref) const
{
    sdv_assert(ref.reg < numRegs_, "bad vector register id");
    const Reg &r = regs_[ref.reg];
    sdv_assert(r.allocated && r.gen == ref.gen,
               "stale vector register reference");
    return r;
}

VecRegFile::Reg &
VecRegFile::regFor(VecRegRef ref)
{
    return const_cast<Reg &>(
        static_cast<const VecRegFile *>(this)->regFor(ref));
}

VecRegRef
VecRegFile::allocate(Addr mrbb)
{
    Reg *chosen = nullptr;
    for (std::size_t w = 0; w < freeMask_.size() && !chosen; ++w)
        if (freeMask_[w])
            chosen = &regs_[w * 64 + countTrailingZeros(freeMask_[w])];
    if (!chosen) {
        // Lazy condition-2 reclamation (see the header comment). Walk
        // the live registers lowest-index-first: every register is
        // live here, so the order matches the old full scan exactly.
        for (std::size_t w = 0; w < liveMask_.size() && !chosen; ++w) {
            std::uint64_t bits = liveMask_[w];
            while (bits && !chosen) {
                const unsigned i =
                    unsigned(w * 64) + countTrailingZeros(bits);
                bits &= bits - 1;
                if (tryRelease(VecRegRef{VecRegId(i), regs_[i].gen},
                               mrbb, /*allow_cond2=*/true))
                    chosen = &regs_[i];
            }
        }
    }
    if (!chosen) {
        ++allocFailures_;
        return VecRegRef{};
    }
    Reg &r = *chosen;
    r.allocated = true;
    ++r.gen;
    r.mrbb = mrbb;
    r.elemCount = vlen_;
    r.killed = false;
    r.uniform = false;
    r.hasRange = false;
    r.waiters = 0;
    r.allocCycle = clock_;
    r.pred = VecRegRef{};
    for (auto &e : r.elems)
        e = Elem{};
    --freeCount_;
    ++allocations_;
    const VecRegId id = VecRegId(unsigned(&r - regs_.data()));
    setMaskBit(freeMask_, id, false);
    setMaskBit(liveMask_, id, true);
    markSweepCandidate(id); // a degenerate incarnation may free at once
    return VecRegRef{id, r.gen};
}

void
VecRegFile::setData(VecRegRef ref, unsigned elem, std::uint64_t value)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < r.elemCount, "element out of range");
    Elem &el = r.elems[elem];
    el.data = value;
    el.r = true;
    if (el.w) {
        el.w = false;
        --r.waiters;
        wakeEvents_.push_back({ref, std::uint16_t(elem)});
    }
    markSweepCandidate(ref.reg);
}

std::uint64_t
VecRegFile::data(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_ && r.elems[elem].r, "reading non-ready element");
    return r.elems[elem].data;
}

bool
VecRegFile::isReady(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    return r.elems[elem].r;
}

void
VecRegFile::setUsed(VecRegRef ref, unsigned elem, bool used)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    r.elems[elem].u = used;
    markSweepCandidate(ref.reg);
}

bool
VecRegFile::isUsed(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    return r.elems[elem].u;
}

void
VecRegFile::setValid(VecRegRef ref, unsigned elem)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    r.elems[elem].v = true;
    r.elems[elem].u = false;
    markSweepCandidate(ref.reg);
}

bool
VecRegFile::isValid(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    return r.elems[elem].v;
}

void
VecRegFile::setFree(VecRegRef ref, unsigned elem)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    r.elems[elem].f = true;
    markSweepCandidate(ref.reg);
}

void
VecRegFile::setAllFree(VecRegRef ref)
{
    Reg &r = regFor(ref);
    for (auto &e : r.elems)
        e.f = true;
    markSweepCandidate(ref.reg);
}

void
VecRegFile::setElemCount(VecRegRef ref, unsigned count)
{
    Reg &r = regFor(ref);
    sdv_assert(count >= 1 && count <= vlen_, "bad element count");
    r.elemCount = count;
    markSweepCandidate(ref.reg);
}

unsigned
VecRegFile::elemCount(VecRegRef ref) const
{
    return regFor(ref).elemCount;
}

void
VecRegFile::setAddrRange(VecRegRef ref, Addr first, Addr last,
                         unsigned elem_bytes)
{
    Reg &r = regFor(ref);
    r.hasRange = true;
    const Addr lo = first < last ? first : last;
    const Addr hi = first < last ? last : first;
    r.rangeLo = lo;
    r.rangeHi = hi + elem_bytes - 1;
}

bool
VecRegFile::rangeOverlaps(VecRegRef ref, Addr lo, Addr hi) const
{
    const Reg &r = regFor(ref);
    if (!r.hasRange)
        return false;
    return lo <= r.rangeHi && hi >= r.rangeLo;
}

void
VecRegFile::setElemLoadId(VecRegRef ref, unsigned elem, ElemLoadId id)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    r.elems[elem].loadId = id;
}

void
VecRegFile::setPredecessor(VecRegRef ref, VecRegRef pred)
{
    regFor(ref).pred = pred;
}

VecRegRef
VecRegFile::predecessor(VecRegRef ref) const
{
    return regFor(ref).pred;
}

void
VecRegFile::setUniform(VecRegRef ref, bool uniform)
{
    regFor(ref).uniform = uniform;
}

bool
VecRegFile::isUniform(VecRegRef ref) const
{
    return regFor(ref).uniform;
}

void
VecRegFile::kill(VecRegRef ref)
{
    if (isLive(ref)) {
        Reg &r = regFor(ref);
        r.killed = true;
        wakeAll(r);
        markSweepCandidate(ref.reg);
    }
}

bool
VecRegFile::isKilled(VecRegRef ref) const
{
    return regFor(ref).killed;
}

void
VecRegFile::release(Reg &reg, ReleaseCause cause)
{
    for (unsigned e = 0; e < vlen_; ++e) {
        const Elem &el = reg.elems[e];
        if (el.r && el.v)
            ++fates_.elemsComputedUsed;
        else if (el.r)
            ++fates_.elemsComputedNotUsed;
        else
            ++fates_.elemsNotComputed;
        // Fault marks still set here were never examined by a
        // validation: the corrupted value vanished unconsumed.
        if (el.fi)
            ++fates_.faultInjectedVanished;
        else if (el.ft)
            ++fates_.faultTaintVanished;
        if (el.loadId != 0 && ports_)
            ports_->resolveElem(el.loadId, el.v);
    }
    ++fates_.regsReleased;
    const Cycle age = clock_ - reg.allocCycle;
    fates_.lifetimeCycles += age;
    unsigned bucket = 0;
    for (Cycle bound = 8; bucket < 7 && age >= bound; bound <<= 2)
        ++bucket;
    ++fates_.lifetimeHist[bucket];
    switch (cause) {
      case ReleaseCause::Cond1:
        ++fates_.releasedCond1;
        break;
      case ReleaseCause::Cond2:
        ++fates_.releasedCond2;
        break;
      case ReleaseCause::Killed:
        ++fates_.releasedKilled;
        break;
      case ReleaseCause::Bulk:
        ++fates_.releasedBulk;
        break;
    }
    wakeAll(reg);
    reg.allocated = false;
    ++freeCount_;
    const VecRegId id = VecRegId(unsigned(&reg - regs_.data()));
    setMaskBit(freeMask_, id, true);
    setMaskBit(liveMask_, id, false);
}

bool
VecRegFile::tryRelease(VecRegRef ref, Addr gmrbb, bool allow_cond2)
{
    if (!isLive(ref))
        return false;
    Reg &r = regFor(ref);

    bool any_u = false;
    bool all_rf = true; ///< condition 1 over computable elements
    bool all_r = true;
    bool valids_freed = true;
    for (unsigned e = 0; e < r.elemCount; ++e) {
        const Elem &el = r.elems[e];
        any_u = any_u || el.u;
        all_rf = all_rf && el.r && el.f;
        all_r = all_r && el.r;
        valids_freed = valids_freed && (!el.v || el.f);
    }

    // Killed incarnations just wait for in-flight validations to drain.
    if (r.killed) {
        if (!any_u) {
            release(r, ReleaseCause::Killed);
            return true;
        }
        return false;
    }

    // Condition 1: every element computed and freed.
    if (all_rf && !any_u) {
        release(r, ReleaseCause::Cond1);
        return true;
    }

    // Condition 2: every validated element freed, all computed, nothing
    // in use, and the allocating loop has terminated (MRBB != GMRBB).
    // Only applied under allocation pressure (see allocate()).
    if (allow_cond2 && valids_freed && all_r && !any_u &&
        r.mrbb != gmrbb) {
        release(r, ReleaseCause::Cond2);
        return true;
    }
    return false;
}

unsigned
VecRegFile::sweepReleases(Addr gmrbb)
{
    unsigned freed = 0;
    for (const VecRegId id : sweepCandidates_) {
        sweepMarked_[id] = false;
        const Reg &r = regs_[id];
        if (r.allocated &&
            tryRelease(VecRegRef{id, r.gen}, gmrbb,
                       /*allow_cond2=*/false))
            ++freed;
    }
    sweepCandidates_.clear();
    return freed;
}

void
VecRegFile::releaseAll()
{
    forEachLive([&](VecRegRef ref) { release(regs_[ref.reg],
                                             ReleaseCause::Bulk); });
}

void
VecRegFile::releaseSquashed(VecRegRef ref)
{
    if (!isLive(ref))
        return;
    Reg &r = regFor(ref);
    for (auto &e : r.elems) {
        // No Figure 15 fates (the incarnation never existed
        // architecturally), but the fault ledger must still account
        // for every mark exactly once.
        if (e.fi)
            ++fates_.faultInjectedVanished;
        else if (e.ft)
            ++fates_.faultTaintVanished;
        if (e.loadId != 0 && ports_)
            ports_->resolveElem(e.loadId, false);
    }
    wakeAll(r);
    r.allocated = false;
    ++freeCount_;
    setMaskBit(freeMask_, ref.reg, true);
    setMaskBit(liveMask_, ref.reg, false);
}

} // namespace sdv
