#include "vector/vreg_file.hh"

#include "common/log.hh"
#include "obs/hooks.hh"

namespace sdv {

namespace {

/** Pack reg/gen (and release cause) into one trace-event argument. */
std::uint64_t
packVregArg(VecRegId reg, std::uint32_t gen, unsigned cause = 0)
{
    return std::uint64_t(reg) | (std::uint64_t(gen & 0xffffu) << 16) |
           (std::uint64_t(cause) << 32);
}

} // namespace

VecRegFile::VecRegFile(unsigned num_regs, unsigned vlen)
    : numRegs_(num_regs), vlen_(vlen), freeCount_(num_regs),
      regs_(num_regs)
{
    sdv_assert(num_regs >= 1, "need at least one vector register");
    sdv_assert(vlen >= 2, "vector length must be at least 2");
    sdv_assert(vlen <= 64, "flag bitmasks hold at most 64 elements");
    for (auto &r : regs_)
        r.elems.resize(vlen);
    const std::size_t words = (num_regs + 63) / 64;
    freeMask_.assign(words, 0);
    liveMask_.assign(words, 0);
    for (unsigned i = 0; i < num_regs; ++i)
        setMaskBit(freeMask_, i, true);
    sweepMarked_.assign(num_regs, false);
    sweepCandidates_.reserve(num_regs);
}

const VecRegFile::Reg &
VecRegFile::regFor(VecRegRef ref) const
{
    sdv_assert(ref.reg < numRegs_, "bad vector register id");
    const Reg &r = regs_[ref.reg];
    sdv_assert(r.allocated && r.gen == ref.gen,
               "stale vector register reference");
    return r;
}

VecRegFile::Reg &
VecRegFile::regFor(VecRegRef ref)
{
    return const_cast<Reg &>(
        static_cast<const VecRegFile *>(this)->regFor(ref));
}

VecRegRef
VecRegFile::allocate(Addr mrbb)
{
    Reg *chosen = nullptr;
    for (std::size_t w = 0; w < freeMask_.size() && !chosen; ++w)
        if (freeMask_[w])
            chosen = &regs_[w * 64 + countTrailingZeros(freeMask_[w])];
    if (!chosen) {
        // Lazy condition-2 reclamation (see the header comment). Walk
        // the live registers lowest-index-first: every register is
        // live here, so the order matches the old full scan exactly.
        for (std::size_t w = 0; w < liveMask_.size() && !chosen; ++w) {
            std::uint64_t bits = liveMask_[w];
            while (bits && !chosen) {
                const unsigned i =
                    unsigned(w * 64) + countTrailingZeros(bits);
                bits &= bits - 1;
                if (tryRelease(VecRegRef{VecRegId(i), regs_[i].gen},
                               mrbb, /*allow_cond2=*/true))
                    chosen = &regs_[i];
            }
        }
    }
    if (!chosen) {
        ++allocFailures_;
        return VecRegRef{};
    }
    Reg &r = *chosen;
    r.allocated = true;
    ++r.gen;
    r.mrbb = mrbb;
    r.elemCount = vlen_;
    r.killed = false;
    r.uniform = false;
    r.hasRange = false;
    r.vMask = r.rMask = r.uMask = r.fMask = 0;
    r.wMask = r.fiMask = r.ftMask = 0;
    r.allocCycle = clock_;
    r.pred = VecRegRef{};
    for (auto &e : r.elems)
        e = Elem{};
    --freeCount_;
    ++allocations_;
    ++version_;
    const VecRegId id = VecRegId(unsigned(&r - regs_.data()));
    setMaskBit(freeMask_, id, false);
    setMaskBit(liveMask_, id, true);
    markSweepCandidate(id); // a degenerate incarnation may free at once
    SDV_OBS_EVENT(recorder_, obs::EventKind::VregAlloc, mrbb,
                  packVregArg(id, r.gen));
    return VecRegRef{id, r.gen};
}

void
VecRegFile::setData(VecRegRef ref, unsigned elem, std::uint64_t value)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < r.elemCount, "element out of range");
    const std::uint64_t bit = std::uint64_t(1) << elem;
    r.elems[elem].data = value;
    r.rMask |= bit;
    ++version_;
    if (r.wMask & bit) {
        r.wMask &= ~bit;
        wakeEvents_.push_back({ref, std::uint16_t(elem)});
    }
    markSweepCandidate(ref.reg);
}

std::uint64_t
VecRegFile::data(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_ && ((r.rMask >> elem) & 1),
               "reading non-ready element");
    return r.elems[elem].data;
}

bool
VecRegFile::isReady(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    return (r.rMask >> elem) & 1;
}

void
VecRegFile::setUsed(VecRegRef ref, unsigned elem, bool used)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    const std::uint64_t bit = std::uint64_t(1) << elem;
    r.uMask = used ? (r.uMask | bit) : (r.uMask & ~bit);
    ++version_;
    markSweepCandidate(ref.reg);
}

bool
VecRegFile::isUsed(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    return (r.uMask >> elem) & 1;
}

void
VecRegFile::setValid(VecRegRef ref, unsigned elem)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    const std::uint64_t bit = std::uint64_t(1) << elem;
    r.vMask |= bit;
    r.uMask &= ~bit;
    ++version_;
    markSweepCandidate(ref.reg);
}

bool
VecRegFile::isValid(VecRegRef ref, unsigned elem) const
{
    const Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    return (r.vMask >> elem) & 1;
}

void
VecRegFile::setFree(VecRegRef ref, unsigned elem)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    r.fMask |= std::uint64_t(1) << elem;
    ++version_;
    markSweepCandidate(ref.reg);
}

void
VecRegFile::setAllFree(VecRegRef ref)
{
    Reg &r = regFor(ref);
    r.fMask = lowMask(vlen_);
    ++version_;
    markSweepCandidate(ref.reg);
}

void
VecRegFile::setElemCount(VecRegRef ref, unsigned count)
{
    Reg &r = regFor(ref);
    sdv_assert(count >= 1 && count <= vlen_, "bad element count");
    r.elemCount = count;
    ++version_;
    markSweepCandidate(ref.reg);
}

unsigned
VecRegFile::elemCount(VecRegRef ref) const
{
    return regFor(ref).elemCount;
}

void
VecRegFile::setAddrRange(VecRegRef ref, Addr first, Addr last,
                         unsigned elem_bytes)
{
    Reg &r = regFor(ref);
    r.hasRange = true;
    const Addr lo = first < last ? first : last;
    const Addr hi = first < last ? last : first;
    r.rangeLo = lo;
    r.rangeHi = hi + elem_bytes - 1;
}

bool
VecRegFile::rangeOverlaps(VecRegRef ref, Addr lo, Addr hi) const
{
    const Reg &r = regFor(ref);
    if (!r.hasRange)
        return false;
    return lo <= r.rangeHi && hi >= r.rangeLo;
}

void
VecRegFile::setElemLoadId(VecRegRef ref, unsigned elem, ElemLoadId id)
{
    Reg &r = regFor(ref);
    sdv_assert(elem < vlen_, "element out of range");
    r.elems[elem].loadId = id;
}

void
VecRegFile::setPredecessor(VecRegRef ref, VecRegRef pred)
{
    regFor(ref).pred = pred;
}

VecRegRef
VecRegFile::predecessor(VecRegRef ref) const
{
    return regFor(ref).pred;
}

void
VecRegFile::setUniform(VecRegRef ref, bool uniform)
{
    regFor(ref).uniform = uniform;
    ++version_;
}

bool
VecRegFile::isUniform(VecRegRef ref) const
{
    return regFor(ref).uniform;
}

void
VecRegFile::kill(VecRegRef ref)
{
    if (isLive(ref)) {
        Reg &r = regFor(ref);
        r.killed = true;
        ++version_;
        wakeAll(r);
        markSweepCandidate(ref.reg);
    }
}

bool
VecRegFile::isKilled(VecRegRef ref) const
{
    return regFor(ref).killed;
}

void
VecRegFile::release(Reg &reg, ReleaseCause cause)
{
    const std::uint64_t all = lowMask(vlen_);
    const unsigned computed = popCount(reg.rMask & all);
    fates_.elemsComputedUsed += popCount(reg.rMask & reg.vMask & all);
    fates_.elemsComputedNotUsed +=
        popCount(reg.rMask & ~reg.vMask & all);
    fates_.elemsNotComputed += vlen_ - computed;
    // Fault marks still set here were never examined by a validation:
    // the corrupted value vanished unconsumed.
    fates_.faultInjectedVanished += popCount(reg.fiMask & all);
    fates_.faultTaintVanished += popCount(reg.ftMask & ~reg.fiMask & all);
    if (ports_)
        for (unsigned e = 0; e < vlen_; ++e) {
            const ElemLoadId lid = reg.elems[e].loadId;
            if (lid != 0)
                ports_->resolveElem(lid, (reg.vMask >> e) & 1);
        }
    ++fates_.regsReleased;
    const Cycle age = clock_ - reg.allocCycle;
    fates_.lifetimeCycles += age;
    unsigned bucket = 0;
    for (Cycle bound = 8; bucket < 7 && age >= bound; bound <<= 2)
        ++bucket;
    ++fates_.lifetimeHist[bucket];
    switch (cause) {
      case ReleaseCause::Cond1:
        ++fates_.releasedCond1;
        break;
      case ReleaseCause::Cond2:
        ++fates_.releasedCond2;
        break;
      case ReleaseCause::Killed:
        ++fates_.releasedKilled;
        break;
      case ReleaseCause::Bulk:
        ++fates_.releasedBulk;
        break;
    }
    wakeAll(reg);
    reg.allocated = false;
    ++freeCount_;
    ++version_;
    const VecRegId id = VecRegId(unsigned(&reg - regs_.data()));
    setMaskBit(freeMask_, id, true);
    setMaskBit(liveMask_, id, false);
    SDV_OBS_EVENT(recorder_, obs::EventKind::VregRelease, 0,
                  packVregArg(id, reg.gen, unsigned(cause)), age);
}

bool
VecRegFile::tryRelease(VecRegRef ref, Addr gmrbb, bool allow_cond2)
{
    if (!isLive(ref))
        return false;
    Reg &r = regFor(ref);

    // All four Section 3.3 predicates over the computable elements are
    // single-word mask tests.
    const std::uint64_t cnt = lowMask(r.elemCount);
    const bool any_u = (r.uMask & cnt) != 0;
    const bool all_rf = (r.rMask & r.fMask & cnt) == cnt;
    const bool all_r = (r.rMask & cnt) == cnt;
    const bool valids_freed = (r.vMask & ~r.fMask & cnt) == 0;

    // Killed incarnations just wait for in-flight validations to drain.
    if (r.killed) {
        if (!any_u) {
            release(r, ReleaseCause::Killed);
            return true;
        }
        return false;
    }

    // Condition 1: every element computed and freed.
    if (all_rf && !any_u) {
        release(r, ReleaseCause::Cond1);
        return true;
    }

    // Condition 2: every validated element freed, all computed, nothing
    // in use, and the allocating loop has terminated (MRBB != GMRBB).
    // Only applied under allocation pressure (see allocate()).
    if (allow_cond2 && valids_freed && all_r && !any_u &&
        r.mrbb != gmrbb) {
        release(r, ReleaseCause::Cond2);
        return true;
    }
    return false;
}

unsigned
VecRegFile::sweepReleases(Addr gmrbb)
{
    unsigned freed = 0;
    for (const VecRegId id : sweepCandidates_) {
        sweepMarked_[id] = false;
        const Reg &r = regs_[id];
        if (r.allocated &&
            tryRelease(VecRegRef{id, r.gen}, gmrbb,
                       /*allow_cond2=*/false))
            ++freed;
    }
    sweepCandidates_.clear();
    return freed;
}

void
VecRegFile::releaseAll()
{
    forEachLive([&](VecRegRef ref) { release(regs_[ref.reg],
                                             ReleaseCause::Bulk); });
}

void
VecRegFile::releaseSquashed(VecRegRef ref)
{
    if (!isLive(ref))
        return;
    Reg &r = regFor(ref);
    // No Figure 15 fates (the incarnation never existed
    // architecturally), but the fault ledger must still account for
    // every mark exactly once.
    const std::uint64_t all = lowMask(vlen_);
    fates_.faultInjectedVanished += popCount(r.fiMask & all);
    fates_.faultTaintVanished += popCount(r.ftMask & ~r.fiMask & all);
    if (ports_)
        for (auto &e : r.elems)
            if (e.loadId != 0)
                ports_->resolveElem(e.loadId, false);
    wakeAll(r);
    r.allocated = false;
    ++freeCount_;
    ++version_;
    setMaskBit(freeMask_, ref.reg, true);
    setMaskBit(liveMask_, ref.reg, false);
    SDV_OBS_EVENT(recorder_, obs::EventKind::VregRelease, 0,
                  packVregArg(ref.reg, r.gen, /*cause=*/4),
                  clock_ - r.allocCycle);
}

} // namespace sdv
