/**
 * @file
 * The vector physical register file of the speculative dynamic
 * vectorization mechanism (Section 3.3 of the paper).
 *
 * Each register holds `vlen` 64-bit elements. Every element carries the
 * paper's four flags:
 *   V (Valid)  - the validation associated with the element committed
 *   R (Ready)  - the element's value has been computed / loaded
 *   U (Used)   - a validation is in flight (dispatched, not committed)
 *   F (Free)   - the element is dead (its logical register redefined)
 * plus each register stores the MRBB tag (PC of the most recently
 * committed backward branch at allocation time) and, for load-produced
 * registers, the first/last byte addresses covered (used by the store
 * coherence check of Section 3.6).
 *
 * A register is released when either freeing condition of Section 3.3
 * holds; the file records the Figure 15 computed/validated ledger at
 * that moment.
 *
 * Steady-state hot paths are event-driven (PR 5):
 *  - allocation and the live-register walk run off free/live bitmasks
 *    (lowest-index-first, exactly the order the old linear scans used);
 *  - element-readiness transitions push *wake events* that the core
 *    drains once per cycle, so waiting validations are notified instead
 *    of polled. Events are only emitted for elements a waiter
 *    registered interest in (noteWaiter), so standalone use of the
 *    file costs nothing.
 */

#ifndef SDV_VECTOR_VREG_FILE_HH
#define SDV_VECTOR_VREG_FILE_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"
#include "mem/port.hh"

namespace sdv {

namespace obs {
class TraceRecorder;
} // namespace obs

/** Reference to a vector register incarnation (id + generation). */
struct VecRegRef
{
    VecRegId reg = invalidVecReg;
    std::uint32_t gen = 0;

    /** @return true when this reference names a register at all. */
    bool valid() const { return reg != invalidVecReg; }

    bool operator==(const VecRegRef &o) const = default;
};

/** Figure 15 ledger: average element fates at register release, plus
 *  the PR 5 lifetime/release-cause attribution counters (all u64 so
 *  the sampled-sweep aggregation can scale the struct as a flat span). */
struct VecRegFateStats
{
    std::uint64_t regsReleased = 0;
    std::uint64_t elemsComputedUsed = 0;    ///< R and V at release
    std::uint64_t elemsComputedNotUsed = 0; ///< R but never validated
    std::uint64_t elemsNotComputed = 0;     ///< never became R

    // --- steady-state attribution (PR 5) ---------------------------------
    std::uint64_t lifetimeCycles = 0;   ///< sum of alloc->release ages
    std::uint64_t releasedCond1 = 0;    ///< all elements computed+freed
    std::uint64_t releasedCond2 = 0;    ///< MRBB condition under pressure
    std::uint64_t releasedKilled = 0;   ///< killed, validations drained
    std::uint64_t releasedBulk = 0;     ///< releaseAll (quiesce/finalize)

    // --- adversarial accounting (PR 6) -----------------------------------
    /** Fault-marked elements whose register released before a
     *  validation examined them: the corrupted value died unconsumed.
     *  Injected = direct bit flips; taint = values computed from a
     *  marked source. Together with the engine's detect/benign
     *  counters these account for every mark exactly once. */
    std::uint64_t faultInjectedVanished = 0;
    std::uint64_t faultTaintVanished = 0;

    /** Register lifetime histogram (alloc->release cycles), log-ish
     *  buckets: <8, <32, <128, <512, <2K, <8K, <32K, rest. Feeds the
     *  per-config transient-exposure report of the timing-channel
     *  experiments. */
    std::uint64_t lifetimeHist[8] = {};

    double
    avgComputedUsed() const
    {
        return regsReleased ? double(elemsComputedUsed) / regsReleased : 0;
    }
    double
    avgComputedNotUsed() const
    {
        return regsReleased ? double(elemsComputedNotUsed) / regsReleased
                            : 0;
    }
    double
    avgNotComputed() const
    {
        return regsReleased ? double(elemsNotComputed) / regsReleased : 0;
    }
    double
    avgLifetimeCycles() const
    {
        return regsReleased ? double(lifetimeCycles) / regsReleased : 0;
    }
};

/** One register-file wake event: element @p elem of @p ref became
 *  ready, or (elem == allElems) the incarnation died (killed or
 *  released) and every waiter must re-evaluate. */
struct VecWakeEvent
{
    static constexpr std::uint16_t allElems = 0xffff;
    VecRegRef ref;
    std::uint16_t elem = 0;
};

/** The vector register file. */
class VecRegFile
{
  public:
    /**
     * @param num_regs number of vector registers (128 in the paper)
     * @param vlen elements per register (4 in the paper)
     */
    explicit VecRegFile(unsigned num_regs = 128, unsigned vlen = 4);

    /** @return elements per register. */
    unsigned vlen() const { return vlen_; }

    /** @return total register count. */
    unsigned numRegs() const { return numRegs_; }

    /** @return number of currently free registers. */
    unsigned numFree() const { return freeCount_; }

    /**
     * Allocate a register.
     *
     * The free list is a bitmask scanned lowest-index-first — the exact
     * register the old linear scan would have chosen, at a word-popcount
     * cost instead of a 128-entry walk.
     *
     * When no register is free, the Section 3.3 condition-2 candidates
     * (all elements computed, every validated element freed, nothing in
     * use, allocating loop terminated per MRBB != GMRBB) are reclaimed
     * on demand. Evaluating condition 2 lazily — at allocation pressure
     * rather than eagerly every cycle — is required for nested loops:
     * an inner loop's backward branch changes GMRBB transiently, and an
     * eager reading would free outer-loop registers before their first
     * validation.
     *
     * @param mrbb current GMRBB value (most recent committed backward
     *        branch), stored as the register's MRBB tag and used for
     *        the lazy condition-2 reclamation
     * @return a valid reference, or an invalid one when none are free
     */
    VecRegRef allocate(Addr mrbb);

    /** @return true when @p ref names the live incarnation. */
    bool
    isLive(VecRegRef ref) const
    {
        if (!ref.valid() || ref.reg >= numRegs_)
            return false;
        const Reg &r = regs_[ref.reg];
        return r.allocated && r.gen == ref.gen;
    }

    // --- element data / flags ------------------------------------------

    /** Record a computed element value (sets R; wakes waiters). */
    void setData(VecRegRef ref, unsigned elem, std::uint64_t value);

    /** @return element data (element must be R). */
    std::uint64_t data(VecRegRef ref, unsigned elem) const;

    /** @return true when element @p elem is computed (R). */
    bool isReady(VecRegRef ref, unsigned elem) const;

    /** Set/clear the U (validation in flight) flag. */
    void setUsed(VecRegRef ref, unsigned elem, bool used);

    /** @return the U flag. */
    bool isUsed(VecRegRef ref, unsigned elem) const;

    /** Mark the element validated (validation committed): V=1, U=0. */
    void setValid(VecRegRef ref, unsigned elem);

    /** @return the V flag. */
    bool isValid(VecRegRef ref, unsigned elem) const;

    /** Mark the element dead (F=1). */
    void setFree(VecRegRef ref, unsigned elem);

    /** Mark every element dead (logical register redefined by another
     *  instruction). */
    void setAllFree(VecRegRef ref);

    // --- instance metadata ----------------------------------------------

    /**
     * Bound the number of elements this incarnation will ever compute
     * (vlen minus the largest source offset, Section 3.4). Defaults to
     * vlen at allocation.
     */
    void setElemCount(VecRegRef ref, unsigned count);

    /** @return the computable element count. */
    unsigned elemCount(VecRegRef ref) const;

    /** Record the memory range covered by a load-produced register. */
    void setAddrRange(VecRegRef ref, Addr first, Addr last,
                      unsigned elem_bytes);

    /**
     * @return true when the store to [@p lo, @p hi] overlaps the
     * register's recorded load range.
     */
    bool rangeOverlaps(VecRegRef ref, Addr lo, Addr hi) const;

    /** Run @p fn over every live register (inlined; no type erasure —
     *  this runs once per committed store for the Section 3.6 check).
     *  Iterates the live bitmask in ascending index order — the same
     *  order (and the same registers) the old full scan visited. */
    template <typename Fn>
    void
    forEachLive(Fn &&fn) const
    {
        for (std::size_t w = 0; w < liveMask_.size(); ++w) {
            std::uint64_t bits = liveMask_[w];
            while (bits) {
                const unsigned i =
                    unsigned(w * 64) + countTrailingZeros(bits);
                bits &= bits - 1;
                fn(VecRegRef{VecRegId(i), regs_[i].gen});
            }
        }
    }

    // --- fused hot-path queries ----------------------------------------
    // The datapath polls every active instance every cycle; these fold
    // the liveness + uniformity + range + flag checks into one register
    // lookup each instead of four assert-guarded accessor calls.

    /**
     * @return true when element @p elem of @p ref can never be
     * computed: the incarnation is dead, killed, or (for non-uniform
     * registers) the element lies beyond its computable count.
     */
    bool
    elemUncomputable(VecRegRef ref, unsigned elem) const
    {
        if (!isLive(ref))
            return true;
        const Reg &r = regs_[ref.reg];
        if (r.killed)
            return true;
        return !r.uniform && elem >= r.elemCount;
    }

    /**
     * @return true when the source element is computed and readable:
     * element 0 for uniform registers, else @p elem (false when the
     * incarnation is dead or the element is out of range).
     */
    bool
    elemReady(VecRegRef ref, unsigned elem) const
    {
        if (!isLive(ref))
            return false;
        const Reg &r = regs_[ref.reg];
        const unsigned e = r.uniform ? 0 : elem;
        return e < vlen_ && ((r.rMask >> e) & 1);
    }

    /** @return the source element's value (element 0 when uniform);
     *  the element must satisfy elemReady(). */
    std::uint64_t
    elemValue(VecRegRef ref, unsigned elem) const
    {
        const Reg &r = regs_[ref.reg];
        return r.elems[r.uniform ? 0 : elem].data;
    }

    // --- fault-injection marks (PR 6) -----------------------------------
    // A mark travels with the element until a validation examines it
    // (the engine then counts detect/benign and repairs/clears) or the
    // register releases (counted as vanished above). Marks are pure
    // accounting: they never influence timing or release decisions.

    /** Mark element @p elem as carrying an injected bit flip. */
    void
    markFaultInjected(VecRegRef ref, unsigned elem)
    {
        regFor(ref).fiMask |= std::uint64_t(1) << elem;
        ++version_;
    }

    /** Mark element @p elem as computed from a fault-marked source. */
    void
    markFaultTaint(VecRegRef ref, unsigned elem)
    {
        regFor(ref).ftMask |= std::uint64_t(1) << elem;
        ++version_;
    }

    /** @return true when the exact element carries any fault mark
     *  (engine-side check at validation commit; caller guarantees
     *  liveness). */
    bool
    elemFaultMarked(VecRegRef ref, unsigned elem) const
    {
        const Reg &r = regFor(ref);
        return ((r.fiMask | r.ftMask) >> elem) & 1;
    }

    /** @return true when the element had an injected (direct) flip. */
    bool
    elemFaultInjected(VecRegRef ref, unsigned elem) const
    {
        return (regFor(ref).fiMask >> elem) & 1;
    }

    /** @return the fault mark of a *source* element, folded exactly
     *  like elemValue (element 0 when uniform; no liveness asserts —
     *  the datapath checks srcsReady first). */
    bool
    srcFaultMarked(VecRegRef ref, unsigned elem) const
    {
        const Reg &r = regs_[ref.reg];
        return ((r.fiMask | r.ftMask) >> (r.uniform ? 0 : elem)) & 1;
    }

    /** Clear the element's fault marks (validation examined it). */
    void
    clearFaultMarks(VecRegRef ref, unsigned elem)
    {
        Reg &r = regFor(ref);
        const std::uint64_t bit = std::uint64_t(1) << elem;
        r.fiMask &= ~bit;
        r.ftMask &= ~bit;
        ++version_;
    }

    /**
     * Overwrite a corrupted element with the architectural value the
     * validation compared against, clearing its marks. Unlike
     * setData this fires no wake events and flips no flags — the
     * element was already R; only its payload is repaired, so
     * consumers that read it after the validation see clean data.
     */
    void
    repairData(VecRegRef ref, unsigned elem, std::uint64_t value)
    {
        Reg &r = regFor(ref);
        r.elems[elem].data = value;
        const std::uint64_t bit = std::uint64_t(1) << elem;
        r.fiMask &= ~bit;
        r.ftMask &= ~bit;
        ++version_;
    }

    /** Associate the port-ledger id of a speculative element load. */
    void setElemLoadId(VecRegRef ref, unsigned elem, ElemLoadId id);

    /** Link to the predecessor incarnation in a chain (for the F flag
     *  of the predecessor's last element). */
    void setPredecessor(VecRegRef ref, VecRegRef pred);

    /** @return the predecessor link (may be stale/invalid). */
    VecRegRef predecessor(VecRegRef ref) const;

    /**
     * Mark the incarnation uniform: all its elements are known to hold
     * the same value (a stride-0 load, or arithmetic whose vector
     * sources are all uniform). Validation matching may then accept a
     * source element offset that does not advance in lockstep.
     */
    void setUniform(VecRegRef ref, bool uniform);

    /** @return the uniform flag. */
    bool isUniform(VecRegRef ref) const;

    /**
     * Kill the incarnation (VRMT entry invalidated by a store conflict
     * or operand mismatch): no further elements will be computed and
     * the register frees as soon as no validation is in flight.
     */
    void kill(VecRegRef ref);

    /** @return true when the incarnation was killed. */
    bool isKilled(VecRegRef ref) const;

    // --- event-driven validation wake-up ---------------------------------

    /**
     * Register interest in element @p elem of @p ref: the next R
     * transition of that element — or any death of the incarnation —
     * will push a VecWakeEvent. The caller (the core's validation
     * scheduler) maps events back to the waiting instructions; the
     * interest bit is consumed by the event, re-register to keep
     * waiting.
     */
    void
    noteWaiter(VecRegRef ref, unsigned elem)
    {
        if (!isLive(ref) || elem >= vlen_)
            return;
        regs_[ref.reg].wMask |= std::uint64_t(1) << elem;
    }

    /** @return true when undrained wake events exist (the validation
     *  scheduler acts this cycle; the event-skipping clock must not
     *  jump). */
    bool hasWakeEvents() const { return !wakeEvents_.empty(); }

    /** Drain the wake-event queue into @p fn (called once per cycle by
     *  the core's completion stage). The queue is swapped out before
     *  iterating, so a callback that itself triggers flag mutations
     *  may safely push new events — they survive into the next drain
     *  instead of invalidating the live iteration. */
    template <typename Fn>
    void
    drainWakeEvents(Fn &&fn)
    {
        wakeScratch_.clear();
        wakeScratch_.swap(wakeEvents_);
        for (const VecWakeEvent &e : wakeScratch_)
            fn(e);
    }

    // --- freeing -----------------------------------------------------------

    /**
     * Apply the freeing conditions of Section 3.3 (plus release of
     * killed registers with no in-flight validation).
     *
     * @param ref register to consider
     * @param gmrbb current GMRBB
     * @param allow_cond2 also consider the MRBB-based condition 2
     *        (only done under allocation pressure; see allocate())
     * @retval true when the register was released
     */
    bool tryRelease(VecRegRef ref, Addr gmrbb, bool allow_cond2 = false);

    /**
     * Try to release registers by condition 1 / killed state. Runs once
     * per cycle, so it only examines the candidate set — registers
     * whose flags changed since the last sweep. A register's
     * releasability under these conditions changes only through the
     * flag mutators, each of which re-marks its register, so the
     * incremental sweep releases at exactly the same cycle a full scan
     * would. @return count freed.
     */
    unsigned sweepReleases(Addr gmrbb);

    /** @return true while flag changes await the next sweepReleases()
     *  pass — the event-skipping clock must not jump over a cycle in
     *  which the sweep could still release a register. */
    bool sweepPending() const { return !sweepCandidates_.empty(); }

    /** Release everything (end of simulation), recording fates. */
    void releaseAll();

    /**
     * Release a register allocated by a squashed decode: frees it
     * without recording Figure 15 fates (the incarnation never existed
     * architecturally) while still resolving its element-load ledger
     * entries as unused.
     */
    void releaseSquashed(VecRegRef ref);

    /** Wire the port network whose element-load ledger is resolved per
     *  element at release (direct call, no type erasure). */
    void setElemLedger(DCachePorts *ports) { ports_ = ports; }

    /** Attach a flight recorder for vreg alloc/release events (null
     *  detaches; pure observation, never mutates file state). */
    void setRecorder(obs::TraceRecorder *rec) { recorder_ = rec; }

    /** Advance the file's notion of time (set once per cycle by the
     *  engine tick; allocate() stamps it into the register so release
     *  can attribute lifetimes). */
    void setClock(Cycle now) { clock_ = now; }

    /**
     * Monotonic mutation counter: every state change that could alter
     * a liveness / flag / value query bumps it. The datapath's stall
     * cache compares versions to prove "nothing I read last tick has
     * changed", so it may skip re-polling blocked instances. Pure
     * observation (setClock, noteWaiter, stat resets) does not bump.
     */
    std::uint64_t version() const { return version_; }

    /** @return the Figure 15 ledger. */
    const VecRegFateStats &fateStats() const { return fates_; }

    /** @return lifetime allocation count. */
    std::uint64_t allocations() const { return allocations_; }

    /** @return allocation failures (no free register). */
    std::uint64_t allocFailures() const { return allocFailures_; }

    /** Zero the Figure-15 ledger and allocation counters. */
    void
    resetStats()
    {
        fates_ = VecRegFateStats{};
        allocations_ = 0;
        allocFailures_ = 0;
    }

  private:
    /** Per-element payload. The V/R/U/F and bookkeeping flags live in
     *  per-register bitmasks (below) so the hot flag queries — element
     *  readiness, the Section 3.3 freeing conditions — are single-word
     *  loads and popcounts instead of a strided walk over fat element
     *  records (vlen is capped at 64 everywhere, enforced in the
     *  constructor). */
    struct Elem
    {
        std::uint64_t data = 0;
        ElemLoadId loadId = 0;
    };

    struct Reg
    {
        bool allocated = false;
        std::uint32_t gen = 0;
        Addr mrbb = 0;
        unsigned elemCount = 0;
        bool killed = false;
        bool uniform = false;
        bool hasRange = false;
        std::uint64_t vMask = 0;  ///< V: validation committed
        std::uint64_t rMask = 0;  ///< R: value computed / loaded
        std::uint64_t uMask = 0;  ///< U: validation in flight
        std::uint64_t fMask = 0;  ///< F: element dead
        std::uint64_t wMask = 0;  ///< waiter wants the R transition
        std::uint64_t fiMask = 0; ///< fault injected (bit flip)
        std::uint64_t ftMask = 0; ///< fault taint (marked source)
        Addr rangeLo = 0, rangeHi = 0; ///< inclusive byte range
        Cycle allocCycle = 0;
        VecRegRef pred;
        std::vector<Elem> elems;
    };

    /** Why a register is being released (fate attribution). */
    enum class ReleaseCause : std::uint8_t
    {
        Cond1,
        Cond2,
        Killed,
        Bulk,
    };

    const Reg &regFor(VecRegRef ref) const;
    Reg &regFor(VecRegRef ref);
    void release(Reg &reg, ReleaseCause cause);

    /** Push a death event when any waiter is registered. */
    void
    wakeAll(Reg &r)
    {
        if (r.wMask == 0)
            return;
        const VecRegId id = VecRegId(unsigned(&r - regs_.data()));
        wakeEvents_.push_back(
            {VecRegRef{id, r.gen}, VecWakeEvent::allElems});
        r.wMask = 0;
    }

    /** Mark @p id for the next incremental sweepReleases() pass. */
    void
    markSweepCandidate(VecRegId id)
    {
        if (!sweepMarked_[id]) {
            sweepMarked_[id] = true;
            sweepCandidates_.push_back(id);
        }
    }

    void
    setMaskBit(std::vector<std::uint64_t> &mask, unsigned i, bool on)
    {
        if (on)
            mask[i / 64] |= std::uint64_t(1) << (i % 64);
        else
            mask[i / 64] &= ~(std::uint64_t(1) << (i % 64));
    }

    unsigned numRegs_;
    unsigned vlen_;
    unsigned freeCount_;
    std::vector<Reg> regs_;
    std::vector<std::uint64_t> freeMask_; ///< bit set = register free
    std::vector<std::uint64_t> liveMask_; ///< bit set = register live
    std::vector<VecRegId> sweepCandidates_;
    std::vector<bool> sweepMarked_;     ///< dedup for the candidate list
    std::vector<VecWakeEvent> wakeEvents_;
    std::vector<VecWakeEvent> wakeScratch_; ///< drain double buffer
    VecRegFateStats fates_;
    Cycle clock_ = 0;
    std::uint64_t version_ = 0; ///< see version()
    std::uint64_t allocations_ = 0;
    std::uint64_t allocFailures_ = 0;
    DCachePorts *ports_ = nullptr;
    obs::TraceRecorder *recorder_ = nullptr;
};

} // namespace sdv

#endif // SDV_VECTOR_VREG_FILE_HH
