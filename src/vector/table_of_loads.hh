/**
 * @file
 * The Table of Loads (TL) of Section 3.2 / Figure 4: a 4-way
 * set-associative table indexed by load PC holding the last address,
 * the current stride and a confidence counter. When the confidence
 * reaches 2 a vectorized instance of the load is spawned.
 */

#ifndef SDV_VECTOR_TABLE_OF_LOADS_HH
#define SDV_VECTOR_TABLE_OF_LOADS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** Outcome of observing one dynamic load at decode. */
struct TlObservation
{
    bool hit = false;        ///< the PC was present
    bool spawn = false;      ///< confidence threshold reached
    std::int64_t stride = 0; ///< current stride (valid when hit)
};

/** Snapshot of one TL entry, used for squash undo. */
struct TlSnapshot
{
    bool existed = false;
    Addr lastAddr = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;
};

/** The Table of Loads. */
class TableOfLoads
{
  public:
    /**
     * @param sets number of sets (512 in the paper)
     * @param ways associativity (4 in the paper)
     * @param spawn_confidence confidence needed to vectorize (2)
     */
    explicit TableOfLoads(unsigned sets = 512, unsigned ways = 4,
                          std::uint8_t spawn_confidence = 2);

    /**
     * Observe a dynamic instance of the load at @p pc accessing
     * @p addr: update last address / stride / confidence per the paper
     * and report whether a vectorized instance should spawn.
     */
    TlObservation observe(Addr pc, Addr addr);

    /** Reset the confidence of @p pc to zero (misspeculation). */
    void resetConfidence(Addr pc);

    /** @return the current entry state for @p pc (for undo). */
    TlSnapshot snapshot(Addr pc) const;

    /** Restore an entry to a snapshot taken before a squashed decode. */
    void restore(Addr pc, const TlSnapshot &snap);

    /**
     * Fault-injection hook: XOR @p mask into the stride
     * (@p stride_field) or last-address field of the entry for @p pc.
     * @retval true when an entry existed and was corrupted. Only the
     * injector calls this; a corrupted entry can only mistrain future
     * spawns, which the expected-address check catches.
     */
    bool applyFault(Addr pc, bool stride_field, std::uint64_t mask);

    /** @return entry count (sets * ways). */
    unsigned capacity() const { return sets_ * ways_; }

    /** @return observations made. */
    std::uint64_t observations() const { return observations_; }

    /** @return spawn recommendations issued. */
    std::uint64_t spawns() const { return spawns_; }

    /** Zero the observation/spawn counters, keeping the table. */
    void
    resetStats()
    {
        observations_ = 0;
        spawns_ = 0;
    }

    /** Serialize entries + LRU clock (the checkpointable warm stride /
     *  confidence state; counters are excluded). */
    void
    saveState(Serializer &ser) const
    {
        ser.u32(sets_);
        ser.u32(ways_);
        ser.u8(spawnConfidence_);
        ser.u64(useClock_);
        for (const Entry &e : entries_) {
            ser.b(e.valid);
            ser.u64(e.pc);
            ser.u64(e.lastAddr);
            ser.i64(e.stride);
            ser.u8(e.confidence);
            ser.u64(e.lastUse);
        }
    }

    /** Restore TL state; @retval false on geometry mismatch. */
    bool
    loadState(Deserializer &des)
    {
        if (des.u32() != sets_ || des.u32() != ways_ ||
            des.u8() != spawnConfidence_) {
            des.fail();
            return false;
        }
        useClock_ = des.u64();
        for (Entry &e : entries_) {
            e.valid = des.b();
            e.pc = des.u64();
            e.lastAddr = des.u64();
            e.stride = des.i64();
            e.confidence = des.u8();
            e.lastUse = des.u64();
        }
        return des.ok();
    }

    /** Storage cost in bytes (24 bytes per entry per the paper). */
    std::uint64_t
    storageBytes() const
    {
        return std::uint64_t(capacity()) * 24;
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr pc) const;
    Entry *find(Addr pc);
    const Entry *find(Addr pc) const;
    Entry &victimIn(Addr pc);

    unsigned sets_;
    unsigned ways_;
    std::uint8_t spawnConfidence_;
    std::uint8_t maxConfidence_ = 3; ///< 2-bit saturating counter
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t observations_ = 0;
    std::uint64_t spawns_ = 0;
};

} // namespace sdv

#endif // SDV_VECTOR_TABLE_OF_LOADS_HH
