#include "vector/vrmt.hh"

#include "common/bitutils.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace sdv {

Vrmt::Vrmt(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), entries_(size_t(sets) * ways)
{
    sdv_assert(isPowerOf2(sets), "VRMT sets must be a power of two");
    sdv_assert(ways >= 1, "VRMT needs at least one way");
}

unsigned
Vrmt::setIndex(Addr pc) const
{
    return unsigned((pc / instBytes) & (sets_ - 1));
}

VrmtEntry *
Vrmt::lookup(Addr pc)
{
    VrmtEntry *set = &entries_[size_t(setIndex(pc)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (live(set[w]) && set[w].pc == pc) {
            set[w].lastUse = ++useClock_;
            return &set[w];
        }
    }
    return nullptr;
}

const VrmtEntry *
Vrmt::lookup(Addr pc) const
{
    return const_cast<Vrmt *>(this)->lookup(pc);
}

const VrmtEntry *
Vrmt::peek(Addr pc) const
{
    const VrmtEntry *set = &entries_[size_t(setIndex(pc)) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (live(set[w]) && set[w].pc == pc)
            return &set[w];
    return nullptr;
}

void
Vrmt::touch(Addr pc, std::uint64_t n)
{
    if (n == 0)
        return;
    VrmtEntry *set = &entries_[size_t(setIndex(pc)) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (live(set[w]) && set[w].pc == pc) {
            useClock_ += n;
            set[w].lastUse = useClock_;
            return;
        }
    }
}

VrmtEntry &
Vrmt::install(const VrmtEntry &entry)
{
    sdv_assert(entry.valid, "installing invalid VRMT entry");
    if (VrmtEntry *existing = lookup(entry.pc)) {
        const std::uint64_t use = existing->lastUse;
        *existing = entry;
        // The caller's entry is epoch-agnostic (spawn code builds it
        // from scratch): stamp the current epoch, as for new installs.
        existing->epoch = epoch_;
        existing->lastUse = use;
        bindVreg(std::size_t(existing - entries_.data()), entry.vreg);
        return *existing;
    }
    VrmtEntry *set = &entries_[size_t(setIndex(entry.pc)) * ways_];
    VrmtEntry *victim = nullptr;
    for (unsigned w = 0; w < ways_ && !victim; ++w)
        if (!live(set[w]))
            victim = &set[w];
    if (!victim) {
        victim = &set[0];
        for (unsigned w = 1; w < ways_; ++w)
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
    }
    *victim = entry;
    victim->epoch = epoch_;
    victim->lastUse = ++useClock_;
    bindVreg(std::size_t(victim - entries_.data()), entry.vreg);
    return *victim;
}

void
Vrmt::invalidate(Addr pc)
{
    if (VrmtEntry *e = lookup(pc))
        e->valid = false;
}

unsigned
Vrmt::invalidateByVreg(VecRegRef ref, std::vector<Addr> *load_pcs,
                       std::vector<VecRegRef> *successors)
{
    // O(1) via the reverse index: each vector register incarnation is
    // the freshly-allocated destination of exactly one entry, so the
    // latest binding of ref's register id is the only candidate. A
    // stale binding (entry replaced, incarnation dead, old epoch)
    // fails the validity check, which is exactly the no-match case of
    // the scan this replaces.
    if (std::size_t(ref.reg) >= byReg_.size())
        return 0;
    const std::int32_t idx = byReg_[ref.reg];
    if (idx < 0)
        return 0;
    VrmtEntry &e = entries_[std::size_t(idx)];
    if (!live(e) || !(e.vreg == ref))
        return 0;
    e.valid = false;
    if (load_pcs && e.isLoad)
        load_pcs->push_back(e.pc);
    if (successors && e.hasNext)
        successors->push_back(e.nextVreg);
    return 1;
}

void
Vrmt::invalidateAll()
{
    // O(1) epoch bump: every existing entry's epoch now mismatches, so
    // it reads as invalid everywhere and is recycled as a free way on
    // the next install into its set.
    ++epoch_;
}

void
Vrmt::forEach(const std::function<void(VrmtEntry &)> &fn)
{
    for (auto &e : entries_)
        if (live(e))
            fn(e);
}

unsigned
Vrmt::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        if (live(e))
            ++n;
    return n;
}

} // namespace sdv
