/**
 * @file
 * Fixed-capacity FIFO ring buffer with stable slot addresses, used for
 * pooled allocation of hot per-instruction structures (the ROB). Slots
 * are default-constructed once at construction and recycled by
 * assignment, so pushing never touches the heap and pointers handed out
 * to other pipeline structures stay valid until the entry is popped.
 */

#ifndef SDV_COMMON_RING_POOL_HH
#define SDV_COMMON_RING_POOL_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"

namespace sdv {

/** Bounded FIFO of recycled T slots. T must be default-constructible
 *  and provide reset(), which returns a recycled slot to its
 *  just-constructed state (possibly skipping fields the owner
 *  guarantees to overwrite or to read only under guards). */
template <typename T>
class RingPool
{
  public:
    /** @param capacity maximum live entries (fixed for the lifetime) */
    explicit RingPool(std::size_t capacity) : slots_(capacity) {}

    /** @return true when no entry is live. */
    bool empty() const { return size_ == 0; }

    /** @return number of live entries. */
    std::size_t size() const { return size_; }

    /** @return maximum number of live entries. */
    std::size_t capacity() const { return slots_.size(); }

    /** @return true when every slot is live. */
    bool full() const { return size_ == slots_.size(); }

    /** @return the oldest live entry. */
    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    /** @return the youngest live entry. */
    T &back() { return slots_[slot(size_ - 1)]; }
    const T &back() const { return slots_[slot(size_ - 1)]; }

    /** @return live entry @p i (0 = oldest). */
    T &operator[](std::size_t i) { return slots_[slot(i)]; }
    const T &operator[](std::size_t i) const { return slots_[slot(i)]; }

    /**
     * Claim the next slot, recycle it via T::reset() and return it.
     * The reference stays valid until the entry is popped.
     */
    T &
    emplaceBack()
    {
        sdv_assert(size_ < slots_.size(), "ring pool overflow");
        T &s = slots_[slot(size_)];
        s.reset();
        ++size_;
        return s;
    }

    /** Retire the oldest entry (its slot becomes recyclable). */
    void
    popFront()
    {
        sdv_assert(size_ > 0, "pop from empty ring pool");
        ++head_;
        if (head_ == slots_.size())
            head_ = 0;
        --size_;
    }

    /** Discard the youngest entry (e.g. a decode that did not stick). */
    void
    popBack()
    {
        sdv_assert(size_ > 0, "pop from empty ring pool");
        --size_;
    }

    /** Drop every live entry. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::size_t
    slot(std::size_t i) const
    {
        std::size_t s = head_ + i;
        if (s >= slots_.size())
            s -= slots_.size();
        return s;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace sdv

#endif // SDV_COMMON_RING_POOL_HH
