#include "common/histogram.hh"

#include <sstream>

#include "common/log.hh"

namespace sdv {

Histogram::Histogram(unsigned num_buckets) : buckets_(num_buckets, 0)
{
    sdv_assert(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::int64_t value, std::uint64_t weight)
{
    if (value < 0)
        underflow_ += weight;
    else if (value < std::int64_t(buckets_.size()))
        buckets_[size_t(value)] += weight;
    else
        overflow_ += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    underflow_ = 0;
    total_ = 0;
}

std::uint64_t
Histogram::bucket(unsigned b) const
{
    sdv_assert(b < buckets_.size(), "bucket out of range");
    return buckets_[b];
}

double
Histogram::fraction(unsigned b) const
{
    return total_ == 0 ? 0.0 : double(bucket(b)) / double(total_);
}

double
Histogram::overflowFraction() const
{
    return total_ == 0 ? 0.0 : double(overflow_) / double(total_);
}

double
Histogram::underflowFraction() const
{
    return total_ == 0 ? 0.0 : double(underflow_) / double(total_);
}

void
Histogram::merge(const Histogram &other)
{
    sdv_assert(other.buckets_.size() == buckets_.size(),
               "merging histograms of different shapes");
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    underflow_ += other.underflow_;
    total_ += other.total_;
}

std::int64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return -1;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Smallest value whose cumulative count reaches ceil(q * total),
    // with at least one sample so quantile(0) is the minimum value.
    std::uint64_t target = std::uint64_t(q * double(total_) + 0.999999);
    if (target == 0)
        target = 1;
    if (target > total_)
        target = total_;
    std::uint64_t cum = underflow_;
    if (cum >= target)
        return -1;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum >= target)
            return std::int64_t(i);
    }
    return std::int64_t(buckets_.size());
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            os << " ";
        os << buckets_[i];
    }
    os << " | unf " << underflow_ << " ovf " << overflow_ << "]";
    return os.str();
}

std::string
Histogram::toJson() const
{
    std::ostringstream os;
    os << "{\"buckets\":" << bucketArrayJson(buckets_.data(), buckets_.size())
       << ",\"underflow\":" << underflow_ << ",\"overflow\":" << overflow_
       << ",\"total\":" << total_ << "}";
    return os.str();
}

std::string
bucketArrayJson(const std::uint64_t *buckets, std::size_t n)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            os << ", ";
        os << buckets[i];
    }
    os << "]";
    return os.str();
}

} // namespace sdv
