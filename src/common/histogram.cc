#include "common/histogram.hh"

#include <sstream>

#include "common/log.hh"

namespace sdv {

Histogram::Histogram(unsigned num_buckets) : buckets_(num_buckets, 0)
{
    sdv_assert(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::int64_t value, std::uint64_t weight)
{
    if (value < 0)
        underflow_ += weight;
    else if (value < std::int64_t(buckets_.size()))
        buckets_[size_t(value)] += weight;
    else
        overflow_ += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    underflow_ = 0;
    total_ = 0;
}

std::uint64_t
Histogram::bucket(unsigned b) const
{
    sdv_assert(b < buckets_.size(), "bucket out of range");
    return buckets_[b];
}

double
Histogram::fraction(unsigned b) const
{
    return total_ == 0 ? 0.0 : double(bucket(b)) / double(total_);
}

double
Histogram::overflowFraction() const
{
    return total_ == 0 ? 0.0 : double(overflow_) / double(total_);
}

double
Histogram::underflowFraction() const
{
    return total_ == 0 ? 0.0 : double(underflow_) / double(total_);
}

void
Histogram::merge(const Histogram &other)
{
    sdv_assert(other.buckets_.size() == buckets_.size(),
               "merging histograms of different shapes");
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    underflow_ += other.underflow_;
    total_ += other.total_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            os << " ";
        os << buckets_[i];
    }
    os << " | unf " << underflow_ << " ovf " << overflow_ << "]";
    return os.str();
}

} // namespace sdv
