#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sdv {

const std::string TextTable::separatorTag = "\x01--";

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addRow(const std::string &label, const std::vector<double> &cells,
                  int precision)
{
    std::vector<std::string> row;
    row.push_back(label);
    for (double c : cells)
        row.push_back(num(c, precision));
    rows_.push_back(std::move(row));
}

void
TextTable::addPercentRow(const std::string &label,
                         const std::vector<double> &fractions, int precision)
{
    std::vector<std::string> row;
    row.push_back(label);
    for (double f : fractions)
        row.push_back(percent(f, precision));
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({separatorTag});
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

std::string
TextTable::render() const
{
    // Compute column widths over header and all data rows.
    size_t cols = header_.size();
    for (const auto &r : rows_)
        if (r.empty() || r[0] != separatorTag)
            cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header_.empty())
        account(header_);
    for (const auto &r : rows_)
        if (r.empty() || r[0] != separatorTag)
            account(r);

    size_t line_len = 0;
    for (size_t w : width)
        line_len += w + 2;

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < cols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            // Left-align the first (label) column, right-align the rest.
            if (i == 0)
                os << std::left << std::setw(int(width[i])) << cell;
            else
                os << std::right << std::setw(int(width[i])) << cell;
            if (i + 1 < cols)
                os << "  ";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        os << std::string(line_len, '-') << "\n";
    }
    for (const auto &r : rows_) {
        if (!r.empty() && r[0] == separatorTag)
            os << std::string(line_len, '-') << "\n";
        else
            emit(r);
    }
    return os.str();
}

} // namespace sdv
