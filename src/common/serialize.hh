/**
 * @file
 * Minimal binary serialization used by the checkpoint layer: fixed
 * little-endian encodings into a growable byte buffer, with an FNV-1a
 * checksum trailer so truncated or corrupted snapshots are rejected
 * before any state is overwritten.
 *
 * Deserialization never throws: reads past the end (or after a failed
 * structural check) latch a sticky failure flag and return zeros, and
 * the caller checks ok() once at the end.
 */

#ifndef SDV_COMMON_SERIALIZE_HH
#define SDV_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace sdv {

/** FNV-1a over a byte range (checksum + identity hashing). */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t len,
      std::uint64_t seed = 1469598103934665603ULL)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i)
        h = (h ^ data[i]) * 1099511628211ULL;
    return h;
}

/** Append-only little-endian byte sink. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            buf_.push_back(std::uint8_t(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            buf_.push_back(std::uint8_t(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(std::uint64_t(v)); }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    bytes(const void *data, std::size_t len)
    {
        // resize + memcpy rather than insert: equivalent, and avoids a
        // GCC 12 -Wstringop-overflow false positive when a fixed-size
        // array insert is inlined under LTO.
        const std::size_t old = buf_.size();
        buf_.resize(old + len);
        if (len)
            std::memcpy(buf_.data() + old, data, len);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** @return current payload size in bytes. */
    std::size_t size() const { return buf_.size(); }

    /**
     * Seal the buffer: append the FNV-1a checksum of everything
     * written so far and return the finished byte image.
     */
    std::vector<std::uint8_t>
    finish()
    {
        const std::uint64_t sum = fnv1a(buf_.data(), buf_.size());
        u64(sum);
        return std::move(buf_);
    }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sticky-failure little-endian byte source. */
class Deserializer
{
  public:
    explicit Deserializer(const std::vector<std::uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {
    }

    Deserializer(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    /**
     * Validate the checksum trailer written by Serializer::finish and
     * shrink the readable window to the payload. Must be called before
     * reading; @return false (and latch failure) on a truncated or
     * corrupted image.
     */
    bool
    verifyChecksum()
    {
        if (size_ < 8) {
            ok_ = false;
            return false;
        }
        const std::size_t payload = size_ - 8;
        std::uint64_t stored = 0;
        for (unsigned i = 0; i < 8; ++i)
            stored |= std::uint64_t(data_[payload + i]) << (8 * i);
        if (fnv1a(data_, payload) != stored) {
            ok_ = false;
            return false;
        }
        size_ = payload;
        return true;
    }

    std::uint8_t
    u8()
    {
        if (!ensure(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!ensure(4))
            return 0;
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= std::uint32_t(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!ensure(8))
            return 0;
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= std::uint64_t(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int64_t i64() { return std::int64_t(u64()); }

    bool b() { return u8() != 0; }

    bool
    bytes(void *out, std::size_t len)
    {
        if (!ensure(len))
            return false;
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
        return true;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!ensure(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      std::size_t(n));
        pos_ += std::size_t(n);
        return s;
    }

    /** Latch a failure from a caller-side structural check (bad magic,
     *  geometry mismatch, ...). */
    void fail() { ok_ = false; }

    /** @return true while every read so far stayed in bounds. */
    bool ok() const { return ok_; }

    /** @return true when the whole payload was consumed. */
    bool atEnd() const { return ok_ && pos_ == size_; }

  private:
    bool
    ensure(std::size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace sdv

#endif // SDV_COMMON_SERIALIZE_HH
