/**
 * @file
 * Deterministic, seedable PRNG (xorshift128+). The simulator and the
 * workload generators must be bit-reproducible across runs, so no use of
 * std::rand or random_device anywhere in sdv.
 */

#ifndef SDV_COMMON_RANDOM_HH
#define SDV_COMMON_RANDOM_HH

#include <cstdint>
#include <string_view>

namespace sdv {

/**
 * Derive a deterministic per-job seed from (workload, config, base
 * seed): a pure function of the job's identity, never of scheduling
 * order or thread count. The sweep executor derives and records one
 * per job; the simulator currently draws no randomness at run time,
 * so the stream is reserved — the determinism contract is that any
 * future stochastic component (randomized replacement, fault
 * injection, ...) must draw only from this stream, keeping parallel
 * and serial sweeps byte-identical.
 */
inline std::uint64_t
deriveSeed(std::string_view workload, std::string_view config,
           std::uint64_t base_seed)
{
    std::uint64_t h = 1469598103934665603ULL ^ base_seed;
    auto mix = [&h](std::string_view s) {
        for (const char c : s)
            h = (h ^ std::uint8_t(c)) * 1099511628211ULL;
        h = (h ^ 0xff) * 1099511628211ULL; // field separator
    };
    mix(workload);
    mix(config);
    return h;
}

/** xorshift128+ generator; fast, decent quality, fully deterministic. */
class Random
{
  public:
    /** Construct from a seed; any seed (including 0) is valid. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to avoid poor low-entropy states.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
            *s = t ^ (t >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** @return a uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** @return a value uniform in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a value uniform in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return true with probability @p percent / 100. */
    bool
    chancePercent(unsigned percent)
    {
        return below(100) < percent;
    }

    /** @return a double uniform in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * @return an independent child generator for stream @p stream_id.
     * Forking instead of sharing keeps sibling consumers (e.g. the
     * data and pointer initializers of one workload) decoupled: adding
     * draws to one stream never perturbs another.
     */
    Random
    fork(std::uint64_t stream_id)
    {
        return Random(next() ^
                      (stream_id * 0x9e3779b97f4a7c15ULL + stream_id));
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace sdv

#endif // SDV_COMMON_RANDOM_HH
