/**
 * @file
 * Deterministic, seedable PRNG (xorshift128+). The simulator and the
 * workload generators must be bit-reproducible across runs, so no use of
 * std::rand or random_device anywhere in sdv.
 */

#ifndef SDV_COMMON_RANDOM_HH
#define SDV_COMMON_RANDOM_HH

#include <cstdint>

namespace sdv {

/** xorshift128+ generator; fast, decent quality, fully deterministic. */
class Random
{
  public:
    /** Construct from a seed; any seed (including 0) is valid. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to avoid poor low-entropy states.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
            *s = t ^ (t >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** @return a uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** @return a value uniform in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a value uniform in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return true with probability @p percent / 100. */
    bool
    chancePercent(unsigned percent)
    {
        return below(100) < percent;
    }

    /** @return a double uniform in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace sdv

#endif // SDV_COMMON_RANDOM_HH
