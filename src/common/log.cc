#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace sdv {
namespace detail {

namespace {
bool quietFlag = false;
} // namespace

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace detail
} // namespace sdv
