#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace sdv {
namespace detail {

namespace {

bool quietFlag = false;
thread_local LogContext threadContext;

/** Format the "[subsystem @cycle] " prefix of the active context. */
std::string
contextPrefix()
{
    if (!threadContext.subsystem)
        return "";
    std::string out = "[";
    out += threadContext.subsystem;
    if (threadContext.cycle) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " @%llu",
                      static_cast<unsigned long long>(*threadContext.cycle));
        out += buf;
    }
    out += "] ";
    return out;
}

} // namespace

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s%s\n", contextPrefix().c_str(),
                     msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s%s\n", contextPrefix().c_str(),
                     msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

LogContext
logContext()
{
    return threadContext;
}

void
setLogContext(const char *subsystem, const Cycle *cycle)
{
    threadContext.subsystem = subsystem;
    threadContext.cycle = subsystem ? cycle : nullptr;
}

} // namespace detail
} // namespace sdv
