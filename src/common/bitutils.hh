/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef SDV_COMMON_BITUTILS_HH
#define SDV_COMMON_BITUTILS_HH

#include <cstdint>

namespace sdv {

/** @return true when @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOf2(v) ? 0 : 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
}

/** Insert @p field into bits [lo, lo+len) of a zeroed word. */
constexpr std::uint64_t
insertBits(std::uint64_t field, unsigned lo, unsigned len)
{
    return (field & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1)))
           << lo;
}

/** Sign-extend the low @p len bits of @p v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, unsigned len)
{
    const unsigned shift = 64 - len;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

/** @return the index of the lowest set bit; @p v must be non-zero. */
inline unsigned
countTrailingZeros(std::uint64_t v)
{
    return unsigned(__builtin_ctzll(v));
}

/** @return the number of set bits in @p v. */
inline unsigned
popCount(std::uint64_t v)
{
    return unsigned(__builtin_popcountll(v));
}

/** @return a mask of the low @p n bits (n <= 64). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : (1ULL << n) - 1;
}

/** Align @p a down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace sdv

#endif // SDV_COMMON_BITUTILS_HH
