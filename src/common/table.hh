/**
 * @file
 * ASCII table formatter used by the benchmark harness to print
 * paper-style rows (one row per benchmark, one column per configuration).
 */

#ifndef SDV_COMMON_TABLE_HH
#define SDV_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace sdv {

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    /** @param title table caption printed above the header */
    explicit TextTable(std::string title = "");

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a fully formed row; short rows are padded with "". */
    void addRow(std::vector<std::string> row);

    /** Append a row of a label plus numeric cells. */
    void addRow(const std::string &label, const std::vector<double> &cells,
                int precision = 2);

    /** Append a row of a label plus percentage cells (value 0..1). */
    void addPercentRow(const std::string &label,
                       const std::vector<double> &fractions,
                       int precision = 1);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string. */
    std::string render() const;

    /** @return number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 2);

    /** Format a fraction 0..1 as a percentage string. */
    static std::string percent(double fraction, int precision = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    static const std::string separatorTag;
};

} // namespace sdv

#endif // SDV_COMMON_TABLE_HH
