/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs, fatal()
 * for user/configuration errors, warn()/inform() for status messages.
 */

#ifndef SDV_COMMON_LOG_HH
#define SDV_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace sdv {

namespace detail {

/** Concatenate a parameter pack through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Abort after printing a panic message (simulator bug). */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/** Exit(1) after printing a fatal message (user error). */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are silenced. */
bool quiet();

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use when a condition can
 * only arise from broken sdv code, never from user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...),
                      __builtin_FILE(), __builtin_LINE());
}

/**
 * Report an unrecoverable user error (bad configuration, malformed
 * program) and exit.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...),
                      __builtin_FILE(), __builtin_LINE());
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Panic unless a condition holds. */
#define sdv_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sdv::panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

} // namespace sdv

#endif // SDV_COMMON_LOG_HH
