/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs, fatal()
 * for user/configuration errors, warn()/inform() for status messages.
 */

#ifndef SDV_COMMON_LOG_HH
#define SDV_COMMON_LOG_HH

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/types.hh"

namespace sdv {

namespace detail {

/** Concatenate a parameter pack through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Abort after printing a panic message (simulator bug). */
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

/** Exit(1) after printing a fatal message (user error). */
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are silenced. */
bool quiet();

/** Per-thread message tag: the emitting subsystem plus a live pointer
 *  to its simulated clock, prefixed to warn/inform output so messages
 *  from concurrent sweep workers stay attributable. */
struct LogContext
{
    const char *subsystem = nullptr;
    const Cycle *cycle = nullptr;
};

/** @return this thread's current log context. */
LogContext logContext();

/** Replace this thread's log context (null subsystem clears it). */
void setLogContext(const char *subsystem, const Cycle *cycle);

} // namespace detail

/**
 * RAII log tag: while alive, warn()/inform() from this thread are
 * prefixed with "[subsystem @cycle]". The cycle pointer must outlive
 * the scope (pass nullptr when no simulated clock applies).
 */
class ScopedLogContext
{
  public:
    ScopedLogContext(const char *subsystem, const Cycle *cycle)
        : prev_(detail::logContext())
    {
        detail::setLogContext(subsystem, cycle);
    }

    ~ScopedLogContext()
    {
        detail::setLogContext(prev_.subsystem, prev_.cycle);
    }

    ScopedLogContext(const ScopedLogContext &) = delete;
    ScopedLogContext &operator=(const ScopedLogContext &) = delete;

  private:
    detail::LogContext prev_;
};

/**
 * Report an internal simulator bug and abort. Use when a condition can
 * only arise from broken sdv code, never from user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...),
                      __builtin_FILE(), __builtin_LINE());
}

/**
 * Report an unrecoverable user error (bad configuration, malformed
 * program) and exit.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...),
                      __builtin_FILE(), __builtin_LINE());
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Warn at most once per call site (first caller wins across threads). */
#define warn_once(...)                                                      \
    do {                                                                    \
        static std::atomic<bool> _sdv_warned_once{false};                   \
        if (!_sdv_warned_once.exchange(true, std::memory_order_relaxed))    \
            ::sdv::warn(__VA_ARGS__);                                       \
    } while (0)

/** Rate-limited warning: emit on the 1st, (n+1)th, (2n+1)th... call of
 *  this call site, so a per-cycle condition cannot flood stderr. */
#define warn_every(n, ...)                                                  \
    do {                                                                    \
        static std::atomic<std::uint64_t> _sdv_warn_count{0};               \
        if (_sdv_warn_count.fetch_add(1, std::memory_order_relaxed) %       \
                std::uint64_t(n) == 0)                                      \
            ::sdv::warn(__VA_ARGS__);                                       \
    } while (0)

/** Panic unless a condition holds. */
#define sdv_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sdv::panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

} // namespace sdv

#endif // SDV_COMMON_LOG_HH
