/**
 * @file
 * Fundamental scalar types shared by every sdv subsystem.
 */

#ifndef SDV_COMMON_TYPES_HH
#define SDV_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace sdv {

/** A byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** A dynamic instruction sequence number (1-based; 0 means "none"). */
using InstSeqNum = std::uint64_t;

/** A logical or physical register identifier. */
using RegId = std::uint8_t;

/** A vector physical register identifier. */
using VecRegId = std::uint16_t;

/** Sentinel for "no vector register". */
constexpr VecRegId invalidVecReg = std::numeric_limits<VecRegId>::max();

/** Sentinel cycle meaning "never / not scheduled". */
constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/** Number of architectural registers (0..31 integer, 32..63 FP). */
constexpr unsigned numLogicalRegs = 64;

/** The hardwired-zero register. */
constexpr RegId zeroReg = 0;

/** First floating-point logical register. */
constexpr RegId firstFpReg = 32;

} // namespace sdv

#endif // SDV_COMMON_TYPES_HH
