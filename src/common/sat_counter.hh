/**
 * @file
 * Saturating up/down counter, the building block of the gshare predictor
 * and of the Table of Loads confidence field.
 */

#ifndef SDV_COMMON_SAT_COUNTER_HH
#define SDV_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/log.hh"

namespace sdv {

/** An n-bit saturating counter (n <= 8). */
class SatCounter
{
  public:
    /**
     * @param bits counter width in bits (1..8)
     * @param initial initial count (clamped to the maximum)
     */
    explicit SatCounter(unsigned bits = 2, std::uint8_t initial = 0)
        : max_(static_cast<std::uint8_t>((1u << bits) - 1)),
          count_(initial > max_ ? max_ : initial)
    {
        sdv_assert(bits >= 1 && bits <= 8, "bad counter width");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (count_ < max_)
            ++count_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (count_ > 0)
            --count_;
    }

    /** Reset to zero. */
    void reset() { count_ = 0; }

    /** Set to an explicit value (clamped). */
    void
    set(std::uint8_t v)
    {
        count_ = v > max_ ? max_ : v;
    }

    /** @return the current count. */
    std::uint8_t count() const { return count_; }

    /** @return the saturation value. */
    std::uint8_t max() const { return max_; }

    /** @return true when the counter is in its upper half (taken). */
    bool taken() const { return count_ > max_ / 2; }

    /** @return true when saturated at the maximum. */
    bool saturated() const { return count_ == max_; }

  private:
    std::uint8_t max_;
    std::uint8_t count_;
};

} // namespace sdv

#endif // SDV_COMMON_SAT_COUNTER_HH
