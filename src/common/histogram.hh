/**
 * @file
 * Fixed-bucket histogram used for stride distributions, useful-word
 * counts and similar per-figure statistics.
 */

#ifndef SDV_COMMON_HISTOGRAM_HH
#define SDV_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sdv {

/**
 * Histogram over the integer buckets [0, numBuckets); samples above the
 * range land in a separate overflow bucket, negative samples in a
 * separate underflow bucket.
 */
class Histogram
{
  public:
    /** @param num_buckets number of in-range buckets */
    explicit Histogram(unsigned num_buckets = 10);

    /** Add @p weight samples to the bucket for @p value. */
    void sample(std::int64_t value, std::uint64_t weight = 1);

    /** Discard all samples. */
    void reset();

    /** @return raw count of bucket @p b. */
    std::uint64_t bucket(unsigned b) const;

    /** @return count of samples that fell at or above numBuckets. */
    std::uint64_t overflow() const { return overflow_; }

    /** @return count of samples with a negative value. */
    std::uint64_t underflow() const { return underflow_; }

    /** @return total number of samples (including over/underflow). */
    std::uint64_t total() const { return total_; }

    /** @return bucket count as a fraction of all samples (0 when empty). */
    double fraction(unsigned b) const;

    /** @return overflow count as a fraction of all samples. */
    double overflowFraction() const;

    /** @return underflow count as a fraction of all samples. */
    double underflowFraction() const;

    /** @return number of in-range buckets. */
    unsigned numBuckets() const { return unsigned(buckets_.size()); }

    /** Merge another histogram of identical shape into this one. */
    void merge(const Histogram &other);

    /**
     * @return the smallest bucket value v whose cumulative count
     * reaches fraction @p q (clamped to [0,1]) of all samples: -1 when
     * the quantile falls in the underflow bucket, numBuckets() when it
     * falls in the overflow bucket, -1 when the histogram is empty.
     */
    std::int64_t quantile(double q) const;

    /** @return a one-line textual rendering (for logs and tests). */
    std::string toString() const;

    /**
     * @return a JSON object {"buckets":[...],"underflow":u,
     * "overflow":o,"total":t} — the shared emission format for every
     * histogram-shaped statistic in the JSON reports.
     */
    std::string toJson() const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Render a raw bucket-count array as a JSON array ("[a, b, c]") —
 * shared by the Histogram JSON emitter and the fixed C-array
 * histograms (e.g. VecRegFateStats::lifetimeHist) so every bucket dump
 * in the JSON reports uses one format.
 */
std::string bucketArrayJson(const std::uint64_t *buckets, std::size_t n);

/** Incremental mean tracker. */
class RunningMean
{
  public:
    /** Add one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    /** Add a pre-weighted sample. */
    void
    sampleWeighted(double sum, std::uint64_t n)
    {
        sum_ += sum;
        n_ += n;
    }

    /** @return the current mean (0 when no samples). */
    double mean() const { return n_ == 0 ? 0.0 : sum_ / double(n_); }

    /** @return the number of samples. */
    std::uint64_t count() const { return n_; }

    /** @return the sum of samples. */
    double sum() const { return sum_; }

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

} // namespace sdv

#endif // SDV_COMMON_HISTOGRAM_HH
