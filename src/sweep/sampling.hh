/**
 * @file
 * Interval sampling (SimPoint-style) for configuration sweeps: the
 * generalization of the one-boundary Simulator::warmup + Checkpoint
 * fast-forward layer to many boundaries per run.
 *
 * A SamplePlan asks for S samples of M instructions each. One serial
 * *capture pass* per workload walks the program boundary to boundary
 * (Simulator::advanceTo), serializing a checkpoint at each; the sample
 * positions are spread evenly over the program's dynamic length
 * (counted with one cheap functional execution). Every configuration
 * of the sweep then *forks per sample* from the snapshots — the
 * (config x sample) measurements are independent jobs the executor
 * runs in parallel — and the per-sample statistics are folded into one
 * SimResult estimate: each counter is extrapolated by the region
 * weight (region instructions / measured instructions) in pure integer
 * arithmetic, so serial and parallel sweeps aggregate byte-identically.
 *
 * The first region's weight also covers the warm-up prefix, so the
 * weights sum to the program's full dynamic length and the estimated
 * IPC is comparable to a full run's.
 */

#ifndef SDV_SWEEP_SAMPLING_HH
#define SDV_SWEEP_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"

namespace sdv {
namespace sweep {

/** What an interval-sampled measurement should look like. */
struct SamplePlan
{
    /** Number of sample intervals; 0 disables sampling. */
    unsigned samples = 0;

    /** Instructions measured per sample. */
    std::uint64_t measureInsts = 20'000;

    /** Instructions skipped before the first sample boundary (the
     *  classic warm-up; its weight folds into the first region). */
    std::uint64_t warmupInsts = 10'000;

    /**
     * Capture period in committed instructions; 0 derives the period
     * from the program's dynamic length so the samples spread evenly:
     * period = (total - warmup) / samples.
     */
    std::uint64_t periodInsts = 0;

    bool enabled() const { return samples > 0; }
};

/** One captured sample boundary. */
struct SampleCheckpoint
{
    std::uint64_t startInst = 0;   ///< absolute boundary position
    std::uint64_t regionInsts = 0; ///< weight: insts this sample stands for
    std::uint64_t measureInsts = 0; ///< insts to measure (tail-clamped)
    /** Checkpoint image; empty means "fork from reset" — the cold
     *  region [0, warmup) that every configuration measures exactly
     *  rather than extrapolating from a warm window. */
    std::vector<std::uint8_t> bytes;
};

/** The captured boundaries of one (workload, scale, footprint):
 *  samples[0] is the exact cold-start region, the rest are the warm
 *  interval snapshots. */
struct SampleSet
{
    std::uint64_t totalInsts = 0; ///< full dynamic instruction count
    std::uint64_t periodInsts = 0; ///< resolved capture period
    std::vector<SampleCheckpoint> samples;

    /** @return true when at least one warm boundary was captured. */
    bool usable() const { return samples.size() > 1; }
};

/**
 * Serial capture pass: walk @p prog under @p cfg and checkpoint every
 * boundary @p plan asks for. Returns an empty set (fall back to full
 * runs) when the program is too short for even one warmed sample or a
 * boundary was unreachable within @p max_cycles.
 */
SampleSet captureSamples(const CoreConfig &cfg, const Program &prog,
                         const SamplePlan &plan,
                         std::uint64_t max_cycles);

/**
 * Fold the per-sample measurements (in capture order, one SimResult
 * per SampleSet entry) into one extrapolated SimResult: every counter
 * scaled by regionInsts/measuredInsts and summed with u128 integer
 * rounding — deterministic regardless of execution order.
 */
SimResult aggregateSamples(const SampleSet &set,
                           const std::vector<SimResult> &measured);

/** FNV-1a fold of the per-sample commit hashes (capture order): the
 *  deterministic identity of a sampled run's committed streams. */
std::uint64_t foldSampleHashes(const std::vector<std::uint64_t> &hashes);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_SAMPLING_HH
