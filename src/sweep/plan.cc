#include "sweep/plan.hh"

#include "common/log.hh"
#include "common/random.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

namespace {

/** The Figure 11/12 machine matrix: both widths, 1/2/4 ports, three
 *  bus flavours. */
std::vector<GridConfig>
machineMatrix()
{
    std::vector<GridConfig> grid;
    for (unsigned width : {8u, 4u}) {
        const std::string group = std::to_string(width) + "w";
        for (unsigned ports : {1u, 2u, 4u}) {
            for (BusMode mode : {BusMode::ScalarBus, BusMode::WideBus,
                                 BusMode::WideBusSdv}) {
                grid.push_back({group, configLabel(ports, mode),
                                makeConfig(width, ports, mode)});
            }
        }
    }
    return grid;
}

/** Single-configuration figures: one machine, one column. */
std::vector<GridConfig>
singleConfig(unsigned width, const std::string &label)
{
    return {{"", std::to_string(width) + "w-" + label,
             makeConfig(width, 1, BusMode::WideBusSdv)}};
}

std::vector<GridConfig>
fig07Grid()
{
    GridConfig real{"", "real", makeConfig(4, 1, BusMode::WideBusSdv)};
    GridConfig ideal = real;
    ideal.column = "ideal";
    ideal.cfg.engine.blockOnScalarOperand = false;
    return {real, ideal};
}

std::vector<GridConfig>
ablationGrid()
{
    const CoreConfig base = makeConfig(4, 1, BusMode::WideBusSdv);
    std::vector<GridConfig> grid;
    grid.push_back({"", "base", base});
    for (unsigned regs : {8u, 16u, 32u, 64u}) {
        GridConfig g{"", "vregs" + std::to_string(regs), base};
        g.cfg.engine.numVregs = regs;
        grid.push_back(g);
    }
    for (unsigned vl : {2u, 8u}) {
        GridConfig g{"", "vlen" + std::to_string(vl), base};
        g.cfg.engine.vlen = vl;
        grid.push_back(g);
    }
    for (unsigned conf : {1u, 3u}) {
        GridConfig g{"", "conf" + std::to_string(conf), base};
        g.cfg.engine.tlConfidence = std::uint8_t(conf);
        grid.push_back(g);
    }
    GridConfig narrow{"", "scalarbus", base};
    narrow.cfg.widePorts = false;
    grid.push_back(narrow);
    return grid;
}

struct PlanDef
{
    PlanInfo info;
    std::vector<GridConfig> (*grid)();
    /** Included in --plan all. The adversarial "attack" plan is not:
     *  "all" regenerates the paper-figure baselines, and its job list
     *  (and JSON) must not change when robustness plans are added. */
    bool inAll = true;
};

/** The "attack" plan's machines: SDV geometry variants whose transient
 *  exposure across --quiesce-interval boundaries differs, plus a
 *  no-vectorization control with zero speculative state to leak. */
std::vector<GridConfig>
attackGrid()
{
    const CoreConfig base = makeConfig(4, 1, BusMode::WideBusSdv);
    std::vector<GridConfig> grid;
    grid.push_back({"", "novec", makeConfig(4, 1, BusMode::WideBus)});
    grid.push_back({"", "base", base});
    for (unsigned vl : {2u, 8u}) {
        GridConfig g{"", "vlen" + std::to_string(vl), base};
        g.cfg.engine.vlen = vl;
        grid.push_back(g);
    }
    GridConfig eager{"", "eager", base};
    eager.cfg.engine.eagerChainLoads = true;
    grid.push_back(eager);
    return grid;
}

/** The four machines behind the paper's headline prose claims. The
 *  columns keep the legacy bench labels ("4w-1pV") so delegating
 *  bench_headline_claims to this grid leaves its JSON unchanged. */
std::vector<GridConfig>
headlineGrid()
{
    return {
        {"", "4w-" + configLabel(1, BusMode::WideBusSdv),
         makeConfig(4, 1, BusMode::WideBusSdv)},
        {"", "4w-" + configLabel(1, BusMode::WideBus),
         makeConfig(4, 1, BusMode::WideBus)},
        {"", "4w-" + configLabel(4, BusMode::ScalarBus),
         makeConfig(4, 4, BusMode::ScalarBus)},
        {"", "8w-" + configLabel(4, BusMode::ScalarBus),
         makeConfig(8, 4, BusMode::ScalarBus)},
    };
}

std::vector<GridConfig>
fig09Grid()
{
    return singleConfig(8, "1pV");
}

std::vector<GridConfig>
fig10Grid()
{
    return singleConfig(4, "1pV");
}

std::vector<GridConfig>
fig13Grid()
{
    return singleConfig(4, "1pV");
}

std::vector<GridConfig>
fig14Grid()
{
    return singleConfig(8, "1pV");
}

std::vector<GridConfig>
fig15Grid()
{
    return singleConfig(8, "1pV");
}

const std::vector<PlanDef> &
planDefs()
{
    static const std::vector<PlanDef> defs = {
        {{"fig07", "IPC: decode blocking on scalar operands "
                   "(real vs ideal)"},
         fig07Grid},
        {{"fig09", "vector instances with non-zero source offset"},
         fig09Grid},
        {{"fig10", "control-flow independence reuse"}, fig10Grid},
        {{"fig11", "IPC by port count, bus width and vectorization"},
         machineMatrix},
        {{"fig12", "L1D port occupancy across the machine matrix"},
         machineMatrix},
        {{"fig13", "useful words per wide-bus line read"}, fig13Grid},
        {{"fig14", "fraction of committed validations"}, fig14Grid},
        {{"fig15", "vector element fates at register release"},
         fig15Grid},
        {{"ablation", "sizing knobs: vregs / vlen / confidence / bus"},
         ablationGrid},
        {{"headline", "the four machines behind the headline claims"},
         headlineGrid},
        {{"attack", "timing-channel pair: transient exposure across "
                    "quiesce boundaries"},
         attackGrid, /*inAll=*/false},
    };
    return defs;
}

} // namespace

const std::vector<PlanInfo> &
allPlans()
{
    static const std::vector<PlanInfo> plans = [] {
        std::vector<PlanInfo> v;
        for (const PlanDef &d : planDefs())
            v.push_back(d.info);
        v.push_back({"all", "every figure grid back to back"});
        return v;
    }();
    return plans;
}

bool
havePlan(const std::string &name)
{
    for (const PlanInfo &p : allPlans())
        if (p.name == name)
            return true;
    return false;
}

std::vector<GridConfig>
figureGrid(const std::string &name)
{
    for (const PlanDef &d : planDefs())
        if (d.info.name == name)
            return d.grid();
    fatal("no configuration grid for plan '", name, "'");
}

namespace {

/** Append @p name's grid jobs for every (quick-filtered) workload. */
void
appendFigure(SweepPlan &plan, const std::string &name,
             const PlanOptions &opt)
{
    const std::vector<GridConfig> grid = figureGrid(name);
    // The attack plan runs the timing-channel pair, not the figure
    // suite (which stays fixed at the paper's 12 workloads).
    const std::vector<Workload> &suite =
        name == "attack" ? attackWorkloads() : allWorkloads();
    unsigned ints_done = 0, fps_done = 0;
    for (const Workload &w : suite) {
        if (opt.quick) {
            if (!w.isFp && ints_done >= 2)
                continue;
            if (w.isFp && fps_done >= 1)
                continue;
        }
        (w.isFp ? fps_done : ints_done) += 1;
        for (const GridConfig &g : grid) {
            SweepJob job;
            job.figure = name;
            job.workload = w.name;
            job.isFp = w.isFp;
            job.group = g.group;
            job.column = g.column;
            job.configKey = g.key();
            job.cfg = g.cfg;
            job.seed = deriveSeed(w.name, name + ":" + job.configKey,
                                  opt.baseSeed);
            plan.jobs.push_back(job);
        }
    }
}

} // namespace

SweepPlan
buildPlan(const std::string &name, const PlanOptions &opt)
{
    SweepPlan plan;
    plan.name = name;
    if (opt.scale == 0)
        fatal("plan '", name, "': invalid scale 0 (the scale is a "
              "dynamic-length multiplier and must be >= 1)");
    plan.scale = opt.scale;
    plan.footprint = opt.footprint;

    if (name == "all") {
        plan.title = "every figure grid back to back";
        for (const PlanDef &d : planDefs())
            if (d.inAll)
                appendFigure(plan, d.info.name, opt);
        return plan;
    }

    for (const PlanInfo &p : allPlans()) {
        if (p.name == name) {
            plan.title = p.title;
            appendFigure(plan, name, opt);
            return plan;
        }
    }
    fatal("unknown sweep plan '", name, "' (see sdv_sweep --list)");
}

} // namespace sweep
} // namespace sdv
