#include "sweep/client.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "common/serialize.hh"

namespace sdv {
namespace sweep {

std::string
ClientResult::resultsArray() const
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        out += records[i];
        out += i + 1 < records.size() ? ",\n" : "\n";
    }
    out += "]";
    return out;
}

bool
submitSweep(const std::string &socketPath,
            const proto::SweepRequest &req, ClientResult &out,
            std::string *err,
            const std::function<void(std::uint32_t,
                                     const std::string &)> &onRecord)
{
    const int fd = proto::connectUnix(socketPath, err);
    if (fd < 0)
        return false;
    proto::Framed link(fd);

    proto::Hello hello;
    hello.pid = ::getpid();
    if (!link.send(proto::MsgType::HelloClient, hello.encode()) ||
        !link.send(proto::MsgType::Submit, req.encode())) {
        if (err)
            *err = "could not send request (daemon gone?)";
        return false;
    }

    out = ClientResult{};
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    while (link.recv(t, payload)) {
        switch (t) {
        case proto::MsgType::ResultRecord: {
            proto::ResultRecord rec;
            if (!proto::ResultRecord::decode(payload, rec)) {
                if (err)
                    *err = "malformed record frame";
                return false;
            }
            // Records stream in plan order; hold the invariant rather
            // than trusting it (a hole would silently mis-collate).
            if (rec.index != out.records.size()) {
                if (err)
                    *err = "record stream out of order";
                return false;
            }
            if (onRecord)
                onRecord(rec.index, rec.json);
            out.records.push_back(std::move(rec.json));
            break;
        }
        case proto::MsgType::RequestDone: {
            proto::RequestDone done;
            if (!proto::RequestDone::decode(payload, done)) {
                if (err)
                    *err = "malformed completion frame";
                return false;
            }
            if (done.records != out.records.size()) {
                if (err)
                    *err = "record stream truncated";
                return false;
            }
            out.metricsJson = std::move(done.metricsJson);
            out.cacheHits = done.cacheHits;
            out.cacheMisses = done.cacheMisses;
            return true;
        }
        case proto::MsgType::Error: {
            proto::ErrorMsg e;
            if (err)
                *err = proto::ErrorMsg::decode(payload, e)
                           ? e.message
                           : std::string("malformed error frame");
            return false;
        }
        default:
            if (err)
                *err = "unexpected frame from server";
            return false;
        }
    }
    if (err)
        *err = "connection closed mid-request";
    return false;
}

bool
requestShutdown(const std::string &socketPath, std::string *err)
{
    const int fd = proto::connectUnix(socketPath, err);
    if (fd < 0)
        return false;
    proto::Framed link(fd);
    proto::Hello hello;
    hello.pid = ::getpid();
    Serializer empty; // sealed zero-field payload (recv checksums all)
    return link.send(proto::MsgType::HelloClient, hello.encode()) &&
           link.send(proto::MsgType::Shutdown, empty.finish());
}

double
LoadTestResult::hitRate() const
{
    const double total = double(cacheHits + cacheMisses);
    return total <= 0.0 ? 0.0 : double(cacheHits) / total;
}

bool
runLoadTest(const std::string &socketPath,
            const proto::SweepRequest &req,
            const LoadTestOptions &lopt, LoadTestResult &out,
            std::string *err)
{
    out = LoadTestResult{};
    const unsigned total = std::max(1u, lopt.requests);
    const unsigned conc =
        std::min(std::max(1u, lopt.concurrency), total);

    std::mutex m;
    std::vector<double> latencies;
    latencies.reserve(total);
    std::string firstErr;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < conc; ++c) {
        // Each connection submits its share back-to-back: the daemon
        // sees `conc` live clients and a standing queue of requests.
        const unsigned share = total / conc + (c < total % conc);
        threads.emplace_back([&, share] {
            for (unsigned i = 0; i < share; ++i) {
                ClientResult res;
                std::string e;
                const auto r0 = std::chrono::steady_clock::now();
                const bool ok =
                    submitSweep(socketPath, req, res, &e);
                const double secs =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - r0)
                        .count();
                std::lock_guard<std::mutex> lk(m);
                if (ok) {
                    ++out.completed;
                    latencies.push_back(secs);
                    out.cacheHits += res.cacheHits;
                    out.cacheMisses += res.cacheMisses;
                } else {
                    ++out.failed;
                    if (firstErr.empty())
                        firstErr = e;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    out.requestsPerSecond =
        out.wallSeconds > 0.0 ? out.completed / out.wallSeconds : 0.0;

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
        if (latencies.empty())
            return 0.0;
        const std::size_t idx = std::min(
            latencies.size() - 1,
            std::size_t(p * double(latencies.size())));
        return latencies[idx];
    };
    out.p50 = pct(0.50);
    out.p95 = pct(0.95);
    out.p99 = pct(0.99);

    if (out.failed) {
        if (err)
            *err = std::to_string(out.failed) +
                   " request(s) failed; first error: " + firstErr;
        return false;
    }
    return true;
}

} // namespace sweep
} // namespace sdv
