#include "sweep/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "common/random.hh"
#include "common/serialize.hh"

namespace sdv {
namespace sweep {

std::string
ClientResult::resultsArray() const
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        out += records[i];
        out += i + 1 < records.size() ? ",\n" : "\n";
    }
    out += "]";
    return out;
}

const char *
submitStatusName(SubmitStatus s)
{
    switch (s) {
    case SubmitStatus::Ok: return "ok";
    case SubmitStatus::DaemonAbsent: return "daemon-absent";
    case SubmitStatus::ProtocolMismatch: return "protocol-mismatch";
    case SubmitStatus::Rejected: return "rejected";
    case SubmitStatus::DeadlineExpired: return "deadline-expired";
    case SubmitStatus::TransportError: return "transport-error";
    case SubmitStatus::ServerError: return "server-error";
    }
    return "unknown";
}

namespace {

/** Map a daemon ErrorMsg to the client verdict, composing the
 *  human-readable reason. A protocol mismatch quotes both versions —
 *  "present but incompatible" must read differently from "absent". */
SubmitStatus
classifyError(const proto::ErrorMsg &e, std::string *err)
{
    switch (e.kind) {
    case proto::ErrKind::Protocol:
        if (err)
            *err = "daemon refused: " + e.message + " (client speaks v" +
                   std::to_string(proto::kVersion) + ")";
        return SubmitStatus::ProtocolMismatch;
    case proto::ErrKind::Rejected:
        if (err)
            *err = e.message;
        return SubmitStatus::Rejected;
    case proto::ErrKind::Deadline:
        if (err)
            *err = e.message;
        return SubmitStatus::DeadlineExpired;
    case proto::ErrKind::Shutdown:
    case proto::ErrKind::Generic:
        break;
    }
    if (err)
        *err = e.message;
    return SubmitStatus::ServerError;
}

} // namespace

SubmitStatus
submitSweepOnce(const std::string &socketPath,
                const proto::SweepRequest &req, std::uint32_t priority,
                ClientResult &out, std::string *err,
                const std::function<void(std::uint32_t,
                                         const std::string &)> &onRecord)
{
    auto verdict = [&](SubmitStatus s) {
        out.status = s;
        return s;
    };

    out = ClientResult{};
    int connErrno = 0;
    const int fd = proto::connectUnix(socketPath, err, &connErrno);
    if (fd < 0) {
        // ENOENT / ECONNREFUSED: nothing is listening — the caller can
        // fall back to in-process execution. Anything else is a daemon
        // that exists but cannot be talked to.
        return verdict(connErrno == ENOENT || connErrno == ECONNREFUSED
                           ? SubmitStatus::DaemonAbsent
                           : SubmitStatus::TransportError);
    }
    proto::Framed link(fd);

    proto::Hello hello;
    hello.pid = ::getpid();
    hello.priority = priority;
    if (!link.send(proto::MsgType::HelloClient, hello.encode()) ||
        !link.send(proto::MsgType::Submit, req.encode())) {
        if (err)
            *err = "could not send request (daemon gone?)";
        return verdict(SubmitStatus::TransportError);
    }

    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    while (link.recv(t, payload)) {
        switch (t) {
        case proto::MsgType::ResultRecord: {
            proto::ResultRecord rec;
            if (!proto::ResultRecord::decode(payload, rec)) {
                if (err)
                    *err = "malformed record frame";
                return verdict(SubmitStatus::TransportError);
            }
            // Records stream in plan order; hold the invariant rather
            // than trusting it (a hole would silently mis-collate).
            if (rec.index != out.records.size()) {
                if (err)
                    *err = "record stream out of order";
                return verdict(SubmitStatus::TransportError);
            }
            if (onRecord)
                onRecord(rec.index, rec.json);
            out.records.push_back(std::move(rec.json));
            break;
        }
        case proto::MsgType::RequestDone: {
            proto::RequestDone done;
            if (!proto::RequestDone::decode(payload, done)) {
                if (err)
                    *err = "malformed completion frame";
                return verdict(SubmitStatus::TransportError);
            }
            if (done.records != out.records.size()) {
                if (err)
                    *err = "record stream truncated";
                return verdict(SubmitStatus::TransportError);
            }
            out.metricsJson = std::move(done.metricsJson);
            out.cacheHits = done.cacheHits;
            out.cacheMisses = done.cacheMisses;
            return verdict(SubmitStatus::Ok);
        }
        case proto::MsgType::Error: {
            proto::ErrorMsg e;
            if (!proto::ErrorMsg::decode(payload, e)) {
                if (err)
                    *err = "malformed error frame";
                return verdict(SubmitStatus::TransportError);
            }
            return verdict(classifyError(e, err));
        }
        default:
            if (err)
                *err = "unexpected frame from server";
            return verdict(SubmitStatus::TransportError);
        }
    }
    if (err)
        *err = "connection closed mid-request";
    return verdict(SubmitStatus::TransportError);
}

SubmitStatus
submitSweepRetry(const std::string &socketPath,
                 const proto::SweepRequest &req,
                 const ClientOptions &copt, ClientResult &out,
                 std::string *err,
                 const std::function<void(std::uint32_t,
                                          const std::string &)> &onRecord)
{
    Random rng(copt.retrySeed ^ 0x5dbac1b0ff5ULL);
    SubmitStatus s = SubmitStatus::TransportError;
    unsigned attempts = 0;
    std::uint64_t backoff = std::max(1u, copt.backoffMs);
    for (unsigned a = 0; a <= copt.retries; ++a) {
        s = submitSweepOnce(socketPath, req, copt.priority, out, err,
                            onRecord);
        ++attempts;
        if (s != SubmitStatus::DaemonAbsent &&
            s != SubmitStatus::TransportError)
            break; // Ok or a daemon verdict — retrying cannot help
        if (a == copt.retries)
            break;
        // Jittered exponential backoff: [backoff/2, backoff]ms, then
        // double. Safe to resubmit: the served stream is deterministic,
        // so a duplicate attempt yields byte-identical records.
        const std::uint64_t sleepMs =
            backoff / 2 + rng.below(backoff / 2 + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
        backoff *= 2;
    }
    out.attempts = attempts;
    return s;
}

bool
submitSweep(const std::string &socketPath,
            const proto::SweepRequest &req, ClientResult &out,
            std::string *err,
            const std::function<void(std::uint32_t,
                                     const std::string &)> &onRecord)
{
    return submitSweepOnce(socketPath, req, 1, out, err, onRecord) ==
           SubmitStatus::Ok;
}

bool
queryStats(const std::string &socketPath, proto::ServerStats &out,
           std::string *err)
{
    const int fd = proto::connectUnix(socketPath, err);
    if (fd < 0)
        return false;
    proto::Framed link(fd);
    proto::Hello hello;
    hello.pid = ::getpid();
    Serializer empty;
    if (!link.send(proto::MsgType::HelloClient, hello.encode()) ||
        !link.send(proto::MsgType::StatsQuery, empty.finish())) {
        if (err)
            *err = "could not send stats query";
        return false;
    }
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    if (!link.recv(t, payload) || t != proto::MsgType::StatsReply ||
        !proto::ServerStats::decode(payload, out)) {
        if (err)
            *err = "malformed stats reply";
        return false;
    }
    return true;
}

bool
requestShutdown(const std::string &socketPath, std::string *err)
{
    const int fd = proto::connectUnix(socketPath, err);
    if (fd < 0)
        return false;
    proto::Framed link(fd);
    proto::Hello hello;
    hello.pid = ::getpid();
    Serializer empty; // sealed zero-field payload (recv checksums all)
    return link.send(proto::MsgType::HelloClient, hello.encode()) &&
           link.send(proto::MsgType::Shutdown, empty.finish());
}

double
LoadTestResult::hitRate() const
{
    const double total = double(cacheHits + cacheMisses);
    return total <= 0.0 ? 0.0 : double(cacheHits) / total;
}

bool
runLoadTest(const std::string &socketPath,
            const proto::SweepRequest &req,
            const LoadTestOptions &lopt, LoadTestResult &out,
            std::string *err)
{
    out = LoadTestResult{};
    const unsigned total = std::max(1u, lopt.requests);
    const unsigned conc =
        std::min(std::max(1u, lopt.concurrency), total);

    std::mutex m;
    std::vector<double> latencies;
    latencies.reserve(total);
    std::string firstErr;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < conc; ++c) {
        // Each connection submits its share back-to-back: the daemon
        // sees `conc` live clients and a standing queue of requests.
        const unsigned share = total / conc + (c < total % conc);
        threads.emplace_back([&, share] {
            for (unsigned i = 0; i < share; ++i) {
                ClientResult res;
                std::string e;
                const auto r0 = std::chrono::steady_clock::now();
                const bool ok =
                    submitSweep(socketPath, req, res, &e);
                const double secs =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - r0)
                        .count();
                std::lock_guard<std::mutex> lk(m);
                if (ok) {
                    ++out.completed;
                    latencies.push_back(secs);
                    out.cacheHits += res.cacheHits;
                    out.cacheMisses += res.cacheMisses;
                } else {
                    ++out.failed;
                    if (firstErr.empty())
                        firstErr = e;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    out.requestsPerSecond =
        out.wallSeconds > 0.0 ? out.completed / out.wallSeconds : 0.0;

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
        if (latencies.empty())
            return 0.0;
        const std::size_t idx = std::min(
            latencies.size() - 1,
            std::size_t(p * double(latencies.size())));
        return latencies[idx];
    };
    out.p50 = pct(0.50);
    out.p95 = pct(0.95);
    out.p99 = pct(0.99);

    if (out.failed) {
        if (err)
            *err = std::to_string(out.failed) +
                   " request(s) failed; first error: " + firstErr;
        return false;
    }
    return true;
}

} // namespace sweep
} // namespace sdv
