/**
 * @file
 * Chaos harness for the sweep work-server (`sdv_sweep --chaos N`):
 * a deterministic, seed-replayable fault-injection campaign at the
 * protocol/process boundary of a *running* daemon.
 *
 * One campaign submits N concurrent copies of a base request and
 * assigns a budget of faults across them from a seeded stream:
 *
 *  - worker exits mid-unit (pre-work `_exit`, crash-requeue path),
 *  - worker hangs (heartbeat suppressed; the server must SIGKILL and
 *    requeue),
 *  - corrupted result frames (payload byte flipped after sealing; the
 *    frame checksum must reject it),
 *  - truncated result frames (header promises more than arrives),
 *  - delayed workers (slow-but-alive: heartbeats flow, no false kill),
 *  - dribbled frames (64-byte slices; reassembly must be exact),
 *  - client disconnects mid-stream (the server must not wedge),
 *  - bad-frame probes on raw connections (oversized length prefixes,
 *    unsealed payloads),
 *  - deadline victims (deadline_ms = 1; the verdict must be the
 *    structured Deadline error, not a generic failure).
 *
 * The oracle is exact, not statistical: every surviving request's
 * record stream must be byte-identical to the in-process serial
 * executor's output; every failed request must carry a structured
 * error; the daemon must still serve a clean request afterwards; and
 * the daemon's accounting must balance exactly — units enqueued ==
 * units completed + units failed, with the hang-kill / restart /
 * retry counters consistent with the injected budget. Same seed, same
 * campaign: replay a failure with the seed the report names.
 */

#ifndef SDV_SWEEP_CHAOS_HH
#define SDV_SWEEP_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/proto.hh"

namespace sdv {
namespace sweep {

/** Campaign shape: fault budgets and the seed that places them. */
struct ChaosOptions
{
    unsigned requests = 8;     ///< concurrent request submissions
    std::uint64_t seed = 1;    ///< placement stream (replay key)
    bool verbose = false;      ///< per-event narration on stderr

    // Fault budgets, distributed across the requests by the seed.
    unsigned workerExits = 3;
    unsigned workerHangs = 2;
    unsigned corruptFrames = 2;
    unsigned truncFrames = 1;
    unsigned delayedUnits = 2;
    unsigned dribbledUnits = 1;
    unsigned clientDisconnects = 1; ///< extra streams cut mid-record
    unsigned badFrameProbes = 2;    ///< raw garbage connections
    unsigned deadlineVictims = 1;   ///< requests with deadline_ms = 1
    unsigned delayMs = 300;         ///< stall per delayed unit
};

/** Campaign verdicts plus the evidence behind them. */
struct ChaosReport
{
    unsigned requestsSent = 0;
    unsigned requestsOk = 0;
    unsigned requestsFailed = 0;
    unsigned deadlineErrors = 0;  ///< failures with the Deadline kind
    unsigned disconnectsDone = 0;
    unsigned badFramesSent = 0;

    bool recordsMatch = false;    ///< every survivor == serial, bytewise
    bool errorsStructured = false; ///< every failure carried a kind
    bool daemonAlive = false;     ///< final clean request served
    bool accountingBalanced = false; ///< enqueued == completed + failed

    std::string firstProblem;     ///< first assertion that failed

    /** The serial reference records (what every survivor matched) —
     *  reusable as a bench payload by the caller. */
    std::vector<std::string> records;

    proto::ServerStats statsBefore;
    proto::ServerStats statsAfter;

    bool
    ok() const
    {
        return recordsMatch && errorsStructured && daemonAlive &&
               accountingBalanced;
    }

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * Run one campaign against the daemon at @p socketPath using copies
 * of @p baseReq (the request must be chaos-free; the campaign owns
 * the chaos fields). The daemon must be idle when the campaign
 * starts — the accounting delta is asserted against a quiescent
 * before/after pair.
 */
ChaosReport runChaosCampaign(const std::string &socketPath,
                             const proto::SweepRequest &baseReq,
                             const ChaosOptions &copt);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_CHAOS_HH
