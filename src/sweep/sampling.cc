#include "sweep/sampling.hh"

#include <type_traits>

#include "common/log.hh"
#include "sweep/checkpoint.hh"

namespace sdv {
namespace sweep {

namespace {

/** v * w / m with round-to-nearest in 128-bit intermediate. */
std::uint64_t
scaled(std::uint64_t v, std::uint64_t w, std::uint64_t m)
{
    if (m == 0)
        return 0;
    const unsigned __int128 num =
        (unsigned __int128)v * w + m / 2;
    return std::uint64_t(num / m);
}

/**
 * Extrapolate one statistics block: dst += src * w / m per field. The
 * stats structs are flat all-u64 PODs (asserted), so they scale as
 * uint64 spans — adding a non-u64 field to one fails the static_assert
 * rather than silently mis-scaling.
 */
template <typename T>
void
scaleAdd(T &dst, const T &src, std::uint64_t w, std::uint64_t m)
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      sizeof(T) % sizeof(std::uint64_t) == 0,
                  "stats struct must be a flat array of u64 counters");
    auto *d = reinterpret_cast<std::uint64_t *>(&dst);
    auto *s = reinterpret_cast<const std::uint64_t *>(&src);
    for (std::size_t i = 0; i < sizeof(T) / sizeof(std::uint64_t); ++i)
        d[i] += scaled(s[i], w, m);
}

} // namespace

SampleSet
captureSamples(const CoreConfig &cfg, const Program &prog,
               const SamplePlan &plan, std::uint64_t max_cycles)
{
    sdv_assert(plan.enabled(), "capture pass without a sample plan");
    SampleSet set;

    // One functional execution counts the dynamic length — orders of
    // magnitude cheaper than the timing model, and it pins the sample
    // positions and weights before any timing state exists.
    {
        FunctionalCore ref(prog, cfg.traceExec);
        ref.runToHalt(nullptr);
        set.totalInsts = ref.instCount();
    }

    const std::uint64_t warmup = plan.warmupInsts;
    if (set.totalInsts <= warmup + plan.samples) {
        warn("program too short for ", plan.samples,
             " samples after a ", warmup,
             "-inst warm-up; falling back to full runs");
        return set;
    }
    const std::uint64_t period =
        plan.periodInsts != 0
            ? plan.periodInsts
            : (set.totalInsts - warmup) / plan.samples;
    if (period == 0) {
        warn("sample period resolved to zero; falling back to full "
             "runs");
        return set;
    }
    set.periodInsts = period;

    // Region 0 is the cold start, [0, warmup): every configuration
    // measures it *exactly* (weight == measured instructions) from a
    // cold fork — cold caches and predictors make it far slower than
    // any warm window, so extrapolating it from one would bias the
    // whole estimate. No snapshot needed: empty bytes mean "fork from
    // reset".
    {
        SampleCheckpoint cold;
        cold.startInst = 0;
        cold.regionInsts = warmup;
        cold.measureInsts = warmup;
        set.samples.push_back(std::move(cold));
    }

    Simulator sim(cfg, prog);
    for (unsigned k = 0; k < plan.samples; ++k) {
        const std::uint64_t start = warmup + std::uint64_t(k) * period;
        if (start >= set.totalInsts)
            break; // an explicit --sample-period overshot the program
        if (!sim.advanceTo(start, max_cycles)) {
            // HALT inside the gap or budget blown: keep the samples
            // captured so far; the last one's weight covers the tail.
            warn("sample boundary ", start, " unreachable; capturing ",
                 k, " of ", plan.samples, " samples");
            break;
        }
        SampleCheckpoint sc;
        sc.startInst = start;
        // Region weight: this boundary to the next one (the last
        // warm region, adjusted below, runs to program end).
        sc.regionInsts = period;
        sc.measureInsts =
            std::min(plan.measureInsts, set.totalInsts - start);
        sc.bytes = Checkpoint::capture(sim);
        set.samples.push_back(std::move(sc));
    }
    if (set.samples.size() <= 1) {
        // Not one warm boundary was reachable: a sampled estimate
        // would extrapolate the cold start over the whole run. Full
        // runs are both cheaper and exact at this length.
        set.samples.clear();
        return set;
    }

    // The last warm region runs to the program end; together the
    // regions cover every committed instruction exactly once.
    set.samples.back().regionInsts =
        set.totalInsts - set.samples.back().startInst;
    return set;
}

SimResult
aggregateSamples(const SampleSet &set,
                 const std::vector<SimResult> &measured)
{
    sdv_assert(set.samples.size() == measured.size(),
               "sample set / measurement mismatch");
    SimResult agg;
    agg.sampled = true;
    agg.samplesMeasured = unsigned(measured.size());
    agg.finished = true;
    agg.verified = false; // estimates cannot be verified functionally

    for (std::size_t k = 0; k < measured.size(); ++k) {
        const SimResult &r = measured[k];
        const std::uint64_t w = set.samples[k].regionInsts;
        const std::uint64_t m = r.core.committedInsts;
        agg.finished = agg.finished && r.finished;
        if (m == 0)
            continue;
        scaleAdd(agg.core, r.core, w, m);
        scaleAdd(agg.engine, r.engine, w, m);
        scaleAdd(agg.datapath, r.datapath, w, m);
        scaleAdd(agg.ports, r.ports, w, m);
        scaleAdd(agg.wideBus, r.wideBus, w, m);
        scaleAdd(agg.fates, r.fates, w, m);
        scaleAdd(agg.l1d, r.l1d, w, m);
        scaleAdd(agg.l1i, r.l1i, w, m);
        scaleAdd(agg.l2, r.l2, w, m);
    }
    agg.cycles = agg.core.cycles;
    agg.insts = agg.core.committedInsts;
    agg.ipc = agg.core.ipc();
    return agg;
}

std::uint64_t
foldSampleHashes(const std::vector<std::uint64_t> &hashes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t v : hashes)
        h = (h ^ v) * 1099511628211ULL;
    return h;
}

} // namespace sweep
} // namespace sdv
