#include "sweep/server.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/serialize.hh"
#include "sim/config.hh"
#include "sweep/checkpoint.hh"
#include "sweep/sampling.hh"
#include "sweep/worker.hh"

namespace sdv {
namespace sweep {

namespace {

/** A unit that crashes this many workers is abandoned (its request
 *  fails with context) instead of cycling the pool forever. */
constexpr unsigned kMaxUnitAttempts = 3;

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Identity of the worker binary (size, mtime, inode): a snapshot
 *  captured by a different build must never be reused, so this folds
 *  into every cache key. */
std::uint64_t
binaryFingerprint(const struct stat &st)
{
    Serializer ser;
    ser.u64(std::uint64_t(st.st_size));
    ser.i64(st.st_mtime);
    ser.u64(std::uint64_t(st.st_ino));
    const std::vector<std::uint8_t> buf = ser.finish();
    return fnv1a(buf.data(), buf.size());
}

/** Per-request collation state, shared between the client handler
 *  (which streams records) and the unit continuations (which complete
 *  on worker threads). shared_ptr-held by every continuation, so a
 *  client that disconnects mid-request cannot dangle late units. */
struct RequestState
{
    SweepPlan plan;
    std::map<std::string, std::shared_ptr<const SnapshotSet>> sets;
    std::map<std::string, std::string> snapshotPaths;
    std::vector<RunOutcome> outcomes;
    std::vector<std::vector<SimResult>> sampleResults;
    std::vector<std::vector<std::uint64_t>> sampleHashes;
    std::vector<unsigned> unitsLeft;
    std::vector<char> jobDone;

    std::mutex m;
    std::condition_variable cv;
    bool failed = false;
    std::string failMsg;
    double busySeconds = 0.0;

    void
    fail(std::string why)
    {
        failed = true;
        if (failMsg.empty())
            failMsg = std::move(why);
    }
};

} // namespace

SweepServer::SweepServer(Options opt)
    : opt_(std::move(opt)), cache_(opt_.cacheDir)
{
}

SweepServer::~SweepServer()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

bool
SweepServer::start(std::string *err)
{
    ::signal(SIGPIPE, SIG_IGN);

    ::mkdir(opt_.cacheDir.c_str(), 0755); // EEXIST: reuse
    struct stat st{};
    if (::stat(opt_.cacheDir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (err)
            *err = "cache directory unavailable: " + opt_.cacheDir;
        return false;
    }
    if (::stat(opt_.workerExe.c_str(), &st) != 0) {
        if (err)
            *err = "worker binary not found: " + opt_.workerExe;
        return false;
    }
    binFingerprint_ = binaryFingerprint(st);

    listenFd_ = proto::listenUnix(opt_.socketPath, err);
    if (listenFd_ < 0)
        return false;

    numWorkers_ = resolveJobs(opt_.workers);
    for (unsigned i = 0; i < numWorkers_; ++i) {
        const pid_t pid =
            spawnWorkerProcess(opt_.workerExe, opt_.socketPath);
        if (pid < 0) {
            if (err)
                *err = "could not spawn worker process";
            return false;
        }
        workerPids_.push_back(int(pid));
    }
    if (opt_.verbose)
        std::fprintf(stderr,
                     "sdv_sweep: serving on %s (%u workers, cache %s)\n",
                     opt_.socketPath.c_str(), numWorkers_,
                     opt_.cacheDir.c_str());
    return true;
}

void
SweepServer::stop()
{
    stop_.store(true);
    qcv_.notify_all();
}

void
SweepServer::enqueue(const std::shared_ptr<PendingUnit> &u, bool front)
{
    {
        std::lock_guard<std::mutex> lk(qm_);
        if (front)
            queue_.push_front(u);
        else
            queue_.push_back(u);
        queueDepthPeak_ = std::max<std::uint64_t>(queueDepthPeak_,
                                                  queue_.size());
    }
    qcv_.notify_one();
}

std::shared_ptr<SweepServer::PendingUnit>
SweepServer::popUnit()
{
    std::unique_lock<std::mutex> lk(qm_);
    qcv_.wait(lk, [&] { return stop_.load() || !queue_.empty(); });
    if (queue_.empty())
        return nullptr;
    auto u = queue_.front();
    queue_.pop_front();
    return u;
}

void
SweepServer::requeueAfterCrash(const std::shared_ptr<PendingUnit> &u)
{
    ++u->attempts;
    // The chaos hook fires at most once per unit: the whole point of
    // the retry is that the re-run succeeds.
    u->msg.chaosExit = false;
    if (u->attempts >= kMaxUnitAttempts) {
        proto::UnitResult r;
        r.id = u->msg.id;
        r.message = "unit abandoned after " +
                    std::to_string(u->attempts) + " worker crashes";
        auto done = std::move(u->done);
        done(std::move(r));
        return;
    }
    {
        std::lock_guard<std::mutex> lk(sm_);
        ++unitRetries_;
    }
    // Front of the queue: the crashed unit's request is the oldest
    // work in flight; don't let newer requests starve its retry.
    enqueue(u, true);
}

void
SweepServer::failPendingUnits(const char *why)
{
    std::deque<std::shared_ptr<PendingUnit>> drained;
    {
        std::lock_guard<std::mutex> lk(qm_);
        drained.swap(queue_);
    }
    for (auto &u : drained) {
        proto::UnitResult r;
        r.id = u->msg.id;
        r.message = why;
        auto done = std::move(u->done);
        done(std::move(r));
    }
}

void
SweepServer::workerLoop(const std::shared_ptr<proto::Framed> &link,
                        int pid)
{
    {
        std::lock_guard<std::mutex> lk(sm_);
        workers_[pid]; // register (zero load) even before work arrives
    }
    bool died = false;
    std::shared_ptr<PendingUnit> u;
    while (!stop_.load()) {
        u = popUnit();
        if (!u)
            break;
        if (!link->send(proto::MsgType::UnitRequest, u->msg.encode())) {
            died = true;
            break;
        }
        proto::MsgType t;
        std::vector<std::uint8_t> payload;
        proto::UnitResult r;
        if (!link->recv(t, payload) ||
            t != proto::MsgType::UnitResult ||
            !proto::UnitResult::decode(payload, r)) {
            died = true;
            break;
        }
        {
            std::lock_guard<std::mutex> lk(sm_);
            WorkerState &ws = workers_[pid];
            ++ws.units;
            ws.busySeconds += r.wallSeconds;
        }
        auto done = std::move(u->done);
        u.reset();
        done(std::move(r));
    }
    if (died) {
        link->close();
        if (u)
            requeueAfterCrash(u);
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (!stop_.load()) {
            warn("sweep worker ", pid, " died; respawning");
            {
                std::lock_guard<std::mutex> lk(sm_);
                ++workerRestarts_;
            }
            const pid_t np =
                spawnWorkerProcess(opt_.workerExe, opt_.socketPath);
            if (np > 0) {
                std::lock_guard<std::mutex> lk(sm_);
                workerPids_.push_back(int(np));
            } else {
                warn("sweep server: could not respawn a worker");
            }
        }
    }
}

void
SweepServer::handleSubmit(proto::Framed &link,
                          const std::vector<std::uint8_t> &payload)
{
    const auto t0 = std::chrono::steady_clock::now();

    auto reject = [&](const std::string &why) {
        proto::ErrorMsg e;
        e.message = why;
        link.send(proto::MsgType::Error, e.encode());
        if (opt_.verbose)
            std::fprintf(stderr, "sdv_sweep: rejected request: %s\n",
                         why.c_str());
    };

    proto::SweepRequest req;
    std::string err;
    if (!proto::SweepRequest::decode(payload, req, &err)) {
        reject("malformed request: " + err);
        return;
    }
    if (!havePlan(req.plan)) {
        reject("unknown plan '" + req.plan + "'");
        return;
    }
    if (req.popt.scale == 0) {
        reject("scale must be >= 1");
        return;
    }
    if (req.eopt.sample.enabled() && req.eopt.verify) {
        // The in-process executor asserts on this combination; a
        // daemon rejects it instead of dying.
        reject("interval sampling produces estimates that cannot be "
               "functionally verified; drop --verify");
        return;
    }

    const ExecOptions &eopt = req.eopt;
    auto st = std::make_shared<RequestState>();
    st->plan = buildPlan(req.plan, req.popt);
    const std::size_t nJobs = st->plan.jobs.size();
    st->outcomes.resize(nJobs);
    st->sampleResults.resize(nJobs);
    st->sampleHashes.resize(nJobs);
    st->unitsLeft.assign(nJobs, 0);
    st->jobDone.assign(nJobs, 0);

    // Chaos budget (worker-crash recovery tests): the first N units
    // dispatched for this request take their worker down once each.
    std::uint32_t chaosLeft = req.chaosExitUnits;
    auto takeChaos = [&chaosLeft]() {
        if (chaosLeft == 0)
            return false;
        --chaosLeft;
        return true;
    };

    std::uint64_t unitsDispatched = 0;
    std::uint64_t reqHits = 0, reqMisses = 0, reqWaits = 0;

    // --- Snapshot acquisition (sampled and one-boundary checkpoint
    // modes): one single-flight cache acquire per distinct workload;
    // a miss dispatches the capture pass to the worker pool.
    const bool sampled = eopt.sample.enabled();
    if (sampled || eopt.checkpoint) {
        for (const SweepJob &job : st->plan.jobs) {
            if (st->sets.count(job.workload))
                continue;
            const std::uint64_t warmHash =
                configIdentityHash(warmConfig(st->plan, eopt,
                                              job.workload));
            const std::string key = snapshotKey(req, job.workload,
                                                warmHash,
                                                binFingerprint_);
            auto capture = [&](const std::string &path,
                               std::string *cerr) {
                auto pu = std::make_shared<PendingUnit>();
                pu->msg.id = nextUnitId_.fetch_add(1);
                pu->msg.kind = proto::UnitKind::Capture;
                pu->msg.req = req;
                pu->msg.workload = job.workload;
                pu->msg.snapshotPath = path;
                pu->msg.chaosExit = takeChaos();
                std::promise<proto::UnitResult> prom;
                auto fut = prom.get_future();
                pu->done = [&prom](proto::UnitResult &&r) {
                    prom.set_value(std::move(r));
                };
                enqueue(pu, false);
                ++unitsDispatched;
                proto::UnitResult r = fut.get();
                if (!r.ok && cerr)
                    *cerr = r.message;
                return r.ok;
            };
            SnapshotCache::Outcome oc = SnapshotCache::Outcome::Hit;
            auto set = cache_.acquire(key, capture, &err, &oc);
            if (!set) {
                reject("snapshot capture failed for '" + job.workload +
                       "': " + err);
                return;
            }
            switch (oc) {
            case SnapshotCache::Outcome::Hit: ++reqHits; break;
            case SnapshotCache::Outcome::Miss: ++reqMisses; break;
            case SnapshotCache::Outcome::Wait: ++reqWaits; break;
            }
            st->sets.emplace(job.workload, std::move(set));
            st->snapshotPaths.emplace(job.workload, cache_.pathFor(key));
        }
    }

    // --- Decide each job's execution shape and seed its outcome,
    // exactly as the corresponding in-process path would (serially,
    // before any unit runs: fallbacks never depend on scheduling).
    std::map<std::pair<std::string, std::string>, bool> configOk;
    auto jobSampled = [&](const SweepJob &job) {
        const auto &set = st->sets.at(job.workload);
        if (!set->captured || !set->sampled || !set->set.usable())
            return false;
        const auto key = std::make_pair(job.workload, job.configKey);
        auto it = configOk.find(key);
        if (it == configOk.end()) {
            CoreConfig cfg = job.cfg;
            applyExecOverlay(cfg, eopt);
            // samples[0] is the cold region (no image); the first warm
            // snapshot decides whether this config can fork. Geometry
            // is checked Simulator-free (the daemon never builds
            // programs); program identity holds by construction — the
            // set was captured from this workload's own build.
            const bool ok = Checkpoint::validateImage(
                cfg, set->set.samples[1].bytes);
            if (!ok)
                warn("running ", job.workload, "/", job.configKey,
                     " as a full run (snapshot geometry mismatch)");
            it = configOk.emplace(key, ok).first;
        }
        return it->second;
    };

    for (std::size_t i = 0; i < nJobs; ++i) {
        const SweepJob &job = st->plan.jobs[i];
        stampOutcome(st->outcomes[i], job);
        if (sampled) {
            st->unitsLeft[i] =
                jobSampled(job)
                    ? unsigned(st->sets.at(job.workload)
                                   ->set.samples.size())
                    : 1;
            if (st->unitsLeft[i] > 1) {
                st->sampleResults[i].resize(st->unitsLeft[i]);
                st->sampleHashes[i].assign(st->unitsLeft[i], 0);
            }
        } else {
            // The full-run path resolves the job's machine config up
            // front (overlay + per-job fault plan) — the record
            // serializer reads fault state from it.
            CoreConfig cfg = job.cfg;
            applyExecOverlay(cfg, eopt);
            cfg.engine.fault = jobFaultPlan(eopt.fault, job);
            st->outcomes[i].cfg = cfg;
            st->unitsLeft[i] = 1;
        }
    }

    // --- Enqueue every unit in serial order, each completing into the
    // shared request state from whichever worker thread finishes it.
    auto makeUnit = [&](std::uint32_t jobIndex, std::int32_t sample) {
        auto pu = std::make_shared<PendingUnit>();
        pu->msg.id = nextUnitId_.fetch_add(1);
        pu->msg.kind = proto::UnitKind::Run;
        pu->msg.req = req;
        pu->msg.jobIndex = jobIndex;
        pu->msg.sample = sample;
        const std::string &wl = st->plan.jobs[jobIndex].workload;
        if (st->snapshotPaths.count(wl))
            pu->msg.snapshotPath = st->snapshotPaths.at(wl);
        pu->msg.chaosExit = takeChaos();
        return pu;
    };

    for (std::size_t i = 0; i < nJobs; ++i) {
        const bool jobIsSampled = sampled && st->unitsLeft[i] > 1;
        const unsigned n = st->unitsLeft[i];
        for (unsigned k = 0; k < n; ++k) {
            auto pu = makeUnit(std::uint32_t(i),
                               jobIsSampled ? std::int32_t(k) : -1);
            const bool fullRunMode = !sampled;
            pu->done = [st, i, k, jobIsSampled,
                        fullRunMode](proto::UnitResult &&r) {
                std::lock_guard<std::mutex> lk(st->m);
                RunOutcome &o = st->outcomes[i];
                if (!r.ok) {
                    st->fail(r.message);
                } else if (jobIsSampled) {
                    st->sampleResults[i][k] = r.res;
                    st->sampleHashes[i][k] = r.commitHash;
                    o.wallSeconds += r.wallSeconds;
                    st->busySeconds += r.wallSeconds;
                } else {
                    o.res = r.res;
                    o.commitHash = r.commitHash;
                    o.wallSeconds = r.wallSeconds;
                    st->busySeconds += r.wallSeconds;
                    if (fullRunMode) {
                        o.fromCheckpoint = r.fromCheckpoint;
                        o.timedOut = r.res.timedOut;
                    }
                    // Sampled-mode full-run fallback: fromCheckpoint
                    // and timedOut stay false, as in runPlanSampled.
                }
                if (--st->unitsLeft[i] == 0) {
                    if (jobIsSampled) {
                        // Plan-ordered aggregation: a pure integer
                        // fold, independent of worker scheduling.
                        const auto &set =
                            st->sets.at(o.workload)->set;
                        o.res = aggregateSamples(set,
                                                 st->sampleResults[i]);
                        o.commitHash =
                            foldSampleHashes(st->sampleHashes[i]);
                        o.fromCheckpoint = true;
                        o.samples = unsigned(set.samples.size());
                    }
                    st->jobDone[i] = 1;
                }
                st->cv.notify_all();
            };
            enqueue(pu, false);
            ++unitsDispatched;
        }
    }

    // --- Stream the plan-ordered record prefix as it completes.
    const auto collate0 = std::chrono::steady_clock::now();
    bool clientGone = false;
    for (std::size_t i = 0; i < nJobs; ++i) {
        std::string json;
        {
            std::unique_lock<std::mutex> lk(st->m);
            st->cv.wait(lk,
                        [&] { return st->jobDone[i] || st->failed; });
            if (st->failed) {
                const std::string why = st->failMsg;
                lk.unlock();
                reject("request failed: " + why);
                return;
            }
            json = resultRecordJson(st->outcomes[i]);
        }
        proto::ResultRecord rec;
        rec.index = std::uint32_t(i);
        rec.json = std::move(json);
        if (!link.send(proto::MsgType::ResultRecord, rec.encode())) {
            // Client went away; late continuations hold st alive, so
            // just stop streaming.
            clientGone = true;
            break;
        }
    }
    if (clientGone)
        return;

    // --- Request metrics (host-side rider; the deterministic payload
    // is the record stream above).
    ExecMetrics m;
    m.enabled = true;
    m.serve = true;
    m.workers = numWorkers_;
    m.jobsAuto = opt_.workers == 0;
    m.poolWallSeconds = secondsSince(t0);
    m.requestSeconds = m.poolWallSeconds;
    m.collateSeconds = secondsSince(collate0);
    m.cacheHits = reqHits;
    m.cacheMisses = reqMisses;
    m.cacheWaits = reqWaits;
    m.checkpointCaptures = reqMisses;
    m.unitsDispatched = unitsDispatched;
    {
        std::lock_guard<std::mutex> lk(st->m);
        m.busySeconds = st->busySeconds;
        m.jobs.resize(nJobs);
        for (std::size_t i = 0; i < nJobs; ++i) {
            ExecMetrics::JobMetrics &jm = m.jobs[i];
            jm.workload = st->plan.jobs[i].workload;
            jm.configKey = st->plan.jobs[i].configKey;
            jm.queueWaitSeconds = -1.0; // units, not jobs, queue here
            jm.runSeconds = st->outcomes[i].wallSeconds;
        }
        for (std::size_t i = 0; i < nJobs; ++i) {
            const RunOutcome &o = st->outcomes[i];
            if (!o.fromCheckpoint)
                continue;
            const auto &set = st->sets.at(o.workload)->set;
            if (o.samples > 0) {
                for (const SampleCheckpoint &sc : set.samples) {
                    if (sc.bytes.empty())
                        continue;
                    ++m.checkpointRestores;
                    m.checkpointRestoreBytes += sc.bytes.size();
                }
            } else if (!set.samples.empty()) {
                ++m.checkpointRestores;
                m.checkpointRestoreBytes +=
                    set.samples[0].bytes.size();
            }
        }
    }
    {
        std::lock_guard<std::mutex> lk(sm_);
        m.unitRetries = unitRetries_;
        m.workerRestarts = workerRestarts_;
        for (const auto &kv : workers_) {
            ExecMetrics::WorkerLoad wl;
            wl.pid = kv.first;
            wl.units = kv.second.units;
            wl.busySeconds = kv.second.busySeconds;
            m.workerLoads.push_back(wl);
        }
    }
    {
        std::lock_guard<std::mutex> lk(qm_);
        m.queueDepthPeak = queueDepthPeak_;
    }

    proto::RequestDone done;
    done.records = std::uint32_t(nJobs);
    done.cacheHits = reqHits;
    done.cacheMisses = reqMisses;
    done.metricsJson = m.toJson();
    link.send(proto::MsgType::RequestDone, done.encode());
    if (opt_.verbose)
        std::fprintf(stderr,
                     "sdv_sweep: served %s (%zu records, %.2fs, "
                     "cache %llu hit / %llu miss)\n",
                     req.plan.c_str(), nJobs, m.requestSeconds,
                     static_cast<unsigned long long>(reqHits),
                     static_cast<unsigned long long>(reqMisses));
}

void
SweepServer::clientLoop(const std::shared_ptr<proto::Framed> &link)
{
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    while (!stop_.load() && link->recv(t, payload)) {
        if (t == proto::MsgType::Shutdown) {
            if (opt_.verbose)
                std::fprintf(stderr,
                             "sdv_sweep: shutdown requested\n");
            stop();
            break;
        }
        if (t == proto::MsgType::Submit) {
            handleSubmit(*link, payload);
            continue;
        }
        proto::ErrorMsg e;
        e.message = "unexpected frame type";
        link->send(proto::MsgType::Error, e.encode());
        break;
    }
}

void
SweepServer::handleConnection(int fd)
{
    auto link = std::make_shared<proto::Framed>(fd);
    {
        std::lock_guard<std::mutex> lk(sm_);
        conns_.push_back(link);
    }
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    if (!link->recv(t, payload))
        return;

    proto::Hello hello;
    if (t == proto::MsgType::HelloWorker) {
        if (proto::Hello::decode(payload, hello) &&
            hello.version == proto::kVersion)
            workerLoop(link, hello.pid);
        return;
    }
    if (t == proto::MsgType::HelloClient) {
        if (!proto::Hello::decode(payload, hello) ||
            hello.version != proto::kVersion) {
            proto::ErrorMsg e;
            e.message = "protocol version mismatch (server speaks v" +
                        std::to_string(proto::kVersion) + ")";
            link->send(proto::MsgType::Error, e.encode());
            return;
        }
        clientLoop(link);
        return;
    }
    proto::ErrorMsg e;
    e.message = "expected a hello frame";
    link->send(proto::MsgType::Error, e.encode());
}

void
SweepServer::acceptLoop(int listenFd)
{
    while (!stop_.load()) {
        struct pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("sweep server: poll failed; shutting down");
            stop();
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lk(sm_);
        threads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
SweepServer::run()
{
    acceptLoop(listenFd_);

    // Wind-down: no new connections (accept loop done); unblock every
    // handler, fail whatever work is still queued, reap the pool.
    stop_.store(true);
    qcv_.notify_all();
    {
        std::lock_guard<std::mutex> lk(sm_);
        for (auto &w : conns_)
            if (auto c = w.lock())
                ::shutdown(c->fd(), SHUT_RDWR);
    }
    for (;;) {
        std::vector<std::thread> batch;
        {
            std::lock_guard<std::mutex> lk(sm_);
            batch.swap(threads_);
        }
        if (batch.empty())
            break;
        for (std::thread &t : batch)
            t.join();
    }
    failPendingUnits("server shutting down");
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opt_.socketPath.c_str());
    std::vector<int> pids;
    {
        std::lock_guard<std::mutex> lk(sm_);
        pids = workerPids_;
    }
    for (int pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0); // ECHILD for already-reaped: fine
    }
}

} // namespace sweep
} // namespace sdv
