#include "sweep/server.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/serialize.hh"
#include "sim/config.hh"
#include "sweep/checkpoint.hh"
#include "sweep/sampling.hh"
#include "sweep/worker.hh"

namespace sdv {
namespace sweep {

namespace {

/** A unit that crashes this many workers is abandoned (its request
 *  fails with context) instead of cycling the pool forever. */
constexpr unsigned kMaxUnitAttempts = 3;

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Identity of the worker binary (size, mtime, inode): a snapshot
 *  captured by a different build must never be reused, so this folds
 *  into every cache key. */
std::uint64_t
binaryFingerprint(const struct stat &st)
{
    Serializer ser;
    ser.u64(std::uint64_t(st.st_size));
    ser.i64(st.st_mtime);
    ser.u64(std::uint64_t(st.st_ino));
    const std::vector<std::uint8_t> buf = ser.finish();
    return fnv1a(buf.data(), buf.size());
}

/** Per-request collation state, shared between the client handler
 *  (which streams records) and the unit continuations (which complete
 *  on worker threads). shared_ptr-held by every continuation, so a
 *  client that disconnects mid-request cannot dangle late units. */
struct RequestState
{
    SweepPlan plan;
    std::map<std::string, std::shared_ptr<const SnapshotSet>> sets;
    std::map<std::string, std::string> snapshotPaths;
    std::vector<RunOutcome> outcomes;
    std::vector<std::vector<SimResult>> sampleResults;
    std::vector<std::vector<std::uint64_t>> sampleHashes;
    std::vector<unsigned> unitsLeft;
    std::vector<char> jobDone;
    /** Pins against cache eviction, held for the request's lifetime so
     *  no worker ever opens an unlinked snapshot file. */
    std::vector<std::shared_ptr<void>> cachePins;

    std::mutex m;
    std::condition_variable cv;
    bool failed = false;
    std::string failMsg;
    proto::ErrKind failKind = proto::ErrKind::Generic;
    double busySeconds = 0.0;
    // Queue-age stats of this request's dispatched units.
    std::uint64_t waitCount = 0;
    double waitSum = 0.0;
    double waitMax = 0.0;

    void
    fail(std::string why,
         proto::ErrKind kind = proto::ErrKind::Generic)
    {
        if (!failed)
            failKind = kind;
        failed = true;
        if (failMsg.empty())
            failMsg = std::move(why);
    }
};

} // namespace

void
FairShareQueue::push(const std::shared_ptr<PendingUnit> &u, bool front)
{
    ClientBucket &b = buckets_[u->clientId];
    b.priority = u->priority == 0 ? 1 : u->priority;
    if (front)
        b.q.push_front(u);
    else
        b.q.push_back(u);
    ++total_;
}

std::shared_ptr<PendingUnit>
FairShareQueue::pop()
{
    if (total_ == 0)
        return nullptr;

    // Continue the current client's burst if it has one left and still
    // has work; otherwise rotate to the next client with work (wrapping
    // once) and grant it a fresh burst of `priority` dispatches.
    auto usable = [](const ClientBucket &b) { return !b.q.empty(); };
    std::map<std::uint64_t, ClientBucket>::iterator pick =
        buckets_.end();
    if (cursorValid_) {
        auto cur = buckets_.find(cursor_);
        if (cur != buckets_.end() && cur->second.burstLeft > 0 &&
            usable(cur->second))
            pick = cur;
    }
    if (pick == buckets_.end()) {
        auto it = cursorValid_ ? buckets_.upper_bound(cursor_)
                               : buckets_.begin();
        for (std::size_t scanned = 0; scanned <= buckets_.size();
             ++scanned) {
            if (it == buckets_.end())
                it = buckets_.begin();
            if (usable(it->second)) {
                pick = it;
                pick->second.burstLeft = pick->second.priority;
                break;
            }
            ++it;
        }
    }
    if (pick == buckets_.end())
        return nullptr; // unreachable while total_ > 0

    auto u = pick->second.q.front();
    pick->second.q.pop_front();
    --total_;
    --pick->second.burstLeft;
    cursor_ = pick->first;
    cursorValid_ = true;
    if (pick->second.q.empty())
        buckets_.erase(pick);
    return u;
}

std::vector<std::shared_ptr<PendingUnit>>
FairShareQueue::drain()
{
    std::vector<std::shared_ptr<PendingUnit>> out;
    out.reserve(total_);
    for (auto &kv : buckets_)
        for (auto &u : kv.second.q)
            out.push_back(std::move(u));
    buckets_.clear();
    total_ = 0;
    cursorValid_ = false;
    return out;
}

SweepServer::SweepServer(Options opt)
    : opt_(std::move(opt)),
      cache_(opt_.cacheDir, opt_.cacheLimitMb << 20)
{
}

SweepServer::~SweepServer()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

bool
SweepServer::start(std::string *err)
{
    ::signal(SIGPIPE, SIG_IGN);

    ::mkdir(opt_.cacheDir.c_str(), 0755); // EEXIST: reuse
    struct stat st{};
    if (::stat(opt_.cacheDir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (err)
            *err = "cache directory unavailable: " + opt_.cacheDir;
        return false;
    }
    if (::stat(opt_.workerExe.c_str(), &st) != 0) {
        if (err)
            *err = "worker binary not found: " + opt_.workerExe;
        return false;
    }
    binFingerprint_ = binaryFingerprint(st);

    // Startup GC: drop cache entries captured by a different build of
    // the worker binary (stale-but-present) and seed the LRU index.
    const unsigned gcRemoved = cache_.gcStale(binFingerprint_);
    if (gcRemoved > 0 && opt_.verbose)
        std::fprintf(stderr,
                     "sdv_sweep: cache GC removed %u stale snapshot "
                     "container(s)\n",
                     gcRemoved);

    listenFd_ = proto::listenUnix(opt_.socketPath, err);
    if (listenFd_ < 0)
        return false;

    numWorkers_ = resolveJobs(opt_.workers);
    for (unsigned i = 0; i < numWorkers_; ++i) {
        const pid_t pid =
            spawnWorkerProcess(opt_.workerExe, opt_.socketPath);
        if (pid < 0) {
            if (err)
                *err = "could not spawn worker process";
            return false;
        }
        workerPids_.push_back(int(pid));
    }
    if (opt_.verbose)
        std::fprintf(stderr,
                     "sdv_sweep: serving on %s (%u workers, cache %s)\n",
                     opt_.socketPath.c_str(), numWorkers_,
                     opt_.cacheDir.c_str());
    return true;
}

void
SweepServer::stop()
{
    stop_.store(true);
    qcv_.notify_all();
}

void
SweepServer::enqueue(const std::shared_ptr<PendingUnit> &u, bool front)
{
    {
        std::lock_guard<std::mutex> lk(qm_);
        u->enqueuedAt = std::chrono::steady_clock::now();
        queue_.push(u, front);
        queueDepthPeak_ = std::max<std::uint64_t>(queueDepthPeak_,
                                                  queue_.size());
    }
    if (!front) {
        // Fresh unit (retries re-enter via front=true and were
        // already counted): one entry in the exact-balance ledger.
        std::lock_guard<std::mutex> lk(sm_);
        ++unitsEnqueued_;
    }
    qcv_.notify_one();
}

std::shared_ptr<PendingUnit>
SweepServer::popUnit()
{
    std::unique_lock<std::mutex> lk(qm_);
    qcv_.wait(lk, [&] { return stop_.load() || !queue_.empty(); });
    return queue_.pop();
}

void
SweepServer::finishUnit(std::shared_ptr<PendingUnit> &u,
                        proto::UnitResult &&r)
{
    {
        std::lock_guard<std::mutex> lk(sm_);
        if (r.ok)
            ++unitsCompleted_;
        else
            ++unitsFailed_;
        if (!r.ok && r.errKind == proto::ErrKind::Deadline)
            ++deadlineFailures_;
    }
    auto done = std::move(u->done);
    u.reset();
    done(std::move(r));
}

void
SweepServer::requeueAfterCrash(const std::shared_ptr<PendingUnit> &u)
{
    ++u->attempts;
    // The chaos hook fires at most once per unit: the whole point of
    // the retry is that the re-run succeeds.
    u->msg.chaosMode = proto::ChaosMode::None;
    u->msg.chaosParam = 0;
    if (u->attempts >= kMaxUnitAttempts) {
        proto::UnitResult r;
        r.id = u->msg.id;
        r.message = "unit abandoned after " +
                    std::to_string(u->attempts) + " worker crashes";
        auto uu = u;
        finishUnit(uu, std::move(r));
        return;
    }
    {
        std::lock_guard<std::mutex> lk(sm_);
        ++unitRetries_;
    }
    // Front of its client's bucket: the crashed unit's request is the
    // oldest work in flight; don't let newer requests starve its retry.
    enqueue(u, true);
}

void
SweepServer::failPendingUnits(const char *why)
{
    std::vector<std::shared_ptr<PendingUnit>> drained;
    {
        std::lock_guard<std::mutex> lk(qm_);
        drained = queue_.drain();
    }
    for (auto &u : drained) {
        proto::UnitResult r;
        r.id = u->msg.id;
        r.message = why;
        r.errKind = proto::ErrKind::Shutdown;
        finishUnit(u, std::move(r));
    }
}

proto::ServerStats
SweepServer::snapshotStats()
{
    proto::ServerStats s;
    {
        std::lock_guard<std::mutex> lk(sm_);
        s.unitsEnqueued = unitsEnqueued_;
        s.unitsCompleted = unitsCompleted_;
        s.unitsFailed = unitsFailed_;
        s.unitRetries = unitRetries_;
        s.workerRestarts = workerRestarts_;
        s.hangKills = hangKills_;
        s.deadlineFailures = deadlineFailures_;
        s.requestsServed = requestsServed_;
        s.requestsFailed = requestsFailed_;
    }
    const SnapshotCache::Stats cs = cache_.stats();
    s.cacheEvictions = cs.evictions;
    s.cacheGcRemoved = cs.gcRemoved;
    s.cacheDiskBytes = cs.diskBytes;
    return s;
}

void
SweepServer::workerLoop(const std::shared_ptr<proto::Framed> &link,
                        int pid)
{
    {
        std::lock_guard<std::mutex> lk(sm_);
        workers_[pid]; // register (zero load) even before work arrives
    }
    using clock = std::chrono::steady_clock;
    bool died = false;
    bool deadlineKill = false;
    std::shared_ptr<PendingUnit> u;
    while (!stop_.load()) {
        u = popUnit();
        if (!u)
            break;

        const auto dispatchedAt = clock::now();
        u->waitSeconds = std::chrono::duration<double>(
                             dispatchedAt - u->enqueuedAt)
                             .count();
        {
            std::lock_guard<std::mutex> lk(sm_);
            ClientStat &cs = clientStats_[u->clientId];
            cs.priority = u->priority;
            ++cs.units;
            cs.waitSum += u->waitSeconds;
            cs.waitMax = std::max(cs.waitMax, u->waitSeconds);
        }

        // Dispatch-time deadline check: units of an expired request
        // fail instantly instead of burning worker time on a result
        // nobody is waiting for.
        if (u->hasDeadline && dispatchedAt >= u->deadline) {
            proto::UnitResult r;
            r.id = u->msg.id;
            r.message = "request deadline expired";
            r.errKind = proto::ErrKind::Deadline;
            r.queueWaitSeconds = u->waitSeconds;
            finishUnit(u, std::move(r));
            continue;
        }

        if (!link->send(proto::MsgType::UnitRequest, u->msg.encode())) {
            died = true;
            break;
        }

        // Heartbeat-aware receive: the worker sends Progress every
        // kHeartbeatMs while executing. Silence past the hang timeout
        // means the worker is wedged (not merely slow) — SIGKILL it so
        // the respawn/retry path recovers the unit; a passed deadline
        // likewise kills the worker so one slow request cannot occupy
        // the pool past its budget.
        proto::UnitResult r;
        bool gotResult = false;
        auto lastBeat = clock::now();
        while (!gotResult && !died) {
            const auto now = clock::now();
            auto wake =
                lastBeat +
                std::chrono::milliseconds(opt_.hangTimeoutMs);
            if (u->hasDeadline && u->deadline < wake)
                wake = u->deadline;
            long timeoutMs =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    wake - now)
                    .count() +
                1;
            if (timeoutMs < 0)
                timeoutMs = 0;
            if (timeoutMs > 500)
                timeoutMs = 500; // bounded: observe stop_ regularly
            struct pollfd pfd{};
            pfd.fd = link->fd();
            pfd.events = POLLIN;
            const int rc = ::poll(&pfd, 1, int(timeoutMs));
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                died = true;
                break;
            }
            if (rc > 0 &&
                (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
                proto::MsgType t;
                std::vector<std::uint8_t> payload;
                if (!link->recv(t, payload)) {
                    died = true; // EOF, read error or corrupt frame
                    break;
                }
                if (t == proto::MsgType::Progress) {
                    lastBeat = clock::now();
                    continue;
                }
                if (t == proto::MsgType::UnitResult &&
                    proto::UnitResult::decode(payload, r)) {
                    gotResult = true;
                    break;
                }
                died = true;
                break;
            }
            const auto tnow = clock::now();
            if (u->hasDeadline && tnow >= u->deadline) {
                ::kill(pid, SIGKILL);
                died = true;
                deadlineKill = true;
                break;
            }
            if (tnow - lastBeat >=
                std::chrono::milliseconds(opt_.hangTimeoutMs)) {
                warn("sweep worker ", pid,
                     " went silent mid-unit; killing");
                ::kill(pid, SIGKILL);
                died = true;
                {
                    std::lock_guard<std::mutex> lk(sm_);
                    ++hangKills_;
                }
                break;
            }
        }
        if (died)
            break;

        {
            std::lock_guard<std::mutex> lk(sm_);
            WorkerState &ws = workers_[pid];
            ++ws.units;
            ws.busySeconds += r.wallSeconds;
        }
        r.queueWaitSeconds = u->waitSeconds;
        finishUnit(u, std::move(r));
    }
    if (died) {
        link->close();
        if (u) {
            if (deadlineKill) {
                proto::UnitResult r;
                r.id = u->msg.id;
                r.message = "unit killed: request deadline expired";
                r.errKind = proto::ErrKind::Deadline;
                r.queueWaitSeconds = u->waitSeconds;
                finishUnit(u, std::move(r));
            } else {
                requeueAfterCrash(u);
            }
        }
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (!stop_.load()) {
            warn("sweep worker ", pid, " died; respawning");
            {
                std::lock_guard<std::mutex> lk(sm_);
                ++workerRestarts_;
            }
            const pid_t np =
                spawnWorkerProcess(opt_.workerExe, opt_.socketPath);
            if (np > 0) {
                std::lock_guard<std::mutex> lk(sm_);
                workerPids_.push_back(int(np));
            } else {
                warn("sweep server: could not respawn a worker");
            }
        }
    }
}

void
SweepServer::handleSubmit(proto::Framed &link,
                          const std::vector<std::uint8_t> &payload,
                          std::uint64_t clientId, std::uint32_t priority)
{
    const auto t0 = std::chrono::steady_clock::now();

    auto reject = [&](const std::string &why,
                      proto::ErrKind kind = proto::ErrKind::Rejected) {
        proto::ErrorMsg e;
        e.message = why;
        e.kind = kind;
        link.send(proto::MsgType::Error, e.encode());
        {
            std::lock_guard<std::mutex> lk(sm_);
            ++requestsFailed_;
        }
        if (opt_.verbose)
            std::fprintf(stderr, "sdv_sweep: rejected request: %s\n",
                         why.c_str());
    };

    proto::SweepRequest req;
    std::string err;
    if (!proto::SweepRequest::decode(payload, req, &err)) {
        reject("malformed request: " + err);
        return;
    }
    if (!havePlan(req.plan)) {
        reject("unknown plan '" + req.plan + "'");
        return;
    }
    if (req.popt.scale == 0) {
        reject("scale must be >= 1");
        return;
    }
    if (req.eopt.sample.enabled() && req.eopt.verify) {
        // The in-process executor asserts on this combination; a
        // daemon rejects it instead of dying.
        reject("interval sampling produces estimates that cannot be "
               "functionally verified; drop --verify");
        return;
    }

    // Per-request deadline: every unit carries it (enforced at
    // dispatch and via the heartbeat loop) and the streaming loop
    // below stops waiting once it passes.
    const bool hasDeadline = req.deadlineMs > 0;
    const auto deadlineTp =
        t0 + std::chrono::milliseconds(req.deadlineMs);

    const ExecOptions &eopt = req.eopt;
    auto st = std::make_shared<RequestState>();
    st->plan = buildPlan(req.plan, req.popt);
    const std::size_t nJobs = st->plan.jobs.size();
    st->outcomes.resize(nJobs);
    st->sampleResults.resize(nJobs);
    st->sampleHashes.resize(nJobs);
    st->unitsLeft.assign(nJobs, 0);
    st->jobDone.assign(nJobs, 0);

    // Chaos budgets: modes are assigned to units in creation order
    // (exits first, then hangs, corrupts, truncations, delays,
    // dribbles) so a campaign is replayable without server-side
    // randomness. Retried units always run clean.
    proto::ChaosSpec chaosLeft = req.chaos;
    auto takeChaos = [&chaosLeft](std::uint32_t *param) {
        *param = 0;
        if (chaosLeft.exitUnits > 0) {
            --chaosLeft.exitUnits;
            return proto::ChaosMode::Exit;
        }
        if (chaosLeft.hangUnits > 0) {
            --chaosLeft.hangUnits;
            return proto::ChaosMode::Hang;
        }
        if (chaosLeft.corruptUnits > 0) {
            --chaosLeft.corruptUnits;
            return proto::ChaosMode::Corrupt;
        }
        if (chaosLeft.truncUnits > 0) {
            --chaosLeft.truncUnits;
            return proto::ChaosMode::Trunc;
        }
        if (chaosLeft.delayUnits > 0) {
            --chaosLeft.delayUnits;
            *param = chaosLeft.delayMs;
            return proto::ChaosMode::Delay;
        }
        if (chaosLeft.dribbleUnits > 0) {
            --chaosLeft.dribbleUnits;
            return proto::ChaosMode::Dribble;
        }
        return proto::ChaosMode::None;
    };

    auto stampScheduling = [&](const std::shared_ptr<PendingUnit> &pu) {
        pu->clientId = clientId;
        pu->priority = priority;
        pu->hasDeadline = hasDeadline;
        pu->deadline = deadlineTp;
        pu->msg.chaosMode = takeChaos(&pu->msg.chaosParam);
    };

    std::uint64_t unitsDispatched = 0;
    std::uint64_t reqHits = 0, reqMisses = 0, reqWaits = 0;

    // --- Snapshot acquisition (sampled and one-boundary checkpoint
    // modes): one single-flight cache acquire per distinct workload;
    // a miss dispatches the capture pass to the worker pool.
    const bool sampled = eopt.sample.enabled();
    if (sampled || eopt.checkpoint) {
        for (const SweepJob &job : st->plan.jobs) {
            if (st->sets.count(job.workload))
                continue;
            const std::uint64_t warmHash =
                configIdentityHash(warmConfig(st->plan, eopt,
                                              job.workload));
            const std::string key = snapshotKey(req, job.workload,
                                                warmHash,
                                                binFingerprint_);
            // Pin before acquiring: from here until the request ends,
            // eviction must never unlink this key's file under the
            // units that will read it.
            st->cachePins.push_back(cache_.pin(key));
            proto::ErrKind captureKind = proto::ErrKind::Generic;
            auto capture = [&](const std::string &path,
                               std::string *cerr) {
                auto pu = std::make_shared<PendingUnit>();
                pu->msg.id = nextUnitId_.fetch_add(1);
                pu->msg.kind = proto::UnitKind::Capture;
                pu->msg.req = req;
                pu->msg.workload = job.workload;
                pu->msg.snapshotPath = path;
                stampScheduling(pu);
                std::promise<proto::UnitResult> prom;
                auto fut = prom.get_future();
                pu->done = [&prom](proto::UnitResult &&r) {
                    prom.set_value(std::move(r));
                };
                enqueue(pu, false);
                ++unitsDispatched;
                proto::UnitResult r = fut.get();
                if (!r.ok) {
                    if (cerr)
                        *cerr = r.message;
                    captureKind = r.errKind;
                }
                return r.ok;
            };
            SnapshotCache::Outcome oc = SnapshotCache::Outcome::Hit;
            auto set = cache_.acquire(key, capture, &err, &oc);
            if (!set) {
                reject("snapshot capture failed for '" + job.workload +
                       "': " + err,
                       captureKind == proto::ErrKind::Deadline
                           ? proto::ErrKind::Deadline
                           : proto::ErrKind::Generic);
                return;
            }
            switch (oc) {
            case SnapshotCache::Outcome::Hit: ++reqHits; break;
            case SnapshotCache::Outcome::Miss: ++reqMisses; break;
            case SnapshotCache::Outcome::Wait: ++reqWaits; break;
            }
            st->sets.emplace(job.workload, std::move(set));
            st->snapshotPaths.emplace(job.workload, cache_.pathFor(key));
        }
    }

    // --- Decide each job's execution shape and seed its outcome,
    // exactly as the corresponding in-process path would (serially,
    // before any unit runs: fallbacks never depend on scheduling).
    std::map<std::pair<std::string, std::string>, bool> configOk;
    auto jobSampled = [&](const SweepJob &job) {
        const auto &set = st->sets.at(job.workload);
        if (!set->captured || !set->sampled || !set->set.usable())
            return false;
        const auto key = std::make_pair(job.workload, job.configKey);
        auto it = configOk.find(key);
        if (it == configOk.end()) {
            CoreConfig cfg = job.cfg;
            applyExecOverlay(cfg, eopt);
            // samples[0] is the cold region (no image); the first warm
            // snapshot decides whether this config can fork. Geometry
            // is checked Simulator-free (the daemon never builds
            // programs); program identity holds by construction — the
            // set was captured from this workload's own build.
            const bool ok = Checkpoint::validateImage(
                cfg, set->set.samples[1].bytes);
            if (!ok)
                warn("running ", job.workload, "/", job.configKey,
                     " as a full run (snapshot geometry mismatch)");
            it = configOk.emplace(key, ok).first;
        }
        return it->second;
    };

    for (std::size_t i = 0; i < nJobs; ++i) {
        const SweepJob &job = st->plan.jobs[i];
        stampOutcome(st->outcomes[i], job);
        if (sampled) {
            st->unitsLeft[i] =
                jobSampled(job)
                    ? unsigned(st->sets.at(job.workload)
                                   ->set.samples.size())
                    : 1;
            if (st->unitsLeft[i] > 1) {
                st->sampleResults[i].resize(st->unitsLeft[i]);
                st->sampleHashes[i].assign(st->unitsLeft[i], 0);
            }
        } else {
            // The full-run path resolves the job's machine config up
            // front (overlay + per-job fault plan) — the record
            // serializer reads fault state from it.
            CoreConfig cfg = job.cfg;
            applyExecOverlay(cfg, eopt);
            cfg.engine.fault = jobFaultPlan(eopt.fault, job);
            st->outcomes[i].cfg = cfg;
            st->unitsLeft[i] = 1;
        }
    }

    // --- Enqueue every unit in serial order, each completing into the
    // shared request state from whichever worker thread finishes it.
    auto makeUnit = [&](std::uint32_t jobIndex, std::int32_t sample) {
        auto pu = std::make_shared<PendingUnit>();
        pu->msg.id = nextUnitId_.fetch_add(1);
        pu->msg.kind = proto::UnitKind::Run;
        pu->msg.req = req;
        pu->msg.jobIndex = jobIndex;
        pu->msg.sample = sample;
        const std::string &wl = st->plan.jobs[jobIndex].workload;
        if (st->snapshotPaths.count(wl))
            pu->msg.snapshotPath = st->snapshotPaths.at(wl);
        stampScheduling(pu);
        return pu;
    };

    for (std::size_t i = 0; i < nJobs; ++i) {
        const bool jobIsSampled = sampled && st->unitsLeft[i] > 1;
        const unsigned n = st->unitsLeft[i];
        for (unsigned k = 0; k < n; ++k) {
            auto pu = makeUnit(std::uint32_t(i),
                               jobIsSampled ? std::int32_t(k) : -1);
            const bool fullRunMode = !sampled;
            pu->done = [st, i, k, jobIsSampled,
                        fullRunMode](proto::UnitResult &&r) {
                std::lock_guard<std::mutex> lk(st->m);
                RunOutcome &o = st->outcomes[i];
                ++st->waitCount;
                st->waitSum += r.queueWaitSeconds;
                st->waitMax = std::max(st->waitMax,
                                       r.queueWaitSeconds);
                if (!r.ok) {
                    st->fail(r.message, r.errKind);
                } else if (jobIsSampled) {
                    st->sampleResults[i][k] = r.res;
                    st->sampleHashes[i][k] = r.commitHash;
                    o.wallSeconds += r.wallSeconds;
                    st->busySeconds += r.wallSeconds;
                } else {
                    o.res = r.res;
                    o.commitHash = r.commitHash;
                    o.wallSeconds = r.wallSeconds;
                    st->busySeconds += r.wallSeconds;
                    if (fullRunMode) {
                        o.fromCheckpoint = r.fromCheckpoint;
                        o.timedOut = r.res.timedOut;
                    }
                    // Sampled-mode full-run fallback: fromCheckpoint
                    // and timedOut stay false, as in runPlanSampled.
                }
                if (--st->unitsLeft[i] == 0) {
                    if (jobIsSampled) {
                        // Plan-ordered aggregation: a pure integer
                        // fold, independent of worker scheduling.
                        const auto &set =
                            st->sets.at(o.workload)->set;
                        o.res = aggregateSamples(set,
                                                 st->sampleResults[i]);
                        o.commitHash =
                            foldSampleHashes(st->sampleHashes[i]);
                        o.fromCheckpoint = true;
                        o.samples = unsigned(set.samples.size());
                    }
                    st->jobDone[i] = 1;
                }
                st->cv.notify_all();
            };
            enqueue(pu, false);
            ++unitsDispatched;
        }
    }

    // --- Stream the plan-ordered record prefix as it completes.
    const auto collate0 = std::chrono::steady_clock::now();
    bool clientGone = false;
    for (std::size_t i = 0; i < nJobs; ++i) {
        std::string json;
        {
            std::unique_lock<std::mutex> lk(st->m);
            auto ready = [&] { return st->jobDone[i] || st->failed; };
            if (hasDeadline) {
                if (!st->cv.wait_until(lk, deadlineTp, ready))
                    st->fail("request deadline (" +
                                 std::to_string(req.deadlineMs) +
                                 " ms) expired",
                             proto::ErrKind::Deadline);
            } else {
                st->cv.wait(lk, ready);
            }
            if (st->failed) {
                const std::string why = st->failMsg;
                const proto::ErrKind kind = st->failKind;
                lk.unlock();
                reject("request failed: " + why,
                       kind == proto::ErrKind::Deadline
                           ? proto::ErrKind::Deadline
                           : proto::ErrKind::Generic);
                return;
            }
            json = resultRecordJson(st->outcomes[i]);
        }
        proto::ResultRecord rec;
        rec.index = std::uint32_t(i);
        rec.json = std::move(json);
        if (!link.send(proto::MsgType::ResultRecord, rec.encode())) {
            // Client went away; late continuations hold st alive, so
            // just stop streaming.
            clientGone = true;
            break;
        }
    }
    if (clientGone) {
        std::lock_guard<std::mutex> lk(sm_);
        ++requestsFailed_;
        return;
    }

    // --- Request metrics (host-side rider; the deterministic payload
    // is the record stream above).
    ExecMetrics m;
    m.enabled = true;
    m.serve = true;
    m.workers = numWorkers_;
    m.jobsAuto = opt_.workers == 0;
    m.poolWallSeconds = secondsSince(t0);
    m.requestSeconds = m.poolWallSeconds;
    m.collateSeconds = secondsSince(collate0);
    m.cacheHits = reqHits;
    m.cacheMisses = reqMisses;
    m.cacheWaits = reqWaits;
    m.checkpointCaptures = reqMisses;
    m.unitsDispatched = unitsDispatched;
    {
        std::lock_guard<std::mutex> lk(st->m);
        m.busySeconds = st->busySeconds;
        m.jobs.resize(nJobs);
        for (std::size_t i = 0; i < nJobs; ++i) {
            ExecMetrics::JobMetrics &jm = m.jobs[i];
            jm.workload = st->plan.jobs[i].workload;
            jm.configKey = st->plan.jobs[i].configKey;
            jm.queueWaitSeconds = -1.0; // units, not jobs, queue here
            jm.runSeconds = st->outcomes[i].wallSeconds;
        }
        for (std::size_t i = 0; i < nJobs; ++i) {
            const RunOutcome &o = st->outcomes[i];
            if (!o.fromCheckpoint)
                continue;
            const auto &set = st->sets.at(o.workload)->set;
            if (o.samples > 0) {
                for (const SampleCheckpoint &sc : set.samples) {
                    if (sc.bytes.empty())
                        continue;
                    ++m.checkpointRestores;
                    m.checkpointRestoreBytes += sc.bytes.size();
                }
            } else if (!set.samples.empty()) {
                ++m.checkpointRestores;
                m.checkpointRestoreBytes +=
                    set.samples[0].bytes.size();
            }
        }
    }
    {
        std::lock_guard<std::mutex> lk(st->m);
        if (st->waitCount > 0)
            m.queueWaitAvgSeconds =
                st->waitSum / double(st->waitCount);
        m.queueWaitMaxSeconds = st->waitMax;
    }
    {
        std::lock_guard<std::mutex> lk(sm_);
        m.unitRetries = unitRetries_;
        m.workerRestarts = workerRestarts_;
        m.hangKills = hangKills_;
        m.deadlineFailures = deadlineFailures_;
        ++requestsServed_;
        for (const auto &kv : workers_) {
            ExecMetrics::WorkerLoad wl;
            wl.pid = kv.first;
            wl.units = kv.second.units;
            wl.busySeconds = kv.second.busySeconds;
            m.workerLoads.push_back(wl);
        }
        for (const auto &kv : clientStats_) {
            ExecMetrics::ClientWait cw;
            cw.clientId = kv.first;
            cw.priority = kv.second.priority;
            cw.units = kv.second.units;
            cw.waitAvgSeconds =
                kv.second.units
                    ? kv.second.waitSum / double(kv.second.units)
                    : 0.0;
            cw.waitMaxSeconds = kv.second.waitMax;
            m.clientWaits.push_back(cw);
        }
    }
    {
        const SnapshotCache::Stats cs = cache_.stats();
        m.cacheEvictions = cs.evictions;
        m.cacheGcRemoved = cs.gcRemoved;
        m.cacheDiskBytes = cs.diskBytes;
    }
    {
        std::lock_guard<std::mutex> lk(qm_);
        m.queueDepthPeak = queueDepthPeak_;
    }

    proto::RequestDone done;
    done.records = std::uint32_t(nJobs);
    done.cacheHits = reqHits;
    done.cacheMisses = reqMisses;
    done.metricsJson = m.toJson();
    link.send(proto::MsgType::RequestDone, done.encode());
    if (opt_.verbose)
        std::fprintf(stderr,
                     "sdv_sweep: served %s (%zu records, %.2fs, "
                     "cache %llu hit / %llu miss)\n",
                     req.plan.c_str(), nJobs, m.requestSeconds,
                     static_cast<unsigned long long>(reqHits),
                     static_cast<unsigned long long>(reqMisses));
}

void
SweepServer::clientLoop(const std::shared_ptr<proto::Framed> &link,
                        std::uint64_t clientId, std::uint32_t priority)
{
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    while (!stop_.load() && link->recv(t, payload)) {
        if (t == proto::MsgType::Shutdown) {
            if (opt_.verbose)
                std::fprintf(stderr,
                             "sdv_sweep: shutdown requested\n");
            stop();
            break;
        }
        if (t == proto::MsgType::Submit) {
            handleSubmit(*link, payload, clientId, priority);
            continue;
        }
        if (t == proto::MsgType::StatsQuery) {
            link->send(proto::MsgType::StatsReply,
                       snapshotStats().encode());
            continue;
        }
        proto::ErrorMsg e;
        e.message = "unexpected frame type";
        e.kind = proto::ErrKind::Protocol;
        link->send(proto::MsgType::Error, e.encode());
        break;
    }
}

void
SweepServer::handleConnection(int fd)
{
    auto link = std::make_shared<proto::Framed>(fd);
    {
        std::lock_guard<std::mutex> lk(sm_);
        conns_.push_back(link);
    }
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    if (!link->recv(t, payload))
        return;

    proto::Hello hello;
    if (t == proto::MsgType::HelloWorker) {
        if (proto::Hello::decode(payload, hello) &&
            hello.version == proto::kVersion)
            workerLoop(link, hello.pid);
        return;
    }
    if (t == proto::MsgType::HelloClient) {
        if (!proto::Hello::decode(payload, hello) ||
            hello.version != proto::kVersion) {
            proto::ErrorMsg e;
            e.message = "protocol version mismatch (server speaks v" +
                        std::to_string(proto::kVersion) + ")";
            e.kind = proto::ErrKind::Protocol;
            link->send(proto::MsgType::Error, e.encode());
            return;
        }
        const std::uint64_t clientId = nextClientId_.fetch_add(1);
        clientLoop(link, clientId, hello.priority);
        return;
    }
    proto::ErrorMsg e;
    e.message = "expected a hello frame";
    e.kind = proto::ErrKind::Protocol;
    link->send(proto::MsgType::Error, e.encode());
}

void
SweepServer::acceptLoop(int listenFd)
{
    while (!stop_.load()) {
        struct pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("sweep server: poll failed; shutting down");
            stop();
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lk(sm_);
        threads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
SweepServer::run()
{
    acceptLoop(listenFd_);

    // Wind-down: no new connections (accept loop done); unblock every
    // handler, fail whatever work is still queued, reap the pool.
    stop_.store(true);
    qcv_.notify_all();
    {
        std::lock_guard<std::mutex> lk(sm_);
        for (auto &w : conns_)
            if (auto c = w.lock())
                ::shutdown(c->fd(), SHUT_RDWR);
    }
    for (;;) {
        std::vector<std::thread> batch;
        {
            std::lock_guard<std::mutex> lk(sm_);
            batch.swap(threads_);
        }
        if (batch.empty())
            break;
        for (std::thread &t : batch)
            t.join();
    }
    failPendingUnits("server shutting down");
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opt_.socketPath.c_str());
    std::vector<int> pids;
    {
        std::lock_guard<std::mutex> lk(sm_);
        pids = workerPids_;
    }
    for (int pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0); // ECHILD for already-reaped: fine
    }
}

} // namespace sweep
} // namespace sdv
