/**
 * @file
 * Speculation fuzzing with a divergence oracle (--fuzz-speculation).
 *
 * A fuzz campaign runs every workload through N fuzzed samples. Each
 * sample is drawn from the deterministic common/random.hh stream
 * (deriveSeed of the workload name, the sample index and the base
 * seed — never host entropy) and perturbs everything the SDV engine
 * speculates about:
 *
 *  - chain alignment: a randomized --quiesce-interval kills transient
 *    vector state at arbitrary points mid-chain, and eager chaining
 *    shifts the spawn phase of every successor incarnation;
 *  - stride phases: randomized vlen / vector-register count /
 *    TL confidence move where each chain's incarnations fall relative
 *    to cache lines and to each other;
 *  - workload inputs: a fuzz seed is XORed into the kernels' data RNGs
 *    so every sample executes the same code over different data
 *    (different secret-dependent trip counts, probe sequences, FP
 *    fills);
 *  - optionally, speculative-state fault injection (sim/
 *    fault_injection.hh) runs *under* the fuzzer, stressing the
 *    detection machinery at the same time.
 *
 * Every sample then faces a divergence oracle: the identical program is
 * run on the same machine with the SDV engine disabled, and the sample
 * hard-fails when either run fails functional verification, when the
 * committed-PC streams differ (hash or instruction count), or when any
 * injected fault escaped detection. The first divergence is minimized
 * (knobs reset one at a time while the failure reproduces) and dumped
 * as a replayable JSON file consumed by --fuzz-replay.
 */

#ifndef SDV_SWEEP_FUZZ_HH
#define SDV_SWEEP_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

/** One fuzzed sample: a workload instantiation plus every perturbed
 *  machine knob. A FuzzCase is self-contained and replayable — the
 *  repro file is exactly a serialized FuzzCase. */
struct FuzzCase
{
    std::string workload;
    unsigned scale = 1;
    Footprint footprint = Footprint::Base;
    unsigned sample = 0;       ///< sample index within the campaign
    std::uint64_t baseSeed = 0; ///< campaign base seed (bookkeeping)

    // Drawn perturbations.
    std::uint64_t fuzzSeed = 0;        ///< workload input perturbation
    std::uint64_t quiesceInterval = 0; ///< 0 = no mid-run quiesce
    bool eagerChain = false;
    unsigned vlen = 4;
    unsigned numVregs = 128;
    unsigned ports = 1;
    std::uint8_t tlConfidence = 2;
    FaultPlan fault; ///< optional concurrent fault injection
};

/** Outcome of one fuzzed sample against its oracle. */
struct FuzzOutcome
{
    FuzzCase c;
    bool diverged = false;
    std::string reason; ///< empty when the sample passed

    std::uint64_t sdvHash = 0;
    std::uint64_t refHash = 0;
    std::uint64_t sdvInsts = 0;
    std::uint64_t refInsts = 0;

    // Fault-injection accounting (zero when the case injects none).
    std::uint64_t elemFlips = 0;
    std::uint64_t vrmtFlips = 0;
    std::uint64_t tlFlips = 0;    ///< TL stride-table metadata flips
    std::uint64_t gmrbbFlips = 0; ///< shadow-GMRBB label flips
    std::uint64_t faultsDetected = 0; ///< validation + VRMT detects
    std::uint64_t chainDemotions = 0;
};

/** Campaign options. */
struct FuzzOptions
{
    unsigned samples = 8;       ///< fuzzed samples per workload
    std::uint64_t baseSeed = 0; ///< --seed
    unsigned jobs = 1;          ///< worker threads
    unsigned scale = 1;
    Footprint footprint = Footprint::Base;
    bool quick = false;    ///< first two INT + first FP workloads only
    bool eventSkip = true;
    bool withFaults = true; ///< arm fault injection on half the samples
    std::uint64_t maxCycles = 200'000'000;
    /** Where a minimized divergence repro is written. */
    std::string reproPath = "fuzz_repro.json";
};

/** Campaign result: per-sample outcomes in deterministic order
 *  (workload-major, sample index within). */
struct FuzzReport
{
    std::vector<FuzzOutcome> outcomes;
    unsigned divergences = 0;
    std::uint64_t totalElemFlips = 0;
    std::uint64_t totalVrmtFlips = 0;
    std::uint64_t totalTlFlips = 0;
    std::uint64_t totalGmrbbFlips = 0;
    std::uint64_t totalFaultsDetected = 0;
    std::string reproPath; ///< non-empty when a repro file was written
};

/**
 * Draw sample @p sample of @p workload: a pure function of
 * (workload, sample, base seed) via deriveSeed, independent of worker
 * scheduling and of every other sample.
 * @param with_faults allow the draw to arm fault injection (it does on
 *        every second sample)
 */
FuzzCase drawFuzzCase(const std::string &workload, unsigned scale,
                      Footprint fp, unsigned sample,
                      std::uint64_t base_seed, bool with_faults);

/**
 * Run one fuzzed sample and its divergence oracle. Both runs execute
 * with functional verification on; the outcome reports the first
 * failed check as its reason.
 */
FuzzOutcome runFuzzCase(const FuzzCase &c, bool event_skip,
                        std::uint64_t max_cycles);

/**
 * Run the full campaign (every registered workload, honouring quick,
 * times @p opt.samples) on a worker pool. On divergence the first
 * failing case (in deterministic order) is minimized and written to
 * opt.reproPath.
 */
FuzzReport runFuzzCampaign(const FuzzOptions &opt);

/** Serialize @p c (plus @p reason) as a replayable JSON repro file. */
bool writeFuzzRepro(const std::string &path, const FuzzCase &c,
                    const std::string &reason);

/** Parse a repro file written by writeFuzzRepro. @return false (with
 *  @p err set) on malformed input; unknown keys are ignored. */
bool loadFuzzRepro(const std::string &path, FuzzCase &c,
                   std::string *err);

/** The minimizer's reproduction check: does this candidate still
 *  fail? Exposed so minimization is testable against synthetic
 *  predicates without running the simulator. */
using FuzzPredicate = std::function<bool(const FuzzCase &)>;

/**
 * Greedy one-pass minimization: try resetting each perturbed knob to
 * its default (faults off, no quiesce, default geometry, seed inputs)
 * and keep every reset under which @p diverges still holds. @return
 * the simplified case (equal to @p c when nothing could be removed).
 * Runs the predicate at most once per knob.
 */
FuzzCase minimizeFuzzCaseGreedy(const FuzzCase &c,
                                const FuzzPredicate &diverges);

/**
 * Delta-debugging minimization: the greedy pass, then every *pair* of
 * knob resets applied together, re-greedying after each accepted pair
 * until a fixpoint. Escapes the coupled-knob traps greedy cannot (a
 * divergence that needs knob A XOR knob B reset survives a pair reset
 * but defeats every single reset). The result is never larger than
 * the greedy result.
 */
FuzzCase minimizeFuzzCase(const FuzzCase &c,
                          const FuzzPredicate &diverges);

/** minimizeFuzzCase against the real divergence oracle (the campaign
 *  entry point: predicate = runFuzzCase(...).diverged). */
FuzzCase minimizeFuzzCase(const FuzzCase &c, bool event_skip,
                          std::uint64_t max_cycles);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_FUZZ_HH
