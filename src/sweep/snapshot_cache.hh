/**
 * @file
 * Process-shared snapshot cache for the sweep work-server: capture-pass
 * results (one-boundary checkpoints and interval-sample sets) keyed by
 * everything that shapes the capture — workload, scale, footprint,
 * warm-up length, sampling parameters, the canonical warm-config hash
 * (sim/config.hh: configIdentityHash) and a fingerprint of the worker
 * binary — persisted as one container file per key under the cache
 * directory, published atomically (Checkpoint::save's temp + rename)
 * and integrity-checked on load (FNV-1a trailer).
 *
 * Concurrent clients requesting the same grid share one warmup via
 * single-flight deduplication: the first acquire() of a key runs the
 * capture callback; every concurrent acquire() of the same key blocks
 * on that one capture instead of racing N redundant passes. Negative
 * results (a workload with no usable boundary) are cached too, so
 * hopeless captures are not retried per request.
 */

#ifndef SDV_SWEEP_SNAPSHOT_CACHE_HH
#define SDV_SWEEP_SNAPSHOT_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sweep/checkpoint.hh"
#include "sweep/proto.hh"
#include "sweep/sampling.hh"

namespace sdv {
namespace sweep {

/** One cached capture-pass result. For a sampled request the embedded
 *  SampleSet is exactly what captureSamples() returned; for the
 *  one-boundary checkpoint mode it is degenerate — samples[0].bytes
 *  holds the single warm image (empty when the warm-up found no
 *  boundary, i.e. captured == false). */
struct SnapshotSet
{
    std::uint64_t programHash = 0; ///< identity of the captured program
    bool sampled = false;          ///< sample set vs one-boundary image
    bool captured = false;         ///< false: negative result (cached)
    SampleSet set;
};

/** Serialize + atomically publish @p s at @p path. */
bool saveSnapshotSet(const std::string &path, const SnapshotSet &s);

/** Load @p path (Missing / Corrupt exactly as Checkpoint::load). */
Checkpoint::LoadStatus loadSnapshotSet(const std::string &path,
                                       SnapshotSet &out);

/**
 * @return the cache key for @p req's workload @p workload: every
 * capture-shaping parameter plus the warm-config identity hash and
 * the server's binary fingerprint (a snapshot captured by a different
 * build of the simulator must never be trusted — deterministic ≠
 * version-stable).
 */
std::string snapshotKey(const proto::SweepRequest &req,
                        const std::string &workload,
                        std::uint64_t warmCfgHash,
                        std::uint64_t binFingerprint);

/** The single-flight, memory + disk snapshot cache (server-side).
 *  Optionally disk-bounded: with a nonzero byte limit, publishing a
 *  new snapshot evicts least-recently-used unpinned entries (and
 *  their files) until the directory fits the budget again. Requests
 *  pin() the keys they are executing against so a running request's
 *  snapshot file can never be unlinked under its workers. */
class SnapshotCache
{
  public:
    explicit SnapshotCache(std::string dir,
                           std::uint64_t limit_bytes = 0);

    struct Stats
    {
        std::uint64_t hits = 0;   ///< served from memory or disk
        std::uint64_t misses = 0; ///< captures actually run
        std::uint64_t waits = 0;  ///< blocked on another's capture
        std::uint64_t evictions = 0; ///< entries evicted for the budget
        std::uint64_t gcRemoved = 0; ///< stale entries GCed at startup
        std::uint64_t diskBytes = 0; ///< tracked bytes on disk now
    };

    /** How one acquire() call was satisfied (per-request metrics). */
    enum class Outcome
    {
        Hit,  ///< served from memory or disk
        Miss, ///< this call ran the capture
        Wait, ///< blocked on another caller's in-flight capture
    };

    /**
     * Get the snapshot set for @p key, running @p capture (which must
     * produce the file at the given path, e.g. by dispatching a
     * capture unit to a worker) at most once per key across all
     * concurrent callers.
     *
     * @retval nullptr (and sets @p err) when the capture failed; the
     * failure is not cached — a later acquire retries.
     */
    std::shared_ptr<const SnapshotSet>
    acquire(const std::string &key,
            const std::function<bool(const std::string &path,
                                     std::string *err)> &capture,
            std::string *err, Outcome *outcome = nullptr);

    /** @return the container-file path for @p key. */
    std::string pathFor(const std::string &key) const;

    /**
     * Startup GC: scan the cache directory and unlink every snapshot
     * container whose embedded binary fingerprint (the `.b<hex16>`
     * key component) does not match @p bin_fingerprint — entries left
     * behind by a previous build are stale-but-present and must never
     * be served. Surviving files seed the LRU index (ordered by
     * on-disk atime). @return the number of files removed.
     */
    unsigned gcStale(std::uint64_t bin_fingerprint);

    /**
     * Pin @p key against eviction for the lifetime of the returned
     * guard (requests hold one per snapshot they dispatch units
     * against). Releasing the last pin re-runs eviction, so a
     * temporarily over-budget directory shrinks as soon as it can.
     */
    std::shared_ptr<void> pin(const std::string &key);

    /** @return tracked cache-directory payload bytes. */
    std::uint64_t diskBytes() const;

    Stats stats() const;

  private:
    struct Entry
    {
        bool ready = false;  ///< set is valid (capture done or loaded)
        bool failed = false; ///< capture failed; waiters get the error
        std::string error;
        std::shared_ptr<const SnapshotSet> set;
    };

    /** One on-disk container file tracked for the byte budget. */
    struct FileInfo
    {
        std::uint64_t size = 0;
        std::uint64_t lastUse = 0; ///< LRU clock (seeded from atime)
    };

    void noteFileLocked(const std::string &key);
    void touchLocked(const std::string &key);
    void evictToLimitLocked(const std::string &protect);

    const std::string dir_;
    const std::uint64_t limit_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::map<std::string, std::shared_ptr<Entry>> entries_;
    std::map<std::string, FileInfo> files_;
    std::map<std::string, unsigned> pins_;
    std::uint64_t useClock_ = 0;
    std::uint64_t diskBytes_ = 0;
    Stats stats_;
};

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_SNAPSHOT_CACHE_HH
