#include "sweep/fuzz.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "common/log.hh"
#include "common/random.hh"
#include "sim/simulator.hh"

namespace sdv {
namespace sweep {

FuzzCase
drawFuzzCase(const std::string &workload, unsigned scale, Footprint fp,
             unsigned sample, std::uint64_t base_seed, bool with_faults)
{
    FuzzCase c;
    c.workload = workload;
    c.scale = scale;
    c.footprint = fp;
    c.sample = sample;
    c.baseSeed = base_seed;

    // One private stream per (workload, sample): adding a draw for a
    // new knob never perturbs any other sample's case.
    Random rng(deriveSeed(workload, "fuzz:" + std::to_string(sample),
                          base_seed));

    c.fuzzSeed = rng.next();

    // Chain alignment: a mid-run quiesce at a prime-ish cadence kills
    // chains at arbitrary incarnation phases. A third of the samples
    // keep chains uninterrupted (the alignment the figures measure).
    c.quiesceInterval =
        rng.below(3) == 0 ? 0 : std::uint64_t(rng.range(97, 4099));

    c.eagerChain = rng.below(2) == 0;

    static const unsigned vlens[] = {2, 4, 8};
    c.vlen = vlens[rng.below(3)];
    static const unsigned vregs[] = {8, 16, 32, 64, 128};
    c.numVregs = vregs[rng.below(5)];
    static const unsigned ports[] = {1, 2, 4};
    c.ports = ports[rng.below(3)];
    c.tlConfidence = std::uint8_t(rng.range(1, 3));

    // Every second sample additionally runs under fault injection, so
    // the detection machinery is stressed at fuzzed geometry too. The
    // draws happen unconditionally to keep the stream layout fixed.
    const bool arm = rng.below(2) == 1;
    const std::uint64_t fault_seed = rng.next();
    const std::uint32_t elem_ppm = 200 + std::uint32_t(rng.below(1800));
    const std::uint32_t vrmt_ppm = 100 + std::uint32_t(rng.below(900));
    if (with_faults && arm) {
        c.fault.enabled = true;
        c.fault.seed = fault_seed;
        c.fault.elemFlipPpm = elem_ppm;
        c.fault.vrmtFlipPpm = vrmt_ppm;
    }

    // Speculative-metadata faults (TL stride table, shadow GMRBB) on
    // half of the armed samples. Drawn unconditionally and *appended*
    // after every pre-existing draw: earlier campaigns replay
    // bit-identically from the same seeds.
    const std::uint32_t tl_ppm = 100 + std::uint32_t(rng.below(900));
    const std::uint32_t gmrbb_ppm = 50 + std::uint32_t(rng.below(450));
    const bool arm_meta = rng.below(2) == 1;
    if (with_faults && arm && arm_meta) {
        c.fault.tlFlipPpm = tl_ppm;
        c.fault.gmrbbFlipPpm = gmrbb_ppm;
    }
    return c;
}

namespace {

/** The fuzzed machine: the paper's 4-way wide-bus SDV core with the
 *  case's drawn geometry. */
CoreConfig
fuzzedConfig(const FuzzCase &c, bool event_skip)
{
    CoreConfig cfg = makeConfig(4, c.ports, BusMode::WideBusSdv);
    cfg.eventSkip = event_skip;
    cfg.engine.vlen = c.vlen;
    cfg.engine.numVregs = c.numVregs;
    cfg.engine.tlConfidence = c.tlConfidence;
    cfg.engine.eagerChainLoads = c.eagerChain;
    cfg.engine.fault = c.fault;
    return cfg;
}

/** The divergence oracle: the same machine with no SDV engine (and
 *  therefore nothing speculative to corrupt or misalign). */
CoreConfig
oracleConfig(const FuzzCase &c, bool event_skip)
{
    CoreConfig cfg = makeConfig(4, c.ports, BusMode::WideBus);
    cfg.eventSkip = event_skip;
    return cfg;
}

bool
sameCase(const FuzzCase &a, const FuzzCase &b)
{
    return a.fuzzSeed == b.fuzzSeed &&
           a.quiesceInterval == b.quiesceInterval &&
           a.eagerChain == b.eagerChain && a.vlen == b.vlen &&
           a.numVregs == b.numVregs && a.ports == b.ports &&
           a.tlConfidence == b.tlConfidence &&
           a.fault.enabled == b.fault.enabled &&
           a.fault.seed == b.fault.seed &&
           a.fault.elemFlipPpm == b.fault.elemFlipPpm &&
           a.fault.vrmtFlipPpm == b.fault.vrmtFlipPpm &&
           a.fault.tlFlipPpm == b.fault.tlFlipPpm &&
           a.fault.gmrbbFlipPpm == b.fault.gmrbbFlipPpm;
}

} // namespace

FuzzOutcome
runFuzzCase(const FuzzCase &c, bool event_skip,
            std::uint64_t max_cycles)
{
    FuzzOutcome out;
    out.c = c;

    Program prog =
        buildWorkload(c.workload, c.scale, c.footprint, c.fuzzSeed);
    prog.predecodeAll();

    Simulator sdv(fuzzedConfig(c, event_skip), prog);
    const SimResult sres =
        sdv.run(max_cycles, /*verify=*/true, c.quiesceInterval);
    out.sdvHash = sdv.core().commitPcHash();
    out.sdvInsts = sres.insts;

    Simulator ref(oracleConfig(c, event_skip), prog);
    const SimResult rres = ref.run(max_cycles, /*verify=*/true, 0);
    out.refHash = ref.core().commitPcHash();
    out.refInsts = rres.insts;

    out.elemFlips = sres.engine.faultElemFlips;
    out.vrmtFlips = sres.engine.faultVrmtFlips;
    out.tlFlips = sres.engine.faultTlFlips;
    out.gmrbbFlips = sres.engine.faultGmrbbFlips;
    out.faultsDetected = sres.engine.faultValidationDetects +
                         sres.engine.faultTaintDetects +
                         sres.engine.faultVrmtDetects;
    out.chainDemotions = sres.engine.faultChainDemotions;

    // Record the *first* failed check: later checks compare values a
    // failed earlier check already invalidates.
    const auto fail = [&out](const char *why) {
        if (!out.diverged)
            out.reason = why;
        out.diverged = true;
    };
    if (!sres.finished)
        fail("sdv run hit the cycle budget");
    if (!sres.verified)
        fail("sdv run failed architectural verification");
    if (!rres.finished)
        fail("oracle run hit the cycle budget");
    if (!rres.verified)
        fail("oracle run failed architectural verification");
    if (!out.diverged && out.sdvInsts != out.refInsts)
        fail("committed instruction counts differ");
    if (!out.diverged && out.sdvHash != out.refHash)
        fail("committed-PC streams differ");

    // Injected-fault escape check: every injected element fault must
    // be accounted for — detected by its validation, examined benign
    // (the flip never changed the compared word), or released
    // unconsumed. Anything else would mean a corrupted element was
    // silently absorbed (e.g. counted as a genuine value mismatch).
    if (c.fault.armed()) {
        const std::uint64_t accounted =
            sres.engine.faultValidationDetects +
            sres.engine.faultValidationBenign +
            sres.fates.faultInjectedVanished;
        if (sres.engine.faultElemFlips != accounted)
            fail("injected element faults escaped accounting");
    }
    return out;
}

namespace {

/** The knob resets minimization explores, most-complex first, so the
 *  surviving repro names the smallest set of perturbations that still
 *  fails. */
const std::function<void(FuzzCase &)> kKnobResets[] = {
    [](FuzzCase &t) { t.fault = FaultPlan{}; },
    [](FuzzCase &t) { t.fault.tlFlipPpm = 0; },
    [](FuzzCase &t) { t.fault.gmrbbFlipPpm = 0; },
    [](FuzzCase &t) { t.quiesceInterval = 0; },
    [](FuzzCase &t) { t.eagerChain = false; },
    [](FuzzCase &t) { t.vlen = 4; },
    [](FuzzCase &t) { t.numVregs = 128; },
    [](FuzzCase &t) { t.ports = 1; },
    [](FuzzCase &t) { t.tlConfidence = 2; },
    [](FuzzCase &t) { t.fuzzSeed = 0; },
};
constexpr std::size_t kNumKnobResets =
    sizeof(kKnobResets) / sizeof(kKnobResets[0]);

} // namespace

FuzzCase
minimizeFuzzCaseGreedy(const FuzzCase &c, const FuzzPredicate &diverges)
{
    FuzzCase best = c;
    for (const auto &reset : kKnobResets) {
        FuzzCase trial = best;
        reset(trial);
        if (sameCase(trial, best))
            continue; // knob already at its default
        if (diverges(trial))
            best = trial;
    }
    return best;
}

FuzzCase
minimizeFuzzCase(const FuzzCase &c, const FuzzPredicate &diverges)
{
    // Delta-debug over reset *pairs*: a divergence coupled across two
    // knobs (still fails only when both or neither are reset) defeats
    // every single reset but falls to the joint one. Each accepted
    // trial moves at least one more knob to its default, so the loop
    // reaches a fixpoint in at most kNumKnobResets rounds.
    FuzzCase best = minimizeFuzzCaseGreedy(c, diverges);
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t i = 0; i + 1 < kNumKnobResets && !progress;
             ++i) {
            for (std::size_t j = i + 1; j < kNumKnobResets; ++j) {
                FuzzCase trial = best;
                kKnobResets[i](trial);
                kKnobResets[j](trial);
                if (sameCase(trial, best))
                    continue; // both knobs already default
                if (diverges(trial)) {
                    best = minimizeFuzzCaseGreedy(trial, diverges);
                    progress = true;
                    break;
                }
            }
        }
    }
    return best;
}

FuzzCase
minimizeFuzzCase(const FuzzCase &c, bool event_skip,
                 std::uint64_t max_cycles)
{
    return minimizeFuzzCase(c, [&](const FuzzCase &t) {
        return runFuzzCase(t, event_skip, max_cycles).diverged;
    });
}

FuzzReport
runFuzzCampaign(const FuzzOptions &opt)
{
    std::vector<FuzzCase> cases;
    unsigned ints_done = 0, fps_done = 0;
    for (const Workload &w : allWorkloads()) {
        if (opt.quick) {
            if (!w.isFp && ints_done >= 2)
                continue;
            if (w.isFp && fps_done >= 1)
                continue;
        }
        (w.isFp ? fps_done : ints_done) += 1;
        for (unsigned k = 0; k < opt.samples; ++k)
            cases.push_back(drawFuzzCase(w.name, opt.scale,
                                         opt.footprint, k,
                                         opt.baseSeed,
                                         opt.withFaults));
    }

    FuzzReport rep;
    rep.outcomes.resize(cases.size());
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < cases.size();
             i = next.fetch_add(1))
            rep.outcomes[i] =
                runFuzzCase(cases[i], opt.eventSkip, opt.maxCycles);
    };
    const unsigned nthreads = unsigned(std::min<std::size_t>(
        std::max(1u, opt.jobs), cases.size()));
    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    const FuzzOutcome *first_failure = nullptr;
    for (const FuzzOutcome &o : rep.outcomes) {
        rep.totalElemFlips += o.elemFlips;
        rep.totalVrmtFlips += o.vrmtFlips;
        rep.totalTlFlips += o.tlFlips;
        rep.totalGmrbbFlips += o.gmrbbFlips;
        rep.totalFaultsDetected += o.faultsDetected;
        if (o.diverged) {
            ++rep.divergences;
            if (!first_failure)
                first_failure = &o;
            warn("fuzz divergence: ", o.c.workload, " sample ",
                 o.c.sample, ": ", o.reason);
        }
    }

    if (first_failure && !opt.reproPath.empty()) {
        const FuzzCase minimized = minimizeFuzzCase(
            first_failure->c, opt.eventSkip, opt.maxCycles);
        if (writeFuzzRepro(opt.reproPath, minimized,
                           first_failure->reason))
            rep.reproPath = opt.reproPath;
        else
            warn("cannot write fuzz repro ", opt.reproPath);
    }
    return rep;
}

bool
writeFuzzRepro(const std::string &path, const FuzzCase &c,
               const std::string &reason)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(
        f,
        "{\n"
        "  \"fuzz_repro\": 1,\n"
        "  \"reason\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"scale\": %u,\n"
        "  \"footprint\": \"%s\",\n"
        "  \"sample\": %u,\n"
        "  \"base_seed\": %llu,\n"
        "  \"fuzz_seed\": %llu,\n"
        "  \"quiesce_interval\": %llu,\n"
        "  \"eager_chain\": %s,\n"
        "  \"vlen\": %u,\n"
        "  \"num_vregs\": %u,\n"
        "  \"ports\": %u,\n"
        "  \"tl_confidence\": %u,\n"
        "  \"fault_enabled\": %s,\n"
        "  \"fault_seed\": %llu,\n"
        "  \"elem_flip_ppm\": %u,\n"
        "  \"vrmt_flip_ppm\": %u,\n"
        "  \"image_flip_ppm\": %u,\n"
        "  \"tl_flip_ppm\": %u,\n"
        "  \"gmrbb_flip_ppm\": %u,\n"
        "  \"demote_threshold\": %u,\n"
        "  \"reenable_window\": %llu\n"
        "}\n",
        reason.c_str(), c.workload.c_str(), c.scale,
        footprintName(c.footprint), c.sample,
        static_cast<unsigned long long>(c.baseSeed),
        static_cast<unsigned long long>(c.fuzzSeed),
        static_cast<unsigned long long>(c.quiesceInterval),
        c.eagerChain ? "true" : "false", c.vlen, c.numVregs, c.ports,
        unsigned(c.tlConfidence), c.fault.enabled ? "true" : "false",
        static_cast<unsigned long long>(c.fault.seed),
        c.fault.elemFlipPpm, c.fault.vrmtFlipPpm, c.fault.imageFlipPpm,
        c.fault.tlFlipPpm, c.fault.gmrbbFlipPpm,
        c.fault.demoteThreshold,
        static_cast<unsigned long long>(c.fault.reenableWindow));
    std::fclose(f);
    return true;
}

namespace {

/** Extract the raw value token after `"key":` (quoted string contents
 *  or the bare number/bool). @return false when the key is absent. */
bool
jsonField(const std::string &text, const std::string &key,
          std::string &val)
{
    const std::string pat = "\"" + key + "\"";
    std::size_t p = text.find(pat);
    if (p == std::string::npos)
        return false;
    p = text.find(':', p + pat.size());
    if (p == std::string::npos)
        return false;
    ++p;
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
    if (p >= text.size())
        return false;
    if (text[p] == '"') {
        const std::size_t e = text.find('"', p + 1);
        if (e == std::string::npos)
            return false;
        val = text.substr(p + 1, e - p - 1);
        return true;
    }
    std::size_t e = p;
    while (e < text.size() && text[e] != ',' && text[e] != '}' &&
           text[e] != '\n')
        ++e;
    while (e > p &&
           std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    val = text.substr(p, e - p);
    return !val.empty();
}

std::uint64_t
parseU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 0);
}

} // namespace

bool
loadFuzzRepro(const std::string &path, FuzzCase &c, std::string *err)
{
    const auto failed = [err](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return failed("cannot open " + path);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::string v;
    if (!jsonField(text, "fuzz_repro", v))
        return failed(path + " is not a fuzz repro file "
                             "(no \"fuzz_repro\" marker)");
    if (!jsonField(text, "workload", v) || !findWorkload(v))
        return failed(path + ": missing or unknown \"workload\"");
    c.workload = v;

    if (jsonField(text, "scale", v))
        c.scale = unsigned(parseU64(v));
    if (c.scale == 0)
        return failed(path + ": invalid scale 0");
    if (jsonField(text, "footprint", v)) {
        if (v == "base")
            c.footprint = Footprint::Base;
        else if (v == "l2")
            c.footprint = Footprint::L2;
        else if (v == "mem")
            c.footprint = Footprint::Mem;
        else
            return failed(path + ": unknown footprint '" + v + "'");
    }
    if (jsonField(text, "sample", v))
        c.sample = unsigned(parseU64(v));
    if (jsonField(text, "base_seed", v))
        c.baseSeed = parseU64(v);
    if (jsonField(text, "fuzz_seed", v))
        c.fuzzSeed = parseU64(v);
    if (jsonField(text, "quiesce_interval", v))
        c.quiesceInterval = parseU64(v);
    if (jsonField(text, "eager_chain", v))
        c.eagerChain = v == "true";
    if (jsonField(text, "vlen", v))
        c.vlen = unsigned(parseU64(v));
    if (jsonField(text, "num_vregs", v))
        c.numVregs = unsigned(parseU64(v));
    if (jsonField(text, "ports", v))
        c.ports = unsigned(parseU64(v));
    if (jsonField(text, "tl_confidence", v))
        c.tlConfidence = std::uint8_t(parseU64(v));
    if (jsonField(text, "fault_enabled", v))
        c.fault.enabled = v == "true";
    if (jsonField(text, "fault_seed", v))
        c.fault.seed = parseU64(v);
    if (jsonField(text, "elem_flip_ppm", v))
        c.fault.elemFlipPpm = std::uint32_t(parseU64(v));
    if (jsonField(text, "vrmt_flip_ppm", v))
        c.fault.vrmtFlipPpm = std::uint32_t(parseU64(v));
    if (jsonField(text, "image_flip_ppm", v))
        c.fault.imageFlipPpm = std::uint32_t(parseU64(v));
    if (jsonField(text, "tl_flip_ppm", v))
        c.fault.tlFlipPpm = std::uint32_t(parseU64(v));
    if (jsonField(text, "gmrbb_flip_ppm", v))
        c.fault.gmrbbFlipPpm = std::uint32_t(parseU64(v));
    if (jsonField(text, "demote_threshold", v))
        c.fault.demoteThreshold = std::uint32_t(parseU64(v));
    if (jsonField(text, "reenable_window", v))
        c.fault.reenableWindow = parseU64(v);

    if (c.vlen == 0 || c.vlen > 64)
        return failed(path + ": vlen out of range");
    if (c.numVregs == 0)
        return failed(path + ": num_vregs out of range");
    if (c.ports != 1 && c.ports != 2 && c.ports != 4)
        return failed(path + ": ports must be 1, 2 or 4");
    return true;
}

} // namespace sweep
} // namespace sdv
