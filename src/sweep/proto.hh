/**
 * @file
 * Wire protocol of the sweep work-server (`sdv_sweep --serve`):
 * length-prefixed frames over a stream socket, each carrying one typed
 * message serialized with the checkpoint layer's Serializer (so every
 * payload ends in an FNV-1a checksum and truncated or corrupted frames
 * are rejected before any field is trusted).
 *
 * Frame layout: u32 payload length (little-endian) | u8 message type |
 * payload bytes. The transport is deliberately address-agnostic — the
 * daemon listens on a Unix domain socket today, but nothing in the
 * framing or the messages assumes same-host peers, so multi-machine
 * sharding is a connect-call change, not a protocol redesign.
 *
 * Two kinds of peers speak it (distinguished by their hello):
 *  - clients: Submit a sweep request, then read a stream of
 *    plan-ordered ResultRecord frames followed by one RequestDone.
 *  - workers: receive UnitRequest frames (one self-contained
 *    (config × sample) unit or one capture pass each) and answer each
 *    with a UnitResult.
 *
 * Full message reference: docs/sweep.md, "The sweep service".
 */

#ifndef SDV_SWEEP_PROTO_HH
#define SDV_SWEEP_PROTO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"

namespace sdv {
namespace sweep {
namespace proto {

/** Protocol version; bumped on any frame or message layout change.
 *  Peers with mismatched versions are rejected at hello time.
 *  v2: hello priority, deadline + chaos spec in requests, worker
 *  Progress heartbeats, typed error kinds, server stats query. */
constexpr std::uint32_t kVersion = 2;

/** Upper bound on a single frame's payload (sanity guard against
 *  garbage length prefixes from malformed peers). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Worker heartbeat cadence while a unit is executing. The server's
 *  hang timeout (Options::hangTimeoutMs) must be a comfortable
 *  multiple of this. */
constexpr unsigned kHeartbeatMs = 100;

enum class MsgType : std::uint8_t
{
    HelloClient = 1,  ///< client -> server: version handshake
    HelloWorker = 2,  ///< worker -> server: version handshake + pid
    Submit = 3,       ///< client -> server: one sweep request
    Error = 4,        ///< server -> client: request rejected / failed
    ResultRecord = 5, ///< server -> client: one plan-ordered record
    RequestDone = 6,  ///< server -> client: stream complete + metrics
    UnitRequest = 7,  ///< server -> worker: run one work unit
    UnitResult = 8,   ///< worker -> server: unit outcome
    Shutdown = 9,     ///< client -> server: stop serving
    Progress = 10,    ///< worker -> server: heartbeat while executing
    StatsQuery = 11,  ///< client -> server: request accounting stats
    StatsReply = 12,  ///< server -> client: ServerStats payload
};

/** Structured error taxonomy (ErrorMsg::kind). Clients use it to
 *  decide retryability and phrasing; Deadline in particular must be
 *  distinguishable from a generic failure. */
enum class ErrKind : std::uint8_t
{
    Generic = 0,  ///< request failed (not automatically retryable)
    Rejected = 1, ///< request invalid (unknown plan, bad options)
    Deadline = 2, ///< request deadline expired
    Protocol = 3, ///< version/frame mismatch at hello
    Shutdown = 4, ///< server is shutting down
};

/** Blocking framed-message transport over a connected socket fd.
 *  Owns the fd. Send/recv are not internally synchronized — callers
 *  serialize access per direction (the server does: one reader and
 *  one writer thread per connection at most). */
class Framed
{
  public:
    explicit Framed(int fd) : fd_(fd) {}
    ~Framed() { close(); }
    Framed(const Framed &) = delete;
    Framed &operator=(const Framed &) = delete;

    /** Send one frame; @p payload must already be sealed
     *  (Serializer::finish). @retval false on a write error or a
     *  closed peer. */
    bool send(MsgType t, const std::vector<std::uint8_t> &payload);

    /** Receive one frame and verify its payload checksum.
     *  @retval false on EOF, a read error, an oversized length prefix
     *  or a checksum mismatch (the connection is unusable then). */
    bool recv(MsgType &t, std::vector<std::uint8_t> &payload);

    /** Chaos helper: send a frame whose header promises the full
     *  payload but deliver only @p bytes of it (the peer must treat
     *  the connection as dead, never trust partial fields). */
    bool sendTruncated(MsgType t, const std::vector<std::uint8_t> &payload,
                       std::size_t bytes);

    /** Chaos helper: send a complete, valid frame in @p chunk-byte
     *  slices with @p us_delay microseconds between slices (partial
     *  writes — the peer's reassembly must produce an identical
     *  message). */
    bool sendChunked(MsgType t, const std::vector<std::uint8_t> &payload,
                     std::size_t chunk, unsigned us_delay);

    int fd() const { return fd_; }
    void close();

  private:
    int fd_;
};

/** @return a connected stream-socket fd for the Unix socket at
 *  @p path, or -1 (with @p err set) on failure. @p errno_out (when
 *  non-null) receives the failing errno so callers can distinguish a
 *  daemon that is absent (ENOENT/ECONNREFUSED) from one that is
 *  present but broken. */
int connectUnix(const std::string &path, std::string *err,
                int *errno_out = nullptr);

/** @return a listening stream-socket fd bound to @p path (any stale
 *  socket file is replaced), or -1 (with @p err set) on failure. */
int listenUnix(const std::string &path, std::string *err);

/** Simple hello payload (both peer kinds). */
struct Hello
{
    std::uint32_t version = kVersion;
    std::int32_t pid = 0;

    /** Fair-share weight of this client's units: a priority-P client
     *  gets P consecutive unit dispatches per round-robin turn.
     *  Ignored in worker hellos. */
    std::uint32_t priority = 1;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       Hello &out);
};

/**
 * Deterministic protocol/process-boundary fault injection for one
 * request (the chaos harness, docs/robustness.md). Units of the
 * request are assigned modes in creation order: the first exitUnits
 * units exit, the next hangUnits hang, and so on — replayable without
 * any randomness on the server. Retried units always run clean.
 */
struct ChaosSpec
{
    std::uint32_t exitUnits = 0;    ///< worker _exit(1) before running
    std::uint32_t hangUnits = 0;    ///< worker goes silent (no beats)
    std::uint32_t corruptUnits = 0; ///< result frame payload bit-flip
    std::uint32_t truncUnits = 0;   ///< half a result frame, then exit
    std::uint32_t delayUnits = 0;   ///< result delayed (beats continue)
    std::uint32_t dribbleUnits = 0; ///< result frame sent byte-trickled
    std::uint32_t delayMs = 0;      ///< delay for delayUnits

    bool
    any() const
    {
        return exitUnits || hangUnits || corruptUnits || truncUnits ||
               delayUnits || dribbleUnits;
    }
};

/** Per-unit chaos behavior (assigned by the server from the request's
 *  ChaosSpec; cleared on retry). */
enum class ChaosMode : std::uint8_t
{
    None = 0,
    Exit = 1,    ///< _exit(1) before simulating
    Hang = 2,    ///< suppress heartbeats and sleep until killed
    Corrupt = 3, ///< flip one payload byte of the result frame
    Trunc = 4,   ///< send half the result frame, then _exit(1)
    Delay = 5,   ///< sleep chaosParam ms before replying (beats flow)
    Dribble = 6, ///< send the result frame in tiny delayed chunks
};

/**
 * One sweep request: the plan identity plus the deterministic subset
 * of ExecOptions (everything that shapes simulated results; host-side
 * knobs like jobs or the observability sinks are not part of a
 * request — the server owns its worker pool, and serve mode is for
 * deterministic result production).
 */
struct SweepRequest
{
    std::string plan;     ///< registered plan name
    PlanOptions popt;     ///< scale / footprint / quick / baseSeed
    ExecOptions eopt;     ///< deterministic fields only (see encode)

    /** Per-request deadline in milliseconds from submit (0 = none).
     *  Expired requests fail with Error{kind=Deadline}; their pending
     *  units are dropped at dispatch and an in-flight unit's worker is
     *  killed and respawned so other clients are unaffected. */
    std::uint64_t deadlineMs = 0;

    /** Protocol/process fault injection for this request (tests and
     *  the chaos harness; an empty spec is the normal case). */
    ChaosSpec chaos;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       SweepRequest &out, std::string *err);
};

/** What a worker should do with one unit. */
enum class UnitKind : std::uint8_t
{
    Run = 0,     ///< one (job × sample) measurement (sample < 0: full)
    Capture = 1, ///< one workload's snapshot-set capture pass
};

/** Server -> worker: one self-contained work unit. Carries the full
 *  request context — workers memoize plans and programs per context,
 *  so repeated units of one request pay the build cost once. */
struct UnitRequest
{
    std::uint64_t id = 0;
    UnitKind kind = UnitKind::Run;
    SweepRequest req;         ///< plan + options context
    std::uint32_t jobIndex = 0; ///< Run: index into the built plan
    std::int32_t sample = -1; ///< Run: sample index (-1 = full run)
    std::string workload;     ///< Capture: workload to warm
    std::string snapshotPath; ///< snapshot-set file ("" = none)
    ChaosMode chaosMode = ChaosMode::None; ///< fault-injection behavior
    std::uint32_t chaosParam = 0; ///< mode parameter (Delay: ms)

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       UnitRequest &out);
};

/** Worker -> server: one unit's outcome. SimResult is transported as
 *  raw object bytes: server and workers are the same binary (the
 *  daemon spawns its own executable), and the struct is trivially
 *  copyable — asserted at compile time in proto.cc. */
struct UnitResult
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string message;      ///< failure description when !ok

    // Run payload
    SimResult res{};
    std::uint64_t commitHash = 0;
    bool fromCheckpoint = false;

    // Capture payload
    bool captured = false;    ///< false: no usable boundary (negative
                              ///< result, still cached)
    std::uint64_t programHash = 0;

    double wallSeconds = 0.0; ///< host-side metrics only

    // Server-side annotations, never on the wire: workers always
    // report Generic failures; the server synthesizes Deadline ones
    // and stamps the unit's queue wait at dispatch.
    ErrKind errKind = ErrKind::Generic;
    double queueWaitSeconds = 0.0;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       UnitResult &out);
};

/** Worker -> server: heartbeat emitted every kHeartbeatMs while a
 *  unit executes. A worker silent past the hang timeout is declared
 *  hung, killed and respawned. */
struct ProgressMsg
{
    std::uint64_t unitId = 0;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       ProgressMsg &out);
};

/** Server -> client: accounting snapshot (StatsReply). The chaos
 *  harness asserts the balance unitsEnqueued == unitsCompleted +
 *  unitsFailed on an idle daemon — every unit is accounted exactly
 *  once no matter how its workers died. */
struct ServerStats
{
    std::uint64_t unitsEnqueued = 0;   ///< fresh units (retries excluded)
    std::uint64_t unitsCompleted = 0;  ///< units that returned ok
    std::uint64_t unitsFailed = 0;     ///< units that failed terminally
    std::uint64_t unitRetries = 0;     ///< crash/hang front-requeues
    std::uint64_t workerRestarts = 0;  ///< worker processes respawned
    std::uint64_t hangKills = 0;       ///< workers killed for silence
    std::uint64_t deadlineFailures = 0; ///< units failed on deadline
    std::uint64_t requestsServed = 0;  ///< requests fully streamed
    std::uint64_t requestsFailed = 0;  ///< requests answered with Error
    std::uint64_t cacheEvictions = 0;  ///< snapshot files evicted (LRU)
    std::uint64_t cacheGcRemoved = 0;  ///< stale entries GCed at start
    std::uint64_t cacheDiskBytes = 0;  ///< current cache directory size

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       ServerStats &out);
};

/** Server -> client: one plan-ordered result record (the exact
 *  resultRecordJson text) plus its index. */
struct ResultRecord
{
    std::uint32_t index = 0;
    std::string json;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       ResultRecord &out);
};

/** Server -> client: the request completed. Carries the per-request
 *  exec-metrics JSON (host-side; the deterministic payload is the
 *  record stream) plus the headline cache counters for callers that
 *  don't want to parse JSON (the load-test harness). */
struct RequestDone
{
    std::uint32_t records = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::string metricsJson;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       RequestDone &out);
};

/** Server -> client: request rejected or failed; also the reply to a
 *  malformed frame. */
struct ErrorMsg
{
    std::string message;
    ErrKind kind = ErrKind::Generic;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       ErrorMsg &out);
};

} // namespace proto
} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_PROTO_HH
