/**
 * @file
 * Wire protocol of the sweep work-server (`sdv_sweep --serve`):
 * length-prefixed frames over a stream socket, each carrying one typed
 * message serialized with the checkpoint layer's Serializer (so every
 * payload ends in an FNV-1a checksum and truncated or corrupted frames
 * are rejected before any field is trusted).
 *
 * Frame layout: u32 payload length (little-endian) | u8 message type |
 * payload bytes. The transport is deliberately address-agnostic — the
 * daemon listens on a Unix domain socket today, but nothing in the
 * framing or the messages assumes same-host peers, so multi-machine
 * sharding is a connect-call change, not a protocol redesign.
 *
 * Two kinds of peers speak it (distinguished by their hello):
 *  - clients: Submit a sweep request, then read a stream of
 *    plan-ordered ResultRecord frames followed by one RequestDone.
 *  - workers: receive UnitRequest frames (one self-contained
 *    (config × sample) unit or one capture pass each) and answer each
 *    with a UnitResult.
 *
 * Full message reference: docs/sweep.md, "The sweep service".
 */

#ifndef SDV_SWEEP_PROTO_HH
#define SDV_SWEEP_PROTO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"

namespace sdv {
namespace sweep {
namespace proto {

/** Protocol version; bumped on any frame or message layout change.
 *  Peers with mismatched versions are rejected at hello time. */
constexpr std::uint32_t kVersion = 1;

/** Upper bound on a single frame's payload (sanity guard against
 *  garbage length prefixes from malformed peers). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t
{
    HelloClient = 1,  ///< client -> server: version handshake
    HelloWorker = 2,  ///< worker -> server: version handshake + pid
    Submit = 3,       ///< client -> server: one sweep request
    Error = 4,        ///< server -> client: request rejected / failed
    ResultRecord = 5, ///< server -> client: one plan-ordered record
    RequestDone = 6,  ///< server -> client: stream complete + metrics
    UnitRequest = 7,  ///< server -> worker: run one work unit
    UnitResult = 8,   ///< worker -> server: unit outcome
    Shutdown = 9,     ///< client -> server: stop serving
};

/** Blocking framed-message transport over a connected socket fd.
 *  Owns the fd. Send/recv are not internally synchronized — callers
 *  serialize access per direction (the server does: one reader and
 *  one writer thread per connection at most). */
class Framed
{
  public:
    explicit Framed(int fd) : fd_(fd) {}
    ~Framed() { close(); }
    Framed(const Framed &) = delete;
    Framed &operator=(const Framed &) = delete;

    /** Send one frame; @p payload must already be sealed
     *  (Serializer::finish). @retval false on a write error or a
     *  closed peer. */
    bool send(MsgType t, const std::vector<std::uint8_t> &payload);

    /** Receive one frame and verify its payload checksum.
     *  @retval false on EOF, a read error, an oversized length prefix
     *  or a checksum mismatch (the connection is unusable then). */
    bool recv(MsgType &t, std::vector<std::uint8_t> &payload);

    int fd() const { return fd_; }
    void close();

  private:
    int fd_;
};

/** @return a connected stream-socket fd for the Unix socket at
 *  @p path, or -1 (with @p err set) on failure. */
int connectUnix(const std::string &path, std::string *err);

/** @return a listening stream-socket fd bound to @p path (any stale
 *  socket file is replaced), or -1 (with @p err set) on failure. */
int listenUnix(const std::string &path, std::string *err);

/** Simple hello payload (both peer kinds). */
struct Hello
{
    std::uint32_t version = kVersion;
    std::int32_t pid = 0;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       Hello &out);
};

/**
 * One sweep request: the plan identity plus the deterministic subset
 * of ExecOptions (everything that shapes simulated results; host-side
 * knobs like jobs or the observability sinks are not part of a
 * request — the server owns its worker pool, and serve mode is for
 * deterministic result production).
 */
struct SweepRequest
{
    std::string plan;     ///< registered plan name
    PlanOptions popt;     ///< scale / footprint / quick / baseSeed
    ExecOptions eopt;     ///< deterministic fields only (see encode)

    /** Test hook (worker-crash recovery): the first N units of this
     *  request make their worker _exit(1) before simulating, once per
     *  unit — the retry path must recover deterministically. */
    std::uint32_t chaosExitUnits = 0;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       SweepRequest &out, std::string *err);
};

/** What a worker should do with one unit. */
enum class UnitKind : std::uint8_t
{
    Run = 0,     ///< one (job × sample) measurement (sample < 0: full)
    Capture = 1, ///< one workload's snapshot-set capture pass
};

/** Server -> worker: one self-contained work unit. Carries the full
 *  request context — workers memoize plans and programs per context,
 *  so repeated units of one request pay the build cost once. */
struct UnitRequest
{
    std::uint64_t id = 0;
    UnitKind kind = UnitKind::Run;
    SweepRequest req;         ///< plan + options context
    std::uint32_t jobIndex = 0; ///< Run: index into the built plan
    std::int32_t sample = -1; ///< Run: sample index (-1 = full run)
    std::string workload;     ///< Capture: workload to warm
    std::string snapshotPath; ///< snapshot-set file ("" = none)
    bool chaosExit = false;   ///< test hook: _exit(1) before running

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       UnitRequest &out);
};

/** Worker -> server: one unit's outcome. SimResult is transported as
 *  raw object bytes: server and workers are the same binary (the
 *  daemon spawns its own executable), and the struct is trivially
 *  copyable — asserted at compile time in proto.cc. */
struct UnitResult
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string message;      ///< failure description when !ok

    // Run payload
    SimResult res{};
    std::uint64_t commitHash = 0;
    bool fromCheckpoint = false;

    // Capture payload
    bool captured = false;    ///< false: no usable boundary (negative
                              ///< result, still cached)
    std::uint64_t programHash = 0;

    double wallSeconds = 0.0; ///< host-side metrics only

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       UnitResult &out);
};

/** Server -> client: one plan-ordered result record (the exact
 *  resultRecordJson text) plus its index. */
struct ResultRecord
{
    std::uint32_t index = 0;
    std::string json;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       ResultRecord &out);
};

/** Server -> client: the request completed. Carries the per-request
 *  exec-metrics JSON (host-side; the deterministic payload is the
 *  record stream) plus the headline cache counters for callers that
 *  don't want to parse JSON (the load-test harness). */
struct RequestDone
{
    std::uint32_t records = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::string metricsJson;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       RequestDone &out);
};

/** Server -> client: request rejected or failed; also the reply to a
 *  malformed frame. */
struct ErrorMsg
{
    std::string message;

    std::vector<std::uint8_t> encode() const;
    static bool decode(const std::vector<std::uint8_t> &payload,
                       ErrorMsg &out);
};

} // namespace proto
} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_PROTO_HH
