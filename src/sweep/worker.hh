/**
 * @file
 * Sweep work-server worker process (`sdv_sweep --worker`): connects to
 * the daemon's socket, announces itself, and executes UnitRequest
 * frames until the connection closes — one self-contained
 * (config × sample) measurement or one capture pass per unit, each
 * answered with a UnitResult.
 *
 * Execution mirrors the in-process executor path for path (cold full
 * runs, checkpoint restore-or-cold, per-sample forks with
 * zero-contribution semantics for failed restores), which is what
 * makes a served sweep byte-identical to `runPlan` on one machine.
 * Plans, programs and loaded snapshot sets are memoized per worker, so
 * the per-unit cost is the simulation itself.
 */

#ifndef SDV_SWEEP_WORKER_HH
#define SDV_SWEEP_WORKER_HH

#include <string>

#include <sys/types.h>

namespace sdv {
namespace sweep {

/** Run the worker loop against the daemon at @p socketPath.
 *  @return process exit code (0 on orderly shutdown). */
int workerMain(const std::string &socketPath);

/** fork+exec @p exe as `--worker --socket @p socketPath`.
 *  fork+exec (not plain fork): the server is threaded by the time it
 *  spawns replacements, and a forked child could inherit a held
 *  malloc lock — exec resets the world. @return child pid, or -1. */
pid_t spawnWorkerProcess(const std::string &exe,
                         const std::string &socketPath);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_WORKER_HH
