/**
 * @file
 * Client side of the sweep work-server: submit one request and collect
 * the streamed plan-ordered records (`sdv_sweep --connect`), ask the
 * daemon to shut down (`--shutdown`), and the load-test harness
 * (`--loadtest N`) that drives many queued requests from concurrent
 * connections and reports throughput and latency percentiles.
 */

#ifndef SDV_SWEEP_CLIENT_HH
#define SDV_SWEEP_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/proto.hh"

namespace sdv {
namespace sweep {

/** How a submit attempt ended — the client's decision surface. Only
 *  DaemonAbsent and TransportError are retryable (the served stream
 *  is deterministic, so a resubmission is idempotent); the rest are
 *  verdicts the daemon itself issued. */
enum class SubmitStatus
{
    Ok = 0,
    DaemonAbsent,     ///< nothing listening (ENOENT/ECONNREFUSED)
    ProtocolMismatch, ///< daemon present but speaks another version
    Rejected,         ///< request invalid (daemon said so)
    DeadlineExpired,  ///< request deadline expired server-side
    TransportError,   ///< connection died mid-exchange
    ServerError,      ///< daemon reported a request failure
};

/** @return a short stable name for @p s ("ok", "daemon-absent", ...). */
const char *submitStatusName(SubmitStatus s);

/** Client-side submission knobs. */
struct ClientOptions
{
    std::uint32_t priority = 1; ///< fair-share weight sent in the hello
    unsigned retries = 0;       ///< extra attempts on retryable failures
    unsigned backoffMs = 100;   ///< base backoff (doubles, jittered)
    std::uint64_t retrySeed = 0; ///< jitter stream seed
};

/** One served request's collected stream. */
struct ClientResult
{
    std::vector<std::string> records; ///< plan-ordered record JSON
    std::string metricsJson;          ///< per-request exec_metrics
    std::uint64_t cacheHits = 0;      ///< snapshot-cache hits
    std::uint64_t cacheMisses = 0;    ///< captures this request ran
    SubmitStatus status = SubmitStatus::TransportError;
    unsigned attempts = 0;            ///< connection attempts made

    /** @return the records as the executor's results array — the
     *  exact text resultsJson() would have produced in-process. */
    std::string resultsArray() const;
};

/**
 * Submit @p req to the daemon at @p socketPath once and stream the
 * reply. @p onRecord (optional) observes each record as it arrives —
 * the streaming interface; the full set is also collected into
 * @p out. @return the classified outcome (also left in out.status);
 * @p err carries the human-readable reason on anything but Ok.
 */
SubmitStatus submitSweepOnce(
    const std::string &socketPath, const proto::SweepRequest &req,
    std::uint32_t priority, ClientResult &out, std::string *err,
    const std::function<void(std::uint32_t, const std::string &)>
        &onRecord = nullptr);

/**
 * submitSweepOnce plus retry policy: retryable failures (daemon
 * absent, transport died) are reattempted up to @p copt.retries times
 * with jittered exponential backoff. Daemon verdicts (rejection,
 * deadline, protocol mismatch) are never retried — resubmitting an
 * invalid request cannot help.
 */
SubmitStatus submitSweepRetry(
    const std::string &socketPath, const proto::SweepRequest &req,
    const ClientOptions &copt, ClientResult &out, std::string *err,
    const std::function<void(std::uint32_t, const std::string &)>
        &onRecord = nullptr);

/**
 * Submit @p req to the daemon at @p socketPath and stream the reply
 * (single attempt, default priority — the original interface).
 * @retval false (with @p err) on connection failure, rejection or a
 * mid-stream error.
 */
bool submitSweep(const std::string &socketPath,
                 const proto::SweepRequest &req, ClientResult &out,
                 std::string *err,
                 const std::function<void(std::uint32_t,
                                          const std::string &)>
                     &onRecord = nullptr);

/** Fetch the daemon's accounting snapshot (StatsQuery round trip). */
bool queryStats(const std::string &socketPath, proto::ServerStats &out,
                std::string *err);

/** Ask the daemon at @p socketPath to wind down. */
bool requestShutdown(const std::string &socketPath, std::string *err);

/** Load-test shape: @p requests total submissions spread over
 *  @p concurrency client connections (each connection submits its
 *  share back-to-back, so the daemon sees a deep standing queue). */
struct LoadTestOptions
{
    unsigned requests = 1000;
    unsigned concurrency = 4;
};

struct LoadTestResult
{
    unsigned completed = 0;
    unsigned failed = 0;
    double wallSeconds = 0.0;
    double requestsPerSecond = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0; ///< latency, seconds
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** @return hits / (hits + misses), in [0, 1]. */
    double hitRate() const;
};

/** Run the load test: every request is @p req. @retval false (with
 *  @p err) when any request failed. */
bool runLoadTest(const std::string &socketPath,
                 const proto::SweepRequest &req,
                 const LoadTestOptions &lopt, LoadTestResult &out,
                 std::string *err);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_CLIENT_HH
