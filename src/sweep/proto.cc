#include "sweep/proto.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <type_traits>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/serialize.hh"

namespace sdv {
namespace sweep {
namespace proto {

namespace {

// SimResult crosses the wire as raw object bytes (same binary on both
// ends: the daemon execs its own executable as workers). Both
// properties that makes safe are asserted here: the struct is a plain
// aggregate, and the frame embeds sizeof so a mismatched binary is
// rejected instead of misread.
static_assert(std::is_trivially_copyable_v<SimResult>,
              "SimResult is transported as raw bytes");

bool
writeAll(int fd, const void *buf, std::size_t len)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        // MSG_NOSIGNAL: a vanished peer yields EPIPE, not SIGPIPE.
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= std::size_t(n);
    }
    return true;
}

bool
readAll(int fd, void *buf, std::size_t len)
{
    std::uint8_t *p = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame (or before one)
        p += n;
        len -= std::size_t(n);
    }
    return true;
}

void
encodeExecOptions(Serializer &ser, const ExecOptions &o)
{
    // Deterministic fields only: everything that shapes simulated
    // results. Host-side knobs (jobs, observability sinks, the
    // wall-clock watchdog) stay with whoever runs the simulation.
    ser.b(o.eventSkip);
    ser.b(o.trace);
    ser.b(o.checkpoint);
    ser.u64(o.warmupInsts);
    ser.u64(o.maxCycles);
    ser.b(o.verify);
    ser.u64(o.quiesceInterval);
    ser.b(o.eagerChain);
    ser.b(o.fault.enabled);
    ser.u64(o.fault.seed);
    ser.u32(o.fault.elemFlipPpm);
    ser.u32(o.fault.vrmtFlipPpm);
    ser.u32(o.fault.imageFlipPpm);
    ser.u32(o.fault.tlFlipPpm);
    ser.u32(o.fault.gmrbbFlipPpm);
    ser.u32(o.fault.demoteThreshold);
    ser.u64(o.fault.reenableWindow);
    ser.u32(o.sample.samples);
    ser.u64(o.sample.measureInsts);
    ser.u64(o.sample.periodInsts);
}

void
decodeExecOptions(Deserializer &des, ExecOptions &o)
{
    o.eventSkip = des.b();
    o.trace = des.b();
    o.checkpoint = des.b();
    o.warmupInsts = des.u64();
    o.maxCycles = des.u64();
    o.verify = des.b();
    o.quiesceInterval = des.u64();
    o.eagerChain = des.b();
    o.fault.enabled = des.b();
    o.fault.seed = des.u64();
    o.fault.elemFlipPpm = des.u32();
    o.fault.vrmtFlipPpm = des.u32();
    o.fault.imageFlipPpm = des.u32();
    o.fault.tlFlipPpm = des.u32();
    o.fault.gmrbbFlipPpm = des.u32();
    o.fault.demoteThreshold = des.u32();
    o.fault.reenableWindow = des.u64();
    o.sample.samples = des.u32();
    o.sample.measureInsts = des.u64();
    o.sample.periodInsts = des.u64();
}

void
encodeRequest(Serializer &ser, const SweepRequest &r)
{
    ser.str(r.plan);
    ser.u32(r.popt.scale);
    ser.u8(std::uint8_t(r.popt.footprint));
    ser.b(r.popt.quick);
    ser.u64(r.popt.baseSeed);
    encodeExecOptions(ser, r.eopt);
    ser.u64(r.deadlineMs);
    ser.u32(r.chaos.exitUnits);
    ser.u32(r.chaos.hangUnits);
    ser.u32(r.chaos.corruptUnits);
    ser.u32(r.chaos.truncUnits);
    ser.u32(r.chaos.delayUnits);
    ser.u32(r.chaos.dribbleUnits);
    ser.u32(r.chaos.delayMs);
}

bool
decodeRequest(Deserializer &des, SweepRequest &r)
{
    r.plan = des.str();
    r.popt.scale = des.u32();
    const std::uint8_t fp = des.u8();
    if (fp > std::uint8_t(Footprint::Mem)) {
        des.fail();
        return false;
    }
    r.popt.footprint = Footprint(fp);
    r.popt.quick = des.b();
    r.popt.baseSeed = des.u64();
    decodeExecOptions(des, r.eopt);
    r.deadlineMs = des.u64();
    r.chaos.exitUnits = des.u32();
    r.chaos.hangUnits = des.u32();
    r.chaos.corruptUnits = des.u32();
    r.chaos.truncUnits = des.u32();
    r.chaos.delayUnits = des.u32();
    r.chaos.dribbleUnits = des.u32();
    r.chaos.delayMs = des.u32();
    return des.ok();
}

} // namespace

bool
Framed::send(MsgType t, const std::vector<std::uint8_t> &payload)
{
    if (fd_ < 0 || payload.size() > kMaxFrameBytes)
        return false;
    std::uint8_t hdr[5];
    const std::uint32_t len = std::uint32_t(payload.size());
    hdr[0] = std::uint8_t(len);
    hdr[1] = std::uint8_t(len >> 8);
    hdr[2] = std::uint8_t(len >> 16);
    hdr[3] = std::uint8_t(len >> 24);
    hdr[4] = std::uint8_t(t);
    return writeAll(fd_, hdr, sizeof(hdr)) &&
           writeAll(fd_, payload.data(), payload.size());
}

bool
Framed::recv(MsgType &t, std::vector<std::uint8_t> &payload)
{
    if (fd_ < 0)
        return false;
    std::uint8_t hdr[5];
    if (!readAll(fd_, hdr, sizeof(hdr)))
        return false;
    const std::uint32_t len = std::uint32_t(hdr[0]) |
                              std::uint32_t(hdr[1]) << 8 |
                              std::uint32_t(hdr[2]) << 16 |
                              std::uint32_t(hdr[3]) << 24;
    if (len > kMaxFrameBytes)
        return false;
    t = MsgType(hdr[4]);
    payload.resize(len);
    if (!readAll(fd_, payload.data(), len))
        return false;
    // Every payload was sealed by Serializer::finish; verify before
    // any field is trusted (a probe-only check: decoding re-verifies).
    Deserializer des(payload);
    return des.verifyChecksum();
}

bool
Framed::sendTruncated(MsgType t, const std::vector<std::uint8_t> &payload,
                      std::size_t bytes)
{
    if (fd_ < 0 || payload.size() > kMaxFrameBytes)
        return false;
    std::uint8_t hdr[5];
    const std::uint32_t len = std::uint32_t(payload.size());
    hdr[0] = std::uint8_t(len);
    hdr[1] = std::uint8_t(len >> 8);
    hdr[2] = std::uint8_t(len >> 16);
    hdr[3] = std::uint8_t(len >> 24);
    hdr[4] = std::uint8_t(t);
    if (bytes > payload.size())
        bytes = payload.size();
    return writeAll(fd_, hdr, sizeof(hdr)) &&
           writeAll(fd_, payload.data(), bytes);
}

bool
Framed::sendChunked(MsgType t, const std::vector<std::uint8_t> &payload,
                    std::size_t chunk, unsigned us_delay)
{
    if (fd_ < 0 || payload.size() > kMaxFrameBytes || chunk == 0)
        return false;
    std::uint8_t hdr[5];
    const std::uint32_t len = std::uint32_t(payload.size());
    hdr[0] = std::uint8_t(len);
    hdr[1] = std::uint8_t(len >> 8);
    hdr[2] = std::uint8_t(len >> 16);
    hdr[3] = std::uint8_t(len >> 24);
    hdr[4] = std::uint8_t(t);
    if (!writeAll(fd_, hdr, sizeof(hdr)))
        return false;
    for (std::size_t off = 0; off < payload.size(); off += chunk) {
        const std::size_t n = std::min(chunk, payload.size() - off);
        if (!writeAll(fd_, payload.data() + off, n))
            return false;
        if (us_delay)
            ::usleep(us_delay);
    }
    return true;
}

void
Framed::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
connectUnix(const std::string &path, std::string *err, int *errno_out)
{
    if (errno_out)
        *errno_out = 0;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        if (errno_out)
            *errno_out = errno;
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = "connect " + path + ": " + std::strerror(errno);
        if (errno_out)
            *errno_out = errno;
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str()); // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        if (err)
            *err = "bind/listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

std::vector<std::uint8_t>
Hello::encode() const
{
    Serializer ser;
    ser.u32(version);
    ser.u64(std::uint64_t(std::int64_t(pid)));
    ser.u32(priority);
    return ser.finish();
}

bool
Hello::decode(const std::vector<std::uint8_t> &payload, Hello &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.version = des.u32();
    out.pid = std::int32_t(std::int64_t(des.u64()));
    out.priority = des.u32();
    if (out.priority == 0)
        out.priority = 1;
    return des.atEnd();
}

std::vector<std::uint8_t>
SweepRequest::encode() const
{
    Serializer ser;
    encodeRequest(ser, *this);
    return ser.finish();
}

bool
SweepRequest::decode(const std::vector<std::uint8_t> &payload,
                     SweepRequest &out, std::string *err)
{
    Deserializer des(payload);
    if (!des.verifyChecksum()) {
        if (err)
            *err = "request frame corrupt (checksum mismatch)";
        return false;
    }
    if (!decodeRequest(des, out) || !des.atEnd()) {
        if (err)
            *err = "request frame malformed";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
UnitRequest::encode() const
{
    Serializer ser;
    ser.u64(id);
    ser.u8(std::uint8_t(kind));
    encodeRequest(ser, req);
    ser.u32(jobIndex);
    ser.u64(std::uint64_t(std::int64_t(sample)));
    ser.str(workload);
    ser.str(snapshotPath);
    ser.u8(std::uint8_t(chaosMode));
    ser.u32(chaosParam);
    return ser.finish();
}

bool
UnitRequest::decode(const std::vector<std::uint8_t> &payload,
                    UnitRequest &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.id = des.u64();
    const std::uint8_t k = des.u8();
    if (k > std::uint8_t(UnitKind::Capture))
        return false;
    out.kind = UnitKind(k);
    if (!decodeRequest(des, out.req))
        return false;
    out.jobIndex = des.u32();
    out.sample = std::int32_t(std::int64_t(des.u64()));
    out.workload = des.str();
    out.snapshotPath = des.str();
    const std::uint8_t cm = des.u8();
    if (cm > std::uint8_t(ChaosMode::Dribble))
        return false;
    out.chaosMode = ChaosMode(cm);
    out.chaosParam = des.u32();
    return des.atEnd();
}

std::vector<std::uint8_t>
UnitResult::encode() const
{
    Serializer ser;
    ser.u64(id);
    ser.b(ok);
    ser.str(message);
    ser.u32(std::uint32_t(sizeof(SimResult)));
    ser.bytes(&res, sizeof(SimResult));
    ser.u64(commitHash);
    ser.b(fromCheckpoint);
    ser.b(captured);
    ser.u64(programHash);
    ser.u64(std::uint64_t(wallSeconds * 1e6)); // microseconds
    return ser.finish();
}

bool
UnitResult::decode(const std::vector<std::uint8_t> &payload,
                   UnitResult &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.id = des.u64();
    out.ok = des.b();
    out.message = des.str();
    if (des.u32() != sizeof(SimResult))
        return false; // mismatched binary
    if (!des.bytes(&out.res, sizeof(SimResult)))
        return false;
    out.commitHash = des.u64();
    out.fromCheckpoint = des.b();
    out.captured = des.b();
    out.programHash = des.u64();
    out.wallSeconds = double(des.u64()) * 1e-6;
    return des.atEnd();
}

std::vector<std::uint8_t>
ResultRecord::encode() const
{
    Serializer ser;
    ser.u32(index);
    ser.str(json);
    return ser.finish();
}

bool
ResultRecord::decode(const std::vector<std::uint8_t> &payload,
                     ResultRecord &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.index = des.u32();
    out.json = des.str();
    return des.atEnd();
}

std::vector<std::uint8_t>
RequestDone::encode() const
{
    Serializer ser;
    ser.u32(records);
    ser.u64(cacheHits);
    ser.u64(cacheMisses);
    ser.str(metricsJson);
    return ser.finish();
}

bool
RequestDone::decode(const std::vector<std::uint8_t> &payload,
                    RequestDone &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.records = des.u32();
    out.cacheHits = des.u64();
    out.cacheMisses = des.u64();
    out.metricsJson = des.str();
    return des.atEnd();
}

std::vector<std::uint8_t>
ErrorMsg::encode() const
{
    Serializer ser;
    ser.str(message);
    ser.u8(std::uint8_t(kind));
    return ser.finish();
}

bool
ErrorMsg::decode(const std::vector<std::uint8_t> &payload,
                 ErrorMsg &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.message = des.str();
    out.kind = ErrKind::Generic;
    // Tolerate a v1 error payload (no kind byte): the one cross-version
    // exchange is the server's protocol-mismatch reply at hello time,
    // and it must stay displayable.
    if (!des.atEnd()) {
        const std::uint8_t k = des.u8();
        if (k <= std::uint8_t(ErrKind::Shutdown))
            out.kind = ErrKind(k);
    }
    return des.atEnd();
}

std::vector<std::uint8_t>
ProgressMsg::encode() const
{
    Serializer ser;
    ser.u64(unitId);
    return ser.finish();
}

bool
ProgressMsg::decode(const std::vector<std::uint8_t> &payload,
                    ProgressMsg &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.unitId = des.u64();
    return des.atEnd();
}

std::vector<std::uint8_t>
ServerStats::encode() const
{
    Serializer ser;
    ser.u64(unitsEnqueued);
    ser.u64(unitsCompleted);
    ser.u64(unitsFailed);
    ser.u64(unitRetries);
    ser.u64(workerRestarts);
    ser.u64(hangKills);
    ser.u64(deadlineFailures);
    ser.u64(requestsServed);
    ser.u64(requestsFailed);
    ser.u64(cacheEvictions);
    ser.u64(cacheGcRemoved);
    ser.u64(cacheDiskBytes);
    return ser.finish();
}

bool
ServerStats::decode(const std::vector<std::uint8_t> &payload,
                    ServerStats &out)
{
    Deserializer des(payload);
    if (!des.verifyChecksum())
        return false;
    out.unitsEnqueued = des.u64();
    out.unitsCompleted = des.u64();
    out.unitsFailed = des.u64();
    out.unitRetries = des.u64();
    out.workerRestarts = des.u64();
    out.hangKills = des.u64();
    out.deadlineFailures = des.u64();
    out.requestsServed = des.u64();
    out.requestsFailed = des.u64();
    out.cacheEvictions = des.u64();
    out.cacheGcRemoved = des.u64();
    out.cacheDiskBytes = des.u64();
    return des.atEnd();
}

} // namespace proto
} // namespace sweep
} // namespace sdv
