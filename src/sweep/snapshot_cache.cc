#include "sweep/snapshot_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/serialize.hh"

namespace sdv {
namespace sweep {

namespace {

constexpr char magic[8] = {'S', 'D', 'V', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t version = 1;

} // namespace

bool
saveSnapshotSet(const std::string &path, const SnapshotSet &s)
{
    Serializer ser;
    ser.bytes(magic, sizeof(magic));
    ser.u32(version);
    ser.u64(s.programHash);
    ser.b(s.sampled);
    ser.b(s.captured);
    ser.u64(s.set.totalInsts);
    ser.u64(s.set.periodInsts);
    ser.u64(s.set.samples.size());
    for (const SampleCheckpoint &sc : s.set.samples) {
        ser.u64(sc.startInst);
        ser.u64(sc.regionInsts);
        ser.u64(sc.measureInsts);
        ser.u64(sc.bytes.size());
        ser.bytes(sc.bytes.data(), sc.bytes.size());
    }
    // Checkpoint::save publishes atomically (temp + rename) and the
    // Serializer seals with the FNV-1a trailer Checkpoint::load
    // verifies — the container rides the same torn-write guarantees
    // as the images it holds.
    return Checkpoint::save(path, ser.finish());
}

Checkpoint::LoadStatus
loadSnapshotSet(const std::string &path, SnapshotSet &out)
{
    std::vector<std::uint8_t> bytes;
    const auto st = Checkpoint::load(path, bytes);
    if (st != Checkpoint::LoadStatus::Ok)
        return st;

    Deserializer des(bytes);
    if (!des.verifyChecksum())
        return Checkpoint::LoadStatus::Corrupt;
    char m[sizeof(magic)];
    if (!des.bytes(m, sizeof(m)) ||
        std::memcmp(m, magic, sizeof(magic)) != 0 ||
        des.u32() != version)
        return Checkpoint::LoadStatus::Corrupt;
    out.programHash = des.u64();
    out.sampled = des.b();
    out.captured = des.b();
    out.set.totalInsts = des.u64();
    out.set.periodInsts = des.u64();
    const std::uint64_t n = des.u64();
    if (!des.ok() || n > (1u << 20))
        return Checkpoint::LoadStatus::Corrupt;
    out.set.samples.assign(std::size_t(n), SampleCheckpoint{});
    for (SampleCheckpoint &sc : out.set.samples) {
        sc.startInst = des.u64();
        sc.regionInsts = des.u64();
        sc.measureInsts = des.u64();
        const std::uint64_t len = des.u64();
        if (!des.ok() || len > bytes.size())
            return Checkpoint::LoadStatus::Corrupt;
        sc.bytes.resize(std::size_t(len));
        if (!des.bytes(sc.bytes.data(), sc.bytes.size()))
            return Checkpoint::LoadStatus::Corrupt;
    }
    return des.atEnd() ? Checkpoint::LoadStatus::Ok
                       : Checkpoint::LoadStatus::Corrupt;
}

std::string
snapshotKey(const proto::SweepRequest &req, const std::string &workload,
            std::uint64_t warmCfgHash, std::uint64_t binFingerprint)
{
    char buf[160];
    const ExecOptions &o = req.eopt;
    std::string key = workload;
    key += ".s" + std::to_string(req.popt.scale);
    key += ".";
    key += footprintName(req.popt.footprint);
    key += ".w" + std::to_string(o.warmupInsts);
    if (o.sample.enabled()) {
        std::snprintf(buf, sizeof(buf), ".S%u.m%llu.p%llu",
                      o.sample.samples,
                      static_cast<unsigned long long>(
                          o.sample.measureInsts),
                      static_cast<unsigned long long>(
                          o.sample.periodInsts));
        key += buf;
    } else {
        key += ".one";
    }
    // The cycle budget shapes capture *failure* (a boundary that was
    // unreachable within the budget is a cached negative), so a bigger
    // budget must not reuse a smaller budget's verdict.
    std::snprintf(buf, sizeof(buf), ".mc%llu.c%016llx.b%016llx",
                  static_cast<unsigned long long>(o.maxCycles),
                  static_cast<unsigned long long>(warmCfgHash),
                  static_cast<unsigned long long>(binFingerprint));
    key += buf;
    return key;
}

namespace {

/** Parse the binary-fingerprint component out of a cache file name
 *  (`<key>.b<hex16>.snap`). @retval false for files that are not
 *  snapshot containers (left alone by the GC). */
bool
parseFingerprint(const std::string &name, std::uint64_t *fp)
{
    constexpr char suffix[] = ".snap";
    constexpr std::size_t hexLen = 16;
    const std::size_t sufLen = sizeof(suffix) - 1;
    if (name.size() < sufLen + hexLen + 2)
        return false;
    if (name.compare(name.size() - sufLen, sufLen, suffix) != 0)
        return false;
    const std::size_t hexStart = name.size() - sufLen - hexLen;
    if (name[hexStart - 2] != '.' || name[hexStart - 1] != 'b')
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = hexStart; i < hexStart + hexLen; ++i) {
        const char c = name[i];
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= std::uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= std::uint64_t(c - 'a' + 10);
        else
            return false;
    }
    *fp = v;
    return true;
}

} // namespace

SnapshotCache::SnapshotCache(std::string dir, std::uint64_t limit_bytes)
    : dir_(std::move(dir)), limit_(limit_bytes)
{
}

std::string
SnapshotCache::pathFor(const std::string &key) const
{
    return dir_ + "/" + key + ".snap";
}

unsigned
SnapshotCache::gcStale(std::uint64_t bin_fingerprint)
{
    DIR *d = ::opendir(dir_.c_str());
    if (!d)
        return 0;
    unsigned removed = 0;
    std::lock_guard<std::mutex> lk(m_);
    while (dirent *de = ::readdir(d)) {
        const std::string name = de->d_name;
        std::uint64_t fp = 0;
        if (!parseFingerprint(name, &fp))
            continue;
        const std::string path = dir_ + "/" + name;
        if (fp != bin_fingerprint) {
            // Stale-but-present: captured by a different build of the
            // simulator binary; it would never be keyed again, so it
            // would otherwise sit in the directory forever.
            if (::unlink(path.c_str()) == 0) {
                ++removed;
                ++stats_.gcRemoved;
            }
            continue;
        }
        struct stat st{};
        if (::stat(path.c_str(), &st) != 0)
            continue;
        FileInfo fi;
        fi.size = std::uint64_t(st.st_size);
        // Seed the LRU clock from on-disk atime so recency survives a
        // server restart; the in-memory clock takes over afterwards.
        fi.lastUse = std::uint64_t(st.st_atime);
        const std::string key = name.substr(0, name.size() - 5);
        diskBytes_ += fi.size;
        files_[key] = fi;
        if (useClock_ <= fi.lastUse)
            useClock_ = fi.lastUse + 1;
    }
    ::closedir(d);
    stats_.diskBytes = diskBytes_;
    evictToLimitLocked("");
    return removed;
}

std::shared_ptr<void>
SnapshotCache::pin(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        ++pins_[key];
    }
    return std::shared_ptr<void>(nullptr, [this, key](void *) {
        std::lock_guard<std::mutex> lk(m_);
        auto it = pins_.find(key);
        if (it != pins_.end() && --it->second == 0) {
            pins_.erase(it);
            // A pinned file may have kept the directory over budget;
            // shrink as soon as the pin drops.
            evictToLimitLocked("");
        }
    });
}

std::uint64_t
SnapshotCache::diskBytes() const
{
    std::lock_guard<std::mutex> lk(m_);
    return diskBytes_;
}

void
SnapshotCache::noteFileLocked(const std::string &key)
{
    struct stat st{};
    if (::stat(pathFor(key).c_str(), &st) != 0)
        return;
    auto it = files_.find(key);
    if (it != files_.end())
        diskBytes_ -= it->second.size;
    FileInfo fi;
    fi.size = std::uint64_t(st.st_size);
    fi.lastUse = ++useClock_;
    diskBytes_ += fi.size;
    files_[key] = fi;
    stats_.diskBytes = diskBytes_;
}

void
SnapshotCache::touchLocked(const std::string &key)
{
    auto it = files_.find(key);
    if (it == files_.end())
        return;
    it->second.lastUse = ++useClock_;
    // Mirror recency to the filesystem (atime only) so a restarted
    // server's GC scan reconstructs the same LRU order.
    struct timespec ts[2];
    ts[0].tv_sec = 0;
    ts[0].tv_nsec = UTIME_NOW;
    ts[1].tv_sec = 0;
    ts[1].tv_nsec = UTIME_OMIT;
    ::utimensat(AT_FDCWD, pathFor(key).c_str(), ts, 0);
}

void
SnapshotCache::evictToLimitLocked(const std::string &protect)
{
    if (limit_ == 0)
        return;
    while (diskBytes_ > limit_) {
        const std::string *victim = nullptr;
        std::uint64_t oldest = 0;
        for (const auto &kv : files_) {
            if (kv.first == protect || pins_.count(kv.first))
                continue;
            // Never evict a key someone is capturing right now: its
            // waiters would load a vanished file.
            auto eit = entries_.find(kv.first);
            if (eit != entries_.end() && !eit->second->ready)
                continue;
            if (!victim || kv.second.lastUse < oldest) {
                victim = &kv.first;
                oldest = kv.second.lastUse;
            }
        }
        if (!victim)
            return; // everything left is pinned or in flight
        const std::string key = *victim;
        ::unlink(pathFor(key).c_str());
        diskBytes_ -= files_[key].size;
        files_.erase(key);
        // Drop the memory entry too: a memory hit whose file was
        // unlinked would hand workers a dead snapshot path.
        entries_.erase(key);
        ++stats_.evictions;
        stats_.diskBytes = diskBytes_;
    }
}

std::shared_ptr<const SnapshotSet>
SnapshotCache::acquire(
    const std::string &key,
    const std::function<bool(const std::string &path, std::string *err)>
        &capture,
    std::string *err, Outcome *outcome)
{
    std::shared_ptr<Entry> e;
    bool leader = false;
    {
        std::unique_lock<std::mutex> lk(m_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            e = std::make_shared<Entry>();
            entries_.emplace(key, e);
            leader = true;
        } else {
            e = it->second;
            if (e->ready) {
                ++stats_.hits;
                touchLocked(key);
                if (outcome)
                    *outcome = Outcome::Hit;
                return e->set;
            }
            // Single-flight: someone else is capturing this key right
            // now; wait for their verdict instead of racing a
            // redundant warm-up.
            ++stats_.waits;
            if (outcome)
                *outcome = Outcome::Wait;
            cv_.wait(lk, [&] { return e->ready || e->failed; });
            if (e->ready) {
                return e->set;
            }
            if (err)
                *err = e->error;
            return nullptr;
        }
    }

    (void)leader; // from here on this thread owns the key's capture
    const std::string path = pathFor(key);
    auto set = std::make_shared<SnapshotSet>();
    std::string localErr;
    bool ok = false;
    bool miss = false;

    const auto st = loadSnapshotSet(path, *set);
    if (st == Checkpoint::LoadStatus::Ok) {
        ok = true; // disk hit from an earlier server run
    } else {
        if (st == Checkpoint::LoadStatus::Corrupt)
            warn_once("cached snapshot set ", path,
                      " is corrupt (torn or truncated write?); "
                      "recapturing");
        miss = true;
        ok = capture(path, &localErr);
        if (ok) {
            const auto st2 = loadSnapshotSet(path, *set);
            if (st2 != Checkpoint::LoadStatus::Ok) {
                ok = false;
                localErr = "capture produced no readable snapshot "
                           "set at " +
                           path;
            }
        }
    }

    std::lock_guard<std::mutex> lk(m_);
    if (ok) {
        if (miss)
            ++stats_.misses;
        else
            ++stats_.hits;
        if (outcome)
            *outcome = miss ? Outcome::Miss : Outcome::Hit;
        e->set = std::move(set);
        e->ready = true;
        // Account the published (or rediscovered) container file and
        // shrink back under the byte budget, preferring any key over
        // the one just produced.
        noteFileLocked(key);
        touchLocked(key);
        evictToLimitLocked(key);
    } else {
        // Failures are not cached: drop the entry so a later acquire
        // retries the capture from scratch.
        e->failed = true;
        e->error = localErr;
        entries_.erase(key);
        if (err)
            *err = localErr;
    }
    cv_.notify_all();
    return ok ? e->set : nullptr;
}

SnapshotCache::Stats
SnapshotCache::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

} // namespace sweep
} // namespace sdv
