#include "sweep/snapshot_cache.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"
#include "common/serialize.hh"

namespace sdv {
namespace sweep {

namespace {

constexpr char magic[8] = {'S', 'D', 'V', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t version = 1;

} // namespace

bool
saveSnapshotSet(const std::string &path, const SnapshotSet &s)
{
    Serializer ser;
    ser.bytes(magic, sizeof(magic));
    ser.u32(version);
    ser.u64(s.programHash);
    ser.b(s.sampled);
    ser.b(s.captured);
    ser.u64(s.set.totalInsts);
    ser.u64(s.set.periodInsts);
    ser.u64(s.set.samples.size());
    for (const SampleCheckpoint &sc : s.set.samples) {
        ser.u64(sc.startInst);
        ser.u64(sc.regionInsts);
        ser.u64(sc.measureInsts);
        ser.u64(sc.bytes.size());
        ser.bytes(sc.bytes.data(), sc.bytes.size());
    }
    // Checkpoint::save publishes atomically (temp + rename) and the
    // Serializer seals with the FNV-1a trailer Checkpoint::load
    // verifies — the container rides the same torn-write guarantees
    // as the images it holds.
    return Checkpoint::save(path, ser.finish());
}

Checkpoint::LoadStatus
loadSnapshotSet(const std::string &path, SnapshotSet &out)
{
    std::vector<std::uint8_t> bytes;
    const auto st = Checkpoint::load(path, bytes);
    if (st != Checkpoint::LoadStatus::Ok)
        return st;

    Deserializer des(bytes);
    if (!des.verifyChecksum())
        return Checkpoint::LoadStatus::Corrupt;
    char m[sizeof(magic)];
    if (!des.bytes(m, sizeof(m)) ||
        std::memcmp(m, magic, sizeof(magic)) != 0 ||
        des.u32() != version)
        return Checkpoint::LoadStatus::Corrupt;
    out.programHash = des.u64();
    out.sampled = des.b();
    out.captured = des.b();
    out.set.totalInsts = des.u64();
    out.set.periodInsts = des.u64();
    const std::uint64_t n = des.u64();
    if (!des.ok() || n > (1u << 20))
        return Checkpoint::LoadStatus::Corrupt;
    out.set.samples.assign(std::size_t(n), SampleCheckpoint{});
    for (SampleCheckpoint &sc : out.set.samples) {
        sc.startInst = des.u64();
        sc.regionInsts = des.u64();
        sc.measureInsts = des.u64();
        const std::uint64_t len = des.u64();
        if (!des.ok() || len > bytes.size())
            return Checkpoint::LoadStatus::Corrupt;
        sc.bytes.resize(std::size_t(len));
        if (!des.bytes(sc.bytes.data(), sc.bytes.size()))
            return Checkpoint::LoadStatus::Corrupt;
    }
    return des.atEnd() ? Checkpoint::LoadStatus::Ok
                       : Checkpoint::LoadStatus::Corrupt;
}

std::string
snapshotKey(const proto::SweepRequest &req, const std::string &workload,
            std::uint64_t warmCfgHash, std::uint64_t binFingerprint)
{
    char buf[160];
    const ExecOptions &o = req.eopt;
    std::string key = workload;
    key += ".s" + std::to_string(req.popt.scale);
    key += ".";
    key += footprintName(req.popt.footprint);
    key += ".w" + std::to_string(o.warmupInsts);
    if (o.sample.enabled()) {
        std::snprintf(buf, sizeof(buf), ".S%u.m%llu.p%llu",
                      o.sample.samples,
                      static_cast<unsigned long long>(
                          o.sample.measureInsts),
                      static_cast<unsigned long long>(
                          o.sample.periodInsts));
        key += buf;
    } else {
        key += ".one";
    }
    // The cycle budget shapes capture *failure* (a boundary that was
    // unreachable within the budget is a cached negative), so a bigger
    // budget must not reuse a smaller budget's verdict.
    std::snprintf(buf, sizeof(buf), ".mc%llu.c%016llx.b%016llx",
                  static_cast<unsigned long long>(o.maxCycles),
                  static_cast<unsigned long long>(warmCfgHash),
                  static_cast<unsigned long long>(binFingerprint));
    key += buf;
    return key;
}

SnapshotCache::SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

std::string
SnapshotCache::pathFor(const std::string &key) const
{
    return dir_ + "/" + key + ".snap";
}

std::shared_ptr<const SnapshotSet>
SnapshotCache::acquire(
    const std::string &key,
    const std::function<bool(const std::string &path, std::string *err)>
        &capture,
    std::string *err, Outcome *outcome)
{
    std::shared_ptr<Entry> e;
    bool leader = false;
    {
        std::unique_lock<std::mutex> lk(m_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            e = std::make_shared<Entry>();
            entries_.emplace(key, e);
            leader = true;
        } else {
            e = it->second;
            if (e->ready) {
                ++stats_.hits;
                if (outcome)
                    *outcome = Outcome::Hit;
                return e->set;
            }
            // Single-flight: someone else is capturing this key right
            // now; wait for their verdict instead of racing a
            // redundant warm-up.
            ++stats_.waits;
            if (outcome)
                *outcome = Outcome::Wait;
            cv_.wait(lk, [&] { return e->ready || e->failed; });
            if (e->ready) {
                return e->set;
            }
            if (err)
                *err = e->error;
            return nullptr;
        }
    }

    (void)leader; // from here on this thread owns the key's capture
    const std::string path = pathFor(key);
    auto set = std::make_shared<SnapshotSet>();
    std::string localErr;
    bool ok = false;
    bool miss = false;

    const auto st = loadSnapshotSet(path, *set);
    if (st == Checkpoint::LoadStatus::Ok) {
        ok = true; // disk hit from an earlier server run
    } else {
        if (st == Checkpoint::LoadStatus::Corrupt)
            warn_once("cached snapshot set ", path,
                      " is corrupt (torn or truncated write?); "
                      "recapturing");
        miss = true;
        ok = capture(path, &localErr);
        if (ok) {
            const auto st2 = loadSnapshotSet(path, *set);
            if (st2 != Checkpoint::LoadStatus::Ok) {
                ok = false;
                localErr = "capture produced no readable snapshot "
                           "set at " +
                           path;
            }
        }
    }

    std::lock_guard<std::mutex> lk(m_);
    if (ok) {
        if (miss)
            ++stats_.misses;
        else
            ++stats_.hits;
        if (outcome)
            *outcome = miss ? Outcome::Miss : Outcome::Hit;
        e->set = std::move(set);
        e->ready = true;
    } else {
        // Failures are not cached: drop the entry so a later acquire
        // retries the capture from scratch.
        e->failed = true;
        e->error = localErr;
        entries_.erase(key);
        if (err)
            *err = localErr;
    }
    cv_.notify_all();
    return ok ? e->set : nullptr;
}

SnapshotCache::Stats
SnapshotCache::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

} // namespace sweep
} // namespace sdv
