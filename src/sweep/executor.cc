#include "sweep/executor.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <thread>

#include "common/histogram.hh"
#include "common/log.hh"
#include "common/random.hh"
#include "obs/telemetry.hh"
#include "sweep/checkpoint.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

void
stampOutcome(RunOutcome &out, const SweepJob &job)
{
    out.figure = job.figure;
    out.workload = job.workload;
    out.isFp = job.isFp;
    out.group = job.group;
    out.column = job.column;
    out.configKey = job.configKey;
    out.cfg = job.cfg;
    out.seed = job.seed;
}

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Wall-clock job watchdog (--job-timeout): one timer slot per pool
 * unit. A worker arms its slot (begin) before running a simulation and
 * disarms it (end) after; the scan thread wakes every 50 ms and trips
 * the abort flag of any armed slot past the timeout. The Simulator
 * polls that flag and stops with SimResult::timedOut set — the worker
 * thread itself is never killed, so no state is torn down mid-write.
 */
class JobWatchdog
{
  public:
    JobWatchdog(std::size_t units, std::uint64_t timeout_sec,
                std::function<std::string(std::size_t)> describe)
        : timeoutMs_(timeout_sec * 1000),
          describe_(std::move(describe)), entries_(units)
    {
        if (timeoutMs_ != 0)
            thread_ = std::thread([this] { scan(); });
    }

    ~JobWatchdog()
    {
        if (thread_.joinable()) {
            stop_.store(true, std::memory_order_relaxed);
            thread_.join();
        }
    }

    bool enabled() const { return timeoutMs_ != 0; }

    /** Arm unit @p u's timer and attach its abort flag to @p sim. */
    void
    begin(std::size_t u, Simulator &sim)
    {
        if (!enabled())
            return;
        Entry &e = entries_[u];
        e.abort.store(false, std::memory_order_relaxed);
        sim.setAbortFlag(&e.abort);
        e.startMs.store(nowMs(), std::memory_order_release);
    }

    /** Disarm unit @p u's timer (the attempt is over). */
    void
    end(std::size_t u)
    {
        if (enabled())
            entries_[u].startMs.store(0, std::memory_order_release);
    }

  private:
    struct Entry
    {
        std::atomic<std::uint64_t> startMs{0}; ///< 0 = not running
        std::atomic<bool> abort{false};
    };

    static std::uint64_t
    nowMs()
    {
        return std::uint64_t(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    void
    scan()
    {
        while (!stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            const std::uint64_t now = nowMs();
            for (std::size_t u = 0; u < entries_.size(); ++u) {
                Entry &e = entries_[u];
                const std::uint64_t t0 =
                    e.startMs.load(std::memory_order_acquire);
                if (t0 == 0 || now < t0 || now - t0 < timeoutMs_)
                    continue;
                if (!e.abort.exchange(true,
                                      std::memory_order_relaxed))
                    warn("job watchdog: aborting ", describe_(u),
                         " after ", (now - t0) / 1000, "s");
            }
        }
    }

    const std::uint64_t timeoutMs_;
    const std::function<std::string(std::size_t)> describe_;
    std::vector<Entry> entries_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** Programs used by a plan, keyed by workload, built once and
 *  pre-decoded so worker threads share them read-only. */
std::map<std::string, Program>
buildPrograms(const SweepPlan &plan)
{
    std::map<std::string, Program> programs;
    for (const SweepJob &job : plan.jobs) {
        if (programs.count(job.workload))
            continue;
        Program prog =
            buildWorkload(job.workload, plan.scale, plan.footprint);
        prog.predecodeAll();
        programs.emplace(job.workload, std::move(prog));
    }
    return programs;
}

/**
 * Capture (or reuse from disk) one warmed checkpoint per workload.
 * The warm-up configuration is the workload's first engine-enabled
 * job (falling back to its first job) — a deterministic choice, so
 * snapshots never depend on scheduling. Workloads whose program runs
 * to HALT inside the warm-up get no checkpoint and fall back to cold
 * full runs.
 *
 * Cached snapshot files are keyed by (workload, scale, warm-up
 * length) and validated against the current program and geometry
 * before being trusted; a stale or foreign file is recaptured and
 * overwritten, never silently reused.
 */
std::map<std::string, std::vector<std::uint8_t>>
captureCheckpoints(const SweepPlan &plan, const ExecOptions &opt,
                   const std::map<std::string, Program> &programs,
                   ExecMetrics *metrics)
{
    std::map<std::string, std::vector<std::uint8_t>> checkpoints;
    for (const SweepJob &job : plan.jobs) {
        if (checkpoints.count(job.workload))
            continue;

        // Deterministic warm-up config for this workload.
        const CoreConfig cfg = warmConfig(plan, opt, job.workload);
        const Program &prog = programs.at(job.workload);

        // The cache key includes every option that shapes the warm-up
        // run itself: a snapshot captured under a different chaining
        // mode holds differently-warmed caches and TL state.
        const std::string path =
            opt.checkpointDir.empty()
                ? std::string()
                : opt.checkpointDir + "/" + job.workload + ".s" +
                      std::to_string(plan.scale) + ".w" +
                      std::to_string(opt.warmupInsts) +
                      (opt.eagerChain ? ".eager" : "") + ".ckpt";

        std::vector<std::uint8_t> bytes;
        if (!path.empty()) {
            const auto st = Checkpoint::load(path, bytes);
            if (st == Checkpoint::LoadStatus::Ok) {
                Simulator probe(cfg, prog);
                if (Checkpoint::validate(probe, bytes)) {
                    checkpoints.emplace(job.workload, std::move(bytes));
                    continue;
                }
                warn("cached checkpoint ", path,
                     " is stale; recapturing");
            } else if (st == Checkpoint::LoadStatus::Corrupt) {
                // A missing file is the normal cold-cache path; a
                // present-but-damaged one means something poisoned
                // the cache and deserves visibility.
                warn_once("cached checkpoint ", path,
                          " is corrupt (torn or truncated write?); "
                          "recapturing");
            }
            bytes.clear();
        }

        Simulator sim(cfg, prog);
        if (!sim.warmup(opt.warmupInsts, opt.maxCycles)) {
            warn("workload '", job.workload,
                 "' reached no warm-up boundary (program finished or "
                 "budget elapsed); running its jobs without a "
                 "checkpoint");
            checkpoints.emplace(job.workload,
                                std::vector<std::uint8_t>{});
            continue;
        }
        bytes = Checkpoint::capture(sim);
        if (metrics) {
            ++metrics->checkpointCaptures;
            metrics->checkpointCaptureBytes += bytes.size();
        }
        if (!path.empty() && !Checkpoint::save(path, bytes))
            warn("could not write checkpoint ", path);
        checkpoints.emplace(job.workload, std::move(bytes));
    }
    return checkpoints;
}

/** Run @p worker on min(jobs, units) pool threads (1 = inline). */
void
runOnPool(unsigned jobs, std::size_t units,
          const std::function<void()> &worker)
{
    const unsigned nthreads =
        unsigned(std::min<std::size_t>(std::max(1u, jobs), units));
    if (nthreads <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

/**
 * Interval-sampled plan execution: one serial capture pass per
 * workload (under its deterministic warm-up configuration), then a
 * pool over every (job, sample) pair — each fork restores one sample
 * snapshot and measures its region — and a plan-ordered aggregation.
 * Jobs whose configuration cannot restore the snapshots (geometry
 * mismatch) fall back to exact full runs, visible via samples == 0.
 */
std::vector<RunOutcome>
runPlanSampled(const SweepPlan &plan, const ExecOptions &opt,
               const std::map<std::string, Program> &programs,
               ExecMetrics *metrics)
{
    // Capture pass (serial, scheduling-independent): the warm-up
    // configuration is the workload's first engine-enabled job, as in
    // the one-boundary checkpoint path.
    std::map<std::string, SampleSet> sets;
    for (const SweepJob &job : plan.jobs) {
        if (sets.count(job.workload))
            continue;
        const CoreConfig cfg = warmConfig(plan, opt, job.workload);
        SamplePlan sp = opt.sample;
        sp.warmupInsts = opt.warmupInsts;
        sets.emplace(job.workload,
                     captureSamples(cfg, programs.at(job.workload), sp,
                                    opt.maxCycles));
    }

    // Decide each job's mode up front (serial, so fallbacks never
    // depend on scheduling): sampled when the snapshots validate
    // against the job's configuration, exact full run otherwise.
    // Validation needs a Simulator (it binds program identity and
    // geometry), so cache the verdict per distinct (workload, config)
    // — a figure grid shares each configuration across jobs.
    std::vector<bool> jobSampled(plan.jobs.size(), false);
    std::map<std::pair<std::string, std::string>, bool> configOk;
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        const SweepJob &job = plan.jobs[i];
        const SampleSet &set = sets.at(job.workload);
        if (!set.usable())
            continue;
        const auto key = std::make_pair(job.workload, job.configKey);
        auto it = configOk.find(key);
        if (it == configOk.end()) {
            CoreConfig cfg = job.cfg;
            applyExecOverlay(cfg, opt);
            Simulator probe(cfg, programs.at(job.workload));
            // samples[0] is the cold region (no image); the first
            // warm snapshot decides whether this config can fork.
            const bool ok =
                Checkpoint::validate(probe, set.samples[1].bytes);
            if (!ok)
                warn("running ", job.workload, "/", job.configKey,
                     " as a full run (snapshot geometry mismatch)");
            it = configOk.emplace(key, ok).first;
        }
        jobSampled[i] = it->second;
    }

    // Work units: one per (sampled job, sample) plus one per full-run
    // job. Unit order is fixed; the pool only changes who runs what.
    struct Unit
    {
        std::size_t job;
        int sample; ///< -1: full run
    };
    std::vector<Unit> units;
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        if (!jobSampled[i]) {
            units.push_back({i, -1});
            continue;
        }
        const SampleSet &set = sets.at(plan.jobs[i].workload);
        for (std::size_t k = 0; k < set.samples.size(); ++k)
            units.push_back({i, int(k)});
    }

    std::vector<RunOutcome> outcomes(plan.jobs.size());
    std::vector<std::vector<SimResult>> sampleResults(plan.jobs.size());
    std::vector<std::vector<std::uint64_t>> sampleHashes(
        plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        stampOutcome(outcomes[i], plan.jobs[i]);
        if (jobSampled[i]) {
            const std::size_t n =
                sets.at(plan.jobs[i].workload).samples.size();
            sampleResults[i].resize(n);
            sampleHashes[i].assign(n, 0);
        }
    }

    // Each unit owns its wall-time slot; the per-job totals fold in
    // after the pool joins (a shared += would be a data race).
    std::vector<double> unitWall(units.size(), 0.0);
    std::vector<double> unitQueueWait(units.size(), 0.0);
    std::vector<char> unitTimedOut(units.size(), 0);
    std::atomic<std::uint64_t> restoreCount{0}, restoreBytes{0};
    const auto poolStart = std::chrono::steady_clock::now();

    JobWatchdog wd(units.size(), opt.jobTimeout,
                   [&plan, &units](std::size_t u) {
                       const SweepJob &j = plan.jobs[units[u].job];
                       std::string d = j.workload + "/" + j.configKey +
                                       " (seed " +
                                       std::to_string(j.seed) + ")";
                       if (units[u].sample >= 0)
                           d += " sample " +
                                std::to_string(units[u].sample);
                       return d;
                   });

    auto runUnit = [&](std::size_t u) {
        const Unit unit = units[u];
        const SweepJob &job = plan.jobs[unit.job];
        CoreConfig cfg = job.cfg;
        applyExecOverlay(cfg, opt);
        const Program &prog = programs.at(job.workload);
        unitQueueWait[u] = secondsSince(poolStart);
        const auto t0 = std::chrono::steady_clock::now();
        if (unit.sample < 0) {
            Simulator sim(cfg, prog);
            wd.begin(u, sim);
            outcomes[unit.job].res =
                sim.run(opt.maxCycles, false, opt.quiesceInterval);
            wd.end(u);
            unitTimedOut[u] = outcomes[unit.job].res.timedOut;
            outcomes[unit.job].commitHash = sim.core().commitPcHash();
            unitWall[u] = secondsSince(t0);
            return;
        }
        const SampleCheckpoint &sc =
            sets.at(job.workload).samples[size_t(unit.sample)];
        Simulator sim(cfg, prog);
        std::string err;
        // Empty bytes: the exact cold-start region forks from
        // reset instead of restoring a snapshot.
        if (!sc.bytes.empty()) {
            restoreCount.fetch_add(1, std::memory_order_relaxed);
            restoreBytes.fetch_add(sc.bytes.size(),
                                   std::memory_order_relaxed);
        }
        if (!sc.bytes.empty() &&
            !Checkpoint::restore(sim, sc.bytes, &err)) {
            // validate() passed serially, so this is exceptional;
            // a zero-inst measurement drops out of the weighted
            // aggregation (deterministically) instead of crashing.
            warn("sample restore failed for ", job.workload, "/",
                 job.configKey, ": ", err);
            return;
        }
        wd.begin(u, sim);
        SimResult r = sim.runInsts(sc.measureInsts, opt.maxCycles);
        wd.end(u);
        unitTimedOut[u] = r.timedOut;
        // An aborted sample contributes nothing (like a failed
        // restore): zero-inst measurements drop out of the weighted
        // aggregation deterministically.
        if (r.timedOut)
            return;
        sampleHashes[unit.job][size_t(unit.sample)] =
            sim.core().commitPcHash();
        sampleResults[unit.job][size_t(unit.sample)] = std::move(r);
        unitWall[u] = secondsSince(t0);
    };

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t u = next.fetch_add(1); u < units.size();
             u = next.fetch_add(1))
            runUnit(u);
    };
    runOnPool(opt.jobs, units.size(), worker);
    if (metrics) {
        metrics->poolWallSeconds = secondsSince(poolStart);
        metrics->workers = unsigned(std::min<std::size_t>(
            std::max(1u, opt.jobs), units.size()));
        metrics->checkpointRestores =
            restoreCount.load(std::memory_order_relaxed);
        metrics->checkpointRestoreBytes =
            restoreBytes.load(std::memory_order_relaxed);
    }

    // Watchdog retry pass: aborted units re-run once, serially, with a
    // fresh timer each.
    if (wd.enabled()) {
        for (std::size_t u = 0; u < units.size(); ++u) {
            if (!unitTimedOut[u])
                continue;
            const SweepJob &j = plan.jobs[units[u].job];
            warn("job watchdog: retrying ", j.workload, "/",
                 j.configKey, " serially");
            unitTimedOut[u] = 0;
            runUnit(u);
            outcomes[units[u].job].retried = true;
        }
        for (std::size_t u = 0; u < units.size(); ++u)
            if (unitTimedOut[u])
                outcomes[units[u].job].timedOut = true;
    }

    // Plan-ordered aggregation: a pure integer fold of the per-sample
    // measurements, independent of which thread measured what.
    const auto collate0 = std::chrono::steady_clock::now();
    for (std::size_t u = 0; u < units.size(); ++u)
        outcomes[units[u].job].wallSeconds += unitWall[u];
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        if (!jobSampled[i])
            continue;
        const SampleSet &set = sets.at(plan.jobs[i].workload);
        outcomes[i].res = aggregateSamples(set, sampleResults[i]);
        outcomes[i].commitHash = foldSampleHashes(sampleHashes[i]);
        outcomes[i].fromCheckpoint = true;
        outcomes[i].samples = unsigned(set.samples.size());
    }
    if (metrics) {
        metrics->collateSeconds = secondsSince(collate0);
        metrics->jobs.resize(plan.jobs.size());
        for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
            ExecMetrics::JobMetrics &jm = metrics->jobs[i];
            jm.workload = plan.jobs[i].workload;
            jm.configKey = plan.jobs[i].configKey;
            jm.queueWaitSeconds = -1.0; // min over the job's units
            jm.runSeconds = outcomes[i].wallSeconds;
        }
        for (std::size_t u = 0; u < units.size(); ++u) {
            ExecMetrics::JobMetrics &jm = metrics->jobs[units[u].job];
            if (jm.queueWaitSeconds < 0.0 ||
                unitQueueWait[u] < jm.queueWaitSeconds)
                jm.queueWaitSeconds = unitQueueWait[u];
        }
        for (ExecMetrics::JobMetrics &jm : metrics->jobs) {
            if (jm.queueWaitSeconds < 0.0)
                jm.queueWaitSeconds = 0.0;
            metrics->busySeconds += jm.runSeconds;
        }
    }
    return outcomes;
}

} // namespace

FaultPlan
jobFaultPlan(const FaultPlan &base, const SweepJob &job)
{
    FaultPlan plan = base;
    if (plan.enabled)
        plan.seed = deriveSeed(job.workload, "fault:" + job.configKey,
                               base.seed);
    return plan;
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 1;
}

void
applyExecOverlay(CoreConfig &cfg, const ExecOptions &opt)
{
    cfg.eventSkip = opt.eventSkip;
    cfg.traceExec = opt.trace;
    cfg.engine.eagerChainLoads = opt.eagerChain;
}

CoreConfig
warmConfig(const SweepPlan &plan, const ExecOptions &opt,
           const std::string &workload)
{
    const SweepJob *warm_job = nullptr;
    for (const SweepJob &j : plan.jobs) {
        if (j.workload != workload)
            continue;
        if (!warm_job)
            warm_job = &j;
        if (j.cfg.engine.enabled) {
            warm_job = &j;
            break;
        }
    }
    sdv_assert(warm_job, "warmConfig: workload not in plan");
    CoreConfig cfg = warm_job->cfg;
    applyExecOverlay(cfg, opt);
    return cfg;
}

std::vector<RunOutcome>
runPlan(const SweepPlan &plan, const ExecOptions &opt,
        ExecMetrics *metrics)
{
    if (metrics) {
        *metrics = ExecMetrics{};
        metrics->enabled = true;
        metrics->jobsAuto = opt.jobsAutoDetected;
    }
    const std::map<std::string, Program> programs = buildPrograms(plan);

    if (opt.sample.enabled()) {
        sdv_assert(!opt.verify,
                   "interval sampling produces estimates that cannot "
                   "be functionally verified; drop --verify");
        return runPlanSampled(plan, opt, programs, metrics);
    }

    std::map<std::string, std::vector<std::uint8_t>> checkpoints;
    if (opt.checkpoint)
        checkpoints = captureCheckpoints(plan, opt, programs, metrics);

    std::vector<RunOutcome> outcomes(plan.jobs.size());
    JobWatchdog wd(plan.jobs.size(), opt.jobTimeout,
                   [&plan](std::size_t u) {
                       const SweepJob &j = plan.jobs[u];
                       return j.workload + "/" + j.configKey +
                              " (seed " + std::to_string(j.seed) + ")";
                   });

    std::vector<double> jobQueueWait(plan.jobs.size(), 0.0);
    std::atomic<std::uint64_t> restoreCount{0}, restoreBytes{0};
    const auto poolStart = std::chrono::steady_clock::now();

    auto runJob = [&](std::size_t i) {
        const SweepJob &job = plan.jobs[i];
        RunOutcome &out = outcomes[i];
        stampOutcome(out, job);

        jobQueueWait[i] = secondsSince(poolStart);
        const auto t0 = std::chrono::steady_clock::now();
        CoreConfig cfg = job.cfg;
        applyExecOverlay(cfg, opt);
        cfg.engine.fault = jobFaultPlan(opt.fault, job);
        out.cfg = cfg; ///< resolved config (fault plan, chaining mode)
        const Program &prog = programs.at(job.workload);
        std::optional<Simulator> sim;
        sim.emplace(cfg, prog);

        if (opt.checkpoint) {
            const auto &bytes = checkpoints.at(job.workload);
            // A job whose configuration cannot take the snapshot
            // (e.g. an ablation entry varying checkpointed
            // geometry such as the TL confidence) runs from cold
            // instead — deterministic per job, and visible in the
            // output via from_checkpoint. A failed restore may
            // leave partial state, so the cold path rebuilds the
            // simulator from scratch.
            std::string err;
            if (!bytes.empty() && Checkpoint::validate(*sim, bytes) &&
                Checkpoint::restore(*sim, bytes, &err)) {
                out.fromCheckpoint = true;
                restoreCount.fetch_add(1, std::memory_order_relaxed);
                restoreBytes.fetch_add(bytes.size(),
                                       std::memory_order_relaxed);
            } else if (!bytes.empty()) {
                warn("running ", job.workload, "/", job.configKey,
                     " cold", err.empty() ? "" : ": ", err);
                sim.emplace(cfg, prog);
            }
        }

        // Flight recorder + interval telemetry (pure observation: the
        // simulated outcome is bit-identical with or without them).
        obs::IntervalTelemetry telemetry(
            opt.telemetryInterval ? opt.telemetryInterval : 1);
        if (opt.traceEvents) {
            out.trace = std::make_shared<obs::TraceRecorder>();
            out.trace->configure(opt.traceCategories, opt.traceLast);
            sim->setRecorder(out.trace.get());
        }
        if (opt.telemetryInterval)
            sim->setTelemetry(&telemetry);

        wd.begin(i, *sim);
        out.res = sim->run(opt.maxCycles, opt.verify,
                           opt.checkpoint ? 0 : opt.quiesceInterval);
        wd.end(i);
        out.timedOut = out.res.timedOut;
        out.commitHash = sim->core().commitPcHash();
        out.wallSeconds = secondsSince(t0);
        if (opt.telemetryInterval)
            out.telemetryJson = telemetry.toJson();
    };

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < plan.jobs.size();
             i = next.fetch_add(1))
            runJob(i);
    };
    runOnPool(opt.jobs, plan.jobs.size(), worker);

    // Watchdog retry pass: every aborted job gets one serial re-run
    // with an uncontended machine and a fresh timer. A job that times
    // out again stays marked failed (timedOut && !finished).
    if (wd.enabled()) {
        for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
            if (!outcomes[i].timedOut)
                continue;
            warn("job watchdog: retrying ", plan.jobs[i].workload, "/",
                 plan.jobs[i].configKey, " serially");
            outcomes[i] = RunOutcome{};
            runJob(i);
            outcomes[i].retried = true;
        }
    }
    if (metrics) {
        metrics->poolWallSeconds = secondsSince(poolStart);
        metrics->workers = unsigned(std::min<std::size_t>(
            std::max(1u, opt.jobs), plan.jobs.size()));
        metrics->checkpointRestores =
            restoreCount.load(std::memory_order_relaxed);
        metrics->checkpointRestoreBytes =
            restoreBytes.load(std::memory_order_relaxed);
        metrics->jobs.resize(plan.jobs.size());
        for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
            ExecMetrics::JobMetrics &jm = metrics->jobs[i];
            jm.workload = plan.jobs[i].workload;
            jm.configKey = plan.jobs[i].configKey;
            jm.queueWaitSeconds = jobQueueWait[i];
            jm.runSeconds = outcomes[i].wallSeconds;
            metrics->busySeconds += jm.runSeconds;
        }
    }
    return outcomes;
}

std::string
resultRecordJson(const RunOutcome &o)
{
    std::string out;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"bench\": \"sweep:%s\", \"workload\": \"%s\", "
        "\"config\": \"%s\", \"cycles\": %llu, \"insts\": %llu, "
        "\"ipc\": %.4f, \"commit_hash\": \"0x%016llx\", "
        "\"finished\": %s, \"from_checkpoint\": %s, "
        "\"seed\": %llu, \"val_mismatches\": %llu",
        o.figure.c_str(), o.workload.c_str(), o.configKey.c_str(),
        static_cast<unsigned long long>(o.res.cycles),
        static_cast<unsigned long long>(o.res.insts), o.res.ipc,
        static_cast<unsigned long long>(o.commitHash),
        o.res.finished ? "true" : "false",
        o.fromCheckpoint ? "true" : "false",
        static_cast<unsigned long long>(o.seed),
        static_cast<unsigned long long>(
            o.res.engine.validationValueMismatches));
    out += buf;
    // Sampled estimates carry their sample count; exact runs keep
    // the pre-sampling record layout byte for byte.
    if (o.samples > 0) {
        std::snprintf(buf, sizeof(buf), ", \"samples\": %u",
                      o.samples);
        out += buf;
    }
    // Every field below appears only when its mode was active, so
    // default-mode documents stay byte-identical to the checked-in
    // baselines.
    if (o.timedOut || o.retried) {
        std::snprintf(buf, sizeof(buf),
                      ", \"timed_out\": %s, \"retried\": %s",
                      o.timedOut ? "true" : "false",
                      o.retried ? "true" : "false");
        out += buf;
    }
    if (o.res.core.quiesceEvents > 0) {
        // Transient-exposure report of the timing-channel
        // experiments (--quiesce-interval): speculative state
        // alive at each boundary plus the register lifetime
        // histogram (ascending 4x buckets from < 8 cycles).
        std::snprintf(
            buf, sizeof(buf),
            ", \"quiesce_events\": %llu, "
            "\"quiesce_live_vregs\": %llu, "
            "\"quiesce_transient_elems\": %llu",
            static_cast<unsigned long long>(
                o.res.core.quiesceEvents),
            static_cast<unsigned long long>(
                o.res.core.quiesceLiveVregs),
            static_cast<unsigned long long>(
                o.res.core.quiesceTransientElems));
        out += buf;
        out += ", \"vreg_lifetime_hist\": ";
        out += bucketArrayJson(o.res.fates.lifetimeHist, 8);
    }
    if (o.cfg.engine.fault.armed()) {
        std::snprintf(
            buf, sizeof(buf),
            ", \"fault_elem_flips\": %llu, "
            "\"fault_vrmt_flips\": %llu, "
            "\"faults_detected\": %llu, "
            "\"faults_benign\": %llu, "
            "\"faults_vanished\": %llu, "
            "\"chain_demotions\": %llu, "
            "\"chain_reenables\": %llu, "
            "\"fault_tl_flips\": %llu, "
            "\"fault_gmrbb_flips\": %llu",
            static_cast<unsigned long long>(
                o.res.engine.faultElemFlips),
            static_cast<unsigned long long>(
                o.res.engine.faultVrmtFlips),
            static_cast<unsigned long long>(
                o.res.engine.faultValidationDetects +
                o.res.engine.faultTaintDetects +
                o.res.engine.faultVrmtDetects),
            static_cast<unsigned long long>(
                o.res.engine.faultValidationBenign),
            static_cast<unsigned long long>(
                o.res.fates.faultInjectedVanished +
                o.res.fates.faultTaintVanished),
            static_cast<unsigned long long>(
                o.res.engine.faultChainDemotions),
            static_cast<unsigned long long>(
                o.res.engine.faultChainReenables),
            static_cast<unsigned long long>(
                o.res.engine.faultTlFlips),
            static_cast<unsigned long long>(
                o.res.engine.faultGmrbbFlips));
        out += buf;
    }
    // Interval telemetry rides along only when it was sampled
    // (--telemetry): default-mode records stay byte-identical.
    if (!o.telemetryJson.empty() && o.telemetryJson != "[]") {
        out += ", \"telemetry\": ";
        out += o.telemetryJson;
    }
    out += "}";
    return out;
}

std::string
resultsJson(const std::vector<RunOutcome> &outcomes)
{
    // Assembled from the same per-record serializer the server streams
    // over the wire, so served and in-process output cannot diverge.
    std::string out = "[\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        out += resultRecordJson(outcomes[i]);
        out += i + 1 < outcomes.size() ? ",\n" : "\n";
    }
    out += "]";
    return out;
}

std::vector<obs::TraceSource>
traceSources(const std::vector<RunOutcome> &outcomes)
{
    std::vector<obs::TraceSource> sources;
    for (const RunOutcome &o : outcomes)
        if (o.trace)
            sources.push_back(
                {o.trace.get(), o.workload + "/" + o.configKey});
    return sources;
}

std::string
ExecMetrics::toJson() const
{
    char buf[256];
    std::string out = "{";
    std::snprintf(
        buf, sizeof(buf),
        "\"workers\": %u, \"jobs_auto\": %s, "
        "\"pool_wall_seconds\": %.6f, "
        "\"busy_seconds\": %.6f, \"utilization\": %.4f, "
        "\"collate_seconds\": %.6f",
        workers, jobsAuto ? "true" : "false", poolWallSeconds,
        busySeconds, utilization(), collateSeconds);
    out += buf;
    if (serve) {
        std::snprintf(
            buf, sizeof(buf),
            ", \"serve\": {\"cache_hits\": %llu, "
            "\"cache_misses\": %llu, \"cache_waits\": %llu, "
            "\"units_dispatched\": %llu, \"unit_retries\": %llu, "
            "\"worker_restarts\": %llu, \"queue_depth_peak\": %llu, "
            "\"request_seconds\": %.6f, \"worker_loads\": [",
            static_cast<unsigned long long>(cacheHits),
            static_cast<unsigned long long>(cacheMisses),
            static_cast<unsigned long long>(cacheWaits),
            static_cast<unsigned long long>(unitsDispatched),
            static_cast<unsigned long long>(unitRetries),
            static_cast<unsigned long long>(workerRestarts),
            static_cast<unsigned long long>(queueDepthPeak),
            requestSeconds);
        out += buf;
        for (std::size_t i = 0; i < workerLoads.size(); ++i) {
            const WorkerLoad &w = workerLoads[i];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"pid\": %d, \"units\": %llu, "
                          "\"busy_seconds\": %.6f}",
                          i ? ", " : "", w.pid,
                          static_cast<unsigned long long>(w.units),
                          w.busySeconds);
            out += buf;
        }
        out += "]";
        std::snprintf(
            buf, sizeof(buf),
            ", \"hang_kills\": %llu, \"deadline_failures\": %llu, "
            "\"cache_evictions\": %llu, \"cache_gc_removed\": %llu, "
            "\"cache_disk_bytes\": %llu, "
            "\"queue_wait_avg_seconds\": %.6f, "
            "\"queue_wait_max_seconds\": %.6f, \"client_waits\": [",
            static_cast<unsigned long long>(hangKills),
            static_cast<unsigned long long>(deadlineFailures),
            static_cast<unsigned long long>(cacheEvictions),
            static_cast<unsigned long long>(cacheGcRemoved),
            static_cast<unsigned long long>(cacheDiskBytes),
            queueWaitAvgSeconds, queueWaitMaxSeconds);
        out += buf;
        for (std::size_t i = 0; i < clientWaits.size(); ++i) {
            const ClientWait &c = clientWaits[i];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"client\": %llu, \"priority\": %u, "
                "\"units\": %llu, \"wait_avg_seconds\": %.6f, "
                "\"wait_max_seconds\": %.6f}",
                i ? ", " : "",
                static_cast<unsigned long long>(c.clientId),
                c.priority,
                static_cast<unsigned long long>(c.units),
                c.waitAvgSeconds, c.waitMaxSeconds);
            out += buf;
        }
        out += "]}";
    }
    std::snprintf(
        buf, sizeof(buf),
        ", \"checkpoint_captures\": %llu, "
        "\"checkpoint_capture_bytes\": %llu, "
        "\"checkpoint_restores\": %llu, "
        "\"checkpoint_restore_bytes\": %llu",
        static_cast<unsigned long long>(checkpointCaptures),
        static_cast<unsigned long long>(checkpointCaptureBytes),
        static_cast<unsigned long long>(checkpointRestores),
        static_cast<unsigned long long>(checkpointRestoreBytes));
    out += buf;
    out += ", \"jobs\": [";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobMetrics &j = jobs[i];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"workload\": \"%s\", \"config\": \"%s\", "
                      "\"queue_wait_seconds\": %.6f, "
                      "\"run_seconds\": %.6f}",
                      i ? ", " : "", j.workload.c_str(),
                      j.configKey.c_str(), j.queueWaitSeconds,
                      j.runSeconds);
        out += buf;
    }
    out += "]}";
    return out;
}

std::string
ExecMetrics::summaryTable() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "executor: %u worker%s%s, pool %.2fs, busy %.2fs "
                  "(%.0f%% utilization), collate %.3fs\n",
                  workers, workers == 1 ? "" : "s",
                  jobsAuto ? " (auto)" : "", poolWallSeconds,
                  busySeconds, utilization() * 100.0, collateSeconds);
    out += buf;
    if (serve) {
        std::snprintf(
            buf, sizeof(buf),
            "serve: cache %llu hit / %llu miss / %llu wait, "
            "%llu units (%llu retried), %llu worker restarts, "
            "queue peak %llu, request %.2fs\n",
            static_cast<unsigned long long>(cacheHits),
            static_cast<unsigned long long>(cacheMisses),
            static_cast<unsigned long long>(cacheWaits),
            static_cast<unsigned long long>(unitsDispatched),
            static_cast<unsigned long long>(unitRetries),
            static_cast<unsigned long long>(workerRestarts),
            static_cast<unsigned long long>(queueDepthPeak),
            requestSeconds);
        out += buf;
        std::snprintf(
            buf, sizeof(buf),
            "serve: %llu hang kills, %llu deadline failures, "
            "cache %llu evicted / %llu GCed (%llu bytes on disk), "
            "queue wait avg %.3fs max %.3fs\n",
            static_cast<unsigned long long>(hangKills),
            static_cast<unsigned long long>(deadlineFailures),
            static_cast<unsigned long long>(cacheEvictions),
            static_cast<unsigned long long>(cacheGcRemoved),
            static_cast<unsigned long long>(cacheDiskBytes),
            queueWaitAvgSeconds, queueWaitMaxSeconds);
        out += buf;
    }
    if (checkpointCaptures || checkpointRestores) {
        std::snprintf(
            buf, sizeof(buf),
            "checkpoints: %llu captured (%llu bytes), %llu restored "
            "(%llu bytes)\n",
            static_cast<unsigned long long>(checkpointCaptures),
            static_cast<unsigned long long>(checkpointCaptureBytes),
            static_cast<unsigned long long>(checkpointRestores),
            static_cast<unsigned long long>(checkpointRestoreBytes));
        out += buf;
    }
    out += "  queue-wait      run  job\n";
    for (const JobMetrics &j : jobs) {
        std::snprintf(buf, sizeof(buf), "  %9.3fs %7.2fs  %s/%s\n",
                      j.queueWaitSeconds, j.runSeconds,
                      j.workload.c_str(), j.configKey.c_str());
        out += buf;
    }
    return out;
}

bool
writeJsonDoc(const std::string &path, const std::string &planName,
             unsigned scale, Footprint footprint,
             const ExecOptions &opt, const std::string &resultsArray,
             double wall_seconds, const std::string &execMetricsJson)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    // Footprint and sampling metadata appear only when used, so the
    // default-mode document stays byte-identical to pre-sampling runs.
    std::string extra;
    if (footprint != Footprint::Base)
        extra += std::string(", \"footprint\": \"") +
                 footprintName(footprint) + "\"";
    if (opt.sample.enabled()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ", \"samples\": %u, \"measure_insts\": %llu",
                      opt.sample.samples,
                      static_cast<unsigned long long>(
                          opt.sample.measureInsts));
        extra += buf;
    }
    // Host-side executor metrics appear only when collected
    // (--metrics-summary / --metrics): the default-mode document stays
    // byte-identical to the checked-in baselines.
    std::string exec_metrics;
    if (!execMetricsJson.empty())
        exec_metrics = "\"exec_metrics\": " + execMetricsJson + ",\n";
    std::fprintf(
        f,
        "{\n\"sweep\": {\"plan\": \"%s\", \"scale\": %u, "
        "\"event_skip\": %s, \"trace\": %s, \"checkpoint\": %s, "
        "\"warmup_insts\": %llu%s, \"wall_seconds\": %.6f},\n"
        "%s\"results\": %s\n}\n",
        planName.c_str(), scale, opt.eventSkip ? "true" : "false",
        opt.trace ? "true" : "false",
        opt.checkpoint ? "true" : "false",
        static_cast<unsigned long long>(opt.warmupInsts), extra.c_str(),
        wall_seconds, exec_metrics.c_str(), resultsArray.c_str());
    std::fclose(f);
    return true;
}

bool
writeJsonFile(const std::string &path, const SweepPlan &plan,
              const ExecOptions &opt,
              const std::vector<RunOutcome> &outcomes,
              double wall_seconds, const ExecMetrics *metrics)
{
    return writeJsonDoc(path, plan.name, plan.scale, plan.footprint,
                        opt, resultsJson(outcomes), wall_seconds,
                        metrics && metrics->enabled ? metrics->toJson()
                                                    : std::string());
}

} // namespace sweep
} // namespace sdv
