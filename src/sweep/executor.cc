#include "sweep/executor.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <thread>

#include "common/log.hh"
#include "sweep/checkpoint.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Programs used by a plan, keyed by workload, built once and
 *  pre-decoded so worker threads share them read-only. */
std::map<std::string, Program>
buildPrograms(const SweepPlan &plan)
{
    std::map<std::string, Program> programs;
    for (const SweepJob &job : plan.jobs) {
        if (programs.count(job.workload))
            continue;
        Program prog =
            buildWorkload(job.workload, plan.scale, plan.footprint);
        prog.predecodeAll();
        programs.emplace(job.workload, std::move(prog));
    }
    return programs;
}

/**
 * Capture (or reuse from disk) one warmed checkpoint per workload.
 * The warm-up configuration is the workload's first engine-enabled
 * job (falling back to its first job) — a deterministic choice, so
 * snapshots never depend on scheduling. Workloads whose program runs
 * to HALT inside the warm-up get no checkpoint and fall back to cold
 * full runs.
 *
 * Cached snapshot files are keyed by (workload, scale, warm-up
 * length) and validated against the current program and geometry
 * before being trusted; a stale or foreign file is recaptured and
 * overwritten, never silently reused.
 */
std::map<std::string, std::vector<std::uint8_t>>
captureCheckpoints(const SweepPlan &plan, const ExecOptions &opt,
                   const std::map<std::string, Program> &programs)
{
    std::map<std::string, std::vector<std::uint8_t>> checkpoints;
    for (const SweepJob &job : plan.jobs) {
        if (checkpoints.count(job.workload))
            continue;

        // Deterministic warm-up config for this workload.
        const SweepJob *warm_job = &job;
        for (const SweepJob &j : plan.jobs)
            if (j.workload == job.workload && j.cfg.engine.enabled) {
                warm_job = &j;
                break;
            }

        CoreConfig cfg = warm_job->cfg;
        cfg.eventSkip = opt.eventSkip;
        cfg.engine.eagerChainLoads = opt.eagerChain;
        const Program &prog = programs.at(job.workload);

        // The cache key includes every option that shapes the warm-up
        // run itself: a snapshot captured under a different chaining
        // mode holds differently-warmed caches and TL state.
        const std::string path =
            opt.checkpointDir.empty()
                ? std::string()
                : opt.checkpointDir + "/" + job.workload + ".s" +
                      std::to_string(plan.scale) + ".w" +
                      std::to_string(opt.warmupInsts) +
                      (opt.eagerChain ? ".eager" : "") + ".ckpt";

        std::vector<std::uint8_t> bytes;
        if (!path.empty() && Checkpoint::load(path, bytes)) {
            Simulator probe(cfg, prog);
            if (Checkpoint::validate(probe, bytes)) {
                checkpoints.emplace(job.workload, std::move(bytes));
                continue;
            }
            warn("cached checkpoint ", path,
                 " is stale; recapturing");
            bytes.clear();
        }

        Simulator sim(cfg, prog);
        if (!sim.warmup(opt.warmupInsts, opt.maxCycles)) {
            warn("workload '", job.workload,
                 "' reached no warm-up boundary (program finished or "
                 "budget elapsed); running its jobs without a "
                 "checkpoint");
            checkpoints.emplace(job.workload,
                                std::vector<std::uint8_t>{});
            continue;
        }
        bytes = Checkpoint::capture(sim);
        if (!path.empty() && !Checkpoint::save(path, bytes))
            warn("could not write checkpoint ", path);
        checkpoints.emplace(job.workload, std::move(bytes));
    }
    return checkpoints;
}

/** Run @p worker on min(jobs, units) pool threads (1 = inline). */
void
runOnPool(unsigned jobs, std::size_t units,
          const std::function<void()> &worker)
{
    const unsigned nthreads =
        unsigned(std::min<std::size_t>(std::max(1u, jobs), units));
    if (nthreads <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

/** Fill the identity fields of @p out from @p job. */
void
stampOutcome(RunOutcome &out, const SweepJob &job)
{
    out.figure = job.figure;
    out.workload = job.workload;
    out.isFp = job.isFp;
    out.group = job.group;
    out.column = job.column;
    out.configKey = job.configKey;
    out.cfg = job.cfg;
    out.seed = job.seed;
}

/**
 * Interval-sampled plan execution: one serial capture pass per
 * workload (under its deterministic warm-up configuration), then a
 * pool over every (job, sample) pair — each fork restores one sample
 * snapshot and measures its region — and a plan-ordered aggregation.
 * Jobs whose configuration cannot restore the snapshots (geometry
 * mismatch) fall back to exact full runs, visible via samples == 0.
 */
std::vector<RunOutcome>
runPlanSampled(const SweepPlan &plan, const ExecOptions &opt,
               const std::map<std::string, Program> &programs)
{
    // Capture pass (serial, scheduling-independent): the warm-up
    // configuration is the workload's first engine-enabled job, as in
    // the one-boundary checkpoint path.
    std::map<std::string, SampleSet> sets;
    for (const SweepJob &job : plan.jobs) {
        if (sets.count(job.workload))
            continue;
        const SweepJob *warm_job = &job;
        for (const SweepJob &j : plan.jobs)
            if (j.workload == job.workload && j.cfg.engine.enabled) {
                warm_job = &j;
                break;
            }
        CoreConfig cfg = warm_job->cfg;
        cfg.eventSkip = opt.eventSkip;
        cfg.engine.eagerChainLoads = opt.eagerChain;
        SamplePlan sp = opt.sample;
        sp.warmupInsts = opt.warmupInsts;
        sets.emplace(job.workload,
                     captureSamples(cfg, programs.at(job.workload), sp,
                                    opt.maxCycles));
    }

    // Decide each job's mode up front (serial, so fallbacks never
    // depend on scheduling): sampled when the snapshots validate
    // against the job's configuration, exact full run otherwise.
    // Validation needs a Simulator (it binds program identity and
    // geometry), so cache the verdict per distinct (workload, config)
    // — a figure grid shares each configuration across jobs.
    std::vector<bool> jobSampled(plan.jobs.size(), false);
    std::map<std::pair<std::string, std::string>, bool> configOk;
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        const SweepJob &job = plan.jobs[i];
        const SampleSet &set = sets.at(job.workload);
        if (!set.usable())
            continue;
        const auto key = std::make_pair(job.workload, job.configKey);
        auto it = configOk.find(key);
        if (it == configOk.end()) {
            CoreConfig cfg = job.cfg;
            cfg.eventSkip = opt.eventSkip;
            cfg.engine.eagerChainLoads = opt.eagerChain;
            Simulator probe(cfg, programs.at(job.workload));
            // samples[0] is the cold region (no image); the first
            // warm snapshot decides whether this config can fork.
            const bool ok =
                Checkpoint::validate(probe, set.samples[1].bytes);
            if (!ok)
                warn("running ", job.workload, "/", job.configKey,
                     " as a full run (snapshot geometry mismatch)");
            it = configOk.emplace(key, ok).first;
        }
        jobSampled[i] = it->second;
    }

    // Work units: one per (sampled job, sample) plus one per full-run
    // job. Unit order is fixed; the pool only changes who runs what.
    struct Unit
    {
        std::size_t job;
        int sample; ///< -1: full run
    };
    std::vector<Unit> units;
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        if (!jobSampled[i]) {
            units.push_back({i, -1});
            continue;
        }
        const SampleSet &set = sets.at(plan.jobs[i].workload);
        for (std::size_t k = 0; k < set.samples.size(); ++k)
            units.push_back({i, int(k)});
    }

    std::vector<RunOutcome> outcomes(plan.jobs.size());
    std::vector<std::vector<SimResult>> sampleResults(plan.jobs.size());
    std::vector<std::vector<std::uint64_t>> sampleHashes(
        plan.jobs.size());
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        stampOutcome(outcomes[i], plan.jobs[i]);
        if (jobSampled[i]) {
            const std::size_t n =
                sets.at(plan.jobs[i].workload).samples.size();
            sampleResults[i].resize(n);
            sampleHashes[i].assign(n, 0);
        }
    }

    // Each unit owns its wall-time slot; the per-job totals fold in
    // after the pool joins (a shared += would be a data race).
    std::vector<double> unitWall(units.size(), 0.0);

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (std::size_t u = next.fetch_add(1); u < units.size();
             u = next.fetch_add(1)) {
            const Unit unit = units[u];
            const SweepJob &job = plan.jobs[unit.job];
            CoreConfig cfg = job.cfg;
            cfg.eventSkip = opt.eventSkip;
            cfg.engine.eagerChainLoads = opt.eagerChain;
            const Program &prog = programs.at(job.workload);
            const auto t0 = std::chrono::steady_clock::now();
            if (unit.sample < 0) {
                Simulator sim(cfg, prog);
                outcomes[unit.job].res =
                    sim.run(opt.maxCycles, false, opt.quiesceInterval);
                outcomes[unit.job].commitHash =
                    sim.core().commitPcHash();
                unitWall[u] = secondsSince(t0);
                continue;
            }
            const SampleCheckpoint &sc =
                sets.at(job.workload).samples[size_t(unit.sample)];
            Simulator sim(cfg, prog);
            std::string err;
            // Empty bytes: the exact cold-start region forks from
            // reset instead of restoring a snapshot.
            if (!sc.bytes.empty() &&
                !Checkpoint::restore(sim, sc.bytes, &err)) {
                // validate() passed serially, so this is exceptional;
                // a zero-inst measurement drops out of the weighted
                // aggregation (deterministically) instead of crashing.
                warn("sample restore failed for ", job.workload, "/",
                     job.configKey, ": ", err);
                continue;
            }
            SimResult r = sim.runInsts(sc.measureInsts, opt.maxCycles);
            sampleHashes[unit.job][size_t(unit.sample)] =
                sim.core().commitPcHash();
            sampleResults[unit.job][size_t(unit.sample)] = std::move(r);
            unitWall[u] = secondsSince(t0);
        }
    };
    runOnPool(opt.jobs, units.size(), worker);

    // Plan-ordered aggregation: a pure integer fold of the per-sample
    // measurements, independent of which thread measured what.
    for (std::size_t u = 0; u < units.size(); ++u)
        outcomes[units[u].job].wallSeconds += unitWall[u];
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
        if (!jobSampled[i])
            continue;
        const SampleSet &set = sets.at(plan.jobs[i].workload);
        outcomes[i].res = aggregateSamples(set, sampleResults[i]);
        outcomes[i].commitHash = foldSampleHashes(sampleHashes[i]);
        outcomes[i].fromCheckpoint = true;
        outcomes[i].samples = unsigned(set.samples.size());
    }
    return outcomes;
}

} // namespace

std::vector<RunOutcome>
runPlan(const SweepPlan &plan, const ExecOptions &opt)
{
    const std::map<std::string, Program> programs = buildPrograms(plan);

    if (opt.sample.enabled()) {
        sdv_assert(!opt.verify,
                   "interval sampling produces estimates that cannot "
                   "be functionally verified; drop --verify");
        return runPlanSampled(plan, opt, programs);
    }

    std::map<std::string, std::vector<std::uint8_t>> checkpoints;
    if (opt.checkpoint)
        checkpoints = captureCheckpoints(plan, opt, programs);

    std::vector<RunOutcome> outcomes(plan.jobs.size());
    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < plan.jobs.size();
             i = next.fetch_add(1)) {
            const SweepJob &job = plan.jobs[i];
            RunOutcome &out = outcomes[i];
            stampOutcome(out, job);

            const auto t0 = std::chrono::steady_clock::now();
            CoreConfig cfg = job.cfg;
            cfg.eventSkip = opt.eventSkip;
            cfg.engine.eagerChainLoads = opt.eagerChain;
            const Program &prog = programs.at(job.workload);
            std::optional<Simulator> sim;
            sim.emplace(cfg, prog);

            if (opt.checkpoint) {
                const auto &bytes = checkpoints.at(job.workload);
                // A job whose configuration cannot take the snapshot
                // (e.g. an ablation entry varying checkpointed
                // geometry such as the TL confidence) runs from cold
                // instead — deterministic per job, and visible in the
                // output via from_checkpoint. A failed restore may
                // leave partial state, so the cold path rebuilds the
                // simulator from scratch.
                std::string err;
                if (!bytes.empty() &&
                    Checkpoint::validate(*sim, bytes) &&
                    Checkpoint::restore(*sim, bytes, &err)) {
                    out.fromCheckpoint = true;
                } else if (!bytes.empty()) {
                    warn("running ", job.workload, "/", job.configKey,
                         " cold", err.empty() ? "" : ": ", err);
                    sim.emplace(cfg, prog);
                }
            }

            out.res = sim->run(opt.maxCycles, opt.verify,
                               opt.checkpoint ? 0 : opt.quiesceInterval);
            out.commitHash = sim->core().commitPcHash();
            out.wallSeconds = secondsSince(t0);
        }
    };
    runOnPool(opt.jobs, plan.jobs.size(), worker);
    return outcomes;
}

std::string
resultsJson(const std::vector<RunOutcome> &outcomes)
{
    std::string out = "[\n";
    char buf[512];
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &o = outcomes[i];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"bench\": \"sweep:%s\", \"workload\": \"%s\", "
            "\"config\": \"%s\", \"cycles\": %llu, \"insts\": %llu, "
            "\"ipc\": %.4f, \"commit_hash\": \"0x%016llx\", "
            "\"finished\": %s, \"from_checkpoint\": %s, "
            "\"seed\": %llu, \"val_mismatches\": %llu",
            o.figure.c_str(), o.workload.c_str(), o.configKey.c_str(),
            static_cast<unsigned long long>(o.res.cycles),
            static_cast<unsigned long long>(o.res.insts), o.res.ipc,
            static_cast<unsigned long long>(o.commitHash),
            o.res.finished ? "true" : "false",
            o.fromCheckpoint ? "true" : "false",
            static_cast<unsigned long long>(o.seed),
            static_cast<unsigned long long>(
                o.res.engine.validationValueMismatches));
        out += buf;
        // Sampled estimates carry their sample count; exact runs keep
        // the pre-sampling record layout byte for byte.
        if (o.samples > 0) {
            std::snprintf(buf, sizeof(buf), ", \"samples\": %u",
                          o.samples);
            out += buf;
        }
        out += i + 1 < outcomes.size() ? "},\n" : "}\n";
    }
    out += "]";
    return out;
}

bool
writeJsonFile(const std::string &path, const SweepPlan &plan,
              const ExecOptions &opt,
              const std::vector<RunOutcome> &outcomes,
              double wall_seconds)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    // Footprint and sampling metadata appear only when used, so the
    // default-mode document stays byte-identical to pre-sampling runs.
    std::string extra;
    if (plan.footprint != Footprint::Base)
        extra += std::string(", \"footprint\": \"") +
                 footprintName(plan.footprint) + "\"";
    if (opt.sample.enabled()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ", \"samples\": %u, \"measure_insts\": %llu",
                      opt.sample.samples,
                      static_cast<unsigned long long>(
                          opt.sample.measureInsts));
        extra += buf;
    }
    std::fprintf(
        f,
        "{\n\"sweep\": {\"plan\": \"%s\", \"scale\": %u, "
        "\"event_skip\": %s, \"checkpoint\": %s, "
        "\"warmup_insts\": %llu%s, \"wall_seconds\": %.6f},\n"
        "\"results\": %s\n}\n",
        plan.name.c_str(), plan.scale, opt.eventSkip ? "true" : "false",
        opt.checkpoint ? "true" : "false",
        static_cast<unsigned long long>(opt.warmupInsts), extra.c_str(),
        wall_seconds, resultsJson(outcomes).c_str());
    std::fclose(f);
    return true;
}

} // namespace sweep
} // namespace sdv
