#include "sweep/executor.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <thread>

#include "common/log.hh"
#include "sweep/checkpoint.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Programs used by a plan, keyed by workload, built once and
 *  pre-decoded so worker threads share them read-only. */
std::map<std::string, Program>
buildPrograms(const SweepPlan &plan)
{
    std::map<std::string, Program> programs;
    for (const SweepJob &job : plan.jobs) {
        if (programs.count(job.workload))
            continue;
        Program prog = buildWorkload(job.workload, plan.scale);
        prog.predecodeAll();
        programs.emplace(job.workload, std::move(prog));
    }
    return programs;
}

/**
 * Capture (or reuse from disk) one warmed checkpoint per workload.
 * The warm-up configuration is the workload's first engine-enabled
 * job (falling back to its first job) — a deterministic choice, so
 * snapshots never depend on scheduling. Workloads whose program runs
 * to HALT inside the warm-up get no checkpoint and fall back to cold
 * full runs.
 *
 * Cached snapshot files are keyed by (workload, scale, warm-up
 * length) and validated against the current program and geometry
 * before being trusted; a stale or foreign file is recaptured and
 * overwritten, never silently reused.
 */
std::map<std::string, std::vector<std::uint8_t>>
captureCheckpoints(const SweepPlan &plan, const ExecOptions &opt,
                   const std::map<std::string, Program> &programs)
{
    std::map<std::string, std::vector<std::uint8_t>> checkpoints;
    for (const SweepJob &job : plan.jobs) {
        if (checkpoints.count(job.workload))
            continue;

        // Deterministic warm-up config for this workload.
        const SweepJob *warm_job = &job;
        for (const SweepJob &j : plan.jobs)
            if (j.workload == job.workload && j.cfg.engine.enabled) {
                warm_job = &j;
                break;
            }

        CoreConfig cfg = warm_job->cfg;
        cfg.eventSkip = opt.eventSkip;
        const Program &prog = programs.at(job.workload);

        const std::string path =
            opt.checkpointDir.empty()
                ? std::string()
                : opt.checkpointDir + "/" + job.workload + ".s" +
                      std::to_string(plan.scale) + ".w" +
                      std::to_string(opt.warmupInsts) + ".ckpt";

        std::vector<std::uint8_t> bytes;
        if (!path.empty() && Checkpoint::load(path, bytes)) {
            Simulator probe(cfg, prog);
            if (Checkpoint::validate(probe, bytes)) {
                checkpoints.emplace(job.workload, std::move(bytes));
                continue;
            }
            warn("cached checkpoint ", path,
                 " is stale; recapturing");
            bytes.clear();
        }

        Simulator sim(cfg, prog);
        if (!sim.warmup(opt.warmupInsts, opt.maxCycles)) {
            warn("workload '", job.workload,
                 "' reached no warm-up boundary (program finished or "
                 "budget elapsed); running its jobs without a "
                 "checkpoint");
            checkpoints.emplace(job.workload,
                                std::vector<std::uint8_t>{});
            continue;
        }
        bytes = Checkpoint::capture(sim);
        if (!path.empty() && !Checkpoint::save(path, bytes))
            warn("could not write checkpoint ", path);
        checkpoints.emplace(job.workload, std::move(bytes));
    }
    return checkpoints;
}

} // namespace

std::vector<RunOutcome>
runPlan(const SweepPlan &plan, const ExecOptions &opt)
{
    const std::map<std::string, Program> programs = buildPrograms(plan);

    std::map<std::string, std::vector<std::uint8_t>> checkpoints;
    if (opt.checkpoint)
        checkpoints = captureCheckpoints(plan, opt, programs);

    std::vector<RunOutcome> outcomes(plan.jobs.size());
    std::atomic<std::size_t> next{0};

    auto worker = [&]() {
        for (std::size_t i = next.fetch_add(1); i < plan.jobs.size();
             i = next.fetch_add(1)) {
            const SweepJob &job = plan.jobs[i];
            RunOutcome &out = outcomes[i];
            out.figure = job.figure;
            out.workload = job.workload;
            out.isFp = job.isFp;
            out.group = job.group;
            out.column = job.column;
            out.configKey = job.configKey;
            out.cfg = job.cfg;
            out.seed = job.seed;

            const auto t0 = std::chrono::steady_clock::now();
            CoreConfig cfg = job.cfg;
            cfg.eventSkip = opt.eventSkip;
            const Program &prog = programs.at(job.workload);
            std::optional<Simulator> sim;
            sim.emplace(cfg, prog);

            if (opt.checkpoint) {
                const auto &bytes = checkpoints.at(job.workload);
                // A job whose configuration cannot take the snapshot
                // (e.g. an ablation entry varying checkpointed
                // geometry such as the TL confidence) runs from cold
                // instead — deterministic per job, and visible in the
                // output via from_checkpoint. A failed restore may
                // leave partial state, so the cold path rebuilds the
                // simulator from scratch.
                std::string err;
                if (!bytes.empty() &&
                    Checkpoint::validate(*sim, bytes) &&
                    Checkpoint::restore(*sim, bytes, &err)) {
                    out.fromCheckpoint = true;
                } else if (!bytes.empty()) {
                    warn("running ", job.workload, "/", job.configKey,
                         " cold", err.empty() ? "" : ": ", err);
                    sim.emplace(cfg, prog);
                }
            }

            out.res = sim->run(opt.maxCycles, opt.verify);
            out.commitHash = sim->core().commitPcHash();
            out.wallSeconds = secondsSince(t0);
        }
    };

    const unsigned nthreads =
        std::min<std::size_t>(std::max(1u, opt.jobs), plan.jobs.size());
    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (unsigned t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return outcomes;
}

std::string
resultsJson(const std::vector<RunOutcome> &outcomes)
{
    std::string out = "[\n";
    char buf[512];
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &o = outcomes[i];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"bench\": \"sweep:%s\", \"workload\": \"%s\", "
            "\"config\": \"%s\", \"cycles\": %llu, \"insts\": %llu, "
            "\"ipc\": %.4f, \"commit_hash\": \"0x%016llx\", "
            "\"finished\": %s, \"from_checkpoint\": %s, "
            "\"seed\": %llu}%s\n",
            o.figure.c_str(), o.workload.c_str(), o.configKey.c_str(),
            static_cast<unsigned long long>(o.res.cycles),
            static_cast<unsigned long long>(o.res.insts), o.res.ipc,
            static_cast<unsigned long long>(o.commitHash),
            o.res.finished ? "true" : "false",
            o.fromCheckpoint ? "true" : "false",
            static_cast<unsigned long long>(o.seed),
            i + 1 < outcomes.size() ? "," : "");
        out += buf;
    }
    out += "]";
    return out;
}

bool
writeJsonFile(const std::string &path, const SweepPlan &plan,
              const ExecOptions &opt,
              const std::vector<RunOutcome> &outcomes,
              double wall_seconds)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(
        f,
        "{\n\"sweep\": {\"plan\": \"%s\", \"scale\": %u, "
        "\"event_skip\": %s, \"checkpoint\": %s, "
        "\"warmup_insts\": %llu, \"wall_seconds\": %.6f},\n"
        "\"results\": %s\n}\n",
        plan.name.c_str(), plan.scale, opt.eventSkip ? "true" : "false",
        opt.checkpoint ? "true" : "false",
        static_cast<unsigned long long>(opt.warmupInsts), wall_seconds,
        resultsJson(outcomes).c_str());
    std::fclose(f);
    return true;
}

} // namespace sweep
} // namespace sdv
