/**
 * @file
 * Declarative sweep plans: the (workload x configuration) grid behind
 * every figure of the paper, expressed once in a registry instead of
 * re-enumerated by each hand-rolled bench main. A SweepPlan is a flat,
 * ordered job list the executor runs — serially or on a thread pool —
 * with bit-identical results either way.
 */

#ifndef SDV_SWEEP_PLAN_HH
#define SDV_SWEEP_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

/** One configuration column of a figure's grid. */
struct GridConfig
{
    /** Table section the column belongs to ("8w", "4w"; empty when the
     *  figure has a single section). */
    std::string group;

    /** Bare column label as rendered in the figure ("1pV", "real"). */
    std::string column;

    CoreConfig cfg;

    /** @return the unique config key used in JSON output
     *  ("8w/1pV" or just "real" for single-section figures). */
    std::string
    key() const
    {
        return group.empty() ? column : group + "/" + column;
    }
};

/** One simulation of a sweep. */
struct SweepJob
{
    std::string figure;      ///< originating figure ("fig11")
    std::string workload;    ///< workload name ("go")
    bool isFp = false;       ///< SpecFP member (table sectioning)
    std::string group;       ///< grid section ("8w"; may be empty)
    std::string column;      ///< bare config column label ("1pV")
    std::string configKey;   ///< unique config key ("8w/1pV")
    CoreConfig cfg;          ///< full machine configuration
    /** Per-job RNG stream seed, derived from (workload, configKey,
     *  base seed) — never from scheduling order. */
    std::uint64_t seed = 0;
};

/** An ordered list of jobs (workload-major, grid order within). */
struct SweepPlan
{
    std::string name;   ///< plan/figure name ("fig11")
    std::string title;  ///< one-line description
    unsigned scale = 1; ///< workload scale the jobs were built for
    Footprint footprint = Footprint::Base; ///< working-set regime
    std::vector<SweepJob> jobs;
};

/** Options applied while instantiating a plan. */
struct PlanOptions
{
    unsigned scale = 1;        ///< workload scale factor (>= 1)
    Footprint footprint = Footprint::Base; ///< working-set regime
    bool quick = false;        ///< first two INT + first FP only
    std::uint64_t baseSeed = 0; ///< base of the per-job seed derivation
};

/** Registry entry: a named plan and what it regenerates. */
struct PlanInfo
{
    std::string name;
    std::string title;
};

/** @return every registered plan (figures, ablations and "all"). */
const std::vector<PlanInfo> &allPlans();

/** @return true when @p name names a registered plan. */
bool havePlan(const std::string &name);

/**
 * @return the configuration grid of figure/plan @p name (without the
 * workload dimension). Fatal on unknown names; "all" has no single
 * grid and is also fatal here.
 */
std::vector<GridConfig> figureGrid(const std::string &name);

/**
 * Instantiate plan @p name over the (quick-filtered) workload suite.
 * Job order is workload-major with the figure's grid order within
 * each workload — the exact order the legacy bench mains used.
 */
SweepPlan buildPlan(const std::string &name, const PlanOptions &opt);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_PLAN_HH
