#include "sweep/worker.hh"

#include <atomic>
#include <csignal>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include <unistd.h>

#include "common/log.hh"
#include "sweep/checkpoint.hh"
#include "sweep/executor.hh"
#include "sweep/proto.hh"
#include "sweep/snapshot_cache.hh"
#include "workloads/workload.hh"

namespace sdv {
namespace sweep {

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Per-worker memoization: requests of one grid reuse the built plan,
 *  the pre-decoded programs and the loaded snapshot sets across all
 *  the units this worker runs. */
struct WorkerCaches
{
    std::map<std::string, SweepPlan> plans;
    std::map<std::string, Program> programs;
    std::map<std::string, std::shared_ptr<const SnapshotSet>> sets;

    const SweepPlan &
    plan(const proto::SweepRequest &req)
    {
        const std::string key =
            req.plan + "|" + std::to_string(req.popt.scale) + "|" +
            footprintName(req.popt.footprint) + "|" +
            (req.popt.quick ? "q" : "f") + "|" +
            std::to_string(req.popt.baseSeed);
        auto it = plans.find(key);
        if (it == plans.end())
            it = plans.emplace(key, buildPlan(req.plan, req.popt))
                     .first;
        return it->second;
    }

    const Program &
    program(const std::string &workload, const PlanOptions &popt)
    {
        const std::string key = workload + "|" +
                                std::to_string(popt.scale) + "|" +
                                footprintName(popt.footprint);
        auto it = programs.find(key);
        if (it == programs.end()) {
            Program prog =
                buildWorkload(workload, popt.scale, popt.footprint);
            prog.predecodeAll();
            it = programs.emplace(key, std::move(prog)).first;
        }
        return it->second;
    }

    /** @return the snapshot set at @p path, or nullptr when it cannot
     *  be read (the server only names paths it just published). */
    const SnapshotSet *
    snapshot(const std::string &path)
    {
        auto it = sets.find(path);
        if (it == sets.end()) {
            auto s = std::make_shared<SnapshotSet>();
            if (loadSnapshotSet(path, *s) !=
                Checkpoint::LoadStatus::Ok)
                return nullptr;
            it = sets.emplace(path,
                              std::shared_ptr<const SnapshotSet>(
                                  std::move(s)))
                     .first;
        }
        return it->second.get();
    }
};

/** Capture unit: run the workload's capture pass under its
 *  deterministic warm-up configuration and publish the snapshot set
 *  atomically at the requested path. */
proto::UnitResult
runCaptureUnit(const proto::UnitRequest &u, WorkerCaches &caches)
{
    proto::UnitResult res;
    res.id = u.id;

    const SweepPlan &plan = caches.plan(u.req);
    const Program &prog = caches.program(u.workload, u.req.popt);
    const CoreConfig cfg = warmConfig(plan, u.req.eopt, u.workload);

    SnapshotSet s;
    s.programHash = prog.identityHash();
    if (u.req.eopt.sample.enabled()) {
        SamplePlan sp = u.req.eopt.sample;
        sp.warmupInsts = u.req.eopt.warmupInsts;
        s.sampled = true;
        s.set = captureSamples(cfg, prog, sp, u.req.eopt.maxCycles);
        s.captured = s.set.usable();
    } else {
        s.sampled = false;
        s.set.samples.resize(1);
        Simulator sim(cfg, prog);
        if (sim.warmup(u.req.eopt.warmupInsts, u.req.eopt.maxCycles)) {
            s.captured = true;
            s.set.samples[0].bytes = Checkpoint::capture(sim);
        }
        // else: captured == false, empty image — a cached negative,
        // exactly the serial path's "run this workload cold" verdict.
    }

    if (!saveSnapshotSet(u.snapshotPath, s)) {
        res.message = "could not publish snapshot set at " +
                      u.snapshotPath;
        return res;
    }
    res.ok = true;
    res.captured = s.captured;
    res.programHash = s.programHash;
    return res;
}

/** Run unit: one job (full) or one (job, sample) fork, mirroring the
 *  corresponding in-process executor path statement for statement. */
proto::UnitResult
runRunUnit(const proto::UnitRequest &u, WorkerCaches &caches)
{
    proto::UnitResult res;
    res.id = u.id;

    const ExecOptions &opt = u.req.eopt;
    const SweepPlan &plan = caches.plan(u.req);
    if (u.jobIndex >= plan.jobs.size()) {
        res.message = "job index out of range";
        return res;
    }
    const SweepJob &job = plan.jobs[u.jobIndex];
    const Program &prog = caches.program(job.workload, u.req.popt);

    CoreConfig cfg = job.cfg;
    applyExecOverlay(cfg, opt);

    if (u.sample < 0 && !opt.sample.enabled()) {
        // Exact full run (runPlan's runJob): fault plan applied, one
        // optional checkpoint restore, quiesce interval honored on
        // non-checkpointed runs.
        cfg.engine.fault = jobFaultPlan(opt.fault, job);
        std::optional<Simulator> sim;
        sim.emplace(cfg, prog);
        if (opt.checkpoint && !u.snapshotPath.empty()) {
            const SnapshotSet *s = caches.snapshot(u.snapshotPath);
            if (!s) {
                res.message = "could not load snapshot set " +
                              u.snapshotPath;
                return res;
            }
            const std::vector<std::uint8_t> &bytes =
                s->set.samples.at(0).bytes;
            std::string err;
            if (!bytes.empty() &&
                Checkpoint::validate(*sim, bytes) &&
                Checkpoint::restore(*sim, bytes, &err)) {
                res.fromCheckpoint = true;
            } else if (!bytes.empty()) {
                warn("running ", job.workload, "/", job.configKey,
                     " cold", err.empty() ? "" : ": ", err);
                sim.emplace(cfg, prog);
            }
        }
        res.res = sim->run(opt.maxCycles, opt.verify,
                           opt.checkpoint ? 0 : opt.quiesceInterval);
        res.commitHash = sim->core().commitPcHash();
        res.ok = true;
        return res;
    }

    if (u.sample < 0) {
        // Sampled-mode full-run fallback (runPlanSampled's runUnit,
        // sample < 0 branch): no fault plan, verify off.
        Simulator sim(cfg, prog);
        res.res = sim.run(opt.maxCycles, false, opt.quiesceInterval);
        res.commitHash = sim.core().commitPcHash();
        res.ok = true;
        return res;
    }

    // Per-sample fork: restore (or fork from reset for the cold
    // region) and measure. Failed restores and aborted measurements
    // contribute zeroed results — exactly the serial path's
    // deterministic drop-out-of-the-weighting semantics.
    const SnapshotSet *s = caches.snapshot(u.snapshotPath);
    if (!s) {
        res.message = "could not load snapshot set " + u.snapshotPath;
        return res;
    }
    if (std::size_t(u.sample) >= s->set.samples.size()) {
        res.message = "sample index out of range";
        return res;
    }
    const SampleCheckpoint &sc = s->set.samples[std::size_t(u.sample)];
    Simulator sim(cfg, prog);
    std::string err;
    if (!sc.bytes.empty() && !Checkpoint::restore(sim, sc.bytes, &err)) {
        warn("sample restore failed for ", job.workload, "/",
             job.configKey, ": ", err);
        res.ok = true; // zero contribution, like the serial path
        return res;
    }
    const SimResult r = sim.runInsts(sc.measureInsts, opt.maxCycles);
    if (r.timedOut) {
        res.ok = true; // zero contribution
        return res;
    }
    res.res = r;
    res.commitHash = sim.core().commitPcHash();
    res.ok = true;
    return res;
}

} // namespace

int
workerMain(const std::string &socketPath)
{
    ::signal(SIGPIPE, SIG_IGN);

    std::string err;
    const int fd = proto::connectUnix(socketPath, &err);
    if (fd < 0) {
        warn("sweep worker: ", err);
        return 1;
    }
    proto::Framed link(fd);
    proto::Hello hello;
    hello.pid = ::getpid();
    if (!link.send(proto::MsgType::HelloWorker, hello.encode()))
        return 1;

    // Heartbeat thread: while a unit executes, a Progress frame every
    // kHeartbeatMs tells the server this worker is alive. The send
    // mutex serializes it against result writes (Framed is not
    // internally synchronized).
    std::mutex sendMu;
    std::atomic<bool> beatActive{false};
    std::atomic<bool> beatStop{false};
    std::atomic<std::uint64_t> beatUnit{0};
    std::thread beater([&] {
        while (!beatStop.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(proto::kHeartbeatMs));
            if (!beatActive.load())
                continue;
            proto::ProgressMsg p;
            p.unitId = beatUnit.load();
            std::lock_guard<std::mutex> lk(sendMu);
            link.send(proto::MsgType::Progress, p.encode());
        }
    });

    WorkerCaches caches;
    proto::MsgType type;
    std::vector<std::uint8_t> payload;
    while (link.recv(type, payload)) {
        if (type == proto::MsgType::Shutdown)
            break;
        if (type != proto::MsgType::UnitRequest)
            continue;
        proto::UnitRequest u;
        if (!proto::UnitRequest::decode(payload, u)) {
            warn("sweep worker: malformed unit request; exiting");
            beatStop.store(true);
            beater.join();
            return 1;
        }
        // Chaos hooks fired before work: die or go silent, so the
        // server's crash-requeue and hang-detection paths are
        // exercised deterministically.
        if (u.chaosMode == proto::ChaosMode::Exit)
            ::_exit(1);
        if (u.chaosMode == proto::ChaosMode::Hang) {
            // Hold the unit, never heartbeat: the server must declare
            // us hung, SIGKILL us and requeue the unit elsewhere.
            for (;;)
                ::usleep(100000);
        }

        beatUnit.store(u.id);
        beatActive.store(true);
        const auto t0 = std::chrono::steady_clock::now();
        proto::UnitResult res = u.kind == proto::UnitKind::Capture
                                    ? runCaptureUnit(u, caches)
                                    : runRunUnit(u, caches);
        res.wallSeconds = secondsSince(t0);

        if (u.chaosMode == proto::ChaosMode::Delay) {
            // Slow-but-alive: heartbeats keep flowing through the
            // stall, so the server must NOT mistake us for hung.
            ::usleep(useconds_t(u.chaosParam) * 1000);
        }
        beatActive.store(false);

        if (u.chaosMode == proto::ChaosMode::Corrupt) {
            // Flip one payload byte after sealing: the server's frame
            // checksum must reject it and treat this worker as dead.
            std::vector<std::uint8_t> p = res.encode();
            p[p.size() / 2] ^= 0x01;
            std::lock_guard<std::mutex> lk(sendMu);
            link.send(proto::MsgType::UnitResult, p);
            break;
        }
        if (u.chaosMode == proto::ChaosMode::Trunc) {
            // Promise a full frame, deliver half, die: the server's
            // read loop must fail cleanly mid-frame.
            const std::vector<std::uint8_t> p = res.encode();
            {
                std::lock_guard<std::mutex> lk(sendMu);
                link.sendTruncated(proto::MsgType::UnitResult, p,
                                   p.size() / 2);
            }
            ::_exit(1);
        }

        bool sent;
        {
            std::lock_guard<std::mutex> lk(sendMu);
            sent = u.chaosMode == proto::ChaosMode::Dribble
                       ? link.sendChunked(proto::MsgType::UnitResult,
                                          res.encode(), 64, 500)
                       : link.send(proto::MsgType::UnitResult,
                                   res.encode());
        }
        if (!sent)
            break;
    }
    beatStop.store(true);
    beater.join();
    return 0;
}

pid_t
spawnWorkerProcess(const std::string &exe,
                   const std::string &socketPath)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    // Child: exec immediately — nothing but async-signal-safe calls
    // between fork and exec (the parent is threaded).
    ::execl(exe.c_str(), exe.c_str(), "--worker", "--socket",
            socketPath.c_str(), static_cast<char *>(nullptr));
    ::_exit(127);
}

} // namespace sweep
} // namespace sdv
