/**
 * @file
 * Checkpoint / fast-forward for configuration sweeps: capture a
 * simulator at a warmed measurement boundary (Simulator::warmup) and
 * fork any number of configurations from the snapshot instead of
 * re-simulating the warm-up per configuration.
 *
 * A checkpoint carries the architectural state (registers, PC, sparse
 * memory image, execution progress) and the configuration-independent
 * warm micro-architectural state: cache tags/LRU, branch predictors
 * (gshare, BTB, RAS) and the engine's Table of Loads stride tables.
 * Transient vector state is released at the boundary (context-switch
 * semantics, exactly as warmup() does on the straight-through path),
 * which is what makes restore-then-run bit-identical to
 * warmup-then-continue — see tests/test_sweep.cc.
 *
 * The byte image is integrity-checked (magic, version, FNV-1a
 * checksum) and bound to the program identity and the component
 * geometry, so truncated, corrupted or mismatched snapshots are
 * rejected before any simulator state is touched.
 */

#ifndef SDV_SWEEP_CHECKPOINT_HH
#define SDV_SWEEP_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace sdv {
namespace sweep {

/** Checkpoint capture / restore entry points. */
class Checkpoint
{
  public:
    /**
     * Serialize @p sim's warm state. The simulator must sit at a
     * measurement boundary (right after Simulator::warmup); capture
     * does not modify it.
     */
    static std::vector<std::uint8_t> capture(Simulator &sim);

    /**
     * Restore @p bytes into a freshly-constructed simulator. The
     * target may use a different CoreConfig as long as the warm
     * components' geometry matches (cache shapes, predictor sizes, TL
     * shape) — the Table 1 grid varies width/ports/bus/engine, all of
     * which are compatible.
     *
     * @retval false (and sets @p error) on a corrupted or truncated
     * image, a program mismatch, or a geometry mismatch; the simulator
     * is left unusable and must be discarded in that case
     */
    static bool restore(Simulator &sim,
                        const std::vector<std::uint8_t> &bytes,
                        std::string *error = nullptr);

    /**
     * Header-only validation: is @p bytes an intact image, captured
     * from @p sim's program, restorable into @p sim's configuration?
     * Touches no simulator state — used to vet cached snapshot files
     * before trusting them (a stale file is recaptured instead).
     */
    static bool validate(Simulator &sim,
                         const std::vector<std::uint8_t> &bytes);

    /**
     * Like validate(), but without a Simulator: checks integrity
     * (checksum, magic, version) and geometry compatibility against
     * @p cfg, and reports the image's program identity hash via
     * @p programHash for the caller to compare. The sweep server vets
     * cached snapshots this way — it never builds programs itself.
     */
    static bool validateImage(const CoreConfig &cfg,
                              const std::vector<std::uint8_t> &bytes,
                              std::uint64_t *programHash = nullptr,
                              std::string *error = nullptr);

    /**
     * Write a checkpoint image to @p path atomically: the bytes land
     * in a same-directory temp file first and are rename()d into
     * place, so a reader racing a writer (or a crash mid-write) can
     * never observe a torn image at @p path. @retval false on I/O
     * error (the temp file is removed).
     */
    static bool save(const std::string &path,
                     const std::vector<std::uint8_t> &bytes);

    /** Outcome of load(): distinguishes an absent cache file (normal
     *  cold-cache path) from a present-but-damaged one (torn write,
     *  truncation, bit rot) so poisoning is visible to callers. */
    enum class LoadStatus { Ok, Missing, Corrupt };

    /** Read a checkpoint image from @p path and verify its trailing
     *  checksum. @retval Missing when the file does not exist,
     *  Corrupt when it exists but cannot be read back as an intact
     *  image (header/program/geometry checks still happen later, in
     *  restore()/validate()). */
    static LoadStatus load(const std::string &path,
                           std::vector<std::uint8_t> &out);
};

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_CHECKPOINT_HH
