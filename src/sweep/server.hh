/**
 * @file
 * The sweep work-server (`sdv_sweep --serve`): a long-lived daemon
 * that listens on a Unix domain socket, decomposes incoming sweep
 * requests into the executor's self-contained (config × sample) work
 * units, dispatches them to a pool of worker *processes* (one crash
 * cannot take down the service or other requests), and streams each
 * client its plan-ordered result records as the completed prefix
 * grows — collation never waits for the whole request.
 *
 * Determinism contract: the served record stream is byte-identical to
 * what the in-process executor (runPlan) serializes for the same
 * request. The server builds the identical plan, derives the identical
 * per-job configurations/seeds/fault plans, shares the executor's
 * record serializer (resultRecordJson), and the workers mirror the
 * executor's per-unit simulation paths — so sharding across N workers
 * (or machines; the protocol is address-agnostic) changes wall-clock
 * only.
 *
 * Capture passes are deduplicated across requests by the process-wide
 * SnapshotCache: concurrent clients asking for the same grid share one
 * warmup (single-flight), and the resulting snapshot sets persist in
 * the cache directory across daemon restarts.
 *
 * Serve-mode deviations from the in-process executor (documented in
 * docs/sweep.md): ExecOptions host-side knobs are not part of a
 * request — `jobs` (the daemon owns its pool size), `jobTimeout` (no
 * watchdog; a wedged unit wedges its worker, not the daemon) and the
 * observability sinks (serve mode produces deterministic records).
 */

#ifndef SDV_SWEEP_SERVER_HH
#define SDV_SWEEP_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sweep/proto.hh"
#include "sweep/snapshot_cache.hh"

namespace sdv {
namespace sweep {

class SweepServer
{
  public:
    struct Options
    {
        std::string socketPath; ///< Unix socket to listen on
        /** Worker processes (0 = auto: hardware_concurrency - 1, the
         *  same resolveJobs rule as `--jobs 0`). */
        unsigned workers = 0;
        std::string cacheDir;   ///< snapshot-cache directory
        std::string workerExe;  ///< binary to spawn as `--worker`
        bool verbose = false;   ///< per-request log lines on stderr
    };

    explicit SweepServer(Options opt);
    ~SweepServer();

    /** Bind the socket, fingerprint the worker binary and spawn the
     *  worker pool. @retval false (with @p err) when the socket or
     *  cache directory cannot be set up. */
    bool start(std::string *err);

    /** Accept/serve until stop(); joins every connection handler and
     *  reaps every worker before returning. */
    void run();

    /** Ask run() to wind down (safe from any thread, including
     *  connection handlers — a client Shutdown frame lands here). */
    void stop();

    unsigned workerCount() const { return numWorkers_; }

  private:
    /** One queued work unit with its completion continuation. */
    struct PendingUnit
    {
        proto::UnitRequest msg;
        std::function<void(proto::UnitResult &&)> done;
        unsigned attempts = 0;
    };

    /** Lifetime load tally of one worker process. */
    struct WorkerState
    {
        std::uint64_t units = 0;
        double busySeconds = 0.0;
    };

    void acceptLoop(int listenFd);
    void handleConnection(int fd);
    void workerLoop(const std::shared_ptr<proto::Framed> &link,
                    int pid);
    void clientLoop(const std::shared_ptr<proto::Framed> &link);
    void handleSubmit(proto::Framed &link,
                      const std::vector<std::uint8_t> &payload);

    void enqueue(const std::shared_ptr<PendingUnit> &u, bool front);
    std::shared_ptr<PendingUnit> popUnit();
    /** A worker died holding @p u: retry it (chaos hook cleared) or,
     *  past the attempt cap, fail it to its continuation. */
    void requeueAfterCrash(const std::shared_ptr<PendingUnit> &u);
    void failPendingUnits(const char *why);

    const Options opt_;
    unsigned numWorkers_ = 0;
    std::uint64_t binFingerprint_ = 0;
    int listenFd_ = -1;
    SnapshotCache cache_;

    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> nextUnitId_{1};

    std::mutex qm_;
    std::condition_variable qcv_;
    std::deque<std::shared_ptr<PendingUnit>> queue_;
    std::uint64_t queueDepthPeak_ = 0;

    std::mutex sm_; ///< guards threads_, conns_, workers_, counters
    std::vector<std::thread> threads_;
    std::vector<std::weak_ptr<proto::Framed>> conns_;
    std::map<int, WorkerState> workers_; ///< pid -> lifetime load
    std::vector<int> workerPids_;
    std::uint64_t unitRetries_ = 0;
    std::uint64_t workerRestarts_ = 0;
};

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_SERVER_HH
