/**
 * @file
 * The sweep work-server (`sdv_sweep --serve`): a long-lived daemon
 * that listens on a Unix domain socket, decomposes incoming sweep
 * requests into the executor's self-contained (config × sample) work
 * units, dispatches them to a pool of worker *processes* (one crash
 * cannot take down the service or other requests), and streams each
 * client its plan-ordered result records as the completed prefix
 * grows — collation never waits for the whole request.
 *
 * Determinism contract: the served record stream is byte-identical to
 * what the in-process executor (runPlan) serializes for the same
 * request. The server builds the identical plan, derives the identical
 * per-job configurations/seeds/fault plans, shares the executor's
 * record serializer (resultRecordJson), and the workers mirror the
 * executor's per-unit simulation paths — so sharding across N workers
 * (or machines; the protocol is address-agnostic) changes wall-clock
 * only.
 *
 * Capture passes are deduplicated across requests by the process-wide
 * SnapshotCache: concurrent clients asking for the same grid share one
 * warmup (single-flight), and the resulting snapshot sets persist in
 * the cache directory across daemon restarts.
 *
 * Serve-mode deviations from the in-process executor (documented in
 * docs/sweep.md): ExecOptions host-side knobs are not part of a
 * request — `jobs` (the daemon owns its pool size), `jobTimeout` (no
 * watchdog; a wedged unit wedges its worker, not the daemon) and the
 * observability sinks (serve mode produces deterministic records).
 */

#ifndef SDV_SWEEP_SERVER_HH
#define SDV_SWEEP_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sweep/proto.hh"
#include "sweep/snapshot_cache.hh"

namespace sdv {
namespace sweep {

/** One queued work unit with its completion continuation plus the
 *  scheduling context the fair-share queue and the deadline/heartbeat
 *  machinery need. */
struct PendingUnit
{
    proto::UnitRequest msg;
    std::function<void(proto::UnitResult &&)> done;
    unsigned attempts = 0;

    std::uint64_t clientId = 0;  ///< fair-share bucket
    std::uint32_t priority = 1;  ///< hello priority (dispatch weight)
    std::chrono::steady_clock::time_point enqueuedAt;
    double waitSeconds = 0.0;    ///< stamped at dispatch

    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline;
};

/**
 * Weighted per-client round-robin unit queue (the fair-share
 * scheduler): units are bucketed by client, and dispatch rotates
 * across clients giving each `priority` consecutive units per turn —
 * a 1000-unit batch client cannot starve an interactive one, and a
 * priority-4 client drains ~4x faster than a priority-1 one under
 * contention. Not internally synchronized (the server holds its queue
 * mutex); standalone so the scheduling policy is unit-testable.
 */
class FairShareQueue
{
  public:
    /** Enqueue @p u in its client's bucket (@p front: crash-retry
     *  priority — the unit goes back to its bucket's head). */
    void push(const std::shared_ptr<PendingUnit> &u, bool front);

    /** Dispatch the next unit per the rotation, or nullptr. */
    std::shared_ptr<PendingUnit> pop();

    /** Remove and return every queued unit (shutdown drain). */
    std::vector<std::shared_ptr<PendingUnit>> drain();

    std::size_t size() const { return total_; }
    bool empty() const { return total_ == 0; }

  private:
    struct ClientBucket
    {
        std::deque<std::shared_ptr<PendingUnit>> q;
        std::uint32_t priority = 1;
        std::uint32_t burstLeft = 0; ///< dispatches left this turn
    };

    std::map<std::uint64_t, ClientBucket> buckets_;
    std::uint64_t cursor_ = 0;  ///< client currently holding the turn
    bool cursorValid_ = false;
    std::size_t total_ = 0;
};

class SweepServer
{
  public:
    struct Options
    {
        std::string socketPath; ///< Unix socket to listen on
        /** Worker processes (0 = auto: hardware_concurrency - 1, the
         *  same resolveJobs rule as `--jobs 0`). */
        unsigned workers = 0;
        std::string cacheDir;   ///< snapshot-cache directory
        std::string workerExe;  ///< binary to spawn as `--worker`
        bool verbose = false;   ///< per-request log lines on stderr
        /** Snapshot-cache disk budget in MB (0 = unbounded). */
        std::uint64_t cacheLimitMb = 0;
        /** A worker silent for this long while holding a unit is
         *  declared hung, SIGKILLed and respawned (workers heartbeat
         *  every proto::kHeartbeatMs while executing). */
        unsigned hangTimeoutMs = 2000;
    };

    explicit SweepServer(Options opt);
    ~SweepServer();

    /** Bind the socket, fingerprint the worker binary and spawn the
     *  worker pool. @retval false (with @p err) when the socket or
     *  cache directory cannot be set up. */
    bool start(std::string *err);

    /** Accept/serve until stop(); joins every connection handler and
     *  reaps every worker before returning. */
    void run();

    /** Ask run() to wind down (safe from any thread, including
     *  connection handlers — a client Shutdown frame lands here). */
    void stop();

    unsigned workerCount() const { return numWorkers_; }

  private:
    /** Lifetime load tally of one worker process. */
    struct WorkerState
    {
        std::uint64_t units = 0;
        double busySeconds = 0.0;
    };

    /** Lifetime wait/dispatch tally of one client connection. */
    struct ClientStat
    {
        std::uint32_t priority = 1;
        std::uint64_t units = 0;
        double waitSum = 0.0;
        double waitMax = 0.0;
    };

    void acceptLoop(int listenFd);
    void handleConnection(int fd);
    void workerLoop(const std::shared_ptr<proto::Framed> &link,
                    int pid);
    void clientLoop(const std::shared_ptr<proto::Framed> &link,
                    std::uint64_t clientId, std::uint32_t priority);
    void handleSubmit(proto::Framed &link,
                      const std::vector<std::uint8_t> &payload,
                      std::uint64_t clientId, std::uint32_t priority);

    void enqueue(const std::shared_ptr<PendingUnit> &u, bool front);
    std::shared_ptr<PendingUnit> popUnit();
    /** Deliver @p r to @p u's continuation, counting the unit exactly
     *  once in the completed/failed accounting. */
    void finishUnit(std::shared_ptr<PendingUnit> &u,
                    proto::UnitResult &&r);
    /** A worker died holding @p u: retry it (chaos hook cleared) or,
     *  past the attempt cap, fail it to its continuation. */
    void requeueAfterCrash(const std::shared_ptr<PendingUnit> &u);
    void failPendingUnits(const char *why);
    proto::ServerStats snapshotStats();

    const Options opt_;
    unsigned numWorkers_ = 0;
    std::uint64_t binFingerprint_ = 0;
    int listenFd_ = -1;
    SnapshotCache cache_;

    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> nextUnitId_{1};
    std::atomic<std::uint64_t> nextClientId_{1};

    std::mutex qm_;
    std::condition_variable qcv_;
    FairShareQueue queue_;
    std::uint64_t queueDepthPeak_ = 0;

    std::mutex sm_; ///< guards threads_, conns_, workers_, counters
    std::vector<std::thread> threads_;
    std::vector<std::weak_ptr<proto::Framed>> conns_;
    std::map<int, WorkerState> workers_; ///< pid -> lifetime load
    std::map<std::uint64_t, ClientStat> clientStats_;
    std::vector<int> workerPids_;
    std::uint64_t unitRetries_ = 0;
    std::uint64_t workerRestarts_ = 0;
    std::uint64_t hangKills_ = 0;
    std::uint64_t deadlineFailures_ = 0;
    std::uint64_t unitsEnqueued_ = 0;
    std::uint64_t unitsCompleted_ = 0;
    std::uint64_t unitsFailed_ = 0;
    std::uint64_t requestsServed_ = 0;
    std::uint64_t requestsFailed_ = 0;
};

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_SERVER_HH
