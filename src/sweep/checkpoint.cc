#include "sweep/checkpoint.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"
#include "common/serialize.hh"

namespace sdv {
namespace sweep {

namespace {

constexpr char magic[8] = {'S', 'D', 'V', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t version = 1;

/** Serialize the geometry the warm state depends on. Restoring into a
 *  machine whose warm structures are shaped differently is rejected
 *  up front with a readable error instead of failing mid-restore. */
void
writeGeometry(Serializer &ser, const CoreConfig &cfg)
{
    const MemHierarchyConfig &m = cfg.mem;
    ser.u64(m.l1iSize);
    ser.u32(m.l1iAssoc);
    ser.u32(m.l1iLineBytes);
    ser.u64(m.l1dSize);
    ser.u32(m.l1dAssoc);
    ser.u32(m.l1dLineBytes);
    ser.u64(m.l2Size);
    ser.u32(m.l2Assoc);
    ser.u32(m.l2LineBytes);
    ser.u32(cfg.gshareEntries);
    ser.u32(cfg.gshareHistoryBits);
    ser.u32(cfg.btbSets);
    ser.u32(cfg.btbWays);
    ser.u32(cfg.rasDepth);
    ser.u32(cfg.engine.tlSets);
    ser.u32(cfg.engine.tlWays);
    ser.u8(cfg.engine.tlConfidence);
}

bool
geometryMatches(Deserializer &des, const CoreConfig &cfg)
{
    const MemHierarchyConfig &m = cfg.mem;
    bool ok = true;
    ok &= des.u64() == m.l1iSize;
    ok &= des.u32() == m.l1iAssoc;
    ok &= des.u32() == m.l1iLineBytes;
    ok &= des.u64() == m.l1dSize;
    ok &= des.u32() == m.l1dAssoc;
    ok &= des.u32() == m.l1dLineBytes;
    ok &= des.u64() == m.l2Size;
    ok &= des.u32() == m.l2Assoc;
    ok &= des.u32() == m.l2LineBytes;
    ok &= des.u32() == cfg.gshareEntries;
    ok &= des.u32() == cfg.gshareHistoryBits;
    ok &= des.u32() == cfg.btbSets;
    ok &= des.u32() == cfg.btbWays;
    ok &= des.u32() == cfg.rasDepth;
    ok &= des.u32() == cfg.engine.tlSets;
    ok &= des.u32() == cfg.engine.tlWays;
    ok &= des.u8() == cfg.engine.tlConfidence;
    return ok && des.ok();
}

bool
setError(std::string *error, const char *msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

namespace {

/** Shared header walk: checksum, magic, version, program identity and
 *  geometry. On success @p des is positioned at the warm-state
 *  payload. */
bool
checkHeader(Deserializer &des, Simulator &sim, std::string *error)
{
    if (!des.verifyChecksum())
        return setError(error,
                        "checkpoint image truncated or corrupted "
                        "(checksum mismatch)");

    char m[sizeof(magic)];
    if (!des.bytes(m, sizeof(m)) ||
        std::memcmp(m, magic, sizeof(magic)) != 0)
        return setError(error, "not a checkpoint image (bad magic)");
    if (des.u32() != version)
        return setError(error, "unsupported checkpoint version");
    if (des.u64() != sim.program().identityHash())
        return setError(error,
                        "checkpoint was captured from a different "
                        "program");
    if (!geometryMatches(des, sim.core().config()))
        return setError(error,
                        "checkpoint geometry does not match the target "
                        "configuration (caches/predictors/TL shape)");
    return true;
}

} // namespace

std::vector<std::uint8_t>
Checkpoint::capture(Simulator &sim)
{
    Serializer ser;
    ser.bytes(magic, sizeof(magic));
    ser.u32(version);
    ser.u64(sim.program().identityHash());
    writeGeometry(ser, sim.core().config());
    sim.core().saveWarmState(ser);
    return ser.finish();
}

bool
Checkpoint::restore(Simulator &sim,
                    const std::vector<std::uint8_t> &bytes,
                    std::string *error)
{
    Deserializer des(bytes);
    if (!checkHeader(des, sim, error))
        return false;
    if (!sim.core().loadWarmState(des) || !des.atEnd())
        return setError(error, "checkpoint payload is inconsistent");
    return true;
}

bool
Checkpoint::validate(Simulator &sim,
                     const std::vector<std::uint8_t> &bytes)
{
    Deserializer des(bytes);
    return checkHeader(des, sim, nullptr);
}

bool
Checkpoint::save(const std::string &path,
                 const std::vector<std::uint8_t> &bytes)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    std::fclose(f);
    return ok;
}

bool
Checkpoint::load(const std::string &path, std::vector<std::uint8_t> &out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    out.resize(size_t(size));
    const bool ok =
        std::fread(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    return ok;
}

} // namespace sweep
} // namespace sdv
