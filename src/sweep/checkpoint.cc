#include "sweep/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/log.hh"
#include "common/serialize.hh"

namespace sdv {
namespace sweep {

namespace {

constexpr char magic[8] = {'S', 'D', 'V', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t version = 1;

/** Serialize the geometry the warm state depends on. Restoring into a
 *  machine whose warm structures are shaped differently is rejected
 *  up front with a readable error instead of failing mid-restore. */
void
writeGeometry(Serializer &ser, const CoreConfig &cfg)
{
    const MemHierarchyConfig &m = cfg.mem;
    ser.u64(m.l1iSize);
    ser.u32(m.l1iAssoc);
    ser.u32(m.l1iLineBytes);
    ser.u64(m.l1dSize);
    ser.u32(m.l1dAssoc);
    ser.u32(m.l1dLineBytes);
    ser.u64(m.l2Size);
    ser.u32(m.l2Assoc);
    ser.u32(m.l2LineBytes);
    ser.u32(cfg.gshareEntries);
    ser.u32(cfg.gshareHistoryBits);
    ser.u32(cfg.btbSets);
    ser.u32(cfg.btbWays);
    ser.u32(cfg.rasDepth);
    ser.u32(cfg.engine.tlSets);
    ser.u32(cfg.engine.tlWays);
    ser.u8(cfg.engine.tlConfidence);
}

bool
geometryMatches(Deserializer &des, const CoreConfig &cfg)
{
    const MemHierarchyConfig &m = cfg.mem;
    bool ok = true;
    ok &= des.u64() == m.l1iSize;
    ok &= des.u32() == m.l1iAssoc;
    ok &= des.u32() == m.l1iLineBytes;
    ok &= des.u64() == m.l1dSize;
    ok &= des.u32() == m.l1dAssoc;
    ok &= des.u32() == m.l1dLineBytes;
    ok &= des.u64() == m.l2Size;
    ok &= des.u32() == m.l2Assoc;
    ok &= des.u32() == m.l2LineBytes;
    ok &= des.u32() == cfg.gshareEntries;
    ok &= des.u32() == cfg.gshareHistoryBits;
    ok &= des.u32() == cfg.btbSets;
    ok &= des.u32() == cfg.btbWays;
    ok &= des.u32() == cfg.rasDepth;
    ok &= des.u32() == cfg.engine.tlSets;
    ok &= des.u32() == cfg.engine.tlWays;
    ok &= des.u8() == cfg.engine.tlConfidence;
    return ok && des.ok();
}

bool
setError(std::string *error, const char *msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

namespace {

/** Shared header walk: checksum, magic, version and geometry; the
 *  image's program identity hash comes back via @p imageProgram for
 *  the caller to judge. On success @p des is positioned at the
 *  warm-state payload. */
bool
walkHeader(Deserializer &des, const CoreConfig &cfg,
           std::uint64_t *imageProgram, std::string *error)
{
    if (!des.verifyChecksum())
        return setError(error,
                        "checkpoint image truncated or corrupted "
                        "(checksum mismatch)");

    char m[sizeof(magic)];
    if (!des.bytes(m, sizeof(m)) ||
        std::memcmp(m, magic, sizeof(magic)) != 0)
        return setError(error, "not a checkpoint image (bad magic)");
    if (des.u32() != version)
        return setError(error, "unsupported checkpoint version");
    const std::uint64_t prog = des.u64();
    if (imageProgram)
        *imageProgram = prog;
    if (!geometryMatches(des, cfg))
        return setError(error,
                        "checkpoint geometry does not match the target "
                        "configuration (caches/predictors/TL shape)");
    return true;
}

/** Header walk bound to a concrete simulator: adds the program
 *  identity check on top of walkHeader(). */
bool
checkHeader(Deserializer &des, Simulator &sim, std::string *error)
{
    std::uint64_t prog = 0;
    if (!walkHeader(des, sim.core().config(), &prog, error))
        return false;
    if (prog != sim.program().identityHash())
        return setError(error,
                        "checkpoint was captured from a different "
                        "program");
    return true;
}

} // namespace

std::vector<std::uint8_t>
Checkpoint::capture(Simulator &sim)
{
    Serializer ser;
    ser.bytes(magic, sizeof(magic));
    ser.u32(version);
    ser.u64(sim.program().identityHash());
    writeGeometry(ser, sim.core().config());
    sim.core().saveWarmState(ser);
    return ser.finish();
}

bool
Checkpoint::restore(Simulator &sim,
                    const std::vector<std::uint8_t> &bytes,
                    std::string *error)
{
    Deserializer des(bytes);
    if (!checkHeader(des, sim, error))
        return false;
    if (!sim.core().loadWarmState(des) || !des.atEnd())
        return setError(error, "checkpoint payload is inconsistent");
    return true;
}

bool
Checkpoint::validate(Simulator &sim,
                     const std::vector<std::uint8_t> &bytes)
{
    Deserializer des(bytes);
    return checkHeader(des, sim, nullptr);
}

bool
Checkpoint::validateImage(const CoreConfig &cfg,
                          const std::vector<std::uint8_t> &bytes,
                          std::uint64_t *programHash, std::string *error)
{
    Deserializer des(bytes);
    return walkHeader(des, cfg, programHash, error);
}

bool
Checkpoint::save(const std::string &path,
                 const std::vector<std::uint8_t> &bytes)
{
    // Concurrent writers (the snapshot cache serves many clients) and
    // crashes must never publish a partial image: write to a
    // same-directory temp file, then rename() it into place — atomic
    // on POSIX, so readers see either the old file or the complete
    // new one, never a prefix.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok &= std::fflush(f) == 0;
    std::fclose(f);
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

Checkpoint::LoadStatus
Checkpoint::load(const std::string &path, std::vector<std::uint8_t> &out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return errno == ENOENT ? LoadStatus::Missing
                               : LoadStatus::Corrupt;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        return LoadStatus::Corrupt;
    }
    out.resize(size_t(size));
    const bool ok =
        std::fread(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (!ok)
        return LoadStatus::Corrupt;
    // A short or bit-rotted image fails its trailing FNV-1a checksum;
    // report it as corruption here so callers can tell poisoning from
    // a plain cold cache (atomic save() makes torn files unreachable
    // through this API, so a Corrupt result is worth a warning).
    Deserializer des(out);
    if (!des.verifyChecksum())
        return LoadStatus::Corrupt;
    return LoadStatus::Ok;
}

} // namespace sweep
} // namespace sdv
