/**
 * @file
 * Parallel sweep executor: runs a SweepPlan's jobs on a pool of worker
 * threads, one private Simulator per job (simulations share no mutable
 * state — the only shared object is the pre-decoded, read-only
 * Program), and collates results in plan order. Results are a pure
 * function of the plan and options: serial and parallel execution
 * produce byte-identical JSON.
 *
 * With checkpointing enabled, each workload is warmed once (serially,
 * so the snapshot is deterministic) and every configuration of that
 * workload forks from the snapshot instead of re-simulating the
 * warm-up; see src/sweep/checkpoint.hh and docs/sweep.md.
 */

#ifndef SDV_SWEEP_EXECUTOR_HH
#define SDV_SWEEP_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "sweep/plan.hh"
#include "sweep/sampling.hh"

namespace sdv {
namespace sweep {

/** Execution options (orthogonal to the plan itself). */
struct ExecOptions
{
    unsigned jobs = 1;          ///< worker threads
    /** True when jobs was resolved by --jobs 0 auto-detection
     *  (resolveJobs); reported in exec_metrics as "jobs_auto". */
    bool jobsAutoDetected = false;
    bool eventSkip = true;      ///< event-skipping clock
    bool trace = true;          ///< trace-compiled dispatch (--no-trace)
    bool checkpoint = false;    ///< fork configs from warmed snapshots
    std::uint64_t warmupInsts = 10'000; ///< checkpoint warm-up length
    std::uint64_t maxCycles = 200'000'000; ///< per-job cycle budget
    bool verify = false;        ///< functional verification per job
    /** Context-switch the transient vector state every N fetched
     *  instructions (0 = never). Full runs only — checkpointed and
     *  sampled jobs already quiesce at their own boundaries. */
    std::uint64_t quiesceInterval = 0;
    /** EngineConfig::eagerChainLoads on every job's machine. */
    bool eagerChain = false;
    /** Speculative-state fault injection (--fault-elem-ppm /
     *  --fault-vrmt-ppm) on every job's machine. The per-job injector
     *  seed is derived from the job identity and this plan's seed, so
     *  parallel and serial sweeps stay byte-identical. Full runs only
     *  (checkpoint capture and sampling ignore it). */
    FaultPlan fault;
    /** Wall-clock watchdog (--job-timeout, seconds; 0 = off): a pool
     *  unit running longer than this is aborted, marked failed with
     *  its context, and retried once serially after the pool drains
     *  (the retry gets a fresh timer). */
    std::uint64_t jobTimeout = 0;
    /** Interval sampling: when enabled (samples > 0), every job is
     *  estimated from per-sample forks instead of a full run, and the
     *  per-(job, sample) measurements are what the worker pool
     *  parallelizes. warmupInsts doubles as the sampling warm-up.
     *  Takes precedence over the one-boundary `checkpoint` mode;
     *  incompatible with `verify` (estimates cannot be verified). */
    SamplePlan sample;
    /** When non-empty, checkpoint images are written to (and reused
     *  from) <dir>/<workload>.s<scale>.w<warmupInsts>.ckpt across
     *  invocations; cached files are validated against the current
     *  program and geometry and recaptured when stale. */
    std::string checkpointDir;

    // --- observability (all default-off: the default-mode JSON stays
    // byte-identical to the checked-in baselines; docs/observability.md)
    /** Attach a flight recorder to every full-run job (--trace-events).
     *  Needs an SDV_OBS build (the default) to record anything; the
     *  recorders come back in RunOutcome::trace for plan-ordered
     *  serialization. Sampled jobs are not traced. */
    bool traceEvents = false;
    /** Event-category mask for the recorders (--trace-filter). */
    unsigned traceCategories = obs::CatAll;
    /** Ring capacity: keep only the last N events per job
     *  (--trace-last; 0 = unbounded append). */
    std::size_t traceLast = 0;
    /** Interval telemetry: sample CoreStats/EngineStats deltas every N
     *  cycles per full-run job (--telemetry; 0 = off). Emitted as the
     *  per-record "telemetry" array. Sampled jobs ignore it. */
    std::uint64_t telemetryInterval = 0;
};

/** Host-side execution metrics (--metrics-summary / "exec_metrics"):
 *  wall-clock observations of the pool itself, deliberately kept out
 *  of resultsJson() — they vary run to run and must never perturb the
 *  deterministic payload. */
struct ExecMetrics
{
    bool enabled = false;       ///< collected this run
    unsigned workers = 0;       ///< pool threads actually used
    bool jobsAuto = false;      ///< workers came from --jobs 0 auto-detect
    double poolWallSeconds = 0.0; ///< pool start to join
    double busySeconds = 0.0;   ///< sum of unit run times
    double collateSeconds = 0.0; ///< plan-ordered aggregation/serialization
    std::uint64_t checkpointCaptures = 0;    ///< warm snapshots taken
    std::uint64_t checkpointCaptureBytes = 0;
    std::uint64_t checkpointRestores = 0;    ///< forks from snapshots
    std::uint64_t checkpointRestoreBytes = 0;

    /** Per-job host timing, plan order. */
    struct JobMetrics
    {
        std::string workload;
        std::string configKey;
        double queueWaitSeconds = 0.0; ///< pool start -> job start
        double runSeconds = 0.0;       ///< job simulation time
    };
    std::vector<JobMetrics> jobs;

    // --- serve-mode rider (sdv_sweep --serve): per-request server
    // observations, populated by SweepServer instead of runPlan.
    bool serve = false;             ///< request went through the daemon
    std::uint64_t cacheHits = 0;    ///< snapshot-cache hits (memory or disk)
    std::uint64_t cacheMisses = 0;  ///< captures this request triggered
    std::uint64_t cacheWaits = 0;   ///< single-flight waits on another
                                    ///< client's in-flight capture
    std::uint64_t unitsDispatched = 0; ///< work units sent to workers
    std::uint64_t unitRetries = 0;  ///< units re-queued after a worker died
    std::uint64_t workerRestarts = 0; ///< crashed workers respawned (lifetime)
    std::uint64_t queueDepthPeak = 0; ///< max queued units while enqueuing
    double requestSeconds = 0.0;    ///< submit to final record streamed
    std::uint64_t hangKills = 0;    ///< hung workers SIGKILLed (lifetime)
    std::uint64_t deadlineFailures = 0; ///< units failed past a deadline
    std::uint64_t cacheEvictions = 0; ///< snapshots evicted for the budget
    std::uint64_t cacheGcRemoved = 0; ///< stale snapshots GCed at startup
    std::uint64_t cacheDiskBytes = 0; ///< cache-directory payload now
    double queueWaitAvgSeconds = 0.0; ///< this request's mean queue wait
    double queueWaitMaxSeconds = 0.0; ///< this request's worst queue wait

    /** Per worker-process load (lifetime totals, pid-ordered). */
    struct WorkerLoad
    {
        int pid = 0;
        std::uint64_t units = 0;    ///< units completed
        double busySeconds = 0.0;   ///< sum of unit wall times
    };
    std::vector<WorkerLoad> workerLoads;

    /** Per-client fair-share tally (lifetime, client-id-ordered). */
    struct ClientWait
    {
        std::uint64_t clientId = 0;
        std::uint32_t priority = 1;
        std::uint64_t units = 0;     ///< units dispatched for this client
        double waitAvgSeconds = 0.0; ///< mean enqueue-to-dispatch wait
        double waitMaxSeconds = 0.0; ///< worst enqueue-to-dispatch wait
    };
    std::vector<ClientWait> clientWaits;

    /** @return busySeconds / (workers * poolWallSeconds), in [0, 1]. */
    double
    utilization() const
    {
        const double cap = double(workers) * poolWallSeconds;
        return cap <= 0.0 ? 0.0 : busySeconds / cap;
    }

    /** @return the "exec_metrics" JSON object. */
    std::string toJson() const;

    /** @return a human-readable summary table (--metrics-summary). */
    std::string summaryTable() const;
};

/** One job's outcome (self-contained: carries the job identity). */
struct RunOutcome
{
    std::string figure;
    std::string workload;
    bool isFp = false;
    std::string group;
    std::string column;
    std::string configKey;
    CoreConfig cfg; ///< the job's machine config (metric extraction)
    std::uint64_t seed = 0;

    SimResult res;
    std::uint64_t commitHash = 0;
    bool fromCheckpoint = false;
    /** Interval sampling: number of samples res was aggregated from
     *  (0 for an exact full run; res.sampled mirrors this). For a
     *  sampled job, commitHash is the FNV fold of the per-sample
     *  commit-stream hashes in capture order. */
    unsigned samples = 0;
    /** Job watchdog verdicts: timedOut mirrors the *final* attempt's
     *  res.timedOut; retried marks a job whose first attempt was
     *  aborted and which ran again serially. Both stay false (and out
     *  of the JSON) without --job-timeout. */
    bool timedOut = false;
    bool retried = false;
    double wallSeconds = 0.0; ///< host timing; kept out of the
                              ///< deterministic JSON payload

    /** Flight recorder this job filled (ExecOptions::traceEvents;
     *  null otherwise). shared_ptr because outcomes are copied during
     *  the watchdog retry pass. */
    std::shared_ptr<obs::TraceRecorder> trace;
    /** Interval-telemetry JSON array ("[...]") for this job
     *  (ExecOptions::telemetryInterval; empty otherwise). */
    std::string telemetryJson;
};

/**
 * Run every job of @p plan and return outcomes in plan order.
 * Programs are built and pre-decoded up front (one per workload,
 * shared read-only); checkpoints, when enabled, are captured serially
 * before the pool starts.
 */
std::vector<RunOutcome> runPlan(const SweepPlan &plan,
                                const ExecOptions &opt,
                                ExecMetrics *metrics = nullptr);

/**
 * @return the deterministic JSON results array for @p outcomes: one
 * record per job with simulated statistics and the commit-stream hash
 * only (no host timings), byte-identical across --jobs settings.
 */
std::string resultsJson(const std::vector<RunOutcome> &outcomes);

/**
 * @return one complete record of the resultsJson() array ("  {...}",
 * no trailing separator). The sweep server streams records to clients
 * with this exact function, which is what makes a served, sharded
 * sweep byte-identical to the serial path by construction.
 */
std::string resultRecordJson(const RunOutcome &o);

/**
 * Write the full sweep JSON document: a "sweep" metadata object (plan,
 * scale, options, total wall time) plus the resultsJson() array under
 * "results". tools/compare_bench.py understands this schema.
 */
bool writeJsonFile(const std::string &path, const SweepPlan &plan,
                   const ExecOptions &opt,
                   const std::vector<RunOutcome> &outcomes,
                   double wall_seconds,
                   const ExecMetrics *metrics = nullptr);

/**
 * writeJsonFile() with the deterministic results array (and optional
 * "exec_metrics" object) already serialized — the serve-mode client
 * writes documents from streamed record text without ever holding
 * RunOutcomes. Byte-identical to writeJsonFile() given the same
 * inputs.
 */
bool writeJsonDoc(const std::string &path, const std::string &planName,
                  unsigned scale, Footprint footprint,
                  const ExecOptions &opt,
                  const std::string &resultsArray, double wall_seconds,
                  const std::string &execMetricsJson = std::string());

/**
 * Resolve an ExecOptions::jobs request: 0 means auto-detect — the
 * host's hardware_concurrency minus one (for the collator/driver
 * thread), never below 1.
 */
unsigned resolveJobs(unsigned requested);

/** Apply the option overlay every execution path puts on a job's
 *  machine config (clocking, dispatch mechanism, chaining mode). */
void applyExecOverlay(CoreConfig &cfg, const ExecOptions &opt);

/**
 * @return the deterministic warm-up configuration for @p workload
 * under @p plan: its first engine-enabled job (falling back to its
 * first job), with the exec overlay applied. This is the machine the
 * capture pass runs — both the in-process executor and the sweep
 * server's snapshot cache derive it from here, so a cached snapshot
 * set is exactly what the serial path would have captured.
 */
CoreConfig warmConfig(const SweepPlan &plan, const ExecOptions &opt,
                      const std::string &workload);

/** Per-job fault-injection plan: @p base with the injector seed
 *  specialized to the job identity (scheduling-independent). */
FaultPlan jobFaultPlan(const FaultPlan &base, const SweepJob &job);

/** Fill the identity fields of @p out from @p job (figure, workload,
 *  group/column, config, seed) — the common prologue of every
 *  execution path, including the sweep server's collator. */
void stampOutcome(RunOutcome &out, const SweepJob &job);

/**
 * @return the outcomes' recorders as plan-ordered trace sources
 * (labels "<workload>/<config>", pid = plan index): the argument for
 * obs::writeTraceFile, byte-identical across --jobs settings.
 */
std::vector<obs::TraceSource>
traceSources(const std::vector<RunOutcome> &outcomes);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_EXECUTOR_HH
