/**
 * @file
 * Parallel sweep executor: runs a SweepPlan's jobs on a pool of worker
 * threads, one private Simulator per job (simulations share no mutable
 * state — the only shared object is the pre-decoded, read-only
 * Program), and collates results in plan order. Results are a pure
 * function of the plan and options: serial and parallel execution
 * produce byte-identical JSON.
 *
 * With checkpointing enabled, each workload is warmed once (serially,
 * so the snapshot is deterministic) and every configuration of that
 * workload forks from the snapshot instead of re-simulating the
 * warm-up; see src/sweep/checkpoint.hh and docs/sweep.md.
 */

#ifndef SDV_SWEEP_EXECUTOR_HH
#define SDV_SWEEP_EXECUTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sweep/plan.hh"
#include "sweep/sampling.hh"

namespace sdv {
namespace sweep {

/** Execution options (orthogonal to the plan itself). */
struct ExecOptions
{
    unsigned jobs = 1;          ///< worker threads
    bool eventSkip = true;      ///< event-skipping clock
    bool trace = true;          ///< trace-compiled dispatch (--no-trace)
    bool checkpoint = false;    ///< fork configs from warmed snapshots
    std::uint64_t warmupInsts = 10'000; ///< checkpoint warm-up length
    std::uint64_t maxCycles = 200'000'000; ///< per-job cycle budget
    bool verify = false;        ///< functional verification per job
    /** Context-switch the transient vector state every N fetched
     *  instructions (0 = never). Full runs only — checkpointed and
     *  sampled jobs already quiesce at their own boundaries. */
    std::uint64_t quiesceInterval = 0;
    /** EngineConfig::eagerChainLoads on every job's machine. */
    bool eagerChain = false;
    /** Speculative-state fault injection (--fault-elem-ppm /
     *  --fault-vrmt-ppm) on every job's machine. The per-job injector
     *  seed is derived from the job identity and this plan's seed, so
     *  parallel and serial sweeps stay byte-identical. Full runs only
     *  (checkpoint capture and sampling ignore it). */
    FaultPlan fault;
    /** Wall-clock watchdog (--job-timeout, seconds; 0 = off): a pool
     *  unit running longer than this is aborted, marked failed with
     *  its context, and retried once serially after the pool drains
     *  (the retry gets a fresh timer). */
    std::uint64_t jobTimeout = 0;
    /** Interval sampling: when enabled (samples > 0), every job is
     *  estimated from per-sample forks instead of a full run, and the
     *  per-(job, sample) measurements are what the worker pool
     *  parallelizes. warmupInsts doubles as the sampling warm-up.
     *  Takes precedence over the one-boundary `checkpoint` mode;
     *  incompatible with `verify` (estimates cannot be verified). */
    SamplePlan sample;
    /** When non-empty, checkpoint images are written to (and reused
     *  from) <dir>/<workload>.s<scale>.w<warmupInsts>.ckpt across
     *  invocations; cached files are validated against the current
     *  program and geometry and recaptured when stale. */
    std::string checkpointDir;
};

/** One job's outcome (self-contained: carries the job identity). */
struct RunOutcome
{
    std::string figure;
    std::string workload;
    bool isFp = false;
    std::string group;
    std::string column;
    std::string configKey;
    CoreConfig cfg; ///< the job's machine config (metric extraction)
    std::uint64_t seed = 0;

    SimResult res;
    std::uint64_t commitHash = 0;
    bool fromCheckpoint = false;
    /** Interval sampling: number of samples res was aggregated from
     *  (0 for an exact full run; res.sampled mirrors this). For a
     *  sampled job, commitHash is the FNV fold of the per-sample
     *  commit-stream hashes in capture order. */
    unsigned samples = 0;
    /** Job watchdog verdicts: timedOut mirrors the *final* attempt's
     *  res.timedOut; retried marks a job whose first attempt was
     *  aborted and which ran again serially. Both stay false (and out
     *  of the JSON) without --job-timeout. */
    bool timedOut = false;
    bool retried = false;
    double wallSeconds = 0.0; ///< host timing; kept out of the
                              ///< deterministic JSON payload
};

/**
 * Run every job of @p plan and return outcomes in plan order.
 * Programs are built and pre-decoded up front (one per workload,
 * shared read-only); checkpoints, when enabled, are captured serially
 * before the pool starts.
 */
std::vector<RunOutcome> runPlan(const SweepPlan &plan,
                                const ExecOptions &opt);

/**
 * @return the deterministic JSON results array for @p outcomes: one
 * record per job with simulated statistics and the commit-stream hash
 * only (no host timings), byte-identical across --jobs settings.
 */
std::string resultsJson(const std::vector<RunOutcome> &outcomes);

/**
 * Write the full sweep JSON document: a "sweep" metadata object (plan,
 * scale, options, total wall time) plus the resultsJson() array under
 * "results". tools/compare_bench.py understands this schema.
 */
bool writeJsonFile(const std::string &path, const SweepPlan &plan,
                   const ExecOptions &opt,
                   const std::vector<RunOutcome> &outcomes,
                   double wall_seconds);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_EXECUTOR_HH
