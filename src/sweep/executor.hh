/**
 * @file
 * Parallel sweep executor: runs a SweepPlan's jobs on a pool of worker
 * threads, one private Simulator per job (simulations share no mutable
 * state — the only shared object is the pre-decoded, read-only
 * Program), and collates results in plan order. Results are a pure
 * function of the plan and options: serial and parallel execution
 * produce byte-identical JSON.
 *
 * With checkpointing enabled, each workload is warmed once (serially,
 * so the snapshot is deterministic) and every configuration of that
 * workload forks from the snapshot instead of re-simulating the
 * warm-up; see src/sweep/checkpoint.hh and docs/sweep.md.
 */

#ifndef SDV_SWEEP_EXECUTOR_HH
#define SDV_SWEEP_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "sweep/plan.hh"
#include "sweep/sampling.hh"

namespace sdv {
namespace sweep {

/** Execution options (orthogonal to the plan itself). */
struct ExecOptions
{
    unsigned jobs = 1;          ///< worker threads
    bool eventSkip = true;      ///< event-skipping clock
    bool trace = true;          ///< trace-compiled dispatch (--no-trace)
    bool checkpoint = false;    ///< fork configs from warmed snapshots
    std::uint64_t warmupInsts = 10'000; ///< checkpoint warm-up length
    std::uint64_t maxCycles = 200'000'000; ///< per-job cycle budget
    bool verify = false;        ///< functional verification per job
    /** Context-switch the transient vector state every N fetched
     *  instructions (0 = never). Full runs only — checkpointed and
     *  sampled jobs already quiesce at their own boundaries. */
    std::uint64_t quiesceInterval = 0;
    /** EngineConfig::eagerChainLoads on every job's machine. */
    bool eagerChain = false;
    /** Speculative-state fault injection (--fault-elem-ppm /
     *  --fault-vrmt-ppm) on every job's machine. The per-job injector
     *  seed is derived from the job identity and this plan's seed, so
     *  parallel and serial sweeps stay byte-identical. Full runs only
     *  (checkpoint capture and sampling ignore it). */
    FaultPlan fault;
    /** Wall-clock watchdog (--job-timeout, seconds; 0 = off): a pool
     *  unit running longer than this is aborted, marked failed with
     *  its context, and retried once serially after the pool drains
     *  (the retry gets a fresh timer). */
    std::uint64_t jobTimeout = 0;
    /** Interval sampling: when enabled (samples > 0), every job is
     *  estimated from per-sample forks instead of a full run, and the
     *  per-(job, sample) measurements are what the worker pool
     *  parallelizes. warmupInsts doubles as the sampling warm-up.
     *  Takes precedence over the one-boundary `checkpoint` mode;
     *  incompatible with `verify` (estimates cannot be verified). */
    SamplePlan sample;
    /** When non-empty, checkpoint images are written to (and reused
     *  from) <dir>/<workload>.s<scale>.w<warmupInsts>.ckpt across
     *  invocations; cached files are validated against the current
     *  program and geometry and recaptured when stale. */
    std::string checkpointDir;

    // --- observability (all default-off: the default-mode JSON stays
    // byte-identical to the checked-in baselines; docs/observability.md)
    /** Attach a flight recorder to every full-run job (--trace-events).
     *  Needs an SDV_OBS build (the default) to record anything; the
     *  recorders come back in RunOutcome::trace for plan-ordered
     *  serialization. Sampled jobs are not traced. */
    bool traceEvents = false;
    /** Event-category mask for the recorders (--trace-filter). */
    unsigned traceCategories = obs::CatAll;
    /** Ring capacity: keep only the last N events per job
     *  (--trace-last; 0 = unbounded append). */
    std::size_t traceLast = 0;
    /** Interval telemetry: sample CoreStats/EngineStats deltas every N
     *  cycles per full-run job (--telemetry; 0 = off). Emitted as the
     *  per-record "telemetry" array. Sampled jobs ignore it. */
    std::uint64_t telemetryInterval = 0;
};

/** Host-side execution metrics (--metrics-summary / "exec_metrics"):
 *  wall-clock observations of the pool itself, deliberately kept out
 *  of resultsJson() — they vary run to run and must never perturb the
 *  deterministic payload. */
struct ExecMetrics
{
    bool enabled = false;       ///< collected this run
    unsigned workers = 0;       ///< pool threads actually used
    double poolWallSeconds = 0.0; ///< pool start to join
    double busySeconds = 0.0;   ///< sum of unit run times
    double collateSeconds = 0.0; ///< plan-ordered aggregation/serialization
    std::uint64_t checkpointCaptures = 0;    ///< warm snapshots taken
    std::uint64_t checkpointCaptureBytes = 0;
    std::uint64_t checkpointRestores = 0;    ///< forks from snapshots
    std::uint64_t checkpointRestoreBytes = 0;

    /** Per-job host timing, plan order. */
    struct JobMetrics
    {
        std::string workload;
        std::string configKey;
        double queueWaitSeconds = 0.0; ///< pool start -> job start
        double runSeconds = 0.0;       ///< job simulation time
    };
    std::vector<JobMetrics> jobs;

    /** @return busySeconds / (workers * poolWallSeconds), in [0, 1]. */
    double
    utilization() const
    {
        const double cap = double(workers) * poolWallSeconds;
        return cap <= 0.0 ? 0.0 : busySeconds / cap;
    }

    /** @return the "exec_metrics" JSON object. */
    std::string toJson() const;

    /** @return a human-readable summary table (--metrics-summary). */
    std::string summaryTable() const;
};

/** One job's outcome (self-contained: carries the job identity). */
struct RunOutcome
{
    std::string figure;
    std::string workload;
    bool isFp = false;
    std::string group;
    std::string column;
    std::string configKey;
    CoreConfig cfg; ///< the job's machine config (metric extraction)
    std::uint64_t seed = 0;

    SimResult res;
    std::uint64_t commitHash = 0;
    bool fromCheckpoint = false;
    /** Interval sampling: number of samples res was aggregated from
     *  (0 for an exact full run; res.sampled mirrors this). For a
     *  sampled job, commitHash is the FNV fold of the per-sample
     *  commit-stream hashes in capture order. */
    unsigned samples = 0;
    /** Job watchdog verdicts: timedOut mirrors the *final* attempt's
     *  res.timedOut; retried marks a job whose first attempt was
     *  aborted and which ran again serially. Both stay false (and out
     *  of the JSON) without --job-timeout. */
    bool timedOut = false;
    bool retried = false;
    double wallSeconds = 0.0; ///< host timing; kept out of the
                              ///< deterministic JSON payload

    /** Flight recorder this job filled (ExecOptions::traceEvents;
     *  null otherwise). shared_ptr because outcomes are copied during
     *  the watchdog retry pass. */
    std::shared_ptr<obs::TraceRecorder> trace;
    /** Interval-telemetry JSON array ("[...]") for this job
     *  (ExecOptions::telemetryInterval; empty otherwise). */
    std::string telemetryJson;
};

/**
 * Run every job of @p plan and return outcomes in plan order.
 * Programs are built and pre-decoded up front (one per workload,
 * shared read-only); checkpoints, when enabled, are captured serially
 * before the pool starts.
 */
std::vector<RunOutcome> runPlan(const SweepPlan &plan,
                                const ExecOptions &opt,
                                ExecMetrics *metrics = nullptr);

/**
 * @return the deterministic JSON results array for @p outcomes: one
 * record per job with simulated statistics and the commit-stream hash
 * only (no host timings), byte-identical across --jobs settings.
 */
std::string resultsJson(const std::vector<RunOutcome> &outcomes);

/**
 * Write the full sweep JSON document: a "sweep" metadata object (plan,
 * scale, options, total wall time) plus the resultsJson() array under
 * "results". tools/compare_bench.py understands this schema.
 */
bool writeJsonFile(const std::string &path, const SweepPlan &plan,
                   const ExecOptions &opt,
                   const std::vector<RunOutcome> &outcomes,
                   double wall_seconds,
                   const ExecMetrics *metrics = nullptr);

/**
 * @return the outcomes' recorders as plan-ordered trace sources
 * (labels "<workload>/<config>", pid = plan index): the argument for
 * obs::writeTraceFile, byte-identical across --jobs settings.
 */
std::vector<obs::TraceSource>
traceSources(const std::vector<RunOutcome> &outcomes);

} // namespace sweep
} // namespace sdv

#endif // SDV_SWEEP_EXECUTOR_HH
