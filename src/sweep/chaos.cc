#include "sweep/chaos.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "common/random.hh"
#include "common/serialize.hh"
#include "sweep/client.hh"
#include "sweep/executor.hh"
#include "sweep/plan.hh"

namespace sdv {
namespace sweep {

namespace {

/** The campaign's oracle: the in-process serial executor's record
 *  strings for @p req — every surviving served stream must equal this
 *  vector element for element, byte for byte. */
std::vector<std::string>
serialReference(const proto::SweepRequest &req)
{
    const SweepPlan plan = buildPlan(req.plan, req.popt);
    ExecOptions eopt = req.eopt;
    eopt.jobs = 1;
    const std::vector<RunOutcome> outs = runPlan(plan, eopt, nullptr);
    std::vector<std::string> recs;
    recs.reserve(outs.size());
    for (const RunOutcome &o : outs)
        recs.push_back(resultRecordJson(o));
    return recs;
}

/** Cut a connection after @p keepRecords streamed records: the server
 *  must notice the dead peer, stop streaming, and keep serving
 *  everyone else. Uses the raw protocol — the point is the torn
 *  stream, not the client library. */
void
disconnectMidStream(const std::string &socketPath,
                    const proto::SweepRequest &req,
                    unsigned keepRecords)
{
    std::string err;
    const int fd = proto::connectUnix(socketPath, &err);
    if (fd < 0)
        return;
    proto::Framed link(fd);
    proto::Hello hello;
    hello.pid = ::getpid();
    if (!link.send(proto::MsgType::HelloClient, hello.encode()) ||
        !link.send(proto::MsgType::Submit, req.encode()))
        return;
    proto::MsgType t;
    std::vector<std::uint8_t> payload;
    unsigned seen = 0;
    while (seen < keepRecords && link.recv(t, payload)) {
        if (t != proto::MsgType::ResultRecord)
            break; // rejected before streaming — still a torn close
        ++seen;
    }
    // Framed's destructor closes the fd mid-stream.
}

/** Throw protocol garbage at a fresh connection: an oversized length
 *  prefix, then an unsealed payload on another. The daemon must drop
 *  both without dying. */
void
sendBadFrames(const std::string &socketPath, unsigned which)
{
    std::string err;
    const int fd = proto::connectUnix(socketPath, &err);
    if (fd < 0)
        return;
    if (which % 2 == 0) {
        // A header promising a frame larger than kMaxFrameBytes: the
        // server must refuse to allocate and drop the connection.
        const std::uint32_t len = proto::kMaxFrameBytes + 1;
        std::uint8_t hdr[5];
        hdr[0] = std::uint8_t(len);
        hdr[1] = std::uint8_t(len >> 8);
        hdr[2] = std::uint8_t(len >> 16);
        hdr[3] = std::uint8_t(len >> 24);
        hdr[4] = std::uint8_t(proto::MsgType::Submit);
        (void)!::send(fd, hdr, sizeof(hdr), MSG_NOSIGNAL);
        ::close(fd);
        return;
    }
    // An unsealed (checksum-less) payload behind a valid header.
    proto::Framed link(fd);
    proto::Hello hello;
    hello.pid = ::getpid();
    link.send(proto::MsgType::HelloClient, hello.encode());
    std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
    link.send(proto::MsgType::Submit, junk);
}

/** Poll the daemon's stats until the unit accounting is balanced and
 *  stable (idle), or @p timeout elapses. */
bool
awaitQuiescent(const std::string &socketPath, proto::ServerStats &out,
               std::chrono::seconds timeout)
{
    const auto t0 = std::chrono::steady_clock::now();
    proto::ServerStats prev{};
    bool havePrev = false;
    while (std::chrono::steady_clock::now() - t0 < timeout) {
        proto::ServerStats s;
        std::string err;
        if (queryStats(socketPath, s, &err)) {
            const bool balanced =
                s.unitsEnqueued == s.unitsCompleted + s.unitsFailed;
            const bool stable =
                havePrev &&
                s.unitsCompleted == prev.unitsCompleted &&
                s.unitsFailed == prev.unitsFailed;
            if (balanced && stable) {
                out = s;
                return true;
            }
            prev = s;
            havePrev = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

} // namespace

std::string
ChaosReport::summary() const
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "chaos: %u requests (%u ok, %u failed, %u deadline), "
                  "%u disconnects, %u bad frames\n",
                  requestsSent, requestsOk, requestsFailed,
                  deadlineErrors, disconnectsDone, badFramesSent);
    out += buf;
    const auto d = [&](std::uint64_t a, std::uint64_t b) {
        return static_cast<unsigned long long>(a - b);
    };
    std::snprintf(
        buf, sizeof(buf),
        "chaos: units %llu enqueued = %llu done + %llu failed; "
        "%llu retries, %llu restarts, %llu hang kills, "
        "%llu deadline failures\n",
        d(statsAfter.unitsEnqueued, statsBefore.unitsEnqueued),
        d(statsAfter.unitsCompleted, statsBefore.unitsCompleted),
        d(statsAfter.unitsFailed, statsBefore.unitsFailed),
        d(statsAfter.unitRetries, statsBefore.unitRetries),
        d(statsAfter.workerRestarts, statsBefore.workerRestarts),
        d(statsAfter.hangKills, statsBefore.hangKills),
        d(statsAfter.deadlineFailures, statsBefore.deadlineFailures));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "chaos: verdict %s (records %s, errors %s, daemon %s, "
                  "accounting %s)%s%s\n",
                  ok() ? "PASS" : "FAIL",
                  recordsMatch ? "match" : "DIVERGE",
                  errorsStructured ? "structured" : "UNSTRUCTURED",
                  daemonAlive ? "alive" : "DEAD",
                  accountingBalanced ? "balanced" : "UNBALANCED",
                  firstProblem.empty() ? "" : ": ",
                  firstProblem.c_str());
    out += buf;
    return out;
}

ChaosReport
runChaosCampaign(const std::string &socketPath,
                 const proto::SweepRequest &baseReq,
                 const ChaosOptions &copt)
{
    ChaosReport rep;
    const auto problem = [&rep](const std::string &why) {
        if (rep.firstProblem.empty())
            rep.firstProblem = why;
    };

    std::string err;
    if (!queryStats(socketPath, rep.statsBefore, &err)) {
        problem("stats query failed before campaign: " + err);
        return rep;
    }

    rep.records = serialReference(baseReq);

    // Seeded fault placement: the same seed always builds the same
    // per-request ChaosSpec assignment (and the server assigns modes
    // to units in creation order), so a failing campaign replays.
    const unsigned nReq = std::max(1u, copt.requests);
    std::vector<proto::SweepRequest> reqs(nReq, baseReq);
    Random rng(copt.seed ^ 0xc4a05c4a05ULL);
    const auto place = [&](unsigned count,
                           std::uint32_t proto::ChaosSpec::*field) {
        // Round-robin from a seeded start: spreads each category as
        // evenly as possible, so no single request is ever assigned
        // more chaos units than it has work units.
        unsigned at = unsigned(rng.below(nReq));
        for (unsigned k = 0; k < count; ++k) {
            reqs[at].chaos.*field += 1;
            at = (at + 1) % nReq;
        }
    };
    place(copt.workerExits, &proto::ChaosSpec::exitUnits);
    place(copt.workerHangs, &proto::ChaosSpec::hangUnits);
    place(copt.corruptFrames, &proto::ChaosSpec::corruptUnits);
    place(copt.truncFrames, &proto::ChaosSpec::truncUnits);
    place(copt.delayedUnits, &proto::ChaosSpec::delayUnits);
    place(copt.dribbledUnits, &proto::ChaosSpec::dribbleUnits);
    for (proto::SweepRequest &r : reqs)
        r.chaos.delayMs = copt.delayMs;

    // Wave 1: the chaos requests, concurrently, with the disconnect
    // clients tearing their own streams alongside.
    struct Verdict
    {
        SubmitStatus status = SubmitStatus::TransportError;
        ClientResult res;
        std::string err;
    };
    std::vector<Verdict> verdicts(nReq);
    std::vector<std::thread> threads;
    threads.reserve(nReq + copt.clientDisconnects);
    for (unsigned i = 0; i < nReq; ++i)
        threads.emplace_back([&, i] {
            verdicts[i].status =
                submitSweepOnce(socketPath, reqs[i], 1,
                                verdicts[i].res, &verdicts[i].err);
        });
    for (unsigned k = 0; k < copt.clientDisconnects; ++k)
        threads.emplace_back([&, k] {
            disconnectMidStream(socketPath, baseReq, 1 + k);
        });
    for (std::thread &t : threads)
        t.join();
    rep.requestsSent += nReq;
    rep.disconnectsDone = copt.clientDisconnects;

    // Wave 2: deadline victims, serially (the snapshot cache is warm
    // now, so the deadline — not a poisoned shared capture — is the
    // only thing that can fail them).
    for (unsigned k = 0; k < copt.deadlineVictims; ++k) {
        proto::SweepRequest dr = baseReq;
        dr.deadlineMs = 1;
        Verdict v;
        v.status = submitSweepOnce(socketPath, dr, 1, v.res, &v.err);
        ++rep.requestsSent;
        verdicts.push_back(std::move(v));
    }

    // Wave 3: protocol garbage on raw connections.
    for (unsigned k = 0; k < copt.badFrameProbes; ++k)
        sendBadFrames(socketPath, k);
    rep.badFramesSent = copt.badFrameProbes;

    // Judge every request: survivors must be byte-identical to the
    // serial reference, failures must carry a structured verdict.
    rep.recordsMatch = true;
    rep.errorsStructured = true;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        const Verdict &v = verdicts[i];
        if (v.status == SubmitStatus::Ok) {
            ++rep.requestsOk;
            if (v.res.records != rep.records) {
                rep.recordsMatch = false;
                problem("request " + std::to_string(i) +
                        " records diverge from serial");
            }
            continue;
        }
        ++rep.requestsFailed;
        if (v.status == SubmitStatus::DeadlineExpired) {
            ++rep.deadlineErrors;
        } else {
            rep.errorsStructured = false;
            problem("request " + std::to_string(i) +
                    " failed without a structured verdict: " +
                    std::string(submitStatusName(v.status)) + " (" +
                    v.err + ")");
        }
        if (copt.verbose)
            std::fprintf(stderr, "chaos: request %zu -> %s: %s\n", i,
                         submitStatusName(v.status), v.err.c_str());
    }
    if (rep.deadlineErrors != copt.deadlineVictims) {
        rep.errorsStructured = false;
        problem("expected " + std::to_string(copt.deadlineVictims) +
                " deadline verdicts, saw " +
                std::to_string(rep.deadlineErrors));
    }

    // Quiescence + the exact-accounting invariant.
    if (!awaitQuiescent(socketPath, rep.statsAfter,
                        std::chrono::seconds(60))) {
        problem("daemon did not quiesce (units unaccounted for)");
        return rep;
    }
    const proto::ServerStats &a = rep.statsAfter;
    const proto::ServerStats &b = rep.statsBefore;
    const std::uint64_t dEnq = a.unitsEnqueued - b.unitsEnqueued;
    const std::uint64_t dDone = a.unitsCompleted - b.unitsCompleted;
    const std::uint64_t dFail = a.unitsFailed - b.unitsFailed;
    rep.accountingBalanced = dEnq == dDone + dFail;
    if (!rep.accountingBalanced)
        problem("unit accounting does not balance");
    const std::uint64_t dRetry = a.unitRetries - b.unitRetries;
    const unsigned crashes = copt.workerExits + copt.workerHangs +
                             copt.corruptFrames + copt.truncFrames;
    if (dRetry < crashes) {
        rep.accountingBalanced = false;
        problem("fewer unit retries than injected worker deaths");
    }
    if (a.hangKills - b.hangKills != copt.workerHangs) {
        rep.accountingBalanced = false;
        problem("hang-kill count does not match the injected hangs");
    }
    if (copt.deadlineVictims > 0 &&
        a.deadlineFailures == b.deadlineFailures) {
        rep.accountingBalanced = false;
        problem("no deadline failures recorded despite victims");
    }

    // The daemon must still serve — and still serve *correctly*.
    ClientResult fin;
    const SubmitStatus fs =
        submitSweepOnce(socketPath, baseReq, 1, fin, &err);
    rep.daemonAlive =
        fs == SubmitStatus::Ok && fin.records == rep.records;
    if (!rep.daemonAlive)
        problem("post-campaign clean request failed: " + err);

    return rep;
}

} // namespace sweep
} // namespace sdv
