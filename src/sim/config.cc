#include "sim/config.hh"

#include "common/log.hh"
#include "common/serialize.hh"

namespace sdv {

std::string
configLabel(unsigned ports, BusMode mode)
{
    std::string label = std::to_string(ports) + "p";
    switch (mode) {
      case BusMode::ScalarBus:
        label += "noIM";
        break;
      case BusMode::WideBus:
        label += "IM";
        break;
      case BusMode::WideBusSdv:
        label += "V";
        break;
    }
    return label;
}

CoreConfig
makeConfig(unsigned width, unsigned ports, BusMode mode)
{
    sdv_assert(width == 4 || width == 8, "width must be 4 or 8");
    sdv_assert(ports == 1 || ports == 2 || ports == 4,
               "ports must be 1, 2 or 4");

    CoreConfig cfg;
    cfg.fetchWidth = width;
    cfg.decodeWidth = width;
    cfg.issueWidth = width;
    cfg.commitWidth = width;
    cfg.maxStoresPerCycle = 2;
    cfg.fetchQueueEntries = 2 * width;
    cfg.dcachePorts = ports;
    cfg.widePorts = mode != BusMode::ScalarBus;

    if (width == 4) {
        cfg.robEntries = 128;
        cfg.lsqEntries = 32;
        cfg.fu.intAlu = 3;
        cfg.fu.intMulDiv = 2;
        cfg.fu.fpAdd = 2;
        cfg.fu.fpMulDiv = 1;
    } else {
        cfg.robEntries = 256;
        cfg.lsqEntries = 64;
        cfg.fu.intAlu = 6;
        cfg.fu.intMulDiv = 3;
        cfg.fu.fpAdd = 4;
        cfg.fu.fpMulDiv = 2;
    }

    // Branch predictor: gshare with 64K entries (Table 1).
    cfg.gshareEntries = 64 * 1024;
    cfg.gshareHistoryBits = 16;

    // Memory hierarchy latencies/geometry: Table 1 defaults already
    // encode the paper's caches.
    cfg.mem = MemHierarchyConfig{};

    // Vectorization engine.
    cfg.engine.enabled = mode == BusMode::WideBusSdv;
    cfg.engine.vlen = 4;
    cfg.engine.numVregs = 128;
    cfg.engine.tlSets = 512;
    cfg.engine.tlWays = 4;
    cfg.engine.tlConfidence = 2;
    cfg.engine.vrmtSets = 64;
    cfg.engine.vrmtWays = 4;
    cfg.engine.blockOnScalarOperand = true;
    // Vector FUs mirror the scalar counts (Table 1).
    cfg.engine.fu.intAlu = cfg.fu.intAlu;
    cfg.engine.fu.intMulDiv = cfg.fu.intMulDiv;
    cfg.engine.fu.fpAdd = cfg.fu.fpAdd;
    cfg.engine.fu.fpMulDiv = cfg.fu.fpMulDiv;
    cfg.engine.fu.loadPorts = 4; // "1 to 4 loads"

    return cfg;
}

CoreConfig
defaultSdvConfig()
{
    return makeConfig(4, 1, BusMode::WideBusSdv);
}

std::string
describeFaultPlan(const FaultPlan &plan)
{
    if (!plan.enabled)
        return "off";
    std::string s = "seed=" + std::to_string(plan.seed);
    s += " elem_ppm=" + std::to_string(plan.elemFlipPpm);
    s += " vrmt_ppm=" + std::to_string(plan.vrmtFlipPpm);
    s += " image_ppm=" + std::to_string(plan.imageFlipPpm);
    s += " demote_k=" + std::to_string(plan.demoteThreshold);
    s += " reenable=" + std::to_string(plan.reenableWindow);
    return s;
}

std::uint64_t
configIdentityHash(const CoreConfig &cfg)
{
    // Field-by-field canonical serialization: raw struct bytes would
    // hash padding (indeterminate), so every member is written
    // explicitly. Any new CoreConfig field that changes simulated
    // behavior must be added here, or distinct machines could share a
    // snapshot-cache key.
    Serializer ser;
    ser.u32(cfg.fetchWidth);
    ser.u32(cfg.decodeWidth);
    ser.u32(cfg.issueWidth);
    ser.u32(cfg.commitWidth);
    ser.u32(cfg.maxStoresPerCycle);
    ser.u32(cfg.robEntries);
    ser.u32(cfg.lsqEntries);
    ser.u32(cfg.fetchQueueEntries);
    ser.u32(cfg.fu.intAlu);
    ser.u32(cfg.fu.intMulDiv);
    ser.u32(cfg.fu.fpAdd);
    ser.u32(cfg.fu.fpMulDiv);
    ser.u32(cfg.dcachePorts);
    ser.b(cfg.widePorts);
    ser.u32(cfg.gshareEntries);
    ser.u32(cfg.gshareHistoryBits);
    ser.u32(cfg.btbSets);
    ser.u32(cfg.btbWays);
    ser.u32(cfg.rasDepth);
    ser.u32(cfg.fig10WindowInsts);
    ser.b(cfg.eventSkip);
    ser.b(cfg.traceExec);

    const MemHierarchyConfig &m = cfg.mem;
    ser.u64(m.l1iSize);
    ser.u32(m.l1iAssoc);
    ser.u32(m.l1iLineBytes);
    ser.u64(m.l1iHitCycles);
    ser.u64(m.l1dSize);
    ser.u32(m.l1dAssoc);
    ser.u32(m.l1dLineBytes);
    ser.u64(m.l1dHitCycles);
    ser.u64(m.l1dMissCycles);
    ser.u64(m.l2Size);
    ser.u32(m.l2Assoc);
    ser.u32(m.l2LineBytes);
    ser.u64(m.l2MissCycles);
    ser.u32(m.mshrEntries);

    const EngineConfig &e = cfg.engine;
    ser.b(e.enabled);
    ser.u32(e.vlen);
    ser.u32(e.numVregs);
    ser.u32(e.tlSets);
    ser.u32(e.tlWays);
    ser.u8(e.tlConfidence);
    ser.u32(e.vrmtSets);
    ser.u32(e.vrmtWays);
    ser.b(e.blockOnScalarOperand);
    ser.b(e.eagerChainLoads);
    ser.u32(e.fu.intAlu);
    ser.u32(e.fu.intMulDiv);
    ser.u32(e.fu.fpAdd);
    ser.u32(e.fu.fpMulDiv);
    ser.u32(e.fu.loadPorts);
    ser.b(e.fault.enabled);
    ser.u64(e.fault.seed);
    ser.u32(e.fault.elemFlipPpm);
    ser.u32(e.fault.vrmtFlipPpm);
    ser.u32(e.fault.imageFlipPpm);
    ser.u32(e.fault.demoteThreshold);
    ser.u64(e.fault.reenableWindow);

    const std::vector<std::uint8_t> buf = ser.finish();
    return fnv1a(buf.data(), buf.size());
}

StorageCost
storageCost(const CoreConfig &cfg)
{
    StorageCost cost;
    cost.vectorRegisterFileBytes =
        std::uint64_t(cfg.engine.numVregs) * cfg.engine.vlen * 8;
    cost.vrmtBytes =
        std::uint64_t(cfg.engine.vrmtSets) * cfg.engine.vrmtWays * 18;
    cost.tlBytes = std::uint64_t(cfg.engine.tlSets) * cfg.engine.tlWays * 24;
    return cost;
}

} // namespace sdv
