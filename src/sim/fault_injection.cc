#include "sim/fault_injection.hh"

namespace sdv {

std::size_t
applyImageFaults(std::vector<std::uint8_t> &bytes, Random &rng,
                 std::uint32_t flip_ppm)
{
    std::size_t corrupted = 0;
    if (flip_ppm == 0)
        return corrupted;
    for (auto &b : bytes) {
        if (rng.below(1'000'000) < flip_ppm) {
            b ^= std::uint8_t(1) << rng.below(8);
            ++corrupted;
        }
    }
    return corrupted;
}

} // namespace sdv
