/**
 * @file
 * Machine configuration presets reproducing Table 1 of the paper: a
 * 4-way and an 8-way dynamically scheduled superscalar, each with 1, 2
 * or 4 L1D ports that are either scalar or wide, with or without the
 * speculative dynamic vectorization mechanism.
 */

#ifndef SDV_SIM_CONFIG_HH
#define SDV_SIM_CONFIG_HH

#include <string>

#include "core/core.hh"
#include "sim/fault_injection.hh"

namespace sdv {

/** The three machine flavours compared throughout Section 4.3. */
enum class BusMode
{
    ScalarBus, ///< xpnoIM: conventional scalar buses
    WideBus,   ///< xpIM: wide (full-line) buses
    WideBusSdv ///< xpV: wide buses + dynamic vectorization
};

/** @return short label used in the paper's figures (e.g. "1pV"). */
std::string configLabel(unsigned ports, BusMode mode);

/**
 * Build the Table 1 machine.
 *
 * @param width 4 or 8 (issue width)
 * @param ports number of L1 data cache ports (1, 2 or 4)
 * @param mode bus flavour / vectorization
 */
CoreConfig makeConfig(unsigned width, unsigned ports, BusMode mode);

/** Convenience: the paper's 4-way machine with one wide bus + SDV. */
CoreConfig defaultSdvConfig();

/** Extra storage cost of the mechanism (Section 4.1: 56KB total). */
struct StorageCost
{
    std::uint64_t vectorRegisterFileBytes;
    std::uint64_t vrmtBytes;
    std::uint64_t tlBytes;

    std::uint64_t
    totalBytes() const
    {
        return vectorRegisterFileBytes + vrmtBytes + tlBytes;
    }
};

/** @return the storage accounting of Section 4.1 for @p cfg. */
StorageCost storageCost(const CoreConfig &cfg);

/** @return a one-line description of @p plan ("off" when disabled),
 *  used by logs and fuzz repro files. */
std::string describeFaultPlan(const FaultPlan &plan);

/**
 * Canonical identity hash of a full machine configuration: FNV-1a over
 * a field-by-field serialization of every CoreConfig member (widths,
 * FUs, ports, predictors, memory hierarchy, engine geometry and policy
 * flags, fault plan). Two configs hash equal iff they describe the
 * same machine — the hash never reads raw struct bytes, so padding
 * can't leak in. The sweep server keys its snapshot cache on this
 * (docs/sweep.md, "cache key").
 */
std::uint64_t configIdentityHash(const CoreConfig &cfg);

} // namespace sdv

#endif // SDV_SIM_CONFIG_HH
