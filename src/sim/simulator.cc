#include "sim/simulator.hh"

#include "common/log.hh"
#include "obs/telemetry.hh"

namespace sdv {

Simulator::Simulator(const CoreConfig &cfg, const Program &prog)
    : prog_(prog), core_(cfg, prog)
{
}

bool
Simulator::warmup(std::uint64_t insts, std::uint64_t max_cycles)
{
    sdv_assert(insts > 0, "warmup needs at least one instruction");
    return advanceTo(insts, max_cycles);
}

bool
Simulator::advanceTo(std::uint64_t target_insts,
                     std::uint64_t max_cycles)
{
    sdv_assert(target_insts > core_.oracle().instCount(),
               "advanceTo target is behind the current position");
    const ScopedLogContext log_ctx("sim", core_.cyclePtr());
    core_.setFetchLimit(target_insts);
    core_.setCycleLimit(max_cycles);
    // Run until the capped fetch stream has fully drained through the
    // pipeline *and* the vector engine (even when HALT committed
    // inside the warm-up, in-flight vector elements must land before
    // the boundary). The quiescence check runs only once fetch is
    // exhausted, so the steady-state warm-up loop stays as cheap as a
    // normal run.
    while (core_.cycle() < max_cycles && !checkAbort() &&
           !(core_.fetchExhausted() && core_.quiescent()))
        core_.tick();
    core_.setFetchLimit(0);
    core_.setCycleLimit(neverCycle);
    if (core_.done() || !core_.quiescent()) {
        // Program over, or the budget elapsed before the pipeline
        // quiesced: no measurement boundary exists. The simulator is
        // left as-is (not rebased) and the caller must discard it.
        warn("warm-up did not reach a measurement boundary");
        return false;
    }
    core_.beginMeasurement();
    return true;
}

void
Simulator::collect(SimResult &res)
{
    res.cycles = core_.cycle();
    res.core = core_.stats();
    res.insts = res.core.committedInsts;
    res.ipc = res.core.ipc();
    res.engine = core_.engine().stats();
    res.datapath = core_.engine().datapath().stats();
    res.ports = core_.ports().stats();
    res.wideBus = core_.ports().wideBusBreakdown();
    res.fates = core_.engine().vrf().fateStats();
    res.l1d = core_.memHierarchy().l1d().stats();
    res.l1i = core_.memHierarchy().l1i().stats();
    res.l2 = core_.memHierarchy().l2().stats();
}

SimResult
Simulator::runInsts(std::uint64_t insts, std::uint64_t max_cycles)
{
    sdv_assert(insts > 0, "runInsts needs at least one instruction");
    const ScopedLogContext log_ctx("sim", core_.cyclePtr());
    core_.setFetchLimit(core_.oracle().instCount() + insts);
    core_.setCycleLimit(max_cycles);
    // As in advanceTo(): run until the capped fetch stream has fully
    // drained, so the measured region's statistics are complete.
    while (core_.cycle() < max_cycles && !core_.done() &&
           !checkAbort() &&
           !(core_.fetchExhausted() && core_.quiescent()))
        core_.tick();
    // A sample is complete when its region drained or the program ran
    // to HALT inside it; only a blown cycle budget leaves it unusable.
    const bool drained =
        !aborted_ &&
        (core_.done() || (core_.fetchExhausted() && core_.quiescent()));
    core_.setFetchLimit(0);
    core_.setCycleLimit(neverCycle);
    core_.finalize();

    SimResult res;
    res.finished = drained;
    res.timedOut = aborted_;
    if (!res.finished && !res.timedOut)
        warn("sample measurement hit the cycle budget");
    collect(res);
    return res;
}

SimResult
Simulator::run(std::uint64_t max_cycles, bool verify,
               std::uint64_t quiesce_interval)
{
    SimResult res;
    const ScopedLogContext log_ctx("sim", core_.cyclePtr());
    core_.setCycleLimit(max_cycles);
    if (telemetry_)
        telemetry_->begin(core_);
    if (quiesce_interval == 0) {
        while (!core_.done() && core_.cycle() < max_cycles &&
               !checkAbort()) {
            core_.tick();
            if (telemetry_ && telemetry_->due(core_.cycle()))
                telemetry_->sample(core_);
        }
    } else {
        // Periodic context-switch semantics: cap fetch at the next
        // boundary, drain until quiescent, drop the transient vector
        // state, continue. The clock and statistics keep accumulating
        // (unlike warmup()/advanceTo(), which rebase them).
        std::uint64_t boundary =
            core_.oracle().instCount() + quiesce_interval;
        while (!core_.done() && core_.cycle() < max_cycles &&
               !checkAbort()) {
            core_.setFetchLimit(boundary);
            while (core_.cycle() < max_cycles && !checkAbort() &&
                   !(core_.fetchExhausted() && core_.quiescent())) {
                core_.tick();
                if (telemetry_ && telemetry_->due(core_.cycle()))
                    telemetry_->sample(core_);
            }
            core_.setFetchLimit(0);
            if (core_.done() || core_.cycle() >= max_cycles ||
                aborted_)
                break;
            core_.quiesceVectorState();
            boundary += quiesce_interval;
        }
    }

    // Flush the final partial interval while the vector state is still
    // live (finalize() releases it, which would skew the last sample's
    // live-vreg occupancy).
    if (telemetry_)
        telemetry_->finish(core_);

    core_.finalize();

    res.finished = !aborted_ && core_.done();
    res.timedOut = aborted_;
    if (!res.finished && !res.timedOut)
        warn("simulation hit the cycle budget before HALT");

    collect(res);

    if (verify && res.finished) {
        // Independent functional execution: the committed stream (PC
        // sequence and count) and the final architectural state must
        // match exactly — speculation must never leak into state. The
        // reference runs the same dispatch path as the timing core's
        // oracle (trace or interpreter) through the fast handlers.
        FunctionalCore ref(prog_, core_.config().traceExec);
        std::uint64_t hash = 0;
        ref.runToHalt(&hash);
        // committedTotal() spans any warm-up region too: the hash and
        // count cover the whole committed stream, not just the
        // measured statistics window.
        const bool stream_ok = hash == core_.commitPcHash() &&
                               ref.instCount() == core_.committedTotal();
        const bool state_ok =
            ref.state() == core_.oracle().state() &&
            ref.memory().equals(core_.oracle().memory());
        res.verified = stream_ok && state_ok;
        if (!res.verified)
            warn("timing simulation diverged from functional reference");
    }
    return res;
}

SimResult
simulate(const CoreConfig &cfg, const Program &prog,
         std::uint64_t max_cycles, bool verify)
{
    Simulator sim(cfg, prog);
    return sim.run(max_cycles, verify);
}

} // namespace sdv
