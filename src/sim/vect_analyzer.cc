#include "sim/vect_analyzer.hh"

#include <array>
#include <unordered_map>

#include "arch/executor.hh"
#include "common/types.hh"

namespace sdv {

VectAnalysis
analyzeVectorizability(const Program &prog, std::uint64_t max_insts,
                       unsigned confidence)
{
    VectAnalysis out;
    FunctionalCore core(prog);

    struct LoadEntry
    {
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned conf = 0;
        unsigned size = 8;
        bool seen = false;
    };
    std::unordered_map<Addr, LoadEntry> tl;
    // Per logical register: does it currently hold a vectorized value,
    // and which static instruction produced it (for self-recurrence
    // detection)?
    std::array<bool, numLogicalRegs> vec{};
    std::array<Addr, numLogicalRegs> vecSetter{};
    // Per arithmetic PC: the scalar operand values of the previous
    // dynamic instance (the VRMT stores the captured scalar value and a
    // changed value means the instance re-vectorizes instead of
    // validating, Section 3.2).
    struct ArithHistory
    {
        bool seen = false;
        std::uint64_t scalar1 = 0;
        std::uint64_t scalar2 = 0;
    };
    std::unordered_map<Addr, ArithHistory> arith;

    // A store into the prospective vector range of an active entry
    // invalidates it (the Section 3.6 coherence check): confidence is
    // lost and the pattern must be re-learned.
    auto store_kill = [&](Addr lo, Addr hi) {
        for (auto &[pc, e] : tl) {
            if (!e.seen || e.conf < confidence)
                continue;
            const std::int64_t s = e.stride;
            Addr first = e.lastAddr + Addr(s);
            Addr last = e.lastAddr + Addr(4 * s);
            if (first > last)
                std::swap(first, last);
            last += e.size - 1;
            if (lo <= last && hi >= first)
                e.conf = 0;
        }
    };

    while (!core.halted() && out.insts < max_insts) {
        const ExecRecord rec = core.step();
        ++out.insts;
        const Instruction &in = rec.inst;
        const OpInfo &info = in.info();

        if (rec.isStore)
            store_kill(rec.addr, rec.addr + rec.size - 1);

        if (in.isLoad() && info.vectorizable) {
            LoadEntry &e = tl[rec.pc];
            bool vectorized = false;
            if (e.seen) {
                const std::int64_t stride =
                    std::int64_t(rec.addr) - std::int64_t(e.lastAddr);
                if (stride == e.stride) {
                    if (e.conf < 255)
                        ++e.conf;
                } else {
                    e.stride = stride;
                    e.conf = 0;
                }
                vectorized = e.conf >= confidence;
            }
            e.lastAddr = rec.addr;
            e.size = rec.size;
            e.seen = true;
            if (vectorized) {
                ++out.vectorizable;
                ++out.vectorizableLoads;
            }
            if (in.rd != zeroReg) {
                vec[in.rd] = vectorized;
                vecSetter[in.rd] = rec.pc;
            }
            continue;
        }

        if (info.vectorizable && info.writesRd) {
            bool src_vec = false;
            bool self_recurrent = false;
            bool scalars_stable = true;
            ArithHistory &h = arith[rec.pc];

            auto classify = [&](bool reads, RegId r,
                                std::uint64_t value,
                                std::uint64_t &last_scalar) {
                if (!reads)
                    return;
                if (vec[r]) {
                    src_vec = true;
                    // A register fed by this very instruction's
                    // previous instance (a reduction) can never
                    // validate: the element pairing advances with the
                    // destination, not the source.
                    if (vecSetter[r] == rec.pc)
                        self_recurrent = true;
                } else {
                    if (h.seen && last_scalar != value)
                        scalars_stable = false;
                    last_scalar = value;
                }
            };
            classify(info.readsRs1, in.rs1, rec.srcValue1, h.scalar1);
            classify(info.readsRs2, in.rs2, rec.srcValue2, h.scalar2);
            const bool was_seen = h.seen;
            h.seen = true;

            const bool vectorized = src_vec && !self_recurrent &&
                                    (scalars_stable || !was_seen);
            if (vectorized) {
                ++out.vectorizable;
                ++out.vectorizableArith;
            }
            if (in.rd != zeroReg) {
                vec[in.rd] = vectorized;
                vecSetter[in.rd] = rec.pc;
            }
            continue;
        }

        // Everything else produces non-vectorized values.
        if (info.writesRd && in.rd != zeroReg)
            vec[in.rd] = false;
    }
    return out;
}

} // namespace sdv
