/**
 * @file
 * Figure 1 analyzer: the distribution of load strides, measured in
 * elements (address delta divided by the access size), over a
 * functional execution.
 */

#ifndef SDV_SIM_STRIDE_PROFILER_HH
#define SDV_SIM_STRIDE_PROFILER_HH

#include <cstdint>

#include "common/histogram.hh"
#include "isa/program.hh"

namespace sdv {

/** Stride statistics of one program. */
struct StrideProfile
{
    /** |stride| in elements, buckets 0..9 (overflow beyond). */
    Histogram strideHist{10};

    std::uint64_t dynamicLoads = 0;  ///< all committed loads
    std::uint64_t strideSamples = 0; ///< loads with a defined stride
    std::uint64_t repeatSamples = 0; ///< stride equal to the previous one
    std::uint64_t repeatLt4 = 0;     ///< ... and |stride| < 4 elements

    /** @return fraction of strided (repeating) loads with stride < 4
     *  elements — the paper quotes 97.9% (SpecInt) / 81.3% (SpecFP). */
    double
    stridedBelow4Fraction() const
    {
        return repeatSamples == 0
                   ? 0.0
                   : double(repeatLt4) / double(repeatSamples);
    }
};

/**
 * Run @p prog functionally (up to @p max_insts) and profile the stride
 * of every static load.
 */
StrideProfile profileStrides(const Program &prog,
                             std::uint64_t max_insts = 10'000'000);

} // namespace sdv

#endif // SDV_SIM_STRIDE_PROFILER_HH
