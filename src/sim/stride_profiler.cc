#include "sim/stride_profiler.hh"

#include <unordered_map>

#include "arch/executor.hh"

namespace sdv {

StrideProfile
profileStrides(const Program &prog, std::uint64_t max_insts)
{
    StrideProfile profile;
    FunctionalCore core(prog);

    struct LoadHistory
    {
        Addr lastAddr = 0;
        std::int64_t lastStride = 0;
        bool hasAddr = false;
        bool hasStride = false;
    };
    std::unordered_map<Addr, LoadHistory> history;

    std::uint64_t n = 0;
    while (!core.halted() && n < max_insts) {
        const ExecRecord rec = core.step();
        ++n;
        if (!rec.inst.isLoad())
            continue;
        ++profile.dynamicLoads;
        LoadHistory &h = history[rec.pc];
        if (h.hasAddr) {
            const std::int64_t stride_bytes =
                std::int64_t(rec.addr) - std::int64_t(h.lastAddr);
            const std::int64_t stride_elems =
                stride_bytes / std::int64_t(rec.size);
            const std::int64_t mag =
                stride_elems < 0 ? -stride_elems : stride_elems;
            profile.strideHist.sample(mag);
            ++profile.strideSamples;
            if (h.hasStride && h.lastStride == stride_bytes) {
                ++profile.repeatSamples;
                if (mag < 4)
                    ++profile.repeatLt4;
            }
            h.lastStride = stride_bytes;
            h.hasStride = true;
        }
        h.lastAddr = rec.addr;
        h.hasAddr = true;
    }
    return profile;
}

} // namespace sdv
