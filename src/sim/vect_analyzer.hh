/**
 * @file
 * Figure 3 analyzer: the fraction of dynamic instructions that the
 * mechanism could vectorize with unbounded resources (unlimited vector
 * registers, perfect tables). Strided loads seed vectorization and the
 * attribute propagates down the dependence graph, exactly as in
 * Section 3.1.
 */

#ifndef SDV_SIM_VECT_ANALYZER_HH
#define SDV_SIM_VECT_ANALYZER_HH

#include <cstdint>

#include "isa/program.hh"

namespace sdv {

/** Unbounded-resource vectorizability of one program. */
struct VectAnalysis
{
    std::uint64_t insts = 0;              ///< dynamic instructions
    std::uint64_t vectorizable = 0;       ///< ... in vector mode
    std::uint64_t vectorizableLoads = 0;  ///< strided-load instances
    std::uint64_t vectorizableArith = 0;  ///< propagated arithmetic

    /** @return overall vectorizable fraction (Figure 3). */
    double
    fraction() const
    {
        return insts == 0 ? 0.0
                          : double(vectorizable) / double(insts);
    }
};

/**
 * Run @p prog functionally and compute the unbounded-resource
 * vectorizable fraction.
 *
 * @param confidence dynamic instances of a load with this many stride
 *        repetitions become vectorized (2, as in the TL)
 */
VectAnalysis analyzeVectorizability(const Program &prog,
                                    std::uint64_t max_insts = 10'000'000,
                                    unsigned confidence = 2);

} // namespace sdv

#endif // SDV_SIM_VECT_ANALYZER_HH
