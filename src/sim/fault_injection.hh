/**
 * @file
 * Speculative-state fault injection (the adversarial robustness layer).
 *
 * A FaultPlan names the speculative structures that get bits flipped
 * and the per-event rates: speculative vector-register elements (at the
 * cycle their value lands in the register file), VRMT entries (at
 * install, corrupting the captured stride/base address) and checkpoint
 * snapshot bytes (applied to a serialized image before restore). The
 * plan is part of the simulation configuration surface — sim/config.hh
 * re-exports it and EngineConfig embeds one — and this header is
 * deliberately dependency-free below common/ so the vector datapath and
 * the SDV engine can consume it without layering cycles.
 *
 * Every draw comes from one sdv::Random stream owned by the injector
 * and advanced only at discrete microarchitectural events (element
 * completions landing, VRMT installs). Those event sequences are
 * identical under the ticking and event-skipping clocks and do not
 * depend on sweep worker scheduling, so a fault run is bit-reproducible
 * — the same determinism contract common/random.hh reserves the stream
 * for.
 *
 * The architectural state of this simulator is oracle-driven (committed
 * values always come from the in-order functional core), so an injected
 * fault can never corrupt architectural results; what the plan attacks
 * is the *detection machinery*: every consumed corrupted element must
 * be flagged by its validation (EngineStats fault counters, CoreStats
 * specFaultsDetected), never absorbed into the genuine
 * validationValueMismatches self-check that CI gates on.
 */

#ifndef SDV_SIM_FAULT_INJECTION_HH
#define SDV_SIM_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace sdv {

/** Fault-injection configuration: sites, per-event rates, degradation
 *  policy. Rates are parts-per-million per event so integer configs
 *  stay exact and deterministic. */
struct FaultPlan
{
    bool enabled = false;    ///< master switch
    std::uint64_t seed = 0;  ///< injector stream seed (deriveSeed-based)

    /** Per landed vector-register element: probability (ppm) of
     *  flipping one uniformly chosen bit of the value. */
    std::uint32_t elemFlipPpm = 0;

    /** Per VRMT load-entry install: probability (ppm) of flipping one
     *  bit of the captured stride or base address. */
    std::uint32_t vrmtFlipPpm = 0;

    /** Per checkpoint image byte: probability (ppm) of flipping one
     *  bit (applied by applyImageFaults; the checksum guards must
     *  reject every corrupted image). */
    std::uint32_t imageFlipPpm = 0;

    /** Per TL observation (train/promote at decode): probability (ppm)
     *  of flipping one low bit of the entry's stride or last address.
     *  A corrupted entry misleads *future* spawns only — any wrong
     *  spawn is caught by the expected-address check, so the site
     *  attacks confidence/stride training, not committed state. */
    std::uint32_t tlFlipPpm = 0;

    /** Per shadow-GMRBB update (backward-branch commit): probability
     *  (ppm) of flipping one low bit of the recorded region tag. The
     *  GMRBB is only a release-region label, so a corrupted tag can
     *  delay or misgroup vector-register sweeps but never corrupt an
     *  architectural value. */
    std::uint32_t gmrbbFlipPpm = 0;

    /** Graceful degradation: after this many consecutive detected
     *  faults on one chain (static PC), demote the chain to scalar
     *  execution instead of re-speculating. */
    std::uint32_t demoteThreshold = 4;

    /** Demoted chains re-enable after this many clean scalar commits
     *  of the demoted PC. */
    std::uint64_t reenableWindow = 64;

    /** @return true when any in-engine site can fire. */
    bool
    armed() const
    {
        return enabled && (elemFlipPpm != 0 || vrmtFlipPpm != 0 ||
                           tlFlipPpm != 0 || gmrbbFlipPpm != 0);
    }
};

/** One VRMT corruption decision. */
struct VrmtFault
{
    bool fire = false;        ///< corrupt this install
    bool strideField = false; ///< flip in stride (else base address)
    std::uint64_t mask = 0;   ///< single-bit XOR mask
};

/** One TL-entry corruption decision (same shape as VrmtFault: the TL
 *  entry's stride or last-address field takes a single-bit flip). */
struct TlFault
{
    bool fire = false;        ///< corrupt this observation's entry
    bool strideField = false; ///< flip in stride (else last address)
    std::uint64_t mask = 0;   ///< single-bit XOR mask
};

/**
 * The per-simulator injector: owns the fault stream and the applied-
 * fault counters. The SDV engine owns one instance and hands it to the
 * vector datapath; both query it at their event sites.
 */
class FaultInjector
{
  public:
    /** Arm (or disarm) from a plan; resets the stream and counters. */
    void
    configure(const FaultPlan &plan)
    {
        plan_ = plan;
        rng_ = Random(plan.seed);
        elemFlips_ = 0;
        vrmtFlips_ = 0;
        tlFlips_ = 0;
        gmrbbFlips_ = 0;
    }

    /** @return true when any in-engine site can fire (hot-path guard;
     *  a disabled injector costs one branch per call site). */
    bool armed() const { return plan_.armed(); }

    /** @return the active plan. */
    const FaultPlan &plan() const { return plan_; }

    /**
     * Draw at an element-completion landing.
     * @return a single-bit XOR mask to apply to the landing value, or
     *         0 (no fault this event).
     */
    std::uint64_t
    drawElemFlip()
    {
        if (plan_.elemFlipPpm == 0 ||
            rng_.below(1'000'000) >= plan_.elemFlipPpm)
            return 0;
        ++elemFlips_;
        return std::uint64_t(1) << rng_.below(64);
    }

    /** Draw at a VRMT load-entry install. */
    VrmtFault
    drawVrmtFault()
    {
        VrmtFault f;
        if (plan_.vrmtFlipPpm == 0 ||
            rng_.below(1'000'000) >= plan_.vrmtFlipPpm)
            return f;
        f.fire = true;
        f.strideField = rng_.below(2) == 0;
        // Low bits only: a flip near bit 63 turns the expected-address
        // arithmetic into a wrap-around no-op for strides, and the
        // point is a *plausibly wrong* entry, not an absurd one.
        f.mask = std::uint64_t(1) << rng_.below(20);
        ++vrmtFlips_;
        return f;
    }

    /** Draw at a TL observe (train/promote at decode). The ppm == 0
     *  early-out consumes no rng, so arming only the classic sites
     *  leaves their established fault streams untouched. */
    TlFault
    drawTlFault()
    {
        TlFault f;
        if (plan_.tlFlipPpm == 0 ||
            rng_.below(1'000'000) >= plan_.tlFlipPpm)
            return f;
        f.fire = true;
        f.strideField = rng_.below(2) == 0;
        // Low bits only, same rationale as drawVrmtFault: the attack is
        // a plausibly-wrong stride/address, not a wild pointer.
        f.mask = std::uint64_t(1) << rng_.below(20);
        ++tlFlips_;
        return f;
    }

    /**
     * Draw at a shadow-GMRBB update (backward-branch commit).
     * @return a low-bit XOR mask for the recorded region tag, or 0.
     */
    std::uint64_t
    drawGmrbbFlip()
    {
        if (plan_.gmrbbFlipPpm == 0 ||
            rng_.below(1'000'000) >= plan_.gmrbbFlipPpm)
            return 0;
        ++gmrbbFlips_;
        // Instruction addresses are word-ish aligned; flip above bit 1
        // so the corrupted tag is a *different plausible PC*, and keep
        // it low so it stays inside the code region.
        return std::uint64_t(1) << (2 + rng_.below(10));
    }

    /** @return element bit flips applied so far. */
    std::uint64_t elemFlips() const { return elemFlips_; }

    /** @return VRMT corruptions applied so far. */
    std::uint64_t vrmtFlips() const { return vrmtFlips_; }

    /** @return TL-entry corruptions applied so far. */
    std::uint64_t tlFlips() const { return tlFlips_; }

    /** @return shadow-GMRBB tag corruptions applied so far. */
    std::uint64_t gmrbbFlips() const { return gmrbbFlips_; }

    /** Zero the applied-fault counters (measurement rebase; the
     *  stream position is deliberately left alone). */
    void
    resetCounters()
    {
        elemFlips_ = 0;
        vrmtFlips_ = 0;
        tlFlips_ = 0;
        gmrbbFlips_ = 0;
    }

  private:
    FaultPlan plan_;
    Random rng_{0};
    std::uint64_t elemFlips_ = 0;
    std::uint64_t vrmtFlips_ = 0;
    std::uint64_t tlFlips_ = 0;
    std::uint64_t gmrbbFlips_ = 0;
};

/**
 * Flip one bit of each byte of @p bytes with probability
 * @p flip_ppm / 1e6 (the checkpoint-image fault site). @return the
 * number of bytes corrupted. Used by the checkpoint fuzz tests and the
 * fuzz campaign; the loader's checksum guard must reject any image
 * this touched.
 */
std::size_t applyImageFaults(std::vector<std::uint8_t> &bytes,
                             Random &rng, std::uint32_t flip_ppm);

} // namespace sdv

#endif // SDV_SIM_FAULT_INJECTION_HH
