/**
 * @file
 * Top-level simulation driver: runs a program on a configured core to
 * completion, verifies the committed stream against an independent
 * functional execution, and gathers every statistic the benchmark
 * harness needs.
 */

#ifndef SDV_SIM_SIMULATOR_HH
#define SDV_SIM_SIMULATOR_HH

#include <atomic>
#include <cstdint>

#include "core/core.hh"
#include "sim/config.hh"

namespace sdv {

namespace obs {
class IntervalTelemetry;
} // namespace obs

/** Everything measured by one simulation. */
struct SimResult
{
    bool finished = false;      ///< HALT committed within the budget
    bool verified = false;      ///< committed stream matches functional
    /** True when an external abort flag (setAbortFlag) stopped the run
     *  — the sweep executor's job watchdog fired. Implies !finished. */
    bool timedOut = false;
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    double ipc = 0.0;

    /** True when the result is an interval-sampled estimate: every
     *  counter is the weighted extrapolation of @ref samplesMeasured
     *  measured regions (see sweep/sampling.hh), not an exact count. */
    bool sampled = false;
    unsigned samplesMeasured = 0;

    CoreStats core;
    EngineStats engine;
    DatapathStats datapath;
    PortStats ports;
    WideBusBreakdown wideBus;   ///< Figure 13
    VecRegFateStats fates;      ///< Figure 15
    CacheStats l1d;
    CacheStats l1i;
    CacheStats l2;

    /** Total L1D port requests (the paper's "memory requests"). */
    std::uint64_t
    memoryRequests() const
    {
        return ports.readAccesses + ports.writeAccesses;
    }

    /** Fraction of committed instructions that were validations. */
    double
    validationFraction() const
    {
        return core.committedInsts == 0
                   ? 0.0
                   : double(core.committedValidations) /
                         double(core.committedInsts);
    }

    /** Figure 10 fraction: reused instructions among post-mispredict
     *  window instructions. */
    double
    controlIndependenceFraction() const
    {
        return core.postMispredictWindowInsts == 0
                   ? 0.0
                   : double(core.postMispredictReused) /
                         double(core.postMispredictWindowInsts);
    }
};

/** One-program, one-configuration simulation. */
class Simulator
{
  public:
    /**
     * @param cfg machine configuration
     * @param prog program (must outlive the simulator)
     */
    Simulator(const CoreConfig &cfg, const Program &prog);

    /**
     * Run to HALT (or @p max_cycles).
     * @param verify re-run the program functionally and compare the
     *        committed stream / final state
     * @param quiesce_interval when non-zero, drain the pipeline and
     *        context-switch the transient vector state every this many
     *        fetched instructions (clock and statistics keep
     *        accumulating): the CLI-reproducible form of the
     *        measurement-boundary quiesce, for steady-state
     *        experiments (--quiesce-interval)
     */
    SimResult run(std::uint64_t max_cycles = 50'000'000,
                  bool verify = true,
                  std::uint64_t quiesce_interval = 0);

    /**
     * Warm up: simulate the first @p insts dynamic instructions to
     * completion, drain the pipeline, quiesce transient vector state
     * (context-switch semantics — caches, predictors and the Table of
     * Loads stay warm) and rebase the clock and statistics to zero.
     * The subsequent run() measures only the post-warm-up region; the
     * core is then at the checkpointable measurement boundary that
     * Checkpoint::capture serializes.
     *
     * @param insts dynamic instructions to warm over (> 0)
     * @param max_cycles safety bound on the warm-up itself
     * @retval false when no measurement boundary was reached — the
     *         program ran to HALT inside the warm-up, or the cycle
     *         budget elapsed with the pipeline still in flight. The
     *         simulator is then NOT rebased and must be discarded.
     */
    bool warmup(std::uint64_t insts,
                std::uint64_t max_cycles = 50'000'000);

    /**
     * Generalized warm-up: advance to the measurement boundary at
     * *absolute* committed-instruction count @p target_insts (counted
     * from program start, warm-up regions included), drain, quiesce
     * and rebase exactly like warmup(). Callable repeatedly with
     * increasing targets — the interval-sampling engine walks a run
     * boundary to boundary, capturing a checkpoint at each.
     *
     * @retval false when the boundary is unreachable (the program ran
     *         to HALT first, or the cycle budget elapsed in flight);
     *         the simulator must then be discarded
     */
    bool advanceTo(std::uint64_t target_insts,
                   std::uint64_t max_cycles = 50'000'000);

    /**
     * Measure a bounded region: run until @p insts more instructions
     * have been fetched and fully drained through the pipeline (or
     * HALT commits first), then finalize and return the statistics of
     * the region since the last measurement boundary. Used for the
     * per-sample measurement of an interval-sampled run; run() remains
     * the to-completion path.
     */
    SimResult runInsts(std::uint64_t insts,
                       std::uint64_t max_cycles = 50'000'000);

    /**
     * Attach an external abort flag (nullptr detaches). The run loops
     * poll it every few hundred ticks; once observed true, the current
     * run()/runInsts()/advanceTo() stops at the next tick boundary
     * with SimResult::timedOut set (the simulator state is then
     * mid-flight and must be discarded). The flag is how the sweep
     * executor's wall-clock job watchdog (--job-timeout) cancels a
     * hung simulation from outside the worker thread.
     */
    void
    setAbortFlag(const std::atomic<bool> *flag)
    {
        abort_ = flag;
        aborted_ = false;
        abortPoll_ = 0;
    }

    /** Attach a flight recorder (forwards to the core and every
     *  instrumented component; null detaches). Pure observation. */
    void setRecorder(obs::TraceRecorder *rec) { core_.setRecorder(rec); }

    /** Attach an interval-telemetry collector (null detaches). run()
     *  begins it at loop entry, samples it whenever the clock crosses
     *  an interval boundary, and flushes the final partial interval
     *  before finalize() — so the sample deltas sum exactly to the
     *  end-of-run aggregates. Only run() samples; the bounded-region
     *  entry points (runInsts/advanceTo) ignore it. */
    void setTelemetry(obs::IntervalTelemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

    /** @return the core (inspection/tests). */
    Core &core() { return core_; }

    /** @return the program under simulation. */
    const Program &program() const { return prog_; }

  private:
    /** Gather every statistic of the (finalized) core into @p res. */
    void collect(SimResult &res);

    /** Poll the external abort flag (sticky; sampled every 256th
     *  call so the hot run loops pay almost nothing). */
    bool
    checkAbort()
    {
        if (!abort_ || aborted_)
            return aborted_;
        if ((++abortPoll_ & 0xffu) != 0)
            return false;
        aborted_ = abort_->load(std::memory_order_relaxed);
        return aborted_;
    }

    const Program &prog_;
    Core core_;
    obs::IntervalTelemetry *telemetry_ = nullptr;
    const std::atomic<bool> *abort_ = nullptr;
    bool aborted_ = false;
    std::uint32_t abortPoll_ = 0;
};

/** Convenience wrapper: build, run, return the result. */
SimResult simulate(const CoreConfig &cfg, const Program &prog,
                   std::uint64_t max_cycles = 50'000'000,
                   bool verify = true);

} // namespace sdv

#endif // SDV_SIM_SIMULATOR_HH
