#include "arch/executor.hh"

#include "common/bitutils.hh"
#include "common/log.hh"
#include "isa/alu.hh"
#include "isa/trace.hh"

namespace sdv {

ExecRecord
executeOne(const Program &prog, ArchState &state, SparseMemory &mem)
{
    ExecRecord rec;
    rec.pc = state.pc;
    sdv_assert(prog.validPc(state.pc), "pc out of code region: ", state.pc);
    rec.inst = prog.instAt(state.pc);
    const Instruction &in = rec.inst;
    rec.nextPc = state.pc + instBytes;

    const std::uint64_t a = state.reg(in.rs1);
    const std::uint64_t b = state.reg(in.rs2);
    const auto sa = std::int64_t(a);
    const std::int64_t imm = in.imm;
    const OpInfo &info = in.info();
    rec.srcValue1 = a;
    rec.srcValue2 = b;

    std::uint64_t result = 0;

    switch (in.op) {
      case Opcode::LDQ:
      case Opcode::FLD:
        rec.isMem = true;
        rec.addr = a + std::uint64_t(imm);
        rec.size = 8;
        result = mem.read64(rec.addr);
        break;
      case Opcode::LDL:
        rec.isMem = true;
        rec.addr = a + std::uint64_t(imm);
        rec.size = 4;
        result = std::uint64_t(signExtend(mem.read32(rec.addr), 32));
        break;
      case Opcode::STQ:
      case Opcode::FST:
        rec.isMem = true;
        rec.isStore = true;
        rec.addr = a + std::uint64_t(imm);
        rec.size = 8;
        rec.value = b;
        rec.prevMemValue = mem.read64(rec.addr);
        mem.write64(rec.addr, b);
        break;
      case Opcode::STL:
        rec.isMem = true;
        rec.isStore = true;
        rec.addr = a + std::uint64_t(imm);
        rec.size = 4;
        rec.value = b;
        rec.prevMemValue = mem.read32(rec.addr);
        mem.write32(rec.addr, std::uint32_t(b));
        break;

      case Opcode::BEQZ:
        rec.taken = sa == 0;
        break;
      case Opcode::BNEZ:
        rec.taken = sa != 0;
        break;
      case Opcode::BLTZ:
        rec.taken = sa < 0;
        break;
      case Opcode::BGEZ:
        rec.taken = sa >= 0;
        break;
      case Opcode::BR:
        rec.taken = true;
        break;
      case Opcode::JAL:
        rec.taken = true;
        result = state.pc + instBytes;
        break;
      case Opcode::JR:
        rec.taken = true;
        rec.nextPc = a;
        break;
      case Opcode::JALR:
        rec.taken = true;
        rec.nextPc = a;
        result = state.pc + instBytes;
        break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        rec.halted = true;
        break;

      default:
        // Every remaining opcode is a pure register operation.
        result = evalScalarOp(in.op, a, b, in.imm);
        break;
    }

    // pc-relative control targets.
    if ((in.isCondBranch() && rec.taken) || in.op == Opcode::BR ||
        in.op == Opcode::JAL) {
        rec.nextPc = state.pc + Addr(std::int64_t(imm) * instBytes);
    }

    if (info.writesRd) {
        state.setReg(in.rd, result);
        rec.writesReg = in.rd != zeroReg;
        if (!rec.isStore)
            rec.value = result;
    } else if (!rec.isStore) {
        rec.value = result;
    }

    state.pc = rec.nextPc;
    return rec;
}

Addr
loadProgram(const Program &prog, SparseMemory &mem)
{
    // Code: one encoded 64-bit word per instruction slot.
    Addr pc = prog.codeBase();
    for (std::uint64_t word : prog.codeWords()) {
        mem.write64(pc, word);
        pc += instBytes;
    }
    for (const DataSegment &seg : prog.dataSegments())
        mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
    return prog.entry();
}

ArchState
initialState(const Program &prog)
{
    ArchState st;
    st.pc = prog.entry();
    st.setReg(30, Program::defaultStackTop); // conventional stack pointer
    return st;
}

FunctionalCore::FunctionalCore(const Program &prog, bool use_trace)
    : prog_(prog), trace_(use_trace ? &prog.trace() : nullptr)
{
    loadProgram(prog_, mem_);
    state_ = initialState(prog_);
}

void
FunctionalCore::stepInto(ExecRecord &rec)
{
    sdv_assert(!halted_, "step() after halt");
    if (trace_) {
        const CompiledTrace::Slot &u = trace_->slotAt(state_.pc);
        u.step(u, state_, mem_, rec);
    } else {
        rec = executeOne(prog_, state_, mem_);
    }
    ++instCount_;
    if (rec.halted)
        halted_ = true;
}

std::uint64_t
FunctionalCore::run(std::uint64_t max_insts)
{
    std::uint64_t n = 0;
    if (trace_) {
        while (!halted_ && n < max_insts) {
            const CompiledTrace::Slot &u = trace_->slotAt(state_.pc);
            u.fast(u, state_, mem_);
            if (u.inst.op == Opcode::HALT)
                halted_ = true;
            ++n;
        }
        instCount_ += n;
    } else {
        while (!halted_ && n < max_insts) {
            step();
            ++n;
        }
    }
    return n;
}

std::uint64_t
FunctionalCore::runToHalt(std::uint64_t *pc_hash)
{
    std::uint64_t h = 1469598103934665603ULL;
    std::uint64_t n = 0;
    if (trace_) {
        while (!halted_) {
            const CompiledTrace::Slot &u = trace_->slotAt(state_.pc);
            h = (h ^ state_.pc) * 1099511628211ULL;
            u.fast(u, state_, mem_);
            if (u.inst.op == Opcode::HALT)
                halted_ = true;
            ++n;
        }
    } else {
        while (!halted_) {
            h = (h ^ state_.pc) * 1099511628211ULL;
            const ExecRecord rec = executeOne(prog_, state_, mem_);
            if (rec.halted)
                halted_ = true;
            ++n;
        }
    }
    instCount_ += n;
    if (pc_hash)
        *pc_hash = h;
    return n;
}

} // namespace sdv
