#include "arch/memory.hh"

#include <algorithm>
#include <cstring>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "common/serialize.hh"

namespace sdv {

const SparseMemory::Page *
SparseMemory::findPage(Addr page_addr) const
{
    if (page_addr == mruAddr_)
        return mruPage_;
    auto it = pages_.find(page_addr);
    if (it == pages_.end())
        return nullptr;
    mruAddr_ = page_addr;
    // The cache is shared with the mutable path; writes only ever go
    // through it when the SparseMemory object itself is mutable.
    mruPage_ = const_cast<Page *>(&it->second);
    return mruPage_;
}

SparseMemory::Page &
SparseMemory::getPage(Addr page_addr)
{
    if (page_addr == mruAddr_)
        return *mruPage_;
    auto it = pages_.find(page_addr);
    if (it == pages_.end())
        it = pages_.emplace(page_addr, Page(pageBytes, 0)).first;
    mruAddr_ = page_addr;
    mruPage_ = &it->second;
    return *mruPage_;
}

std::uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    sdv_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const Addr page_addr = alignDown(addr, pageBytes);
    const unsigned offset = unsigned(addr - page_addr);
    std::uint64_t v = 0;
    if (offset + size <= pageBytes) {
        // Fast path: access within a single page.
        if (const Page *page = findPage(page_addr))
            std::memcpy(&v, page->data() + offset, size);
        return v;
    }
    // Straddles a page boundary: two lookups, two spans.
    const unsigned first = pageBytes - offset;
    if (const Page *page = findPage(page_addr))
        std::memcpy(&v, page->data() + offset, first);
    if (const Page *page = findPage(page_addr + pageBytes)) {
        std::uint64_t rest = 0;
        std::memcpy(&rest, page->data(), size - first);
        v |= rest << (8 * first);
    }
    return v;
}

void
SparseMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    sdv_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const Addr page_addr = alignDown(addr, pageBytes);
    const unsigned offset = unsigned(addr - page_addr);
    if (offset + size <= pageBytes) {
        std::memcpy(getPage(page_addr).data() + offset, &value, size);
        return;
    }
    const unsigned first = pageBytes - offset;
    std::memcpy(getPage(page_addr).data() + offset, &value, first);
    const std::uint64_t rest = value >> (8 * first);
    std::memcpy(getPage(page_addr + pageBytes).data(), &rest,
                size - first);
}

void
SparseMemory::readBytes(Addr addr, std::uint8_t *out, size_t len) const
{
    while (len > 0) {
        const Addr page_addr = alignDown(addr, pageBytes);
        const unsigned offset = unsigned(addr - page_addr);
        const size_t span =
            len < size_t(pageBytes - offset) ? len : pageBytes - offset;
        if (const Page *page = findPage(page_addr))
            std::memcpy(out, page->data() + offset, span);
        else
            std::memset(out, 0, span);
        addr += span;
        out += span;
        len -= span;
    }
}

void
SparseMemory::writeBytes(Addr addr, const std::uint8_t *data, size_t len)
{
    while (len > 0) {
        const Addr page_addr = alignDown(addr, pageBytes);
        const unsigned offset = unsigned(addr - page_addr);
        const size_t span =
            len < size_t(pageBytes - offset) ? len : pageBytes - offset;
        std::memcpy(getPage(page_addr).data() + offset, data, span);
        addr += span;
        data += span;
        len -= span;
    }
}

void
SparseMemory::saveState(Serializer &ser) const
{
    std::vector<Addr> addrs;
    addrs.reserve(pages_.size());
    for (const auto &[page_addr, page] : pages_)
        addrs.push_back(page_addr);
    std::sort(addrs.begin(), addrs.end());

    ser.u32(pageBytes);
    ser.u64(addrs.size());
    for (Addr a : addrs) {
        ser.u64(a);
        ser.bytes(pages_.at(a).data(), pageBytes);
    }
}

void
SparseMemory::loadState(Deserializer &des)
{
    clear();
    if (des.u32() != pageBytes) {
        des.fail();
        return;
    }
    const std::uint64_t n = des.u64();
    for (std::uint64_t i = 0; i < n && des.ok(); ++i) {
        const Addr a = des.u64();
        Page page(pageBytes, 0);
        if (!des.bytes(page.data(), pageBytes))
            return;
        pages_.emplace(a, std::move(page));
    }
}

bool
SparseMemory::equals(const SparseMemory &other) const
{
    auto covered = [](const SparseMemory &a, const SparseMemory &b) {
        static const Page zeros(pageBytes, 0);
        for (const auto &[page_addr, page] : a.pages_) {
            auto it = b.pages_.find(page_addr);
            const Page &ref = it == b.pages_.end() ? zeros : it->second;
            if (std::memcmp(page.data(), ref.data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace sdv
