#include "arch/memory.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace sdv {

const SparseMemory::Page *
SparseMemory::findPage(Addr page_addr) const
{
    auto it = pages_.find(page_addr);
    return it == pages_.end() ? nullptr : &it->second;
}

SparseMemory::Page &
SparseMemory::getPage(Addr page_addr)
{
    auto it = pages_.find(page_addr);
    if (it == pages_.end())
        it = pages_.emplace(page_addr, Page(pageBytes, 0)).first;
    return it->second;
}

std::uint8_t
SparseMemory::readByte(Addr addr) const
{
    const Page *page = findPage(alignDown(addr, pageBytes));
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SparseMemory::writeByte(Addr addr, std::uint8_t value)
{
    getPage(alignDown(addr, pageBytes))[addr % pageBytes] = value;
}

std::uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    sdv_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    // Fast path: access within a single page.
    const Addr page_addr = alignDown(addr, pageBytes);
    if (alignDown(addr + size - 1, pageBytes) == page_addr) {
        const Page *page = findPage(page_addr);
        if (!page)
            return 0;
        std::uint64_t v = 0;
        std::memcpy(&v, page->data() + (addr % pageBytes), size);
        return v;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= std::uint64_t(readByte(addr + i)) << (8 * i);
    return v;
}

void
SparseMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    sdv_assert(size == 1 || size == 2 || size == 4 || size == 8,
               "bad access size ", size);
    const Addr page_addr = alignDown(addr, pageBytes);
    if (alignDown(addr + size - 1, pageBytes) == page_addr) {
        Page &page = getPage(page_addr);
        std::memcpy(page.data() + (addr % pageBytes), &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, std::uint8_t(value >> (8 * i)));
}

void
SparseMemory::writeBytes(Addr addr, const std::uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        writeByte(addr + i, data[i]);
}

bool
SparseMemory::equals(const SparseMemory &other) const
{
    auto covered = [](const SparseMemory &a, const SparseMemory &b) {
        static const Page zeros(pageBytes, 0);
        for (const auto &[page_addr, page] : a.pages_) {
            const Page *peer = b.findPage(page_addr);
            const Page &ref = peer ? *peer : zeros;
            if (std::memcmp(page.data(), ref.data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace sdv
