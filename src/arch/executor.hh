/**
 * @file
 * Functional (architectural) execution of the mini-ISA. Used standalone
 * as the reference simulator and inside the timing model as the
 * oracle-at-decode executor (the SimpleScalar sim-outorder convention).
 */

#ifndef SDV_ARCH_EXECUTOR_HH
#define SDV_ARCH_EXECUTOR_HH

#include <cstdint>

#include "arch/arch_state.hh"
#include "arch/memory.hh"
#include "isa/program.hh"

namespace sdv {

class CompiledTrace;

/** Everything observable about one executed dynamic instruction. */
struct ExecRecord
{
    Addr pc = 0;           ///< instruction address
    Instruction inst;      ///< the decoded instruction
    Addr nextPc = 0;       ///< successor pc actually taken
    bool taken = false;    ///< control transfer redirected the pc
    bool isMem = false;    ///< memory operation
    bool isStore = false;  ///< store (subset of isMem)
    Addr addr = 0;         ///< effective address (when isMem)
    unsigned size = 0;     ///< access size in bytes (when isMem)
    std::uint64_t value = 0; ///< register result or store value
    bool writesReg = false;  ///< value went to inst.rd
    bool halted = false;   ///< this instruction was HALT
    std::uint64_t srcValue1 = 0; ///< rs1 value at execution
    std::uint64_t srcValue2 = 0; ///< rs2 value at execution
    std::uint64_t prevMemValue = 0; ///< store: memory value overwritten
};

/**
 * Execute the instruction at @p state.pc, updating state and memory.
 *
 * @param prog program image (source of instruction words)
 * @param state architectural state (pc advanced)
 * @param mem data memory
 * @return the execution record
 */
ExecRecord executeOne(const Program &prog, ArchState &state,
                      SparseMemory &mem);

/**
 * A complete functional simulation context: program + state + memory,
 * loaded and ready to step.
 */
class FunctionalCore
{
  public:
    /**
     * Load @p prog into a fresh memory image and reset the state.
     *
     * @param use_trace execute through the program's compiled trace
     *        (the default); false falls back to the interpreter, the
     *        bit-identity reference (--no-trace).
     */
    explicit FunctionalCore(const Program &prog, bool use_trace = true);

    /** Execute one instruction into caller storage (the oracle-at-fetch
     *  hot path: the record is overwritten in place, no copy). Must not
     *  be called after halt. */
    void stepInto(ExecRecord &rec);

    /** Execute one instruction. Must not be called after halt. */
    ExecRecord
    step()
    {
        ExecRecord rec;
        stepInto(rec);
        return rec;
    }

    /** Run until HALT or until @p max_insts more have executed, using
     *  the fast (architectural-effects-only) handlers when tracing.
     *  @return number of instructions executed. */
    std::uint64_t run(std::uint64_t max_insts);

    /** Run to HALT, FNV-1a-hashing each instruction's pc (HALT
     *  included) — the committed-stream fingerprint the timing core's
     *  commitPcHash() is verified against.
     *  @return number of instructions executed. */
    std::uint64_t runToHalt(std::uint64_t *pc_hash);

    /** @return true once HALT has executed. */
    bool halted() const { return halted_; }

    /** @return dynamic instruction count so far. */
    std::uint64_t instCount() const { return instCount_; }

    /** @return the architectural state. */
    const ArchState &state() const { return state_; }

    /** @return mutable architectural state (for test setup). */
    ArchState &state() { return state_; }

    /** @return the memory image. */
    const SparseMemory &memory() const { return mem_; }

    /** @return mutable memory (for test setup). */
    SparseMemory &memory() { return mem_; }

    /** @return the program being executed. */
    const Program &program() const { return prog_; }

    /** Serialize execution progress + full architectural state. */
    void
    saveState(Serializer &ser) const
    {
        ser.b(halted_);
        ser.u64(instCount_);
        state_.saveState(ser);
        mem_.saveState(ser);
    }

    /** Restore execution progress + architectural state from a
     *  checkpoint (the program itself is identity-checked upstream). */
    void
    loadState(Deserializer &des)
    {
        halted_ = des.b();
        instCount_ = des.u64();
        state_.loadState(des);
        mem_.loadState(des);
    }

  private:
    const Program &prog_;
    const CompiledTrace *trace_ = nullptr; ///< null: interpreter path
    ArchState state_;
    SparseMemory mem_;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;
};

/** Load a program image (code + data) into @p mem; @return entry pc. */
Addr loadProgram(const Program &prog, SparseMemory &mem);

/** Build the reset-time architectural state for @p prog. */
ArchState initialState(const Program &prog);

} // namespace sdv

#endif // SDV_ARCH_EXECUTOR_HH
