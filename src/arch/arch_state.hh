/**
 * @file
 * Architectural register state: program counter plus the unified
 * 64-entry register file (r0 hardwired to zero).
 */

#ifndef SDV_ARCH_ARCH_STATE_HH
#define SDV_ARCH_ARCH_STATE_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "common/log.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** The committed architectural state of one hardware context. */
class ArchState
{
  public:
    /** Current program counter. */
    Addr pc = 0;

    /** Read register @p reg (reads of r0 return zero). */
    std::uint64_t
    reg(RegId reg) const
    {
        sdv_assert(reg < numLogicalRegs, "bad register ", unsigned(reg));
        return regs_[reg];
    }

    /** Write register @p reg (writes to r0 are discarded). */
    void
    setReg(RegId reg, std::uint64_t value)
    {
        sdv_assert(reg < numLogicalRegs, "bad register ", unsigned(reg));
        if (reg != zeroReg)
            regs_[reg] = value;
    }

    /** Read a register's bits as a double. */
    double
    regAsDouble(RegId r) const
    {
        double d;
        const std::uint64_t v = reg(r);
        std::memcpy(&d, &v, 8);
        return d;
    }

    /** Write a double's bits to a register. */
    void
    setRegFromDouble(RegId r, double d)
    {
        std::uint64_t v;
        std::memcpy(&v, &d, 8);
        setReg(r, v);
    }

    /** Compare full register state (including pc). */
    bool
    operator==(const ArchState &o) const
    {
        return pc == o.pc && regs_ == o.regs_;
    }

    /** Serialize pc + all registers (checkpoint layer). */
    void
    saveState(Serializer &ser) const
    {
        ser.u64(pc);
        for (std::uint64_t r : regs_)
            ser.u64(r);
    }

    /** Restore pc + all registers from a checkpoint image. */
    void
    loadState(Deserializer &des)
    {
        pc = des.u64();
        for (std::uint64_t &r : regs_)
            r = des.u64();
        regs_[zeroReg] = 0;
    }

  private:
    std::array<std::uint64_t, numLogicalRegs> regs_{};
};

} // namespace sdv

#endif // SDV_ARCH_ARCH_STATE_HH
