/**
 * @file
 * Sparse byte-addressable memory backing store. Pages are materialized
 * on first touch and read as zero before any write, which also makes
 * speculative vector-load prefetches to arbitrary addresses safe.
 */

#ifndef SDV_ARCH_MEMORY_HH
#define SDV_ARCH_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace sdv {

/** Page-granular sparse memory. */
class SparseMemory
{
  public:
    /** Bytes per backing page. */
    static constexpr unsigned pageBytes = 4096;

    /** Read @p size bytes (1, 2, 4 or 8) little-endian. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value little-endian. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Read a 64-bit word. */
    std::uint64_t read64(Addr addr) const { return read(addr, 8); }

    /** Write a 64-bit word. */
    void write64(Addr addr, std::uint64_t v) { write(addr, v, 8); }

    /** Read a 32-bit word. */
    std::uint32_t
    read32(Addr addr) const
    {
        return std::uint32_t(read(addr, 4));
    }

    /** Write a 32-bit word. */
    void write32(Addr addr, std::uint32_t v) { write(addr, v, 4); }

    /** Bulk copy-in. */
    void writeBytes(Addr addr, const std::uint8_t *data, size_t len);

    /** @return number of materialized pages. */
    size_t numPages() const { return pages_.size(); }

    /**
     * Compare the union of both memories' touched pages.
     * @retval true when every byte matches (untouched reads as zero).
     */
    bool equals(const SparseMemory &other) const;

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    using Page = std::vector<std::uint8_t>;

    const Page *findPage(Addr page_addr) const;
    Page &getPage(Addr page_addr);

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    std::unordered_map<Addr, Page> pages_;
};

} // namespace sdv

#endif // SDV_ARCH_MEMORY_HH
