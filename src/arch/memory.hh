/**
 * @file
 * Sparse byte-addressable memory backing store. Pages are materialized
 * on first touch and read as zero before any write, which also makes
 * speculative vector-load prefetches to arbitrary addresses safe.
 *
 * Every functional-execute, oracle step and verify-pass byte funnels
 * through here, so the common case — repeated access to the page
 * touched last — bypasses the hash map via an MRU page cache, and
 * accesses that straddle a page boundary split into at most two page
 * lookups instead of one per byte.
 */

#ifndef SDV_ARCH_MEMORY_HH
#define SDV_ARCH_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sdv {

/** Page-granular sparse memory. */
class SparseMemory
{
  public:
    /** Bytes per backing page. */
    static constexpr unsigned pageBytes = 4096;

    SparseMemory() = default;

    // The MRU cache points into this object's own page map, so it must
    // not travel across copies/moves (a copied cache would alias the
    // source's pages; a moved-from cache would alias the target's).
    SparseMemory(const SparseMemory &o) : pages_(o.pages_) {}
    SparseMemory(SparseMemory &&o) noexcept
        : pages_(std::move(o.pages_))
    {
        o.mruAddr_ = ~Addr(0);
        o.mruPage_ = nullptr;
    }
    SparseMemory &
    operator=(const SparseMemory &o)
    {
        pages_ = o.pages_;
        mruAddr_ = ~Addr(0);
        mruPage_ = nullptr;
        return *this;
    }
    SparseMemory &
    operator=(SparseMemory &&o) noexcept
    {
        pages_ = std::move(o.pages_);
        mruAddr_ = ~Addr(0);
        mruPage_ = nullptr;
        o.mruAddr_ = ~Addr(0);
        o.mruPage_ = nullptr;
        return *this;
    }

    /** Read @p size bytes (1, 2, 4 or 8) little-endian. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value little-endian. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Read a 64-bit word. */
    std::uint64_t read64(Addr addr) const { return read(addr, 8); }

    /** Write a 64-bit word. */
    void write64(Addr addr, std::uint64_t v) { write(addr, v, 8); }

    /** Read a 32-bit word. */
    std::uint32_t
    read32(Addr addr) const
    {
        return std::uint32_t(read(addr, 4));
    }

    /** Write a 32-bit word. */
    void write32(Addr addr, std::uint32_t v) { write(addr, v, 4); }

    /** Bulk copy-out (untouched bytes read as zero). */
    void readBytes(Addr addr, std::uint8_t *out, size_t len) const;

    /** Bulk copy-in. */
    void writeBytes(Addr addr, const std::uint8_t *data, size_t len);

    /** @return number of materialized pages. */
    size_t numPages() const { return pages_.size(); }

    /** Serialize every materialized page (address-sorted, so the byte
     *  image is independent of hash-map iteration order). */
    void saveState(Serializer &ser) const;

    /** Replace the contents with a checkpointed image. */
    void loadState(Deserializer &des);

    /**
     * Compare the union of both memories' touched pages.
     * @retval true when every byte matches (untouched reads as zero).
     */
    bool equals(const SparseMemory &other) const;

    /** Drop all contents. */
    void
    clear()
    {
        pages_.clear();
        mruAddr_ = ~Addr(0);
        mruPage_ = nullptr;
    }

  private:
    using Page = std::vector<std::uint8_t>;

    const Page *findPage(Addr page_addr) const;
    Page &getPage(Addr page_addr);

    std::unordered_map<Addr, Page> pages_;

    /**
     * MRU page cache shared by the const and mutable paths. Entries of
     * an unordered_map are node-based, so the pointer survives rehash;
     * only clear() invalidates it. Never caches "page absent": a write
     * may materialize the page behind the cache's back.
     */
    mutable Addr mruAddr_ = ~Addr(0);
    mutable Page *mruPage_ = nullptr;
};

} // namespace sdv

#endif // SDV_ARCH_MEMORY_HH
