#include "isa/program.hh"

#include <iomanip>
#include <sstream>

#include "common/log.hh"
#include "common/serialize.hh"
#include "isa/trace.hh"

namespace sdv {

Program::Program(Addr code_base) : codeBase_(code_base)
{
    sdv_assert(code_base % instBytes == 0, "misaligned code base");
}

Program::~Program() = default;
Program::Program(Program &&other) noexcept = default;
Program &Program::operator=(Program &&other) noexcept = default;

Program::Program(const Program &other)
    : codeBase_(other.codeBase_), entry_(other.entry_), code_(other.code_),
      decoded_(other.decoded_), decodedValid_(other.decodedValid_),
      data_(other.data_), symbols_(other.symbols_)
{
    // trace_ deliberately not copied: a patched copy must not mutate
    // the original's compiled trace. The copy rebuilds lazily.
}

Program &
Program::operator=(const Program &other)
{
    if (this != &other) {
        codeBase_ = other.codeBase_;
        entry_ = other.entry_;
        code_ = other.code_;
        decoded_ = other.decoded_;
        decodedValid_ = other.decodedValid_;
        data_ = other.data_;
        symbols_ = other.symbols_;
        trace_.reset();
    }
    return *this;
}

Addr
Program::append(const Instruction &inst)
{
    const Addr pc = codeEnd();
    code_.push_back(inst.encode());
    decoded_.emplace_back();
    decodedValid_.push_back(0);
    if (trace_)
        trace_->appendSlot(code_.back());
    return pc;
}

void
Program::patch(size_t index, const Instruction &inst)
{
    sdv_assert(index < code_.size(), "patch out of range");
    code_[index] = inst.encode();
    decodedValid_[index] = 0;
    if (trace_)
        trace_->recompile(index, code_[index]);
}

std::uint64_t
Program::encodedAt(Addr pc) const
{
    sdv_assert(validPc(pc), "bad instruction address ", pc);
    return code_[(pc - codeBase_) / instBytes];
}

const Instruction &
Program::instAt(Addr pc) const
{
    sdv_assert(validPc(pc), "bad instruction address ", pc);
    const size_t idx = size_t((pc - codeBase_) / instBytes);
    if (!decodedValid_[idx]) {
        const bool ok = Instruction::decode(code_[idx], decoded_[idx]);
        sdv_assert(ok, "undecodable instruction at ", pc);
        decodedValid_[idx] = 1;
    }
    return decoded_[idx];
}

void
Program::predecodeAll() const
{
    for (size_t idx = 0; idx < code_.size(); ++idx) {
        if (decodedValid_[idx])
            continue;
        const bool ok = Instruction::decode(code_[idx], decoded_[idx]);
        sdv_assert(ok, "undecodable instruction in slot ", idx);
        decodedValid_[idx] = 1;
    }
    trace(); // build the compiled trace alongside the decode cache
}

const CompiledTrace &
Program::trace() const
{
    if (!trace_)
        trace_ = std::make_unique<CompiledTrace>(codeBase_, code_);
    return *trace_;
}

std::uint64_t
Program::identityHash() const
{
    std::uint64_t h = fnv1a(nullptr, 0);
    auto mix = [&h](std::uint64_t v) {
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = std::uint8_t(v >> (8 * i));
        h = fnv1a(bytes, sizeof(bytes), h);
    };
    mix(codeBase_);
    mix(entry());
    mix(code_.size());
    for (std::uint64_t w : code_)
        mix(w);
    return h;
}

void
Program::addData(DataSegment seg)
{
    data_.push_back(std::move(seg));
}

void
Program::defineSymbol(const std::string &name, Addr value)
{
    symbols_[name] = value;
}

bool
Program::symbol(const std::string &name, Addr &out) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        return false;
    out = it->second;
    return true;
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (size_t i = 0; i < code_.size(); ++i) {
        Instruction inst;
        const Addr pc = codeBase_ + i * instBytes;
        if (!Instruction::decode(code_[i], inst)) {
            os << std::hex << pc << ": <invalid>\n" << std::dec;
            continue;
        }
        os << "0x" << std::hex << pc << std::dec << ":  " << inst.disasm()
           << "\n";
    }
    return os.str();
}

} // namespace sdv
