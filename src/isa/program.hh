/**
 * @file
 * A loadable program image: encoded code, initialized data segments, an
 * entry point and a symbol table.
 */

#ifndef SDV_ISA_PROGRAM_HH
#define SDV_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace sdv {

class CompiledTrace;

/** A contiguous run of initialized bytes in the data space. */
struct DataSegment
{
    Addr base = 0;                  ///< first byte address
    std::vector<std::uint8_t> bytes; ///< contents
};

/**
 * A complete program: code, data, entry point, symbols.
 *
 * Code lives at @ref codeBase with one 8-byte encoded instruction per
 * slot; helper accessors translate between addresses and slot indices.
 */
class Program
{
  public:
    /** Default base of the code region. */
    static constexpr Addr defaultCodeBase = 0x10000;

    /** Default base of the data region. */
    static constexpr Addr defaultDataBase = 0x1000000;

    /** Default top-of-stack (r30 at reset). */
    static constexpr Addr defaultStackTop = 0x7fff0000;

    explicit Program(Addr code_base = defaultCodeBase);
    ~Program();

    /** The compiled trace is per-image: a copy may be patched
     *  independently, so it recompiles its own trace on demand. */
    Program(const Program &other);
    Program &operator=(const Program &other);
    Program(Program &&other) noexcept;
    Program &operator=(Program &&other) noexcept;

    /** Append one encoded instruction; @return its address. */
    Addr append(const Instruction &inst);

    /** Overwrite the instruction in slot @p index (for fixups). */
    void patch(size_t index, const Instruction &inst);

    /** @return number of static instructions. */
    size_t numInsts() const { return code_.size(); }

    /** @return base address of the code region. */
    Addr codeBase() const { return codeBase_; }

    /** @return address one past the last instruction. */
    Addr codeEnd() const { return codeBase_ + code_.size() * instBytes; }

    /** @return true when @p pc addresses a valid instruction slot. */
    bool
    validPc(Addr pc) const
    {
        return pc >= codeBase_ && pc < codeEnd() &&
               (pc - codeBase_) % instBytes == 0;
    }

    /** @return the encoded instruction word at @p pc. */
    std::uint64_t encodedAt(Addr pc) const;

    /**
     * @return the decoded instruction at @p pc.
     *
     * Decoding is cached per slot: the first access decodes the 64-bit
     * word into a side-table and later accesses (every fetch and every
     * oracle step of a simulation) return the cached form. patch()
     * invalidates the slot. The reference is invalidated by patch(),
     * append() (the side-table may reallocate) and destruction/move —
     * copy the Instruction if the program may still grow.
     */
    const Instruction &instAt(Addr pc) const;

    /**
     * Decode every slot into the cache up front. A program shared by
     * concurrent simulators (the sweep executor runs one per thread
     * over the same image) must be pre-decoded: instAt()'s lazy fill
     * writes the mutable side-table, which would race otherwise.
     * After this call, concurrent instAt() calls are read-only.
     */
    void predecodeAll() const;

    /**
     * @return the compiled trace of this program (built on first use;
     * predecodeAll() also builds it so sweep jobs share it read-only).
     *
     * Slots stay in sync with the code image: patch() recompiles the
     * affected slot and append() extends the trace. Like instAt()
     * references, trace slots shift under append() — re-fetch after
     * growing the program. The lazy build mutates a side-table, so the
     * same predecodeAll() rule applies before concurrent sharing.
     */
    const CompiledTrace &trace() const;

    /**
     * @return an FNV-1a hash over code base, entry point and every
     * encoded instruction word: the program identity a checkpoint is
     * bound to (restoring onto a different program is rejected).
     */
    std::uint64_t identityHash() const;

    /** Set the entry point (defaults to codeBase). */
    void setEntry(Addr entry) { entry_ = entry; }

    /** @return the entry point. */
    Addr entry() const { return entry_ ? entry_ : codeBase_; }

    /** Add an initialized data segment. */
    void addData(DataSegment seg);

    /** @return all data segments. */
    const std::vector<DataSegment> &dataSegments() const { return data_; }

    /** Define a symbol. */
    void defineSymbol(const std::string &name, Addr value);

    /**
     * Look up a symbol.
     * @retval true and sets @p out when found.
     */
    bool symbol(const std::string &name, Addr &out) const;

    /** @return the whole symbol table. */
    const std::map<std::string, Addr> &symbols() const { return symbols_; }

    /** @return raw encoded code words. */
    const std::vector<std::uint64_t> &codeWords() const { return code_; }

    /** Disassemble the whole program (one instruction per line). */
    std::string disassemble() const;

  private:
    Addr codeBase_;
    Addr entry_ = 0;
    std::vector<std::uint64_t> code_;
    /** Lazily-filled decode cache, one entry per code slot. A slot is
     *  valid when the matching decodedValid_ flag is set; patch()
     *  clears the flag. Mutable: filling the cache does not change the
     *  program's observable state. */
    mutable std::vector<Instruction> decoded_;
    mutable std::vector<std::uint8_t> decodedValid_;
    /** Lazily-built compiled form (see trace()); never shared between
     *  Program instances — copies rebuild their own. */
    mutable std::unique_ptr<CompiledTrace> trace_;
    std::vector<DataSegment> data_;
    std::map<std::string, Addr> symbols_;
};

} // namespace sdv

#endif // SDV_ISA_PROGRAM_HH
