/**
 * @file
 * The compiled trace: a load-time translation of a program into a
 * contiguous array of pre-resolved micro-ops with direct handler
 * pointers, in the spirit of the straight-line traces an LLVM-side
 * speculative vectorizer pre-resolves before SIMD codegen.
 *
 * Each static instruction slot compiles into one CompiledTrace::Slot
 * carrying
 *  - a *step* handler (fills a full ExecRecord — the oracle-at-fetch
 *    path of the timing core and the fuzz divergence oracles), and a
 *    *fast* handler (architectural effects only — functional
 *    fast-forward, sample counting and end-of-run verification);
 *  - the decoded instruction (register offsets into ArchState);
 *  - the pre-folded immediate (sign-extended once, at compile time);
 *  - the pre-computed control target (pc + imm * instBytes) and
 *    fall-through pc, so no handler recomputes pc arithmetic.
 *
 * Handlers are per-opcode template instantiations: dispatch is one
 * indirect call through the slot (tail-call style), with no decode,
 * no opcode switch and no OpInfo lookups on the executed path.
 *
 * A trace is built once per Program (beside predecodeAll) and shared
 * read-only by every Simulator in a sweep; Program::patch() recompiles
 * the affected slot and Program::append() extends the trace, mirroring
 * the decoded-instruction cache invalidation rules.
 */

#ifndef SDV_ISA_TRACE_HH
#define SDV_ISA_TRACE_HH

#include <cstdint>
#include <vector>

#include "arch/arch_state.hh"
#include "arch/memory.hh"
#include "isa/instruction.hh"

namespace sdv {

struct ExecRecord;

/** The compiled form of one program: one micro-op per static slot. */
class CompiledTrace
{
  public:
    struct Slot;

    /** Full-record handler: execute the micro-op, filling @p rec
     *  exactly as executeOne() would (the interpreter is the
     *  bit-identity reference) and advancing @p st. */
    using StepFn = void (*)(const Slot &, ArchState &st, SparseMemory &,
                            ExecRecord &rec);

    /** Architectural-effects-only handler: registers, memory and pc;
     *  no record is materialized. */
    using FastFn = void (*)(const Slot &, ArchState &st, SparseMemory &);

    /** One pre-resolved micro-op. */
    struct Slot
    {
        StepFn step;         ///< full-record handler
        FastFn fast;         ///< architectural-only handler
        Instruction inst;    ///< decoded instruction (operand offsets)
        std::int64_t simm;   ///< immediate, sign-extended once
        Addr target;         ///< pc-relative control target (else 0)
        Addr fallthrough;    ///< pc + instBytes
    };

    /**
     * Compile every slot of a code image.
     *
     * @param code_base address of slot 0
     * @param words encoded instruction words, one per slot
     */
    CompiledTrace(Addr code_base, const std::vector<std::uint64_t> &words);

    /** @return the micro-op for the instruction at @p pc. */
    const Slot &
    slotAt(Addr pc) const
    {
        const std::size_t idx = std::size_t((pc - base_) / instBytes);
        sdv_assert(pc >= base_ && idx < slots_.size() &&
                       (pc - base_) % instBytes == 0,
                   "pc outside compiled trace: ", pc);
        return slots_[idx];
    }

    /** Recompile slot @p index from @p word (Program::patch). */
    void recompile(std::size_t index, std::uint64_t word);

    /** Compile and append one more slot (Program::append). */
    void appendSlot(std::uint64_t word);

    /** @return number of compiled slots. */
    std::size_t numSlots() const { return slots_.size(); }

    /** @return base address of slot 0. */
    Addr base() const { return base_; }

  private:
    Slot compileSlot(std::size_t index, std::uint64_t word) const;

    Addr base_;
    std::vector<Slot> slots_;
};

} // namespace sdv

#endif // SDV_ISA_TRACE_HH
