/**
 * @file
 * Two-pass text assembler for the sdv mini-ISA.
 *
 * Syntax (one statement per line, ';' or '#' start comments):
 *
 *   .data  name count       allocate `count` zeroed 8-byte words
 *   .word  name idx value   initialize word `idx` of allocation `name`
 *   .double name idx value  initialize word `idx` with a double
 *   .entry label            set the entry point
 *
 *   label:                  bind a code label
 *   add   r3, r1, r2        register operands: r0..r31, f0..f31
 *   addi  r3, r1, -8        immediates: decimal or 0x hex
 *   ldq   r4, 16(r2)        memory operands: disp(base)
 *   beqz  r1, label         control targets are labels
 *   li    r5, 0xdeadbeef    pseudo: load 64-bit immediate (1-2 slots)
 *   la    r5, name          pseudo: load symbol address (2 slots)
 *   halt
 */

#ifndef SDV_ISA_ASSEMBLER_HH
#define SDV_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace sdv {

/** Result of assembling a source string. */
struct AsmResult
{
    bool ok = false;     ///< true when assembly succeeded
    std::string error;   ///< first error message ("" when ok)
    Program program;     ///< the assembled program (valid when ok)
};

/**
 * Assemble mini-ISA source text.
 *
 * @param source full program text
 * @param code_base base address for the code region
 * @return result with program or first error (including line number)
 */
AsmResult assemble(const std::string &source,
                   Addr code_base = Program::defaultCodeBase);

} // namespace sdv

#endif // SDV_ISA_ASSEMBLER_HH
