#include "isa/alu.hh"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/log.hh"

namespace sdv {

namespace {

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t v;
    std::memcpy(&v, &d, 8);
    return v;
}

std::int64_t
safeDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return a;
    return a / b;
}

std::int64_t
safeCvtFi(double d)
{
    if (!std::isfinite(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::max();
    if (d <= -9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::min();
    return std::int64_t(d);
}

} // namespace

std::uint64_t
evalScalarOp(Opcode op, std::uint64_t a, std::uint64_t b, std::int32_t imm)
{
    const auto sa = std::int64_t(a);
    const auto sb = std::int64_t(b);
    const std::int64_t simm = imm;

    switch (op) {
      case Opcode::ADD:    return a + b;
      case Opcode::SUB:    return a - b;
      case Opcode::MUL:    return a * b;
      case Opcode::DIV:    return std::uint64_t(safeDiv(sa, sb));
      case Opcode::AND:    return a & b;
      case Opcode::OR:     return a | b;
      case Opcode::XOR:    return a ^ b;
      case Opcode::SLL:    return a << (b & 63);
      case Opcode::SRL:    return a >> (b & 63);
      case Opcode::SRA:    return std::uint64_t(sa >> (b & 63));
      case Opcode::CMPEQ:  return a == b;
      case Opcode::CMPLT:  return sa < sb;
      case Opcode::CMPLE:  return sa <= sb;
      case Opcode::CMPULT: return a < b;

      case Opcode::ADDI:   return a + std::uint64_t(simm);
      case Opcode::ANDI:   return a & std::uint64_t(simm);
      case Opcode::ORI:    return a | std::uint64_t(simm);
      case Opcode::XORI:   return a ^ std::uint64_t(simm);
      case Opcode::SLLI:   return a << (imm & 63);
      case Opcode::SRLI:   return a >> (imm & 63);
      case Opcode::SRAI:   return std::uint64_t(sa >> (imm & 63));
      case Opcode::CMPEQI: return a == std::uint64_t(simm);
      case Opcode::CMPLTI: return sa < simm;

      case Opcode::LDI:    return std::uint64_t(simm);
      case Opcode::LDIH:
        return std::uint64_t(std::uint32_t(a)) |
               (std::uint64_t(std::uint32_t(imm)) << 32);

      case Opcode::FADD:   return asBits(asDouble(a) + asDouble(b));
      case Opcode::FSUB:   return asBits(asDouble(a) - asDouble(b));
      case Opcode::FMUL:   return asBits(asDouble(a) * asDouble(b));
      case Opcode::FDIV:   return asBits(asDouble(a) / asDouble(b));
      case Opcode::FNEG:   return asBits(-asDouble(a));
      case Opcode::FABS:   return asBits(std::fabs(asDouble(a)));
      case Opcode::FMOV:   return a;
      case Opcode::FCMPEQ: return asDouble(a) == asDouble(b);
      case Opcode::FCMPLT: return asDouble(a) < asDouble(b);
      case Opcode::FCMPLE: return asDouble(a) <= asDouble(b);
      case Opcode::CVTIF:  return asBits(double(sa));
      case Opcode::CVTFI:  return std::uint64_t(safeCvtFi(asDouble(a)));

      default:
        panic("evalScalarOp on non-ALU opcode ", mnemonic(op));
    }
}

} // namespace sdv
