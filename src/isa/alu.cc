#include "isa/alu.hh"

#include "common/log.hh"

namespace sdv {

std::uint64_t
evalScalarOp(Opcode op, std::uint64_t a, std::uint64_t b, std::int32_t imm)
{
    switch (op) {
#define SDV_ALU_CASE(name, ...)                                              \
      case Opcode::name:                                                     \
        if (isScalarEvalOp(Opcode::name))                                    \
            return evalScalarOpFor<Opcode::name>(a, b, imm);                 \
        break;
        SDV_FOR_EACH_OPCODE(SDV_ALU_CASE)
#undef SDV_ALU_CASE
    }
    panic("evalScalarOp on non-ALU opcode ", mnemonic(op));
}

} // namespace sdv
