/**
 * @file
 * Typed C++ program-emission API with label fixup and a data-space bump
 * allocator. All synthetic workloads are written against this builder.
 */

#ifndef SDV_ISA_BUILDER_HH
#define SDV_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sdv {

/**
 * Incrementally builds a Program. Control-flow targets are expressed as
 * labels which may be bound before or after use; finish() resolves all
 * pending fixups.
 */
class ProgramBuilder
{
  public:
    /** Opaque label handle. */
    using Label = int;

    explicit ProgramBuilder(Addr code_base = Program::defaultCodeBase,
                            Addr data_base = Program::defaultDataBase);

    // --- labels ---------------------------------------------------------

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Create a label bound to the next emitted instruction. */
    Label here();

    // --- integer ALU ----------------------------------------------------

    void add(RegId rd, RegId rs1, RegId rs2);
    void sub(RegId rd, RegId rs1, RegId rs2);
    void mul(RegId rd, RegId rs1, RegId rs2);
    void div(RegId rd, RegId rs1, RegId rs2);
    void and_(RegId rd, RegId rs1, RegId rs2);
    void or_(RegId rd, RegId rs1, RegId rs2);
    void xor_(RegId rd, RegId rs1, RegId rs2);
    void sll(RegId rd, RegId rs1, RegId rs2);
    void srl(RegId rd, RegId rs1, RegId rs2);
    void sra(RegId rd, RegId rs1, RegId rs2);
    void cmpeq(RegId rd, RegId rs1, RegId rs2);
    void cmplt(RegId rd, RegId rs1, RegId rs2);
    void cmple(RegId rd, RegId rs1, RegId rs2);
    void cmpult(RegId rd, RegId rs1, RegId rs2);

    void addi(RegId rd, RegId rs1, std::int32_t imm);
    void andi(RegId rd, RegId rs1, std::int32_t imm);
    void ori(RegId rd, RegId rs1, std::int32_t imm);
    void xori(RegId rd, RegId rs1, std::int32_t imm);
    void slli(RegId rd, RegId rs1, std::int32_t imm);
    void srli(RegId rd, RegId rs1, std::int32_t imm);
    void srai(RegId rd, RegId rs1, std::int32_t imm);
    void cmpeqi(RegId rd, RegId rs1, std::int32_t imm);
    void cmplti(RegId rd, RegId rs1, std::int32_t imm);

    /** rd = sign-extended 32-bit immediate. */
    void ldi(RegId rd, std::int32_t imm);

    /** rd = rs1 | (imm << 32). */
    void ldih(RegId rd, RegId rs1, std::int32_t imm);

    /** Materialize an arbitrary 64-bit constant (1-2 instructions). */
    void loadImm64(RegId rd, std::uint64_t value);

    /** Materialize an address (convenience over loadImm64). */
    void loadAddr(RegId rd, Addr addr) { loadImm64(rd, addr); }

    /** rd = rs (register move via ORI rd, rs, 0). */
    void mov(RegId rd, RegId rs);

    // --- floating point ---------------------------------------------------

    void fadd(RegId fd, RegId fs1, RegId fs2);
    void fsub(RegId fd, RegId fs1, RegId fs2);
    void fmul(RegId fd, RegId fs1, RegId fs2);
    void fdiv(RegId fd, RegId fs1, RegId fs2);
    void fneg(RegId fd, RegId fs1);
    void fabs_(RegId fd, RegId fs1);
    void fmov(RegId fd, RegId fs1);
    void fcmpeq(RegId rd, RegId fs1, RegId fs2);
    void fcmplt(RegId rd, RegId fs1, RegId fs2);
    void fcmple(RegId rd, RegId fs1, RegId fs2);
    void cvtif(RegId fd, RegId rs1);
    void cvtfi(RegId rd, RegId fs1);

    // --- memory -----------------------------------------------------------

    void ldq(RegId rd, RegId base, std::int32_t disp);
    void ldl(RegId rd, RegId base, std::int32_t disp);
    void fld(RegId fd, RegId base, std::int32_t disp);
    void stq(RegId value, RegId base, std::int32_t disp);
    void stl(RegId value, RegId base, std::int32_t disp);
    void fst(RegId value, RegId base, std::int32_t disp);

    // --- control ----------------------------------------------------------

    void beqz(RegId rs1, Label target);
    void bnez(RegId rs1, Label target);
    void bltz(RegId rs1, Label target);
    void bgez(RegId rs1, Label target);
    void br(Label target);
    void jal(Label target, RegId link = 31);
    void jr(RegId rs1);
    void jalr(RegId rd, RegId rs1);

    void nop();
    void halt();

    /** Emit a raw instruction (no label fixup applied). */
    void raw(const Instruction &inst);

    // --- data space -------------------------------------------------------

    /**
     * Allocate @p count 8-byte words of zeroed data; define @p name as a
     * symbol. @return the base address.
     */
    Addr allocWords(const std::string &name, size_t count);

    /** Allocate raw zeroed bytes (8-byte aligned). */
    Addr allocBytes(const std::string &name, size_t bytes);

    /** Set the initial value of the 64-bit word at @p addr. */
    void pokeWord(Addr addr, std::uint64_t value);

    /** Set the initial value of the 32-bit word at @p addr. */
    void pokeWord32(Addr addr, std::uint32_t value);

    /** Set the initial value of a double at @p addr. */
    void pokeDouble(Addr addr, double value);

    /** Define an arbitrary symbol in the output program. */
    void defineSymbol(const std::string &name, Addr value);

    /**
     * Look up a symbol defined so far.
     * @retval true and sets @p out when found.
     */
    bool symbol(const std::string &name, Addr &out) const;

    // --- finalization -------------------------------------------------------

    /** @return number of instructions emitted so far. */
    size_t numInsts() const { return program_.numInsts(); }

    /** @return pc that the next emitted instruction will occupy. */
    Addr nextPc() const { return program_.codeEnd(); }

    /**
     * Resolve all label fixups and return the finished program. The
     * builder must not be reused afterwards.
     */
    Program finish();

  private:
    /** Emit and track one instruction. */
    void emit(Opcode op, RegId rd, RegId rs1, RegId rs2, std::int32_t imm);

    /** Emit a control-flow instruction whose imm awaits label resolution. */
    void emitBranch(Opcode op, RegId rd, RegId rs1, Label target);

    std::int32_t branchOffset(size_t from_slot, size_t to_slot) const;

    struct Fixup
    {
        size_t slot;  ///< instruction index to patch
        Label label;  ///< target label
    };

    Program program_;
    Addr dataBase_;
    Addr dataBump_;
    std::vector<std::int64_t> labelSlot_; ///< -1 while unbound
    std::vector<Fixup> fixups_;
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> pokes_;
    bool finished_ = false;
};

} // namespace sdv

#endif // SDV_ISA_BUILDER_HH
