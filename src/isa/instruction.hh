/**
 * @file
 * Decoded instruction representation plus the 64-bit binary encoding.
 *
 * Encoding layout (little end first):
 *   bits  0..7   opcode
 *   bits  8..13  rd
 *   bits 14..19  rs1
 *   bits 20..25  rs2
 *   bits 26..31  reserved (must be zero)
 *   bits 32..63  imm (signed 32-bit)
 */

#ifndef SDV_ISA_INSTRUCTION_HH
#define SDV_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace sdv {

/** Size of one encoded instruction in bytes. */
constexpr unsigned instBytes = 8;

/** A decoded static instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP; ///< operation
    RegId rd = 0;            ///< destination register (when writesRd)
    RegId rs1 = 0;           ///< first source / base register
    RegId rs2 = 0;           ///< second source / store-value register
    std::int32_t imm = 0;    ///< immediate / displacement / branch offset

    Instruction() = default;

    /** Build a fully specified instruction. */
    Instruction(Opcode op_, RegId rd_, RegId rs1_, RegId rs2_,
                std::int32_t imm_)
        : op(op_), rd(rd_), rs1(rs1_), rs2(rs2_), imm(imm_)
    {}

    /** @return the static properties of this instruction's opcode. */
    const OpInfo &info() const { return opInfo(op); }

    /** @return true if this instruction is a load. */
    bool isLoad() const { return isLoadOp(op); }

    /** @return true if this instruction is a store. */
    bool isStore() const { return isStoreOp(op); }

    /** @return true if this is a memory operation. */
    bool isMem() const { return isLoad() || isStore(); }

    /** @return true if this is a conditional branch. */
    bool isCondBranch() const { return info().isCondBranch; }

    /** @return true if this transfers control unconditionally. */
    bool isJump() const { return info().isJump; }

    /** @return true if this is any control transfer. */
    bool isControl() const { return isCondBranch() || isJump(); }

    /** @return true for HALT. */
    bool isHalt() const { return op == Opcode::HALT; }

    /** @return memory access size in bytes (0 if not a memory op). */
    unsigned memBytes() const { return info().memBytes; }

    /**
     * @return true if this instruction writes a register visible to
     * consumers (writes to the zero register are discarded).
     */
    bool
    writesReg() const
    {
        return info().writesRd && rd != zeroReg;
    }

    /** Encode into the 64-bit binary format. */
    std::uint64_t encode() const;

    /**
     * Decode a 64-bit word.
     * @retval true on success; false when the opcode byte is invalid.
     */
    static bool decode(std::uint64_t word, Instruction &out);

    /**
     * Render assembler text, e.g. "add r3, r1, r2" or "ldq r4, 16(r2)".
     * Branch offsets are rendered as signed instruction-slot deltas.
     */
    std::string disasm() const;

    /** Structural equality. */
    bool operator==(const Instruction &o) const = default;
};

/** Render a register name: r0..r31 for 0..31, f0..f31 for 32..63. */
std::string regName(RegId reg);

/**
 * Parse a register name produced by regName().
 * @retval true and sets @p out on success.
 */
bool parseRegName(const std::string &text, RegId &out);

} // namespace sdv

#endif // SDV_ISA_INSTRUCTION_HH
