#include "isa/builder.hh"

#include <cstring>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace sdv {

ProgramBuilder::ProgramBuilder(Addr code_base, Addr data_base)
    : program_(code_base), dataBase_(data_base), dataBump_(data_base)
{
    sdv_assert(data_base % 8 == 0, "misaligned data base");
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelSlot_.push_back(-1);
    return Label(labelSlot_.size() - 1);
}

void
ProgramBuilder::bind(Label label)
{
    sdv_assert(label >= 0 && size_t(label) < labelSlot_.size(),
               "unknown label");
    sdv_assert(labelSlot_[size_t(label)] < 0, "label bound twice");
    labelSlot_[size_t(label)] = std::int64_t(program_.numInsts());
}

ProgramBuilder::Label
ProgramBuilder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
ProgramBuilder::emit(Opcode op, RegId rd, RegId rs1, RegId rs2,
                     std::int32_t imm)
{
    sdv_assert(!finished_, "builder reused after finish()");
    program_.append(Instruction(op, rd, rs1, rs2, imm));
}

void
ProgramBuilder::emitBranch(Opcode op, RegId rd, RegId rs1, Label target)
{
    sdv_assert(target >= 0 && size_t(target) < labelSlot_.size(),
               "unknown label");
    fixups_.push_back({program_.numInsts(), target});
    emit(op, rd, rs1, 0, 0);
}

std::int32_t
ProgramBuilder::branchOffset(size_t from_slot, size_t to_slot) const
{
    return std::int32_t(std::int64_t(to_slot) - std::int64_t(from_slot));
}

// --- integer ALU -----------------------------------------------------------

void ProgramBuilder::add(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::ADD, rd, rs1, rs2, 0); }
void ProgramBuilder::sub(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::SUB, rd, rs1, rs2, 0); }
void ProgramBuilder::mul(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::MUL, rd, rs1, rs2, 0); }
void ProgramBuilder::div(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::DIV, rd, rs1, rs2, 0); }
void ProgramBuilder::and_(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::AND, rd, rs1, rs2, 0); }
void ProgramBuilder::or_(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::OR, rd, rs1, rs2, 0); }
void ProgramBuilder::xor_(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::XOR, rd, rs1, rs2, 0); }
void ProgramBuilder::sll(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::SLL, rd, rs1, rs2, 0); }
void ProgramBuilder::srl(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::SRL, rd, rs1, rs2, 0); }
void ProgramBuilder::sra(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::SRA, rd, rs1, rs2, 0); }
void ProgramBuilder::cmpeq(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::CMPEQ, rd, rs1, rs2, 0); }
void ProgramBuilder::cmplt(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::CMPLT, rd, rs1, rs2, 0); }
void ProgramBuilder::cmple(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::CMPLE, rd, rs1, rs2, 0); }
void ProgramBuilder::cmpult(RegId rd, RegId rs1, RegId rs2)
{ emit(Opcode::CMPULT, rd, rs1, rs2, 0); }

void ProgramBuilder::addi(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::ADDI, rd, rs1, 0, imm); }
void ProgramBuilder::andi(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::ANDI, rd, rs1, 0, imm); }
void ProgramBuilder::ori(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::ORI, rd, rs1, 0, imm); }
void ProgramBuilder::xori(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::XORI, rd, rs1, 0, imm); }
void ProgramBuilder::slli(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::SLLI, rd, rs1, 0, imm); }
void ProgramBuilder::srli(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::SRLI, rd, rs1, 0, imm); }
void ProgramBuilder::srai(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::SRAI, rd, rs1, 0, imm); }
void ProgramBuilder::cmpeqi(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::CMPEQI, rd, rs1, 0, imm); }
void ProgramBuilder::cmplti(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::CMPLTI, rd, rs1, 0, imm); }

void ProgramBuilder::ldi(RegId rd, std::int32_t imm)
{ emit(Opcode::LDI, rd, 0, 0, imm); }
void ProgramBuilder::ldih(RegId rd, RegId rs1, std::int32_t imm)
{ emit(Opcode::LDIH, rd, rs1, 0, imm); }

void
ProgramBuilder::loadImm64(RegId rd, std::uint64_t value)
{
    const auto low = std::uint32_t(value);
    const auto high = std::uint32_t(value >> 32);
    ldi(rd, std::int32_t(low));
    // LDI sign-extends; emit LDIH only when the upper half differs from
    // that sign extension.
    const auto sext_high =
        std::uint32_t(std::uint64_t(signExtend(low, 32)) >> 32);
    if (high != sext_high)
        ldih(rd, rd, std::int32_t(high));
}

void
ProgramBuilder::mov(RegId rd, RegId rs)
{
    ori(rd, rs, 0);
}

// --- floating point ----------------------------------------------------------

void ProgramBuilder::fadd(RegId fd, RegId fs1, RegId fs2)
{ emit(Opcode::FADD, fd, fs1, fs2, 0); }
void ProgramBuilder::fsub(RegId fd, RegId fs1, RegId fs2)
{ emit(Opcode::FSUB, fd, fs1, fs2, 0); }
void ProgramBuilder::fmul(RegId fd, RegId fs1, RegId fs2)
{ emit(Opcode::FMUL, fd, fs1, fs2, 0); }
void ProgramBuilder::fdiv(RegId fd, RegId fs1, RegId fs2)
{ emit(Opcode::FDIV, fd, fs1, fs2, 0); }
void ProgramBuilder::fneg(RegId fd, RegId fs1)
{ emit(Opcode::FNEG, fd, fs1, 0, 0); }
void ProgramBuilder::fabs_(RegId fd, RegId fs1)
{ emit(Opcode::FABS, fd, fs1, 0, 0); }
void ProgramBuilder::fmov(RegId fd, RegId fs1)
{ emit(Opcode::FMOV, fd, fs1, 0, 0); }
void ProgramBuilder::fcmpeq(RegId rd, RegId fs1, RegId fs2)
{ emit(Opcode::FCMPEQ, rd, fs1, fs2, 0); }
void ProgramBuilder::fcmplt(RegId rd, RegId fs1, RegId fs2)
{ emit(Opcode::FCMPLT, rd, fs1, fs2, 0); }
void ProgramBuilder::fcmple(RegId rd, RegId fs1, RegId fs2)
{ emit(Opcode::FCMPLE, rd, fs1, fs2, 0); }
void ProgramBuilder::cvtif(RegId fd, RegId rs1)
{ emit(Opcode::CVTIF, fd, rs1, 0, 0); }
void ProgramBuilder::cvtfi(RegId rd, RegId fs1)
{ emit(Opcode::CVTFI, rd, fs1, 0, 0); }

// --- memory --------------------------------------------------------------------

void ProgramBuilder::ldq(RegId rd, RegId base, std::int32_t disp)
{ emit(Opcode::LDQ, rd, base, 0, disp); }
void ProgramBuilder::ldl(RegId rd, RegId base, std::int32_t disp)
{ emit(Opcode::LDL, rd, base, 0, disp); }
void ProgramBuilder::fld(RegId fd, RegId base, std::int32_t disp)
{ emit(Opcode::FLD, fd, base, 0, disp); }
void ProgramBuilder::stq(RegId value, RegId base, std::int32_t disp)
{ emit(Opcode::STQ, 0, base, value, disp); }
void ProgramBuilder::stl(RegId value, RegId base, std::int32_t disp)
{ emit(Opcode::STL, 0, base, value, disp); }
void ProgramBuilder::fst(RegId value, RegId base, std::int32_t disp)
{ emit(Opcode::FST, 0, base, value, disp); }

// --- control ---------------------------------------------------------------------

void ProgramBuilder::beqz(RegId rs1, Label target)
{ emitBranch(Opcode::BEQZ, 0, rs1, target); }
void ProgramBuilder::bnez(RegId rs1, Label target)
{ emitBranch(Opcode::BNEZ, 0, rs1, target); }
void ProgramBuilder::bltz(RegId rs1, Label target)
{ emitBranch(Opcode::BLTZ, 0, rs1, target); }
void ProgramBuilder::bgez(RegId rs1, Label target)
{ emitBranch(Opcode::BGEZ, 0, rs1, target); }
void ProgramBuilder::br(Label target)
{ emitBranch(Opcode::BR, 0, 0, target); }
void ProgramBuilder::jal(Label target, RegId link)
{ emitBranch(Opcode::JAL, link, 0, target); }
void ProgramBuilder::jr(RegId rs1)
{ emit(Opcode::JR, 0, rs1, 0, 0); }
void ProgramBuilder::jalr(RegId rd, RegId rs1)
{ emit(Opcode::JALR, rd, rs1, 0, 0); }

void ProgramBuilder::nop() { emit(Opcode::NOP, 0, 0, 0, 0); }
void ProgramBuilder::halt() { emit(Opcode::HALT, 0, 0, 0, 0); }

void
ProgramBuilder::raw(const Instruction &inst)
{
    sdv_assert(!finished_, "builder reused after finish()");
    program_.append(inst);
}

// --- data ------------------------------------------------------------------------

Addr
ProgramBuilder::allocWords(const std::string &name, size_t count)
{
    return allocBytes(name, count * 8);
}

Addr
ProgramBuilder::allocBytes(const std::string &name, size_t bytes)
{
    const Addr base = alignUp(dataBump_, 8);
    dataBump_ = base + alignUp(bytes, 8);
    if (!name.empty())
        program_.defineSymbol(name, base);
    return base;
}

void
ProgramBuilder::pokeWord(Addr addr, std::uint64_t value)
{
    std::vector<std::uint8_t> bytes(8);
    std::memcpy(bytes.data(), &value, 8);
    pokes_.emplace_back(addr, std::move(bytes));
}

void
ProgramBuilder::pokeWord32(Addr addr, std::uint32_t value)
{
    std::vector<std::uint8_t> bytes(4);
    std::memcpy(bytes.data(), &value, 4);
    pokes_.emplace_back(addr, std::move(bytes));
}

void
ProgramBuilder::pokeDouble(Addr addr, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, 8);
    pokeWord(addr, bits);
}

void
ProgramBuilder::defineSymbol(const std::string &name, Addr value)
{
    program_.defineSymbol(name, value);
}

bool
ProgramBuilder::symbol(const std::string &name, Addr &out) const
{
    return program_.symbol(name, out);
}

Program
ProgramBuilder::finish()
{
    sdv_assert(!finished_, "finish() called twice");
    finished_ = true;

    for (const Fixup &f : fixups_) {
        const std::int64_t slot = labelSlot_[size_t(f.label)];
        sdv_assert(slot >= 0, "unbound label used by instruction ", f.slot);
        Instruction inst = program_.instAt(program_.codeBase() +
                                           f.slot * instBytes);
        inst.imm = branchOffset(f.slot, size_t(slot));
        program_.patch(f.slot, inst);
    }

    if (dataBump_ > dataBase_) {
        DataSegment seg;
        seg.base = dataBase_;
        seg.bytes.assign(size_t(dataBump_ - dataBase_), 0);
        for (const auto &[addr, bytes] : pokes_) {
            sdv_assert(addr >= seg.base &&
                           addr + bytes.size() <= seg.base + seg.bytes.size(),
                       "poke outside allocated data");
            std::memcpy(seg.bytes.data() + (addr - seg.base), bytes.data(),
                        bytes.size());
        }
        program_.addData(std::move(seg));
    }

    return std::move(program_);
}

} // namespace sdv
