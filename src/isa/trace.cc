#include "isa/trace.hh"

#include "arch/executor.hh"
#include "common/bitutils.hh"
#include "common/log.hh"
#include "isa/alu.hh"

namespace sdv {

namespace {

/** Static properties of @p O as a compile-time constant. */
template <Opcode O>
inline constexpr const OpInfo &kInfo = detail::opInfoTable[unsigned(O)];

template <Opcode O>
constexpr bool
isStoreKind()
{
    return kInfo<O>.opClass == OpClass::MemWrite;
}

/** Resolve the branch direction of a conditional branch opcode. */
template <Opcode O>
inline bool
condTaken(std::uint64_t a)
{
    const auto sa = std::int64_t(a);
    if constexpr (O == Opcode::BEQZ)
        return sa == 0;
    else if constexpr (O == Opcode::BNEZ)
        return sa != 0;
    else if constexpr (O == Opcode::BLTZ)
        return sa < 0;
    else if constexpr (O == Opcode::BGEZ)
        return sa >= 0;
    else
        return false;
}

/**
 * Full-record step handler: one instantiation per opcode, mirroring
 * executeOne() field for field (the interpreter stays the bit-identity
 * reference — see tests/test_trace_compile.cc). The record is caller
 * storage and may be reused, so every field is (re)assigned.
 */
template <Opcode O>
void
stepImpl(const CompiledTrace::Slot &u, ArchState &st, SparseMemory &mem,
         ExecRecord &rec)
{
    rec.pc = st.pc;
    rec.inst = u.inst;
    rec.nextPc = u.fallthrough;
    rec.taken = false;
    rec.isMem = false;
    rec.isStore = false;
    rec.addr = 0;
    rec.size = 0;
    rec.value = 0;
    rec.writesReg = false;
    rec.halted = false;
    rec.prevMemValue = 0;

    const std::uint64_t a = st.reg(u.inst.rs1);
    const std::uint64_t b = st.reg(u.inst.rs2);
    rec.srcValue1 = a;
    rec.srcValue2 = b;

    std::uint64_t result = 0;

    if constexpr (O == Opcode::LDQ || O == Opcode::FLD) {
        rec.isMem = true;
        rec.addr = a + std::uint64_t(u.simm);
        rec.size = 8;
        result = mem.read64(rec.addr);
    } else if constexpr (O == Opcode::LDL) {
        rec.isMem = true;
        rec.addr = a + std::uint64_t(u.simm);
        rec.size = 4;
        result = std::uint64_t(signExtend(mem.read32(rec.addr), 32));
    } else if constexpr (O == Opcode::STQ || O == Opcode::FST) {
        rec.isMem = true;
        rec.isStore = true;
        rec.addr = a + std::uint64_t(u.simm);
        rec.size = 8;
        rec.value = b;
        rec.prevMemValue = mem.read64(rec.addr);
        mem.write64(rec.addr, b);
    } else if constexpr (O == Opcode::STL) {
        rec.isMem = true;
        rec.isStore = true;
        rec.addr = a + std::uint64_t(u.simm);
        rec.size = 4;
        rec.value = b;
        rec.prevMemValue = mem.read32(rec.addr);
        mem.write32(rec.addr, std::uint32_t(b));
    } else if constexpr (kInfo<O>.isCondBranch) {
        rec.taken = condTaken<O>(a);
        if (rec.taken)
            rec.nextPc = u.target;
    } else if constexpr (O == Opcode::BR) {
        rec.taken = true;
        rec.nextPc = u.target;
    } else if constexpr (O == Opcode::JAL) {
        rec.taken = true;
        result = u.fallthrough;
        rec.nextPc = u.target;
    } else if constexpr (O == Opcode::JR) {
        rec.taken = true;
        rec.nextPc = a;
    } else if constexpr (O == Opcode::JALR) {
        rec.taken = true;
        rec.nextPc = a;
        result = u.fallthrough;
    } else if constexpr (O == Opcode::NOP) {
        // no effects
    } else if constexpr (O == Opcode::HALT) {
        rec.halted = true;
    } else {
        result = evalScalarOpFor<O>(a, b, u.inst.imm);
    }

    if constexpr (kInfo<O>.writesRd) {
        st.setReg(u.inst.rd, result);
        rec.writesReg = u.inst.rd != zeroReg;
        rec.value = result;
    } else if constexpr (!isStoreKind<O>()) {
        rec.value = result;
    }

    st.pc = rec.nextPc;
}

/**
 * Architectural-effects-only handler: registers, memory, pc. The hot
 * loop of functional fast-forward, sample counting and verification —
 * no ExecRecord is materialized at all.
 */
template <Opcode O>
void
fastImpl(const CompiledTrace::Slot &u, ArchState &st, SparseMemory &mem)
{
    const std::uint64_t a = st.reg(u.inst.rs1);
    Addr next = u.fallthrough;
    std::uint64_t result = 0;

    if constexpr (O == Opcode::LDQ || O == Opcode::FLD) {
        result = mem.read64(a + std::uint64_t(u.simm));
    } else if constexpr (O == Opcode::LDL) {
        result = std::uint64_t(
            signExtend(mem.read32(a + std::uint64_t(u.simm)), 32));
    } else if constexpr (O == Opcode::STQ || O == Opcode::FST) {
        mem.write64(a + std::uint64_t(u.simm), st.reg(u.inst.rs2));
    } else if constexpr (O == Opcode::STL) {
        mem.write32(a + std::uint64_t(u.simm),
                    std::uint32_t(st.reg(u.inst.rs2)));
    } else if constexpr (kInfo<O>.isCondBranch) {
        if (condTaken<O>(a))
            next = u.target;
    } else if constexpr (O == Opcode::BR) {
        next = u.target;
    } else if constexpr (O == Opcode::JAL) {
        result = u.fallthrough;
        next = u.target;
    } else if constexpr (O == Opcode::JR) {
        next = a;
    } else if constexpr (O == Opcode::JALR) {
        next = a;
        result = u.fallthrough;
    } else if constexpr (O == Opcode::NOP || O == Opcode::HALT) {
        // no effects (HALT is detected by the caller via the slot)
    } else {
        result = evalScalarOpFor<O>(a, st.reg(u.inst.rs2), u.inst.imm);
    }

    if constexpr (kInfo<O>.writesRd)
        st.setReg(u.inst.rd, result);

    st.pc = next;
}

/** Handler tables, one entry per opcode, generated from the X-macro. */
constexpr CompiledTrace::StepFn stepTable[numOpcodes] = {
#define SDV_STEP(name, ...) &stepImpl<Opcode::name>,
    SDV_FOR_EACH_OPCODE(SDV_STEP)
#undef SDV_STEP
};

constexpr CompiledTrace::FastFn fastTable[numOpcodes] = {
#define SDV_FAST(name, ...) &fastImpl<Opcode::name>,
    SDV_FOR_EACH_OPCODE(SDV_FAST)
#undef SDV_FAST
};

} // namespace

CompiledTrace::Slot
CompiledTrace::compileSlot(std::size_t index, std::uint64_t word) const
{
    Slot s;
    const bool ok = Instruction::decode(word, s.inst);
    sdv_assert(ok, "undecodable instruction in trace slot ", index);

    const Addr pc = base_ + Addr(index) * instBytes;
    const OpInfo &info = s.inst.info();
    s.step = stepTable[unsigned(s.inst.op)];
    s.fast = fastTable[unsigned(s.inst.op)];
    s.simm = std::int64_t(s.inst.imm);
    s.fallthrough = pc + instBytes;
    // pc-relative control targets fold at compile time; indirect jumps
    // (JR/JALR) resolve through a register and keep target == 0.
    s.target = 0;
    if (info.isCondBranch || s.inst.op == Opcode::BR ||
        s.inst.op == Opcode::JAL)
        s.target = pc + Addr(std::int64_t(s.inst.imm) *
                             std::int64_t(instBytes));
    return s;
}

CompiledTrace::CompiledTrace(Addr code_base,
                             const std::vector<std::uint64_t> &words)
    : base_(code_base)
{
    slots_.reserve(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        slots_.push_back(compileSlot(i, words[i]));
}

void
CompiledTrace::recompile(std::size_t index, std::uint64_t word)
{
    sdv_assert(index < slots_.size(), "trace recompile out of range");
    slots_[index] = compileSlot(index, word);
}

void
CompiledTrace::appendSlot(std::uint64_t word)
{
    slots_.push_back(compileSlot(slots_.size(), word));
}

} // namespace sdv
