#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "common/bitutils.hh"
#include "isa/builder.hh"

namespace sdv {

namespace {

/** One parsed source line. */
struct Line
{
    int number = 0;
    std::vector<std::string> labels; ///< labels bound at this statement
    std::string head;                ///< directive or mnemonic ("" if none)
    std::vector<std::string> operands;
};

std::string
strip(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Split an operand list on commas and/or whitespace. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!strip(cur).empty())
                out.push_back(strip(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!strip(cur).empty())
        out.push_back(strip(cur));
    return out;
}

bool
parseInt(const std::string &text, std::int64_t &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 0);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
isIdentifier(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (char c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    return true;
}

/** Shared state of one assembly run. */
class Assembler
{
  public:
    explicit Assembler(Addr code_base) : builder_(code_base) {}

    AsmResult
    run(const std::string &source)
    {
        AsmResult result;
        if (!tokenize(source, result.error))
            return result;
        if (!passAllocate(result.error))
            return result;
        if (!passEmit(result.error))
            return result;
        for (const auto &[name, label] : codeLabels_) {
            if (!boundLabels_.count(name)) {
                result.error = "undefined label '" + name + "'";
                return result;
            }
        }
        result.program = builder_.finish();
        if (!entryLabel_.empty()) {
            Addr addr = 0;
            if (!result.program.symbol(entryLabel_, addr)) {
                result.error = ".entry label '" + entryLabel_ +
                               "' is not defined";
                return result;
            }
            result.program.setEntry(addr);
        }
        result.ok = true;
        return result;
    }

  private:
    bool
    fail(std::string &err, int line, const std::string &msg)
    {
        std::ostringstream os;
        os << "line " << line << ": " << msg;
        err = os.str();
        return false;
    }

    bool
    tokenize(const std::string &source, std::string &err)
    {
        std::istringstream is(source);
        std::string raw;
        int number = 0;
        std::vector<std::string> pending_labels;
        while (std::getline(is, raw)) {
            ++number;
            const auto cut = raw.find_first_of(";#");
            if (cut != std::string::npos)
                raw = raw.substr(0, cut);
            std::string text = strip(raw);

            // Peel leading "label:" prefixes.
            while (true) {
                const auto colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string head = strip(text.substr(0, colon));
                if (!isIdentifier(head))
                    return fail(err, number, "bad label '" + head + "'");
                pending_labels.push_back(head);
                text = strip(text.substr(colon + 1));
            }
            if (text.empty())
                continue;

            Line line;
            line.number = number;
            line.labels = std::move(pending_labels);
            pending_labels.clear();

            const auto sp = text.find_first_of(" \t");
            if (sp == std::string::npos) {
                line.head = text;
            } else {
                line.head = text.substr(0, sp);
                line.operands = splitOperands(strip(text.substr(sp)));
            }
            lines_.push_back(std::move(line));
        }
        if (!pending_labels.empty()) {
            // Labels at end of file bind to a trailing halt-less slot;
            // treat as error to avoid silent fallthrough.
            return fail(err, number,
                        "label '" + pending_labels.front() +
                            "' binds past the last instruction");
        }
        return true;
    }

    /** First pass: data directives and symbol table only. */
    bool
    passAllocate(std::string &err)
    {
        for (const Line &line : lines_) {
            if (line.head == ".data") {
                if (line.operands.size() != 2 ||
                    !isIdentifier(line.operands[0]))
                    return fail(err, line.number, ".data name count");
                std::int64_t count = 0;
                if (!parseInt(line.operands[1], count) || count <= 0)
                    return fail(err, line.number, "bad .data count");
                builder_.allocWords(line.operands[0], size_t(count));
            }
        }
        return true;
    }

    std::optional<ProgramBuilder::Label>
    labelFor(const std::string &name)
    {
        if (!isIdentifier(name))
            return std::nullopt;
        auto it = codeLabels_.find(name);
        if (it != codeLabels_.end())
            return it->second;
        const auto label = builder_.newLabel();
        codeLabels_.emplace(name, label);
        return label;
    }

    bool
    emitInstruction(const Line &line, std::string &err);

    /** Second pass: emit instructions and data pokes. */
    bool
    passEmit(std::string &err)
    {
        for (const Line &line : lines_) {
            for (const std::string &name : line.labels) {
                auto label = labelFor(name);
                if (!label)
                    return fail(err, line.number, "bad label " + name);
                if (boundLabels_.count(name))
                    return fail(err, line.number,
                                "label '" + name + "' bound twice");
                boundLabels_.insert(name);
                builder_.bind(*label);
                // Also expose the label as a symbol.
                builder_.defineSymbol(name, builder_.nextPc());
            }

            if (line.head.empty())
                continue;
            if (line.head == ".data")
                continue; // handled in pass 1
            if (line.head == ".entry") {
                if (line.operands.size() != 1)
                    return fail(err, line.number, ".entry label");
                entryLabel_ = line.operands[0];
                continue;
            }
            if (line.head == ".word" || line.head == ".double") {
                if (line.operands.size() != 3)
                    return fail(err, line.number,
                                line.head + " name index value");
                Addr base = 0;
                if (!builder_.symbol(line.operands[0], base))
                    return fail(err, line.number,
                                "unknown allocation '" + line.operands[0] +
                                    "'");
                std::int64_t idx = 0;
                if (!parseInt(line.operands[1], idx) || idx < 0)
                    return fail(err, line.number, "bad index");
                if (line.head == ".word") {
                    std::int64_t value = 0;
                    if (!parseInt(line.operands[2], value))
                        return fail(err, line.number, "bad value");
                    builder_.pokeWord(base + Addr(idx) * 8,
                                      std::uint64_t(value));
                } else {
                    double value = 0;
                    if (!parseDouble(line.operands[2], value))
                        return fail(err, line.number, "bad value");
                    builder_.pokeDouble(base + Addr(idx) * 8, value);
                }
                continue;
            }
            if (line.head[0] == '.')
                return fail(err, line.number,
                            "unknown directive " + line.head);

            if (!emitInstruction(line, err))
                return false;
        }
        return true;
    }

    ProgramBuilder builder_;
    std::vector<Line> lines_;
    std::map<std::string, ProgramBuilder::Label> codeLabels_;
    std::set<std::string> boundLabels_;
    std::string entryLabel_;
};

bool
Assembler::emitInstruction(const Line &line, std::string &err)
{
    Opcode op;
    const bool known = parseMnemonic(line.head, op);

    auto reg = [&](const std::string &text, RegId &out) {
        return parseRegName(text, out);
    };

    // Pseudo instructions first.
    if (!known) {
        if (line.head == "li") {
            RegId rd;
            std::int64_t value;
            if (line.operands.size() != 2 || !reg(line.operands[0], rd) ||
                !parseInt(line.operands[1], value))
                return fail(err, line.number, "li rd, imm64");
            builder_.loadImm64(rd, std::uint64_t(value));
            return true;
        }
        if (line.head == "la") {
            RegId rd;
            if (line.operands.size() != 2 || !reg(line.operands[0], rd))
                return fail(err, line.number, "la rd, symbol");
            Addr addr = 0;
            if (!builder_.symbol(line.operands[1], addr))
                return fail(err, line.number,
                            "unknown symbol '" + line.operands[1] + "'");
            // Fixed two-slot encoding so pass structure stays single.
            builder_.ldi(rd, std::int32_t(std::uint32_t(addr)));
            builder_.ldih(rd, rd, std::int32_t(std::uint32_t(addr >> 32)));
            return true;
        }
        if (line.head == "mov") {
            RegId rd, rs;
            if (line.operands.size() != 2 || !reg(line.operands[0], rd) ||
                !reg(line.operands[1], rs))
                return fail(err, line.number, "mov rd, rs");
            builder_.mov(rd, rs);
            return true;
        }
        return fail(err, line.number, "unknown mnemonic " + line.head);
    }

    const OpInfo &info = opInfo(op);

    // Memory operand parser for "disp(base)".
    auto memOperand = [&](const std::string &text, RegId &base,
                          std::int32_t &disp) {
        const auto open = text.find('(');
        const auto close = text.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open || close + 1 != text.size())
            return false;
        std::int64_t d = 0;
        const std::string dtext = strip(text.substr(0, open));
        if (!dtext.empty() && !parseInt(dtext, d))
            return false;
        if (!parseRegName(strip(text.substr(open + 1, close - open - 1)),
                          base))
            return false;
        disp = std::int32_t(d);
        return true;
    };

    if (info.opClass == OpClass::MemRead) {
        RegId rd, base;
        std::int32_t disp;
        if (line.operands.size() != 2 || !reg(line.operands[0], rd) ||
            !memOperand(line.operands[1], base, disp))
            return fail(err, line.number, "expected: rd, disp(base)");
        builder_.raw(Instruction(op, rd, base, 0, disp));
        return true;
    }
    if (info.opClass == OpClass::MemWrite) {
        RegId value, base;
        std::int32_t disp;
        if (line.operands.size() != 2 || !reg(line.operands[0], value) ||
            !memOperand(line.operands[1], base, disp))
            return fail(err, line.number, "expected: rs, disp(base)");
        builder_.raw(Instruction(op, 0, base, value, disp));
        return true;
    }

    if (info.isCondBranch) {
        RegId rs1;
        if (line.operands.size() != 2 || !reg(line.operands[0], rs1))
            return fail(err, line.number, "expected: rs, label");
        auto label = labelFor(line.operands[1]);
        if (!label)
            return fail(err, line.number, "bad label");
        switch (op) {
          case Opcode::BEQZ: builder_.beqz(rs1, *label); break;
          case Opcode::BNEZ: builder_.bnez(rs1, *label); break;
          case Opcode::BLTZ: builder_.bltz(rs1, *label); break;
          case Opcode::BGEZ: builder_.bgez(rs1, *label); break;
          default:
            return fail(err, line.number, "unhandled branch");
        }
        return true;
    }
    if (op == Opcode::BR || op == Opcode::JAL) {
        if (line.operands.size() != 1)
            return fail(err, line.number, "expected: label");
        auto label = labelFor(line.operands[0]);
        if (!label)
            return fail(err, line.number, "bad label");
        if (op == Opcode::BR)
            builder_.br(*label);
        else
            builder_.jal(*label);
        return true;
    }

    // Generic register/immediate forms.
    std::vector<std::string> ops = line.operands;
    size_t idx = 0;
    RegId rd = 0, rs1 = 0, rs2 = 0;
    std::int32_t imm = 0;
    auto take = [&](auto parser, auto &out) {
        if (idx >= ops.size())
            return false;
        return parser(ops[idx++], out);
    };
    auto regParser = [&](const std::string &t, RegId &o) {
        return parseRegName(t, o);
    };
    auto immParser = [&](const std::string &t, std::int32_t &o) {
        std::int64_t v;
        if (!parseInt(t, v))
            return false;
        o = std::int32_t(v);
        return true;
    };

    if (info.writesRd && !take(regParser, rd))
        return fail(err, line.number, "expected destination register");
    if (info.readsRs1 && !take(regParser, rs1))
        return fail(err, line.number, "expected source register");
    if (info.readsRs2 && !take(regParser, rs2))
        return fail(err, line.number, "expected second source register");
    if (info.hasImm && !take(immParser, imm))
        return fail(err, line.number, "expected immediate");
    if (idx != ops.size())
        return fail(err, line.number, "trailing operands");

    builder_.raw(Instruction(op, rd, rs1, rs2, imm));
    return true;
}

} // namespace

AsmResult
assemble(const std::string &source, Addr code_base)
{
    Assembler as(code_base);
    return as.run(source);
}

} // namespace sdv
