/**
 * @file
 * The sdv mini-ISA opcode set and its static properties.
 *
 * The ISA is a 64-bit RISC in the spirit of the Alpha ISA that the
 * paper's SimpleScalar substrate executed: a unified file of 64 logical
 * registers (0..31 integer with r0 hardwired to zero, 32..63
 * floating-point by convention), fixed-size instructions, loads/stores
 * with base+displacement addressing and compare-and-branch-zero control
 * flow.
 */

#ifndef SDV_ISA_OPCODES_HH
#define SDV_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

#include "common/log.hh"

namespace sdv {

/**
 * Functional-unit class of an operation; counts and latencies per class
 * come from Table 1 of the paper.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< simple integer (latency 1)
    IntMult,  ///< integer multiply (latency 2)
    IntDiv,   ///< integer divide (latency 12)
    FpAdd,    ///< simple FP: add/sub/cmp/cvt (latency 2)
    FpMult,   ///< FP multiply (latency 4)
    FpDiv,    ///< FP divide (latency 14)
    MemRead,  ///< load port
    MemWrite, ///< store port
    Control,  ///< branches and jumps (resolve on an IntAlu slot)
    None,     ///< NOP / HALT
};

/**
 * Opcode list as an X-macro: OP(name, opclass, writesRd, readsRs1,
 * readsRs2, hasImm, memBytes, isBranch, isJump, vectorizable)
 */
#define SDV_FOR_EACH_OPCODE(OP)                                              \
    /* integer register-register ALU */                                      \
    OP(ADD,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(SUB,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(MUL,    IntMult, 1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(DIV,    IntDiv,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(AND,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(OR,     IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(XOR,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(SLL,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(SRL,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(SRA,    IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(CMPEQ,  IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(CMPLT,  IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(CMPLE,  IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(CMPULT, IntAlu,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    /* integer register-immediate ALU */                                     \
    OP(ADDI,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(ANDI,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(ORI,    IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(XORI,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(SLLI,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(SRLI,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(SRAI,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(CMPEQI, IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    OP(CMPLTI, IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    /* constant materialization */                                           \
    OP(LDI,    IntAlu,  1, 0, 0, 1, 0, 0, 0, 0)                              \
    OP(LDIH,   IntAlu,  1, 1, 0, 1, 0, 0, 0, 1)                              \
    /* floating point */                                                     \
    OP(FADD,   FpAdd,   1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(FSUB,   FpAdd,   1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(FMUL,   FpMult,  1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(FDIV,   FpDiv,   1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(FNEG,   FpAdd,   1, 1, 0, 0, 0, 0, 0, 1)                              \
    OP(FABS,   FpAdd,   1, 1, 0, 0, 0, 0, 0, 1)                              \
    OP(FMOV,   FpAdd,   1, 1, 0, 0, 0, 0, 0, 1)                              \
    OP(FCMPEQ, FpAdd,   1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(FCMPLT, FpAdd,   1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(FCMPLE, FpAdd,   1, 1, 1, 0, 0, 0, 0, 1)                              \
    OP(CVTIF,  FpAdd,   1, 1, 0, 0, 0, 0, 0, 1)                              \
    OP(CVTFI,  FpAdd,   1, 1, 0, 0, 0, 0, 0, 1)                              \
    /* memory: rd <- [rs1 + imm] / [rs1 + imm] <- rs2 */                     \
    OP(LDQ,    MemRead,  1, 1, 0, 1, 8, 0, 0, 1)                             \
    OP(LDL,    MemRead,  1, 1, 0, 1, 4, 0, 0, 1)                             \
    OP(FLD,    MemRead,  1, 1, 0, 1, 8, 0, 0, 1)                             \
    OP(STQ,    MemWrite, 0, 1, 1, 1, 8, 0, 0, 0)                             \
    OP(STL,    MemWrite, 0, 1, 1, 1, 4, 0, 0, 0)                             \
    OP(FST,    MemWrite, 0, 1, 1, 1, 8, 0, 0, 0)                             \
    /* control: conditional branches test rs1 against zero */                \
    OP(BEQZ,   Control, 0, 1, 0, 1, 0, 1, 0, 0)                              \
    OP(BNEZ,   Control, 0, 1, 0, 1, 0, 1, 0, 0)                              \
    OP(BLTZ,   Control, 0, 1, 0, 1, 0, 1, 0, 0)                              \
    OP(BGEZ,   Control, 0, 1, 0, 1, 0, 1, 0, 0)                              \
    OP(BR,     Control, 0, 0, 0, 1, 0, 0, 1, 0)                              \
    OP(JAL,    Control, 1, 0, 0, 1, 0, 0, 1, 0)                              \
    OP(JR,     Control, 0, 1, 0, 0, 0, 0, 1, 0)                              \
    OP(JALR,   Control, 1, 1, 0, 0, 0, 0, 1, 0)                              \
    /* misc */                                                               \
    OP(NOP,    None,    0, 0, 0, 0, 0, 0, 0, 0)                              \
    OP(HALT,   None,    0, 0, 0, 0, 0, 0, 0, 0)

/** All opcodes of the mini-ISA. */
enum class Opcode : std::uint8_t
{
#define SDV_ENUM(name, ...) name,
    SDV_FOR_EACH_OPCODE(SDV_ENUM)
#undef SDV_ENUM
};

/** Number of defined opcodes. */
constexpr unsigned numOpcodes = 0
#define SDV_COUNT(name, ...) +1
    SDV_FOR_EACH_OPCODE(SDV_COUNT)
#undef SDV_COUNT
    ;

/** Static properties of one opcode. */
struct OpInfo
{
    std::string_view mnemonic; ///< lower-case assembler mnemonic
    OpClass opClass;           ///< functional-unit class
    bool writesRd;             ///< produces a register result
    bool readsRs1;             ///< consumes the rs1 field
    bool readsRs2;             ///< consumes the rs2 field
    bool hasImm;               ///< uses the immediate field
    std::uint8_t memBytes;     ///< memory access size (0 if not memory)
    bool isCondBranch;         ///< conditional branch
    bool isJump;               ///< unconditional control transfer
    bool vectorizable;         ///< eligible for dynamic vectorization
};

namespace detail {

/** The static property table, one row per opcode. Lives in the header
 *  so opInfo() inlines into the per-instruction hot paths (it is hit
 *  tens of times per simulated instruction). */
inline constexpr OpInfo opInfoTable[numOpcodes] = {
#define SDV_INFO(name, cls, wrd, rs1, rs2, imm, mem, br, jmp, vec)            \
    OpInfo{#name, OpClass::cls, wrd != 0, rs1 != 0, rs2 != 0, imm != 0,       \
           mem, br != 0, jmp != 0, vec != 0},
    SDV_FOR_EACH_OPCODE(SDV_INFO)
#undef SDV_INFO
};

} // namespace detail

/** @return the static properties of @p op. */
inline const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    sdv_assert(idx < numOpcodes, "bad opcode ", idx);
    return detail::opInfoTable[idx];
}

/** @return the mnemonic of @p op. */
std::string_view mnemonic(Opcode op);

/**
 * Parse an assembler mnemonic.
 * @retval true and sets @p out on success, false on unknown mnemonic.
 */
bool parseMnemonic(std::string_view text, Opcode &out);

/** @return true when the op is a load. */
inline bool
isLoadOp(Opcode op)
{
    return opInfo(op).opClass == OpClass::MemRead;
}

/** @return true when the op is a store. */
inline bool
isStoreOp(Opcode op)
{
    return opInfo(op).opClass == OpClass::MemWrite;
}

/** @return true when the op transfers control (branch or jump). */
inline bool
isControlOp(Opcode op)
{
    const auto &info = opInfo(op);
    return info.isCondBranch || info.isJump;
}

/** @return the execution latency (cycles) of an op class per Table 1. */
inline unsigned
opClassLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMult:
        return 2;
      case OpClass::IntDiv:
        return 12;
      case OpClass::FpAdd:
        return 2;
      case OpClass::FpMult:
        return 4;
      case OpClass::FpDiv:
        return 14;
      case OpClass::MemRead:
        return 1; // address generation; cache latency added separately
      case OpClass::MemWrite:
        return 1;
      case OpClass::Control:
        return 1;
      case OpClass::None:
        return 1;
    }
    panic("unreachable op class");
}

} // namespace sdv

#endif // SDV_ISA_OPCODES_HH
