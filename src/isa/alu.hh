/**
 * @file
 * Pure arithmetic semantics of the mini-ISA, shared by the functional
 * executor, the compiled-trace handlers and the vector functional
 * units (which apply the same operation element-wise).
 *
 * The semantics live in the per-opcode template evalScalarOpFor<O> so
 * the interpreter switch (evalScalarOp), the trace step handlers and
 * the batched element kernels all compile from one definition — a
 * value divergence between the paths is impossible by construction.
 */

#ifndef SDV_ISA_ALU_HH
#define SDV_ISA_ALU_HH

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "isa/opcodes.hh"

namespace sdv {

namespace alu_detail {

inline double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

inline std::uint64_t
asBits(double d)
{
    std::uint64_t v;
    std::memcpy(&v, &d, 8);
    return v;
}

inline std::int64_t
safeDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return a;
    return a / b;
}

inline std::int64_t
safeCvtFi(double d)
{
    if (!std::isfinite(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::max();
    if (d <= -9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::min();
    return std::int64_t(d);
}

} // namespace alu_detail

/** @return true when @p op has evalScalarOp semantics (any ALU / FP /
 *  constant-materialization op; memory, control, NOP and HALT do not). */
constexpr bool
isScalarEvalOp(Opcode op)
{
    switch (detail::opInfoTable[unsigned(op)].opClass) {
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::IntDiv:
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return true;
      default:
        return false;
    }
}

/**
 * Statically-dispatched evaluation of one ALU/FP operation: the single
 * definition of every op's value semantics. Instantiations for
 * non-ALU opcodes return 0 (callers gate on isScalarEvalOp).
 */
template <Opcode O>
inline std::uint64_t
evalScalarOpFor(std::uint64_t a, std::uint64_t b, std::int32_t imm)
{
    using namespace alu_detail;
    const auto sa = std::int64_t(a);
    const auto sb = std::int64_t(b);
    const std::int64_t simm = imm;
    (void)sb;
    (void)simm;

    if constexpr (O == Opcode::ADD)    return a + b;
    else if constexpr (O == Opcode::SUB)    return a - b;
    else if constexpr (O == Opcode::MUL)    return a * b;
    else if constexpr (O == Opcode::DIV)
        return std::uint64_t(safeDiv(sa, sb));
    else if constexpr (O == Opcode::AND)    return a & b;
    else if constexpr (O == Opcode::OR)     return a | b;
    else if constexpr (O == Opcode::XOR)    return a ^ b;
    else if constexpr (O == Opcode::SLL)    return a << (b & 63);
    else if constexpr (O == Opcode::SRL)    return a >> (b & 63);
    else if constexpr (O == Opcode::SRA)
        return std::uint64_t(sa >> (b & 63));
    else if constexpr (O == Opcode::CMPEQ)  return a == b;
    else if constexpr (O == Opcode::CMPLT)  return sa < sb;
    else if constexpr (O == Opcode::CMPLE)  return sa <= sb;
    else if constexpr (O == Opcode::CMPULT) return a < b;

    else if constexpr (O == Opcode::ADDI)   return a + std::uint64_t(simm);
    else if constexpr (O == Opcode::ANDI)   return a & std::uint64_t(simm);
    else if constexpr (O == Opcode::ORI)    return a | std::uint64_t(simm);
    else if constexpr (O == Opcode::XORI)   return a ^ std::uint64_t(simm);
    else if constexpr (O == Opcode::SLLI)   return a << (imm & 63);
    else if constexpr (O == Opcode::SRLI)   return a >> (imm & 63);
    else if constexpr (O == Opcode::SRAI)
        return std::uint64_t(sa >> (imm & 63));
    else if constexpr (O == Opcode::CMPEQI)
        return a == std::uint64_t(simm);
    else if constexpr (O == Opcode::CMPLTI) return sa < simm;

    else if constexpr (O == Opcode::LDI)    return std::uint64_t(simm);
    else if constexpr (O == Opcode::LDIH)
        return std::uint64_t(std::uint32_t(a)) |
               (std::uint64_t(std::uint32_t(imm)) << 32);

    else if constexpr (O == Opcode::FADD)
        return asBits(asDouble(a) + asDouble(b));
    else if constexpr (O == Opcode::FSUB)
        return asBits(asDouble(a) - asDouble(b));
    else if constexpr (O == Opcode::FMUL)
        return asBits(asDouble(a) * asDouble(b));
    else if constexpr (O == Opcode::FDIV)
        return asBits(asDouble(a) / asDouble(b));
    else if constexpr (O == Opcode::FNEG)   return asBits(-asDouble(a));
    else if constexpr (O == Opcode::FABS)
        return asBits(std::fabs(asDouble(a)));
    else if constexpr (O == Opcode::FMOV)   return a;
    else if constexpr (O == Opcode::FCMPEQ)
        return asDouble(a) == asDouble(b);
    else if constexpr (O == Opcode::FCMPLT)
        return asDouble(a) < asDouble(b);
    else if constexpr (O == Opcode::FCMPLE)
        return asDouble(a) <= asDouble(b);
    else if constexpr (O == Opcode::CVTIF)  return asBits(double(sa));
    else if constexpr (O == Opcode::CVTFI)
        return std::uint64_t(safeCvtFi(asDouble(a)));

    else return 0; // non-ALU opcode: callers gate on isScalarEvalOp()
}

/**
 * Evaluate a non-memory, non-control operation.
 *
 * @param op opcode (must be an ALU/FP/constant op)
 * @param a rs1 value (ignored when the op does not read rs1)
 * @param b rs2 value (ignored when the op does not read rs2)
 * @param imm immediate field
 * @return the result value (register bits)
 */
std::uint64_t evalScalarOp(Opcode op, std::uint64_t a, std::uint64_t b,
                           std::int32_t imm);

} // namespace sdv

#endif // SDV_ISA_ALU_HH
