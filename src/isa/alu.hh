/**
 * @file
 * Pure arithmetic semantics of the mini-ISA, shared by the functional
 * executor and the vector functional units (which apply the same
 * operation element-wise).
 */

#ifndef SDV_ISA_ALU_HH
#define SDV_ISA_ALU_HH

#include <cstdint>

#include "isa/opcodes.hh"

namespace sdv {

/**
 * Evaluate a non-memory, non-control operation.
 *
 * @param op opcode (must be an ALU/FP/constant op)
 * @param a rs1 value (ignored when the op does not read rs1)
 * @param b rs2 value (ignored when the op does not read rs2)
 * @param imm immediate field
 * @return the result value (register bits)
 */
std::uint64_t evalScalarOp(Opcode op, std::uint64_t a, std::uint64_t b,
                           std::int32_t imm);

} // namespace sdv

#endif // SDV_ISA_ALU_HH
