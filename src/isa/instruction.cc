#include "isa/instruction.hh"

#include <sstream>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace sdv {

std::uint64_t
Instruction::encode() const
{
    std::uint64_t w = 0;
    w |= insertBits(static_cast<std::uint64_t>(op), 0, 8);
    w |= insertBits(rd, 8, 6);
    w |= insertBits(rs1, 14, 6);
    w |= insertBits(rs2, 20, 6);
    w |= insertBits(static_cast<std::uint32_t>(imm), 32, 32);
    return w;
}

bool
Instruction::decode(std::uint64_t word, Instruction &out)
{
    const auto opByte = bits(word, 0, 8);
    if (opByte >= numOpcodes)
        return false;
    out.op = static_cast<Opcode>(opByte);
    out.rd = static_cast<RegId>(bits(word, 8, 6));
    out.rs1 = static_cast<RegId>(bits(word, 14, 6));
    out.rs2 = static_cast<RegId>(bits(word, 20, 6));
    out.imm = static_cast<std::int32_t>(bits(word, 32, 32));
    return true;
}

std::string
regName(RegId reg)
{
    std::ostringstream os;
    if (reg < firstFpReg)
        os << "r" << unsigned(reg);
    else
        os << "f" << unsigned(reg - firstFpReg);
    return os.str();
}

bool
parseRegName(const std::string &text, RegId &out)
{
    if (text.size() < 2 || (text[0] != 'r' && text[0] != 'f'))
        return false;
    unsigned idx = 0;
    for (size_t i = 1; i < text.size(); ++i) {
        if (text[i] < '0' || text[i] > '9')
            return false;
        idx = idx * 10 + unsigned(text[i] - '0');
    }
    if (idx > 31)
        return false;
    out = static_cast<RegId>(text[0] == 'f' ? idx + firstFpReg : idx);
    return true;
}

std::string
Instruction::disasm() const
{
    const OpInfo &i = info();
    std::ostringstream os;
    os << i.mnemonic;
    // lower-case is handled by mnemonics being stored upper-case; emit
    // them lower for readability
    std::string text = os.str();
    for (auto &c : text)
        c = char(std::tolower(static_cast<unsigned char>(c)));

    std::ostringstream out;
    out << text;

    auto sep = [first = true]() mutable {
        if (first) {
            first = false;
            return std::string(" ");
        }
        return std::string(", ");
    };

    if (isLoad()) {
        out << sep() << regName(rd) << ", " << imm << "(" << regName(rs1)
            << ")";
        return out.str();
    }
    if (isStore()) {
        out << sep() << regName(rs2) << ", " << imm << "(" << regName(rs1)
            << ")";
        return out.str();
    }
    if (i.writesRd)
        out << sep() << regName(rd);
    if (i.readsRs1)
        out << sep() << regName(rs1);
    if (i.readsRs2)
        out << sep() << regName(rs2);
    if (i.hasImm)
        out << sep() << imm;
    return out.str();
}

} // namespace sdv
