#include "isa/opcodes.hh"

#include <array>
#include <cctype>
#include <string>
#include <unordered_map>

#include "common/log.hh"

namespace sdv {

namespace {

constexpr std::array<OpInfo, numOpcodes> opTable = {{
#define SDV_INFO(name, cls, wrd, rs1, rs2, imm, mem, br, jmp, vec)           \
    OpInfo{#name, OpClass::cls, wrd != 0, rs1 != 0, rs2 != 0, imm != 0,      \
           mem, br != 0, jmp != 0, vec != 0},
    SDV_FOR_EACH_OPCODE(SDV_INFO)
#undef SDV_INFO
}};

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

const std::unordered_map<std::string, Opcode> &
mnemonicMap()
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (unsigned i = 0; i < numOpcodes; ++i) {
            const auto op = static_cast<Opcode>(i);
            m.emplace(toLower(opTable[i].mnemonic), op);
        }
        return m;
    }();
    return map;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    sdv_assert(idx < numOpcodes, "bad opcode ", idx);
    return opTable[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

bool
parseMnemonic(std::string_view text, Opcode &out)
{
    const auto &map = mnemonicMap();
    auto it = map.find(toLower(text));
    if (it == map.end())
        return false;
    out = it->second;
    return true;
}

unsigned
opClassLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMult:
        return 2;
      case OpClass::IntDiv:
        return 12;
      case OpClass::FpAdd:
        return 2;
      case OpClass::FpMult:
        return 4;
      case OpClass::FpDiv:
        return 14;
      case OpClass::MemRead:
        return 1; // address generation; cache latency added separately
      case OpClass::MemWrite:
        return 1;
      case OpClass::Control:
        return 1;
      case OpClass::None:
        return 1;
    }
    panic("unreachable op class");
}

} // namespace sdv
