#include "isa/opcodes.hh"

#include <array>
#include <cctype>
#include <string>
#include <unordered_map>

#include "common/log.hh"

namespace sdv {

namespace {

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

const std::unordered_map<std::string, Opcode> &
mnemonicMap()
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (unsigned i = 0; i < numOpcodes; ++i) {
            const auto op = static_cast<Opcode>(i);
            m.emplace(toLower(opInfo(op).mnemonic), op);
        }
        return m;
    }();
    return map;
}

} // namespace

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

bool
parseMnemonic(std::string_view text, Opcode &out)
{
    const auto &map = mnemonicMap();
    auto it = map.find(toLower(text));
    if (it == map.end())
        return false;
    out = it->second;
    return true;
}

} // namespace sdv
