#!/usr/bin/env python3
"""Compare a fresh bench --json output against the checked-in baseline.

Three schemas are understood:

* harness schema (bench_headline_claims and friends): a JSON array of
  records {bench, workload, config, cycles, insts, ipc, wall_seconds,
  sim_mips}. Simulated statistics (cycles, insts, ipc) are exact model
  outputs, so any drift is an error; wall_seconds is host-dependent, so
  a >10% regression only warns.

* sweep-driver schema (sdv_sweep --json): an object {"sweep": {...},
  "results": [...]}; the results records carry the same simulated
  statistics plus a commit_hash (compared exactly) and no per-record
  wall time — the total lives in the "sweep" metadata (warn-only).
  Interval-sampled sweeps (sdv_sweep --samples) add "footprint",
  "samples" and "measure_insts" to the metadata and a per-record
  "samples" count: the sampled estimates are deterministic, so they
  still compare exactly, but the measurement parameters must match —
  a baseline captured under one sampling setup is meaningless against
  results from another, so any metadata mismatch is an error.

* google-benchmark schema (bench_micro_components): an object with a
  "benchmarks" array. Timings are host-dependent; the benchmark set
  must match and a >10% real_time regression warns.

Exit status: 1 on stat drift or schema mismatch, 0 otherwise (warnings
included). --update rewrites the baseline file with the new results
after a successful (or warn-only) comparison, keeping the checked-in
perf trajectory current.
"""

import argparse
import json
import shutil
import sys

TIME_REGRESSION_WARN = 0.10
IPC_TOLERANCE = 5e-5  # ipc is serialized with 4 decimals


def load(path):
    with open(path) as f:
        return json.load(f)


def schema_of(doc):
    """Classify a loaded document: harness / sweep / google-benchmark."""
    if isinstance(doc, list):
        return "harness"
    if isinstance(doc, dict) and "results" in doc:
        return "sweep"
    return "google-benchmark"


def sweep_records(doc):
    return doc["results"]


def sweep_wall(doc):
    return doc.get("sweep", {}).get("wall_seconds", 0.0)


def compare_records(base, new, base_wall, new_wall):
    """Shared record comparison for the harness and sweep schemas.

    The record key is (bench, workload, config) so one sweep file can
    hold several figures' grids; simulated statistics (cycles, insts,
    ipc and, when present, the committed-stream hash) must match
    exactly, wall time warns.
    """
    errors, warnings = [], []

    def key(r):
        return (r.get("bench", ""), r["workload"], r["config"])

    bkey = {key(r): r for r in base}
    nkey = {key(r): r for r in new}

    for k in sorted(bkey):
        if k not in nkey:
            errors.append(f"run {k} missing from new results")
            continue
        b, n = bkey[k], nkey[k]
        for stat in ("cycles", "insts"):
            if b[stat] != n[stat]:
                errors.append(
                    f"{k}: {stat} drifted {b[stat]} -> {n[stat]}")
        if abs(b["ipc"] - n["ipc"]) > IPC_TOLERANCE:
            errors.append(f"{k}: ipc drifted {b['ipc']} -> {n['ipc']}")
        if "commit_hash" in b and "commit_hash" in n and \
                b["commit_hash"] != n["commit_hash"]:
            errors.append(
                f"{k}: commit stream drifted "
                f"{b['commit_hash']} -> {n['commit_hash']}")
        if b.get("samples", 0) != n.get("samples", 0):
            errors.append(
                f"{k}: sample count changed "
                f"{b.get('samples', 0)} -> {n.get('samples', 0)}")
    for k in sorted(nkey):
        if k not in bkey:
            warnings.append(f"new run {k} has no baseline yet")

    if base_wall > 0 and new_wall > base_wall * (1 + TIME_REGRESSION_WARN):
        warnings.append(
            f"total wall time regressed >10%: "
            f"{base_wall:.3f}s -> {new_wall:.3f}s")
    return errors, warnings


def compare_harness(base, new):
    return compare_records(
        base, new,
        sum(r.get("wall_seconds", 0.0) for r in base),
        sum(r.get("wall_seconds", 0.0) for r in new))


SWEEP_META_KEYS = ("plan", "scale", "event_skip", "checkpoint",
                   "warmup_insts", "footprint", "samples",
                   "measure_insts")


def compare_sweep(base, new):
    errors = []
    bmeta, nmeta = base.get("sweep", {}), new.get("sweep", {})
    for key in SWEEP_META_KEYS:
        if bmeta.get(key) != nmeta.get(key):
            errors.append(
                f"sweep metadata '{key}' changed "
                f"{bmeta.get(key)!r} -> {nmeta.get(key)!r}")
    rec_errors, warnings = compare_records(
        sweep_records(base), sweep_records(new),
        sweep_wall(base), sweep_wall(new))
    return errors + rec_errors, warnings


def compare_google_benchmark(base, new):
    errors, warnings = [], []
    bbm = {b["name"]: b for b in base.get("benchmarks", [])}
    nbm = {b["name"]: b for b in new.get("benchmarks", [])}

    for name in sorted(bbm):
        if name not in nbm:
            errors.append(f"benchmark {name} missing from new results")
            continue
        b, n = bbm[name], nbm[name]
        if b.get("time_unit") != n.get("time_unit"):
            errors.append(f"{name}: time unit changed")
            continue
        bt, nt = b.get("real_time", 0.0), n.get("real_time", 0.0)
        if bt > 0 and nt > bt * (1 + TIME_REGRESSION_WARN):
            warnings.append(
                f"{name}: real_time regressed >10%: "
                f"{bt:.3f}{b['time_unit']} -> {nt:.3f}{n['time_unit']}")
    for name in sorted(nbm):
        if name not in bbm:
            warnings.append(f"new benchmark {name} has no baseline yet")
    return errors, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in BENCH_*.json")
    ap.add_argument("new", help="freshly produced --json output")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline with the new results "
                         "when no stats drifted")
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)
    if schema_of(base) != schema_of(new):
        print("error: baseline and new results use different schemas")
        return 1

    schema = schema_of(base)
    if schema == "harness":
        errors, warnings = compare_harness(base, new)
    elif schema == "sweep":
        errors, warnings = compare_sweep(base, new)
    else:
        errors, warnings = compare_google_benchmark(base, new)

    for w in warnings:
        print(f"warning: {w}")
    for e in errors:
        print(f"error: {e}")
    if errors:
        print(f"{args.baseline}: FAILED ({len(errors)} stat drift(s))")
        return 1

    print(f"{args.baseline}: OK "
          f"({len(warnings)} warning(s))")
    if args.update:
        shutil.copyfile(args.new, args.baseline)
        print(f"{args.baseline}: updated from {args.new}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
