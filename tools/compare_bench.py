#!/usr/bin/env python3
"""Compare a fresh bench --json output against the checked-in baseline.

Three schemas are understood:

* harness schema (bench_headline_claims and friends): a JSON array of
  records {bench, workload, config, cycles, insts, ipc, wall_seconds,
  sim_mips}. Simulated statistics (cycles, insts, ipc) are exact model
  outputs, so any drift is an error; wall_seconds is host-dependent, so
  a >10% regression only warns.

* sweep-driver schema (sdv_sweep --json): an object {"sweep": {...},
  "results": [...]}; the results records carry the same simulated
  statistics plus a commit_hash (compared exactly) and no per-record
  wall time — the total lives in the "sweep" metadata (warn-only).
  Interval-sampled sweeps (sdv_sweep --samples) add "footprint",
  "samples" and "measure_insts" to the metadata and a per-record
  "samples" count: the sampled estimates are deterministic, so they
  still compare exactly, but the measurement parameters must match —
  a baseline captured under one sampling setup is meaningless against
  results from another, so any metadata mismatch is an error.

* google-benchmark schema (bench_micro_components): an object with a
  "benchmarks" array. Timings are host-dependent; the benchmark set
  must match and a >10% real_time regression warns.

Harness and sweep records may carry a "val_mismatches" counter (the
engine's validation value self-check): any non-zero value in the NEW
results is an error regardless of the baseline — a mismatch means
speculative values diverged from architectural ones.

Observability fields are optional riders (like "timed_out"/"retried"):
records produced under --telemetry carry a "telemetry" interval array,
and sweep documents produced under --metrics-summary carry a top-level
"exec_metrics" object. Both are tolerated on either side and excluded
from comparison (telemetry values still go through the non-finite
scan). --forbid-obs turns their *presence in the new results* into an
error — the CI guard that default-mode regenerations stay observability
-free and byte-comparable to the checked-in baselines.

Both record schemas also print a per-plan wall-time delta summary
table (aggregated by the record's "bench" field) so the perf
trajectory is visible in CI logs, not just the warn-on-regression
threshold.

Exit status: 1 on stat drift or schema mismatch, 0 otherwise (warnings
included). --update rewrites the baseline file with the new results
after a successful (or warn-only) comparison, keeping the checked-in
perf trajectory current.
"""

import argparse
import json
import shutil
import sys

TIME_REGRESSION_WARN = 0.10
IPC_TOLERANCE = 5e-5  # ipc is serialized with 4 decimals


def load(path):
    with open(path) as f:
        return json.load(f)


def schema_of(doc):
    """Classify a loaded document: harness / sweep / google-benchmark."""
    if isinstance(doc, list):
        return "harness"
    if isinstance(doc, dict) and "results" in doc:
        return "sweep"
    return "google-benchmark"


def sweep_records(doc):
    return doc["results"]


def sweep_wall(doc):
    return doc.get("sweep", {}).get("wall_seconds", 0.0)


def wall_summary(base, new, base_total=None, new_total=None):
    """Per-plan wall-time delta table, aggregated by the "bench" field.

    Per-record wall times exist only in the harness schema; sweep
    documents carry one total, passed via base_total/new_total."""
    plans = {}
    for r in base:
        k = r.get("bench", "")
        plans.setdefault(k, [0.0, 0.0])[0] += r.get("wall_seconds", 0.0)
    for r in new:
        k = r.get("bench", "")
        plans.setdefault(k, [0.0, 0.0])[1] += r.get("wall_seconds", 0.0)
    if base_total is not None:
        only = {k.split(":")[-1] for k in plans}
        label = "total(%s)" % "+".join(sorted(only)) if only else "total"
        plans = {label: [base_total, new_total]}
    rows = [(k, b, n) for k, (b, n) in sorted(plans.items())
            if b > 0 or n > 0]
    if not rows:
        return
    print(f"  {'plan':<28} {'base':>9} {'new':>9} {'delta':>8}")
    for k, b, n in rows:
        delta = "n/a" if b <= 0 else f"{100.0 * (n - b) / b:+.1f}%"
        print(f"  {k:<28} {b:>8.3f}s {n:>8.3f}s {delta:>8}")


REQUIRED_STAT_FIELDS = ("workload", "config", "cycles", "insts", "ipc")


def check_stat_fields(new):
    """Hard-fail on missing or non-finite simulated statistics.

    A record that lost a stat field (schema regression) or carries a
    NaN/inf (bad aggregation, divide-by-zero) would otherwise slip
    through the exact-match comparison whenever the baseline has the
    same defect; validate the NEW results unconditionally.
    """
    import math

    errors = []

    def scan(value, path):
        if isinstance(value, float) and not math.isfinite(value):
            errors.append(f"{path}: non-finite stat value {value!r}")
        elif isinstance(value, dict):
            for k, v in value.items():
                scan(v, f"{path}.{k}")
        elif isinstance(value, list):
            for i, v in enumerate(value):
                scan(v, f"{path}[{i}]")

    for r in new:
        ident = (f"({r.get('bench', '')}, {r.get('workload', '?')}, "
                 f"{r.get('config', '?')})")
        for field in REQUIRED_STAT_FIELDS:
            if field not in r:
                errors.append(f"{ident}: stat field '{field}' missing")
        scan(r, ident)
    return errors


def check_no_obs(new_records, new_doc=None):
    """--forbid-obs: observability riders in the new results are errors.

    Default-mode regenerations must stay byte-comparable to the
    checked-in baselines, which predate the observability layer; a
    "telemetry" array or "exec_metrics" object appearing without the
    flags that request them means a default changed somewhere.
    """
    errors = []
    for r in new_records:
        if "telemetry" in r:
            errors.append(
                f"({r.get('bench', '')}, {r.get('workload', '')}, "
                f"{r.get('config', '')}): unexpected 'telemetry' field "
                f"(--forbid-obs)")
    if isinstance(new_doc, dict) and "exec_metrics" in new_doc:
        errors.append(
            "unexpected top-level 'exec_metrics' object (--forbid-obs)")
    return errors


def check_val_mismatches(new):
    """Non-zero validation self-check counters are always errors."""
    errors = []
    for r in new:
        if r.get("val_mismatches", 0) != 0:
            errors.append(
                f"({r.get('bench', '')}, {r.get('workload', '')}, "
                f"{r.get('config', '')}): validationValueMismatches = "
                f"{r['val_mismatches']} (speculative values diverged)")
    return errors


def compare_records(base, new, base_wall, new_wall):
    """Shared record comparison for the harness and sweep schemas.

    The record key is (bench, workload, config) so one sweep file can
    hold several figures' grids; simulated statistics (cycles, insts,
    ipc and, when present, the committed-stream hash) must match
    exactly, wall time warns.
    """
    errors, warnings = [], []

    def key(r):
        return (r.get("bench", ""), r["workload"], r["config"])

    bkey = {key(r): r for r in base}
    nkey = {key(r): r for r in new}

    for k in sorted(bkey):
        if k not in nkey:
            errors.append(f"run {k} missing from new results")
            continue
        b, n = bkey[k], nkey[k]
        # .get(): a record that lost a stat field must not crash the
        # comparison — check_stat_fields() reports the absence itself.
        for stat in ("cycles", "insts"):
            if b.get(stat) != n.get(stat):
                errors.append(
                    f"{k}: {stat} drifted "
                    f"{b.get(stat)} -> {n.get(stat)}")
        if abs(b.get("ipc", 0.0) - n.get("ipc", 0.0)) > IPC_TOLERANCE:
            errors.append(
                f"{k}: ipc drifted {b.get('ipc')} -> {n.get('ipc')}")
        if "commit_hash" in b and "commit_hash" in n and \
                b["commit_hash"] != n["commit_hash"]:
            errors.append(
                f"{k}: commit stream drifted "
                f"{b['commit_hash']} -> {n['commit_hash']}")
        if b.get("samples", 0) != n.get("samples", 0):
            errors.append(
                f"{k}: sample count changed "
                f"{b.get('samples', 0)} -> {n.get('samples', 0)}")
    for k in sorted(nkey):
        if k not in bkey:
            warnings.append(f"new run {k} has no baseline yet")

    if base_wall > 0 and new_wall > base_wall * (1 + TIME_REGRESSION_WARN):
        warnings.append(
            f"total wall time regressed >10%: "
            f"{base_wall:.3f}s -> {new_wall:.3f}s")
    return errors, warnings


def compare_harness(base, new, forbid_obs=False):
    errors, warnings = compare_records(
        base, new,
        sum(r.get("wall_seconds", 0.0) for r in base),
        sum(r.get("wall_seconds", 0.0) for r in new))
    errors += check_val_mismatches(new)
    errors += check_stat_fields(new)
    if forbid_obs:
        errors += check_no_obs(new)
    wall_summary(base, new)
    return errors, warnings


SWEEP_META_KEYS = ("plan", "scale", "event_skip", "checkpoint",
                   "warmup_insts", "footprint", "samples",
                   "measure_insts")


def compare_sweep(base, new, forbid_obs=False):
    errors = []
    bmeta, nmeta = base.get("sweep", {}), new.get("sweep", {})
    for key in SWEEP_META_KEYS:
        if bmeta.get(key) != nmeta.get(key):
            errors.append(
                f"sweep metadata '{key}' changed "
                f"{bmeta.get(key)!r} -> {nmeta.get(key)!r}")
    rec_errors, warnings = compare_records(
        sweep_records(base), sweep_records(new),
        sweep_wall(base), sweep_wall(new))
    rec_errors += check_val_mismatches(sweep_records(new))
    rec_errors += check_stat_fields(sweep_records(new))
    if forbid_obs:
        rec_errors += check_no_obs(sweep_records(new), new)
    wall_summary(sweep_records(base), sweep_records(new),
                 sweep_wall(base), sweep_wall(new))
    return errors + rec_errors, warnings


def compare_google_benchmark(base, new):
    errors, warnings = [], []
    bbm = {b["name"]: b for b in base.get("benchmarks", [])}
    nbm = {b["name"]: b for b in new.get("benchmarks", [])}

    for name in sorted(bbm):
        if name not in nbm:
            errors.append(f"benchmark {name} missing from new results")
            continue
        b, n = bbm[name], nbm[name]
        if b.get("time_unit") != n.get("time_unit"):
            errors.append(f"{name}: time unit changed")
            continue
        bt, nt = b.get("real_time", 0.0), n.get("real_time", 0.0)
        if bt > 0 and nt > bt * (1 + TIME_REGRESSION_WARN):
            warnings.append(
                f"{name}: real_time regressed >10%: "
                f"{bt:.3f}{b['time_unit']} -> {nt:.3f}{n['time_unit']}")
    for name in sorted(nbm):
        if name not in bbm:
            warnings.append(f"new benchmark {name} has no baseline yet")
    return errors, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in BENCH_*.json")
    ap.add_argument("new", help="freshly produced --json output")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline with the new results "
                         "when no stats drifted")
    ap.add_argument("--forbid-obs", action="store_true",
                    help="error if the new results carry observability "
                         "fields (telemetry/exec_metrics): guards that "
                         "default-mode output stays baseline-shaped")
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)
    if schema_of(base) != schema_of(new):
        print("error: baseline and new results use different schemas")
        return 1

    schema = schema_of(base)
    if schema == "harness":
        errors, warnings = compare_harness(base, new, args.forbid_obs)
    elif schema == "sweep":
        errors, warnings = compare_sweep(base, new, args.forbid_obs)
    else:
        errors, warnings = compare_google_benchmark(base, new)

    for w in warnings:
        print(f"warning: {w}")
    for e in errors:
        print(f"error: {e}")
    if errors:
        print(f"{args.baseline}: FAILED ({len(errors)} stat drift(s))")
        return 1

    print(f"{args.baseline}: OK "
          f"({len(warnings)} warning(s))")
    if args.update:
        shutil.copyfile(args.new, args.baseline)
        print(f"{args.baseline}: updated from {args.new}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
