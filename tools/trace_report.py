#!/usr/bin/env python3
"""Summarize a flight-recorder trace produced by --trace-events.

The input is the Chrome/Perfetto trace-event JSON written by the bench
harness or sdv_sweep: a {"traceEvents": [...]} document whose events
are instants (ph "i") or vreg-lifetime async pairs (ph "b"/"e"), one
pid per recorded run, timestamps in simulated cycles. otherData carries
a per-source summary (recorded/dropped counts and the chain-lifetime
histogram sampled at every vreg release).

Default report: per-source and overall event counts by name, the
chain-lifetime table (4x-log cycle buckets), and — with --intervals —
per-interval event-rate columns suitable for plotting.

Modes:
  --validate            schema check (CI smoke); exit 1 on any problem
  --intervals N         append N-bucket event-rate plot data (TSV)
  --check-telemetry F   independent mode: F is a bench/sweep --json
                        file; verify each record's "telemetry" interval
                        series is contiguous and, for runs starting at
                        cycle 0, that interval sums equal the record's
                        end-of-run aggregates exactly
"""

import argparse
import json
import sys
from collections import Counter, defaultdict

# Same 4x-log bucket bounds as VecRegFateStats::lifetimeHist and
# TraceRecorder::chainLifetimeHist: bucket 0 is [0,8), then each bucket
# spans 4x, bucket 7 is open-ended.
LIFETIME_BOUNDS = [0, 8, 32, 128, 512, 2048, 8192, 32768]


def load(path):
    with open(path) as f:
        return json.load(f)


def lifetime_label(b):
    if b + 1 < len(LIFETIME_BOUNDS):
        return f"[{LIFETIME_BOUNDS[b]},{LIFETIME_BOUNDS[b + 1]})"
    return f">={LIFETIME_BOUNDS[b]}"


def split_events(doc):
    """Partition traceEvents into metadata and data events."""
    meta, data = [], []
    for ev in doc.get("traceEvents", []):
        (meta if ev.get("ph") == "M" else data).append(ev)
    return meta, data


def source_labels(doc):
    """pid -> process_name, from the metadata records."""
    labels = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            labels[ev.get("pid")] = ev.get("args", {}).get("name", "?")
    return labels


def validate(doc):
    """Schema check; returns a list of error strings."""
    errors = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["not a trace-event document (no 'traceEvents' key)"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]

    labels = source_labels(doc)
    last_ts = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("i", "b", "e", "M"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        for field in ("name", "pid") + (() if ph == "M" else ("ts", "cat")):
            if field not in ev:
                errors.append(f"{where}: missing '{field}'")
        if ph == "M":
            continue
        if ev.get("pid") not in labels:
            errors.append(f"{where}: pid {ev.get('pid')} has no "
                          f"process_name metadata")
        if ph in ("b", "e") and "id" not in ev:
            errors.append(f"{where}: async event missing 'id'")
        if ev.get("cat") not in ("sdv", "mem", "core"):
            errors.append(f"{where}: unexpected cat {ev.get('cat')!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        elif ts < last_ts.get(ev.get("pid"), 0):
            # Events are recorded in simulation order per source; a
            # backwards timestamp means the recorder cycle went stale.
            errors.append(f"{where}: ts went backwards within pid "
                          f"{ev.get('pid')} ({last_ts[ev['pid']]} -> {ts})")
        else:
            last_ts[ev.get("pid")] = ts

    sources = doc.get("otherData", {}).get("sources")
    if not isinstance(sources, list):
        errors.append("otherData.sources missing")
    else:
        if len(sources) != len(labels):
            errors.append(f"otherData.sources has {len(sources)} entries "
                          f"but the trace has {len(labels)} pids")
        for i, s in enumerate(sources):
            for field in ("label", "recorded", "dropped",
                          "chain_lifetime_hist"):
                if field not in s:
                    errors.append(f"otherData.sources[{i}]: "
                                  f"missing '{field}'")
    return errors


def report(doc, path):
    labels = source_labels(doc)
    _, data = split_events(doc)
    print(f"{path}: {len(data)} events, {len(labels)} source(s)")

    by_name = Counter(ev.get("name", "?") for ev in data)
    per_source = defaultdict(Counter)
    for ev in data:
        per_source[ev.get("pid")][ev.get("name", "?")] += 1

    print("\nevent counts (all sources):")
    for name, n in by_name.most_common():
        print(f"  {name:<16} {n:>12}")

    sources = doc.get("otherData", {}).get("sources", [])
    if sources:
        print(f"\n{'source':<32} {'recorded':>10} {'kept':>10} "
              f"{'dropped':>10}")
        for pid, s in enumerate(sources):
            kept = sum(per_source[pid].values())
            print(f"  {s.get('label', '?'):<30} {s.get('recorded', 0):>10} "
                  f"{kept:>10} {s.get('dropped', 0):>10}")

        merged = None
        for s in sources:
            hist = s.get("chain_lifetime_hist", {})
            buckets = hist.get("buckets", [])
            if merged is None:
                merged = [0] * len(buckets)
            for b, count in enumerate(buckets):
                merged[b] += count
        if merged and sum(merged):
            total = sum(merged)
            print("\nchain lifetime (cycles from vreg alloc to release):")
            for b, count in enumerate(merged):
                pct = 100.0 * count / total
                print(f"  {lifetime_label(b):<16} {count:>10}  "
                      f"{pct:5.1f}%  {'#' * int(pct / 2)}")


def interval_data(doc, n_intervals):
    """Per-interval event-rate columns (TSV) for plotting."""
    _, data = split_events(doc)
    if not data:
        print("no events to bucket")
        return
    span = max(ev.get("ts", 0) for ev in data) + 1
    width = max(1, (span + n_intervals - 1) // n_intervals)
    cats = ("sdv", "mem", "core")
    rows = defaultdict(lambda: dict.fromkeys(cats, 0))
    for ev in data:
        rows[int(ev.get("ts", 0)) // width][ev.get("cat", "?")] += 1
    print(f"\n# interval plot data ({width} cycles per bucket)")
    print("cycle_start\tsdv\tmem\tcore\ttotal")
    for b in range(max(rows) + 1):
        r = rows[b]
        total = sum(r.get(c, 0) for c in cats)
        print(f"{b * width}\t{r['sdv']}\t{r['mem']}\t{r['core']}\t{total}")


def telemetry_records(doc):
    """(identity, record) pairs from either --json schema."""
    if isinstance(doc, list):
        records = doc
    elif isinstance(doc, dict) and "results" in doc:
        records = doc["results"]
    else:
        return []
    return [(f"({r.get('workload', '?')}, {r.get('config', '?')})", r)
            for r in records]


def check_telemetry(doc):
    """Validate every "telemetry" series in a bench/sweep JSON file.

    Intervals must tile the sampled cycle range with no gaps or
    overlaps. When the series starts at cycle 0 the run had no warmup
    or checkpoint prefix, so the per-interval sums must reproduce the
    end-of-run aggregates exactly — the property the interval sampler
    guarantees by flushing the partial final interval.
    """
    errors = []
    checked = 0
    for ident, r in telemetry_records(doc):
        samples = r.get("telemetry")
        if samples is None:
            continue
        checked += 1
        if not samples:
            errors.append(f"{ident}: empty telemetry array")
            continue
        for i, s in enumerate(samples):
            if s["end_cycle"] - s["start_cycle"] != s["cycles"]:
                errors.append(f"{ident}: sample {i} cycle span mismatch")
            if i and s["start_cycle"] != samples[i - 1]["end_cycle"]:
                errors.append(
                    f"{ident}: gap between samples {i - 1} and {i} "
                    f"({samples[i - 1]['end_cycle']} -> "
                    f"{s['start_cycle']})")
        if samples[0]["start_cycle"] == 0:
            for field, agg in (("cycles", r.get("cycles")),
                               ("insts", r.get("insts"))):
                total = sum(s[field] for s in samples)
                if agg is not None and total != agg:
                    errors.append(
                        f"{ident}: telemetry {field} sum {total} != "
                        f"end-of-run aggregate {agg}")
    if checked == 0:
        errors.append("no record carries a 'telemetry' array "
                      "(was --telemetry given?)")
    return errors, checked


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace-event JSON from --trace-events "
                                  "(or a --json results file with "
                                  "--check-telemetry)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the trace and exit")
    ap.add_argument("--intervals", type=int, metavar="N",
                    help="append N-bucket event-rate plot data")
    ap.add_argument("--check-telemetry", action="store_true",
                    help="treat the input as a bench/sweep --json file "
                         "and verify its telemetry interval series")
    args = ap.parse_args()

    doc = load(args.trace)

    if args.check_telemetry:
        errors, checked = check_telemetry(doc)
        for e in errors:
            print(f"error: {e}")
        if errors:
            print(f"{args.trace}: telemetry FAILED ({len(errors)} error(s))")
            return 1
        print(f"{args.trace}: telemetry OK ({checked} record(s))")
        return 0

    if args.validate:
        errors = validate(doc)
        for e in errors:
            print(f"error: {e}")
        if errors:
            print(f"{args.trace}: FAILED ({len(errors)} error(s))")
            return 1
        _, data = split_events(doc)
        print(f"{args.trace}: OK ({len(data)} events, "
              f"{len(source_labels(doc))} source(s))")
        return 0

    report(doc, args.trace)
    if args.intervals:
        interval_data(doc, args.intervals)
    return 0


if __name__ == "__main__":
    sys.exit(main())
