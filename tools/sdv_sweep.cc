/**
 * @file
 * sdv_sweep: parallel sweep driver. Regenerates any figure's
 * (workload x configuration) grid from the plan registry, optionally
 * forking every configuration from a warmed checkpoint, and emits
 * ordered JSON that tools/compare_bench.py can diff against the
 * checked-in baselines.
 *
 *   sdv_sweep --list
 *   sdv_sweep --plan fig11 --jobs 4 --json fig11.json
 *   sdv_sweep --plan fig11 --checkpoint --warmup 10000 --jobs 4
 *   sdv_sweep --plan all --quick --jobs 2
 *   sdv_sweep --fuzz-speculation --fuzz-samples 8 --jobs 4
 *   sdv_sweep --fuzz-replay fuzz_repro.json
 *
 * Service mode (docs/sweep.md, "The sweep service"): a long-lived
 * daemon owns a pool of worker processes and a shared snapshot cache;
 * clients submit plans over the socket and stream back the same
 * plan-ordered records the in-process executor would have produced.
 *
 *   sdv_sweep --serve --socket /tmp/sdv.sock --workers 4
 *   sdv_sweep --plan fig11 --connect /tmp/sdv.sock --json fig11.json
 *   sdv_sweep --loadtest 1000 --loadtest-concurrency 4 \
 *             --plan fig11 --samples 3 --connect /tmp/sdv.sock
 *   sdv_sweep --shutdown --connect /tmp/sdv.sock
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/log.hh"
#include "obs/hooks.hh"
#include "sweep/chaos.hh"
#include "sweep/client.hh"
#include "sweep/executor.hh"
#include "sweep/fuzz.hh"
#include "sweep/plan.hh"
#include "sweep/server.hh"
#include "sweep/worker.hh"

using namespace sdv;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --plan NAME [options]\n"
        "       %s --list\n"
        "options:\n"
        "  --plan NAME       plan to run (see --list; 'all' runs "
        "everything)\n"
        "  --list            list registered plans and exit\n"
        "  --jobs N          worker threads (default 1; 0 = auto: "
        "hardware threads minus one)\n"
        "  --scale N         workload scale factor (default 1, >= 1)\n"
        "  --footprint M     working-set regime: base, l2 or mem "
        "(default base)\n"
        "  --quick           first two INT + first FP workloads only\n"
        "  --no-event-skip   tick every cycle (cross-check mode)\n"
        "  --no-trace        interpreter dispatch instead of the "
        "compiled trace (cross-check mode)\n"
        "  --checkpoint      warm each workload once, fork every "
        "config from the snapshot\n"
        "  --warmup N        checkpoint/sampling warm-up length in "
        "instructions (default 10000)\n"
        "  --samples N       interval sampling: estimate every job "
        "from N snapshot forks\n"
        "  --sample-insts M  instructions measured per sample "
        "(default 20000)\n"
        "  --sample-period P capture period in insts (default: spread "
        "evenly over the run)\n"
        "  --checkpoint-dir D  persist/reuse snapshots in D\n"
        "  --quiesce-interval N  context-switch the transient vector\n"
        "                    state every N fetched instructions\n"
        "                    (steady-state experiments; full runs "
        "only)\n"
        "  --eager-chain     spawn load-chain successors one "
        "incarnation early\n"
        "  --verify          run functional verification per job\n"
        "  --seed N          base of the per-job RNG stream seeds "
        "(recorded per job in the JSON; today's workloads are fully "
        "deterministic, so results do not change)\n"
        "  --job-timeout S   wall-clock watchdog: abort any job "
        "running longer than S seconds, retry it once serially\n"
        "  --fault-elem-ppm N  inject vector-element bit flips at N "
        "per million landings (adversarial robustness runs)\n"
        "  --fault-vrmt-ppm N  corrupt VRMT installs at N per million\n"
        "  --json PATH       write machine-readable results\n"
        "observability (docs/observability.md):\n"
        "  --trace-events F  record per-job flight-recorder traces and "
        "write Chrome/Perfetto trace-event JSON to F\n"
        "  --trace-filter C  comma list of event categories to record: "
        "sdv, mem, core (default all)\n"
        "  --trace-last N    bound each job's trace to the last N "
        "events (ring buffer; default unbounded)\n"
        "  --telemetry N     sample interval telemetry every N cycles, "
        "emitted per record in the JSON\n"
        "  --metrics-summary print executor metrics (queue wait, run "
        "time, utilization, checkpoint traffic) and record them in the "
        "JSON as \"exec_metrics\"\n"
        "service mode (docs/sweep.md):\n"
        "  --serve           run as the sweep daemon (needs --socket)\n"
        "  --socket PATH     Unix socket the daemon listens on\n"
        "  --workers N       daemon worker processes (default 0 = "
        "auto)\n"
        "  --cache-dir D     daemon snapshot-cache directory (default: "
        "<socket>.cache)\n"
        "  --cache-limit-mb N  daemon snapshot-cache disk budget in MB "
        "(LRU eviction; 0 = unbounded)\n"
        "  --hang-timeout-ms N  daemon: SIGKILL a worker silent this "
        "long while holding a unit (default 2000)\n"
        "  --connect PATH    submit --plan to the daemon at PATH "
        "instead of running in-process\n"
        "  --deadline-ms N   fail the request with a structured "
        "deadline error after N ms (0 = none)\n"
        "  --priority N      fair-share weight of this client's units "
        "(default 1)\n"
        "  --retries N       reattempts on connect/transport failures "
        "(jittered exponential backoff)\n"
        "  --backoff-ms N    base retry backoff in ms (default 100; "
        "doubles per attempt)\n"
        "  --shutdown        ask the daemon at --connect to wind down\n"
        "  --loadtest N      submit N copies of --plan through "
        "--connect and report throughput/latency\n"
        "  --loadtest-concurrency C  client connections for --loadtest "
        "(default 4)\n"
        "  --chaos N         run a seeded chaos campaign: N concurrent "
        "copies of --plan with injected worker exits/hangs, corrupted "
        "and truncated frames, slow workers, client disconnects and "
        "deadline victims; asserts byte-exact survivors and balanced "
        "daemon accounting\n"
        "  --chaos-seed S    chaos placement seed (same seed replays "
        "the same campaign; default 1)\n"
        "  --chaos-exit-units N  test hook: the first N units of this "
        "request crash their worker once each\n"
        "fuzzing (instead of --plan):\n"
        "  --fuzz-speculation  run the speculation fuzz campaign: "
        "every workload x N fuzzed samples, each checked against a "
        "no-vectorization divergence oracle; exits non-zero on any "
        "divergence and writes a minimized replayable repro\n"
        "  --fuzz-samples N  fuzzed samples per workload (default 8)\n"
        "  --fuzz-no-faults  fuzz without concurrent fault injection\n"
        "  --fuzz-repro PATH where to write a divergence repro "
        "(default fuzz_repro.json)\n"
        "  --fuzz-replay F   re-run one case from a repro file\n",
        argv0, argv0);
    std::exit(2);
}

/** Print one fuzz case outcome; @return true when it diverged. */
bool
reportFuzzOutcome(const sdv::sweep::FuzzOutcome &o)
{
    std::printf("  %-9s sample %u: %s", o.c.workload.c_str(),
                o.c.sample, o.diverged ? "DIVERGED" : "ok");
    if (o.diverged)
        std::printf(" (%s)", o.reason.c_str());
    if (o.c.fault.armed())
        std::printf(" [faults: %llu injected, %llu detected, "
                    "%llu demotions]",
                    static_cast<unsigned long long>(o.elemFlips +
                                                    o.vrmtFlips),
                    static_cast<unsigned long long>(o.faultsDetected),
                    static_cast<unsigned long long>(o.chainDemotions));
    std::printf("\n");
    return o.diverged;
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage(argv[0]);
    return std::strtoull(argv[++i], nullptr, 0);
}

/** @return this process's own executable path (the daemon spawns it
 *  again as --worker), falling back to argv[0]. */
std::string
selfExecutable(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string plan_name;
    std::string json_path;
    sweep::PlanOptions popt;
    sweep::ExecOptions eopt;
    std::string trace_path;
    bool metrics_summary = false;
    bool list = false;
    bool fuzz = false;
    unsigned fuzz_samples = 8;
    bool fuzz_faults = true;
    std::string fuzz_repro = "fuzz_repro.json";
    std::string fuzz_replay;
    bool serve = false;
    bool worker = false;
    bool shutdown = false;
    std::string socket_path;
    std::string connect_path;
    std::string cache_dir;
    unsigned serve_workers = 0;
    unsigned loadtest = 0;
    unsigned loadtest_concurrency = 4;
    std::uint32_t chaos_exit_units = 0;
    std::uint64_t deadline_ms = 0;
    std::uint32_t client_priority = 1;
    unsigned client_retries = 0;
    unsigned backoff_ms = 100;
    std::uint64_t cache_limit_mb = 0;
    unsigned hang_timeout_ms = 2000;
    unsigned chaos_requests = 0;
    std::uint64_t chaos_seed = 1;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
            plan_name = argv[++i];
        } else if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            eopt.jobs = unsigned(numArg(argc, argv, i));
            if (eopt.jobs == 0) {
                eopt.jobs = sweep::resolveJobs(0);
                eopt.jobsAutoDetected = true;
            }
        } else if (std::strcmp(argv[i], "--serve") == 0) {
            serve = true;
        } else if (std::strcmp(argv[i], "--worker") == 0) {
            worker = true;
        } else if (std::strcmp(argv[i], "--shutdown") == 0) {
            shutdown = true;
        } else if (std::strcmp(argv[i], "--socket") == 0 &&
                   i + 1 < argc) {
            socket_path = argv[++i];
        } else if (std::strcmp(argv[i], "--connect") == 0 &&
                   i + 1 < argc) {
            connect_path = argv[++i];
        } else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                   i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            serve_workers = unsigned(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--loadtest") == 0) {
            loadtest = unsigned(numArg(argc, argv, i));
            if (loadtest == 0)
                fatal("--loadtest needs a request count >= 1");
        } else if (std::strcmp(argv[i], "--loadtest-concurrency") ==
                   0) {
            loadtest_concurrency = unsigned(numArg(argc, argv, i));
            if (loadtest_concurrency == 0)
                fatal("--loadtest-concurrency must be >= 1");
        } else if (std::strcmp(argv[i], "--chaos-exit-units") == 0) {
            chaos_exit_units = std::uint32_t(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
            deadline_ms = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--priority") == 0) {
            client_priority = std::uint32_t(numArg(argc, argv, i));
            if (client_priority == 0)
                fatal("--priority must be >= 1");
        } else if (std::strcmp(argv[i], "--retries") == 0) {
            client_retries = unsigned(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--backoff-ms") == 0) {
            backoff_ms = unsigned(numArg(argc, argv, i));
            if (backoff_ms == 0)
                fatal("--backoff-ms must be >= 1");
        } else if (std::strcmp(argv[i], "--cache-limit-mb") == 0) {
            cache_limit_mb = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--hang-timeout-ms") == 0) {
            hang_timeout_ms = unsigned(numArg(argc, argv, i));
            if (hang_timeout_ms == 0)
                fatal("--hang-timeout-ms must be >= 1");
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos_requests = unsigned(numArg(argc, argv, i));
            if (chaos_requests == 0)
                fatal("--chaos needs a request count >= 1");
        } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
            chaos_seed = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            popt.scale = unsigned(numArg(argc, argv, i));
            if (popt.scale == 0)
                fatal("--scale 0 is invalid: the scale is a dynamic-"
                      "length multiplier and must be >= 1");
        } else if (std::strcmp(argv[i], "--footprint") == 0 &&
                   i + 1 < argc) {
            popt.footprint = parseFootprint(argv[++i]);
        } else if (std::strcmp(argv[i], "--samples") == 0) {
            const std::uint64_t samples = numArg(argc, argv, i);
            if (samples > 100'000) // catches negative-value wraps too
                fatal("--samples ", samples, " is not a sensible "
                      "sample count");
            eopt.sample.samples = unsigned(samples);
        } else if (std::strcmp(argv[i], "--sample-insts") == 0) {
            eopt.sample.measureInsts = numArg(argc, argv, i);
            if (eopt.sample.measureInsts == 0)
                fatal("--sample-insts must be >= 1");
        } else if (std::strcmp(argv[i], "--sample-period") == 0) {
            eopt.sample.periodInsts = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            popt.quick = true;
        } else if (std::strcmp(argv[i], "--no-event-skip") == 0) {
            eopt.eventSkip = false;
        } else if (std::strcmp(argv[i], "--no-trace") == 0) {
            eopt.trace = false;
        } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
            eopt.checkpoint = true;
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            eopt.warmupInsts = numArg(argc, argv, i);
            if (eopt.warmupInsts == 0)
                eopt.warmupInsts = 1;
        } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 &&
                   i + 1 < argc) {
            eopt.checkpointDir = argv[++i];
        } else if (std::strcmp(argv[i], "--quiesce-interval") == 0) {
            eopt.quiesceInterval = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--eager-chain") == 0) {
            eopt.eagerChain = true;
        } else if (std::strcmp(argv[i], "--verify") == 0) {
            eopt.verify = true;
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            popt.baseSeed = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--job-timeout") == 0) {
            eopt.jobTimeout = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--fault-elem-ppm") == 0) {
            eopt.fault.elemFlipPpm =
                unsigned(numArg(argc, argv, i));
            eopt.fault.enabled = true;
        } else if (std::strcmp(argv[i], "--fault-vrmt-ppm") == 0) {
            eopt.fault.vrmtFlipPpm =
                unsigned(numArg(argc, argv, i));
            eopt.fault.enabled = true;
        } else if (std::strcmp(argv[i], "--fuzz-speculation") == 0) {
            fuzz = true;
        } else if (std::strcmp(argv[i], "--fuzz-samples") == 0) {
            fuzz_samples = unsigned(numArg(argc, argv, i));
            if (fuzz_samples == 0 || fuzz_samples > 100'000)
                fatal("--fuzz-samples ", fuzz_samples,
                      " is not a sensible sample count");
        } else if (std::strcmp(argv[i], "--fuzz-no-faults") == 0) {
            fuzz_faults = false;
        } else if (std::strcmp(argv[i], "--fuzz-repro") == 0 &&
                   i + 1 < argc) {
            fuzz_repro = argv[++i];
        } else if (std::strcmp(argv[i], "--fuzz-replay") == 0 &&
                   i + 1 < argc) {
            fuzz_replay = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-events") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
            eopt.traceEvents = true;
        } else if (std::strcmp(argv[i], "--trace-filter") == 0 &&
                   i + 1 < argc) {
            if (!obs::parseCategoryMask(argv[++i],
                                        eopt.traceCategories))
                fatal("--trace-filter: unknown category in '", argv[i],
                      "' (use a comma list of sdv, mem, core)");
        } else if (std::strcmp(argv[i], "--trace-last") == 0) {
            eopt.traceLast = std::size_t(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--telemetry") == 0) {
            eopt.telemetryInterval = numArg(argc, argv, i);
            if (eopt.telemetryInterval == 0)
                fatal("--telemetry needs an interval >= 1 cycle");
        } else if (std::strcmp(argv[i], "--metrics-summary") == 0) {
            metrics_summary = true;
        } else {
            usage(argv[0]);
        }
    }

    if (worker) {
        if (socket_path.empty())
            fatal("--worker needs --socket PATH");
        return sweep::workerMain(socket_path);
    }

    if (serve) {
        if (socket_path.empty())
            fatal("--serve needs --socket PATH");
        sweep::SweepServer::Options sopt;
        sopt.socketPath = socket_path;
        sopt.workers = serve_workers;
        sopt.cacheDir =
            cache_dir.empty() ? socket_path + ".cache" : cache_dir;
        sopt.workerExe = selfExecutable(argv[0]);
        sopt.verbose = true;
        sopt.cacheLimitMb = cache_limit_mb;
        sopt.hangTimeoutMs = hang_timeout_ms;
        sweep::SweepServer server(sopt);
        std::string err;
        if (!server.start(&err))
            fatal("--serve: ", err);
        server.run();
        return 0;
    }

    if (shutdown) {
        if (connect_path.empty())
            fatal("--shutdown needs --connect PATH");
        std::string err;
        if (!sweep::requestShutdown(connect_path, &err))
            fatal("--shutdown: ", err);
        std::printf("shutdown requested on %s\n",
                    connect_path.c_str());
        return 0;
    }

    if (!connect_path.empty() || loadtest || chaos_requests) {
        if (connect_path.empty())
            fatal(loadtest ? "--loadtest needs --connect PATH"
                           : "--chaos needs --connect PATH");
        if (plan_name.empty())
            usage(argv[0]);
        if (!sweep::havePlan(plan_name))
            fatal("unknown plan '", plan_name, "' (try --list)");
        sweep::proto::SweepRequest req;
        req.plan = plan_name;
        req.popt = popt;
        req.eopt = eopt;
        req.deadlineMs = deadline_ms;
        req.chaos.exitUnits = chaos_exit_units;

        if (chaos_requests) {
            sweep::ChaosOptions copt;
            copt.requests = chaos_requests;
            copt.seed = chaos_seed;
            copt.verbose = true;
            // The campaign owns the chaos/deadline fields.
            req.deadlineMs = 0;
            req.chaos = sweep::proto::ChaosSpec{};
            std::printf("chaos campaign: %u requests of plan %s via "
                        "%s, seed %llu\n",
                        copt.requests, plan_name.c_str(),
                        connect_path.c_str(),
                        static_cast<unsigned long long>(copt.seed));
            const sweep::ChaosReport rep =
                sweep::runChaosCampaign(connect_path, req, copt);
            std::fputs(rep.summary().c_str(), stdout);
            if (!json_path.empty() && rep.ok()) {
                std::string arr = "[\n";
                for (std::size_t i = 0; i < rep.records.size(); ++i) {
                    arr += rep.records[i];
                    arr += i + 1 < rep.records.size() ? ",\n" : "\n";
                }
                arr += "]";
                if (!sweep::writeJsonDoc(json_path, plan_name,
                                         popt.scale, popt.footprint,
                                         eopt, arr, 0.0, std::string()))
                    fatal("cannot write ", json_path);
                std::printf("surviving records written to %s\n",
                            json_path.c_str());
            }
            return rep.ok() ? 0 : 1;
        }

        if (loadtest) {
            sweep::LoadTestOptions lopt;
            lopt.requests = loadtest;
            lopt.concurrency = loadtest_concurrency;
            std::printf("load test: %u requests of plan %s over %u "
                        "connection(s) via %s\n",
                        lopt.requests, plan_name.c_str(),
                        lopt.concurrency, connect_path.c_str());
            sweep::LoadTestResult res;
            std::string err;
            const bool ok =
                sweep::runLoadTest(connect_path, req, lopt, res, &err);
            std::printf(
                "completed %u/%u requests in %.2fs: %.1f req/s, "
                "latency p50 %.3fs p95 %.3fs p99 %.3fs\n"
                "snapshot cache: %llu hits, %llu misses "
                "(%.1f%% hit rate)\n",
                res.completed, res.completed + res.failed,
                res.wallSeconds, res.requestsPerSecond, res.p50,
                res.p95, res.p99,
                static_cast<unsigned long long>(res.cacheHits),
                static_cast<unsigned long long>(res.cacheMisses),
                100.0 * res.hitRate());
            if (!ok)
                fatal("load test: ", err);
            return 0;
        }

        const auto t0 = std::chrono::steady_clock::now();
        sweep::ClientOptions copt;
        copt.priority = client_priority;
        copt.retries = client_retries;
        copt.backoffMs = backoff_ms;
        copt.retrySeed = popt.baseSeed ^ std::uint64_t(::getpid());
        sweep::ClientResult res;
        std::string err;
        const sweep::SubmitStatus st = sweep::submitSweepRetry(
            connect_path, req, copt, res, &err);
        switch (st) {
        case sweep::SubmitStatus::Ok:
            break;
        case sweep::SubmitStatus::DaemonAbsent:
            // Clean, actionable verdict: nothing is listening — this
            // is not a daemon malfunction.
            fatal("no sweep daemon at ", connect_path, " (start one "
                  "with --serve --socket ", connect_path,
                  ", or drop --connect to run in-process)");
        case sweep::SubmitStatus::ProtocolMismatch:
            // Present-but-incompatible is a hard error: err already
            // quotes both hello versions.
            fatal("daemon at ", connect_path,
                  " is incompatible: ", err);
        case sweep::SubmitStatus::DeadlineExpired:
            fatal("request deadline expired: ", err);
        default:
            fatal("request failed (", sweep::submitStatusName(st),
                  "): ", err);
        }
        if (res.attempts > 1)
            std::printf("request succeeded after %u attempts\n",
                        res.attempts);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::printf("served %zu records in %.2fs (cache: %llu hits, "
                    "%llu misses)\n",
                    res.records.size(), wall,
                    static_cast<unsigned long long>(res.cacheHits),
                    static_cast<unsigned long long>(res.cacheMisses));
        if (metrics_summary)
            std::printf("exec_metrics: %s\n", res.metricsJson.c_str());
        if (!json_path.empty()) {
            if (!sweep::writeJsonDoc(json_path, plan_name, popt.scale,
                                     popt.footprint, eopt,
                                     res.resultsArray(), wall,
                                     metrics_summary ? res.metricsJson
                                                     : std::string()))
                fatal("cannot write ", json_path);
            std::printf("results written to %s\n", json_path.c_str());
        }
        return 0;
    }

    if (!fuzz_replay.empty()) {
        sweep::FuzzCase c;
        std::string err;
        if (!sweep::loadFuzzRepro(fuzz_replay, c, &err))
            fatal("--fuzz-replay: ", err);
        std::printf("replaying %s: workload %s sample %u "
                    "(fuzz_seed %llu, quiesce %llu, vlen %u, "
                    "vregs %u, %up, conf %u%s, faults: %s)\n",
                    fuzz_replay.c_str(), c.workload.c_str(), c.sample,
                    static_cast<unsigned long long>(c.fuzzSeed),
                    static_cast<unsigned long long>(c.quiesceInterval),
                    c.vlen, c.numVregs, c.ports,
                    unsigned(c.tlConfidence),
                    c.eagerChain ? ", eager" : "",
                    describeFaultPlan(c.fault).c_str());
        const sweep::FuzzOutcome o =
            sweep::runFuzzCase(c, eopt.eventSkip, eopt.maxCycles);
        reportFuzzOutcome(o);
        return o.diverged ? 1 : 0;
    }

    if (fuzz) {
        sweep::FuzzOptions fopt;
        fopt.samples = fuzz_samples;
        fopt.baseSeed = popt.baseSeed;
        fopt.jobs = eopt.jobs;
        fopt.scale = popt.scale;
        fopt.footprint = popt.footprint;
        fopt.quick = popt.quick;
        fopt.eventSkip = eopt.eventSkip;
        fopt.withFaults = fuzz_faults;
        fopt.maxCycles = eopt.maxCycles;
        fopt.reproPath = fuzz_repro;

        std::printf("speculation fuzz campaign: %u samples per "
                    "workload, seed %llu, %u thread(s)%s\n",
                    fopt.samples,
                    static_cast<unsigned long long>(fopt.baseSeed),
                    fopt.jobs,
                    fopt.withFaults ? ", with fault injection" : "");
        const auto t0 = std::chrono::steady_clock::now();
        const sweep::FuzzReport rep = sweep::runFuzzCampaign(fopt);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        for (const sweep::FuzzOutcome &o : rep.outcomes)
            reportFuzzOutcome(o);
        std::printf("fuzzed %zu samples in %.2fs: %u divergence(s); "
                    "%llu faults injected, %llu detected by "
                    "validation\n",
                    rep.outcomes.size(), wall, rep.divergences,
                    static_cast<unsigned long long>(
                        rep.totalElemFlips + rep.totalVrmtFlips),
                    static_cast<unsigned long long>(
                        rep.totalFaultsDetected));
        if (rep.divergences) {
            if (!rep.reproPath.empty())
                std::printf("minimized repro written to %s "
                            "(re-run with --fuzz-replay)\n",
                            rep.reproPath.c_str());
            return 1;
        }
        return 0;
    }

    if (list) {
        std::printf("registered sweep plans:\n");
        for (const sweep::PlanInfo &p : sweep::allPlans())
            std::printf("  %-10s %s\n", p.name.c_str(),
                        p.title.c_str());
        std::printf("\nworkload footprints at --scale %u "
                    "(initialized data):\n",
                    popt.scale);
        std::printf("  %-9s %-10s %s\n", "workload", "mode",
                    "footprint");
        for (const WorkloadSpec &w : allWorkloads())
            for (Footprint fp :
                 {Footprint::Base, Footprint::L2, Footprint::Mem})
                std::printf("  %-9s %-10s %s\n", w.name.c_str(),
                            footprintName(fp),
                            describeFootprint(w, popt.scale, fp)
                                .c_str());
        return 0;
    }
    if (plan_name.empty())
        usage(argv[0]);
    if (!sweep::havePlan(plan_name))
        fatal("unknown plan '", plan_name, "' (try --list)");
    if (eopt.sample.enabled() && eopt.verify)
        fatal("--verify is incompatible with --samples: sampled "
              "results are estimates, not verifiable runs");
    if (eopt.sample.enabled() && eopt.checkpoint)
        warn("--samples subsumes --checkpoint; sampling mode used");
    if (eopt.sample.enabled() && !eopt.checkpointDir.empty())
        warn("--checkpoint-dir is not used with --samples: sample "
             "snapshots are recaptured per invocation");
    if (eopt.sample.enabled() &&
        (eopt.traceEvents || eopt.telemetryInterval))
        warn("--trace-events/--telemetry only observe full runs; "
             "sampled jobs are not instrumented");
    if (eopt.traceEvents && !SDV_OBS_ENABLED)
        warn("this build has SDV_OBS off: the trace file will contain "
             "no events");

    // Warnings stay on: checkpoint fallbacks (stale snapshot, cold
    // run on geometry mismatch, no warm-up boundary) must be visible.

    const sweep::SweepPlan plan = sweep::buildPlan(plan_name, popt);
    std::printf("plan %s: %zu jobs, %u thread(s), scale %u, "
                "footprint %s%s",
                plan.name.c_str(), plan.jobs.size(), eopt.jobs,
                plan.scale, footprintName(plan.footprint),
                eopt.checkpoint && !eopt.sample.enabled()
                    ? ", checkpointed"
                    : "");
    if (eopt.sample.enabled())
        std::printf(", %u samples x %llu insts", eopt.sample.samples,
                    static_cast<unsigned long long>(
                        eopt.sample.measureInsts));
    std::printf("\n");

    const auto t0 = std::chrono::steady_clock::now();
    sweep::ExecMetrics metrics;
    const std::vector<sweep::RunOutcome> outcomes = sweep::runPlan(
        plan, eopt, metrics_summary ? &metrics : nullptr);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::uint64_t insts = 0;
    unsigned unfinished = 0;
    unsigned forked = 0;
    for (const sweep::RunOutcome &o : outcomes) {
        insts += o.res.insts;
        if (!o.res.finished)
            ++unfinished;
        if (o.fromCheckpoint)
            ++forked;
        if (eopt.verify && !o.res.verified)
            fatal("verification failed: ", o.workload, "/",
                  o.configKey);
    }

    std::printf("ran %zu simulations (%.1f Minsts) in %.2fs "
                "(%.2f Minst/s)%s\n",
                outcomes.size(), double(insts) / 1e6, wall,
                wall > 0 ? double(insts) / 1e6 / wall : 0.0,
                eopt.verify ? ", all verified" : "");
    if (eopt.sample.enabled())
        std::printf("sampling: %u of %zu jobs estimated from "
                    "per-sample forks%s\n",
                    forked, outcomes.size(),
                    forked < outcomes.size() ? " (rest ran full)" : "");
    else if (eopt.checkpoint)
        std::printf("checkpoint: %u of %zu jobs forked from warm "
                    "snapshots%s\n",
                    forked, outcomes.size(),
                    forked < outcomes.size() ? " (rest ran cold)" : "");
    if (unfinished)
        std::printf("warning: %u job(s) hit the cycle budget\n",
                    unfinished);

    if (metrics_summary)
        std::fputs(metrics.summaryTable().c_str(), stdout);

    if (!trace_path.empty()) {
        // Serialize in plan order (pid = plan index): serial and
        // parallel sweeps write byte-identical trace files.
        const std::vector<obs::TraceSource> sources =
            sweep::traceSources(outcomes);
        if (!obs::writeTraceFile(trace_path, sources))
            fatal("cannot write ", trace_path);
        std::size_t recorded = 0;
        for (const obs::TraceSource &s : sources)
            recorded += s.recorder->size();
        std::printf("trace: %zu events from %zu jobs written to %s\n",
                    recorded, sources.size(), trace_path.c_str());
    }

    if (!json_path.empty()) {
        if (!sweep::writeJsonFile(json_path, plan, eopt, outcomes,
                                  wall,
                                  metrics_summary ? &metrics : nullptr))
            fatal("cannot write ", json_path);
        std::printf("results written to %s\n", json_path.c_str());
    }
    return 0;
}
